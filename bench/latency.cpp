// Extension bench — broadcast latency in relay hops.
//
// Pruning trades not only robustness but also path directness: backbone
// routes can be longer than the flooding-optimal BFS paths. This bench
// reports the mean first-copy latency (relay hops until the last node is
// reached) for flooding (the BFS lower bound), MPR, DP, the SI static
// backbone and the SD dynamic backbone.
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "broadcast/dominant_pruning.hpp"
#include "broadcast/flooding.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/si_cds.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "stats/running.hpp"
#include "stats/samples.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 69));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 40));

  std::puts("manetcast :: broadcast latency (relay hops to the last node)");
  std::puts("(flooding equals the BFS eccentricity — the lower bound)\n");

  const exp::PaperScenario scenario;
  TextTable table({"n", "d", "flood", "MPR", "DP", "SI static",
                   "SD dynamic", "SD p95"});
  for (double d : {6.0, 18.0}) {
    for (std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
      stats::RunningStats fl, mp, dp, si;
      stats::SampleSet sd;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto net = exp::make_network(scenario, {n, d}, seed, rep);
        Rng pick(derive_seed(seed, rep, 95));
        const auto source =
            static_cast<NodeId>(pick.index(net.graph.order()));
        const auto c = cluster::lowest_id_clustering(net.graph);
        const auto st = core::build_static_backbone(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);
        const auto bb = core::build_dynamic_backbone(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);
        fl.add(broadcast::flood(net.graph, source).latency_hops());
        mp.add(broadcast::mpr_broadcast(net.graph, source).latency_hops());
        dp.add(broadcast::dominant_pruning_broadcast(
                   net.graph, source, broadcast::PruningRule::kDominant)
                   .latency_hops());
        si.add(broadcast::si_cds_broadcast(net.graph, st.cds, source)
                   .latency_hops());
        sd.add(core::dynamic_broadcast(net.graph, bb, source)
                   .latency_hops());
      }
      table.row({std::to_string(n), TextTable::num(d, 0),
                 TextTable::num(fl.mean(), 2), TextTable::num(mp.mean(), 2),
                 TextTable::num(dp.mean(), 2), TextTable::num(si.mean(), 2),
                 TextTable::num(sd.mean(), 2),
                 TextTable::num(sd.quantile(0.95), 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: flooding is the shortest; backbone detours cost "
            "about one extra hop on average.");
  return 0;
}
