// Empirical check of the paper's O(n) communication-complexity claim:
// run the *distributed* backbone construction (HELLO, clustering,
// CH_HOP1/CH_HOP2, GATEWAY) plus one distributed SD data broadcast, and
// report totals and per-node messages as n grows. Message-optimality
// shows as a flat per-node column. Row computation lives in
// exp::run_msg_complexity (unit-tested).
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "exp/ablations.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 63));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 25));

  std::puts("manetcast :: distributed construction message complexity");
  std::puts("(mean counts per topology; per-node totals should stay flat "
            "— the O(n) / message-optimality claim; 'data' = messages of "
            "one SD broadcast)\n");

  const auto rows = exp::run_msg_complexity(
      {20, 40, 60, 80, 100}, {6.0, 18.0}, reps, seed);

  TextTable table({"n", "d", "hello", "roles", "hop1", "hop2", "gateway",
                   "total", "msgs/node", "rounds", "data", "delivered",
                   "resets"});
  bool delivery_linear = true;
  for (const auto& r : rows) {
    table.row({std::to_string(r.nodes), TextTable::num(r.degree, 0),
               TextTable::num(r.hello, 1), TextTable::num(r.roles, 1),
               TextTable::num(r.ch_hop1, 1), TextTable::num(r.ch_hop2, 1),
               TextTable::num(r.gateway, 1),
               TextTable::num(r.construction_total, 1),
               TextTable::num(r.per_node, 2), TextTable::num(r.rounds, 1),
               TextTable::num(r.data, 1), TextTable::num(r.deliveries, 1),
               TextTable::num(r.inbox_resets, 1)});
    // Pointer-based delivery: every populated inbox was filled by at
    // least one delivered message and is reset exactly once, so resets
    // can never exceed deliveries. A per-(node, round) clearing or
    // copying regression breaks this immediately (resets would scale
    // with n * rounds instead of with the message volume).
    delivery_linear = delivery_linear && r.inbox_resets <= r.deliveries;
  }
  std::fputs(table.render().c_str(), stdout);
  if (!delivery_linear) {
    std::fputs("\nFAIL: inbox resets exceed deliveries — delivery cost is "
               "no longer O(messages)\n",
               stdout);
    return 1;
  }
  std::puts("\ndelivery-cost check: inbox resets <= deliveries on every "
            "row (O(messages) delivery)");
  return 0;
}
