// Maintenance traffic of the message-driven backbone engine (src/proto).
//
// Two sections:
//  * Oracle soak (default): >= 200 ticks of churn for every mobility
//    model x coverage mode combination, with BOTH correctness harnesses
//    armed — the engine-internal from-scratch oracle diff and the
//    per-tick state-hash crosscheck against the snapshot-driven
//    incremental pipeline. A 30% move burst lands mid-run and reports
//    how many simulator rounds reconvergence took. Any divergence
//    aborts the bench (std::logic_error).
//  * Traffic sweep: per-node-per-tick transmission rates as n grows.
//    The paper's O(n) maintenance-communication claim shows as a flat
//    total rate; the exit code gates max/min rate <= 1.5 across the
//    sweep. --scale runs the committed 10k/100k rows (sparse grid +
//    streaming build + cell-major labels, correctness harnesses off so
//    the timings are honest); --scale-fast is the CI smoke (10k only).
//
// Flags: --fast (soak at 60 ticks), --seed=<u64>, --ticks=<k>,
//        --move-frac=<f> (default 0.02), --scale / --scale-fast,
//        --json=<path> (default BENCH_msgmaint.json in the working
//        directory — a committed top-level artifact like
//        BENCH_scale.json; regenerate with --scale),
//        --trace-out=<path> (Chrome-trace JSON of the last record's run —
//        repair waves render as flow arrows across node tracks in
//        Perfetto), --journal-out=<path> (the same run's event journal
//        as JSONL, the trace_inspect CLI's input).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "exp/msg_churn.hpp"
#include "obs/session.hpp"

namespace {

using namespace manet;

struct Record {
  exp::MsgChurnConfig config;
  exp::MsgChurnResult result;
  std::string metrics_json;  ///< obs registry snapshot of this run
  std::string section;       ///< "soak" / "traffic" / "scale"
};

/// A fresh session per record: each row's metrics block (proto.*,
/// proto.conv.*, net.*) covers exactly one run. --trace-out and
/// --journal-out are rewritten every record, so the files end up holding
/// the last (largest) run's trace and journal.
exp::MsgChurnResult run_record(exp::MsgChurnConfig config,
                               std::vector<Record>& records,
                               const std::string& section,
                               const std::string& trace_path,
                               const std::string& journal_path) {
  obs::Session session;
  config.base.obs = &session;
  const exp::MsgChurnResult r = exp::run_msg_churn(config);
  records.push_back(
      {config, r, session.registry.snapshot().to_json(), section});
  if (!trace_path.empty())
    session.trace.write_chrome_trace_file(trace_path, &session.journal);
  if (!journal_path.empty()) session.journal.write_jsonl_file(journal_path);
  return r;
}

const char* mode_name(core::CoverageMode mode) {
  return mode == core::CoverageMode::kTwoPointFiveHop ? "2.5-hop" : "3-hop";
}

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<Record>& records, bool traffic_flat) {
  // The default lands in the working directory (the committed artifact
  // convention of BENCH_scale.json); an explicit --json=dir/file.json
  // gets its parent created, matching common/artifacts.hpp.
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"msg_maintenance\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"traffic_o_n_ok\": " << (traffic_flat ? "true" : "false")
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& [c, r, metrics, section] = records[i];
    out << "    {\"section\": \"" << section << "\", \"model\": \""
        << exp::model_name(c.base.model) << "\", \"mode\": \""
        << mode_name(c.base.mode) << "\", \"n\": " << r.nodes
        << ", \"degree\": " << c.base.degree
        << ", \"move_fraction\": " << c.base.move_fraction
        << ", \"ticks\": " << r.ticks
        << ", \"oracle\": " << (c.oracle_check ? "true" : "false")
        << ", \"crosscheck\": " << (c.crosscheck ? "true" : "false")
        << ", \"burst_fraction\": " << c.burst_fraction
        << ", \"mean_rounds\": " << r.mean_rounds
        << ", \"max_rounds\": " << r.max_rounds
        << ", \"burst_rounds\": " << r.burst_rounds
        << ", \"hello_rate\": " << r.hello_rate
        << ", \"repair_rate\": " << r.repair_rate
        << ", \"rows_rate\": " << r.rows_rate
        << ", \"gateway_rate\": " << r.gateway_rate
        << ", \"msgs_per_node_per_tick\": " << r.total_rate
        << ", \"deliveries_per_node_per_tick\": " << r.deliveries_rate
        << ", \"mean_link_changes\": " << r.mean_link_changes
        << ", \"mean_head_changes\": " << r.mean_head_changes
        << ", \"wall_ms_per_tick\": " << r.wall_ms_per_tick
        << ", \"connected\": " << (r.connected ? "true" : "false")
        << ", \"state_hash\": \"" << std::hex << r.state_hash << std::dec
        << "\", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"metrics\": " << metrics << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_row(const char* tag, const exp::MsgChurnConfig& c,
               const exp::MsgChurnResult& r) {
  std::printf(
      "%-10s %-7s %7zu %6.2f %6.1f %6.1f  %6.3f %6.3f %6.3f %6.3f %7.3f\n",
      tag, mode_name(c.base.mode), r.nodes, r.mean_rounds,
      static_cast<double>(r.max_rounds), static_cast<double>(r.burst_rounds),
      r.hello_rate, r.repair_rate, r.rows_rate, r.gateway_rate,
      r.total_rate);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  const auto soak_ticks =
      static_cast<std::size_t>(flags.get_int("ticks", fast ? 60 : 200));
  const double move_frac = flags.get_double("move-frac", 0.02);
  const bool scale_fast = flags.get_bool("scale-fast");
  const bool scale = flags.get_bool("scale") || scale_fast;
  const std::string json_path = flags.get("json", "BENCH_msgmaint.json");
  const std::string trace_path = flags.get("trace-out", "");
  const std::string journal_path = flags.get("journal-out", "");

  std::vector<Record> records;
  std::puts(
      "manetcast :: msg_maintenance — HELLO-paced protocol engine traffic");
  std::printf("%-10s %-7s %7s %6s %6s %6s  %6s %6s %6s %6s %7s\n", "model",
              "mode", "n", "rnds", "max", "burst", "hello", "repair", "rows",
              "gatewy", "msgs/nt");

  // Oracle soak: every model x mode, oracle + crosscheck + mid-run burst.
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    for (const auto mode : {core::CoverageMode::kTwoPointFiveHop,
                            core::CoverageMode::kThreeHop}) {
      exp::MsgChurnConfig config;
      config.base.nodes = 120;
      config.base.degree = 6.0;
      config.base.ticks = soak_ticks;
      config.base.move_fraction = move_frac;
      config.base.model = model;
      config.base.mode = mode;
      config.base.seed = seed;
      config.base.connect_attempts = 5;
      config.crosscheck = true;
      config.oracle_check = true;
      config.burst_fraction = 0.3;
      const exp::MsgChurnResult r =
          run_record(config, records, "soak", trace_path, journal_path);
      print_row(exp::model_name(model).c_str(), config, r);
    }
  }
  std::printf(
      "soak: %zu ticks per row, oracle diff + incremental crosscheck on "
      "every tick, 30%% move burst mid-run — all passed\n\n",
      soak_ticks);

  // Traffic sweep: the O(n) claim. Correctness harnesses off (the soak
  // just proved them); the gate is the flatness of msgs/node/tick.
  std::vector<std::size_t> sizes{200, 500, 1000, 2000};
  std::size_t sweep_ticks = fast ? 40 : 100;
  std::string section = "traffic";
  if (scale) {
    sizes = scale_fast ? std::vector<std::size_t>{10000}
                       : std::vector<std::size_t>{10000, 100000};
    sweep_ticks = scale_fast ? 10 : 30;
    section = "scale";
    std::puts(scale_fast
                  ? "scale smoke — sparse grid + streaming build, n=10k"
                  : "scale sweep — sparse grid + streaming build, 10k/100k");
  } else {
    std::puts("traffic sweep — waypoint, 2.5-hop, correctness checks off");
  }
  double min_rate = 0.0, max_rate = 0.0;
  for (const std::size_t n : sizes) {
    exp::MsgChurnConfig config;
    config.base.nodes = n;
    config.base.degree = 6.0;
    config.base.ticks = sweep_ticks;
    config.base.move_fraction = move_frac;
    config.base.model = exp::ChurnConfig::Model::kWaypoint;
    config.base.mode = core::CoverageMode::kTwoPointFiveHop;
    config.base.seed = seed;
    config.base.connect_attempts = 1;
    config.crosscheck = false;
    config.oracle_check = false;
    if (scale) {
      config.base.grid = geom::GridIndex::kSparse;
      config.base.streaming_build = true;
      config.base.cell_order = true;
    }
    const exp::MsgChurnResult r =
        run_record(config, records, section, trace_path, journal_path);
    print_row("waypoint", config, r);
    std::printf("%36s wall %.3f ms/tick, rss %.1f MB\n", "",
                r.wall_ms_per_tick,
                static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0));
    if (min_rate == 0.0 || r.total_rate < min_rate) min_rate = r.total_rate;
    max_rate = std::max(max_rate, r.total_rate);
  }
  // O(n) gate: per-node traffic must stay flat as n grows 10-500x. The
  // 1.5x allowance absorbs boundary effects of the small sizes.
  const bool traffic_flat = min_rate > 0.0 && max_rate / min_rate <= 1.5;
  std::printf(
      "\nO(n) maintenance traffic: msgs/node/tick in [%.3f, %.3f], "
      "ratio %.2f (gate <= 1.50) — %s\n",
      min_rate, max_rate, max_rate / min_rate,
      traffic_flat ? "flat, O(n) holds" : "NOT FLAT — gate FAILED");

  write_json(json_path, seed, records, traffic_flat);
  std::printf("records written to %s\n", json_path.c_str());
  return traffic_flat ? 0 : 1;
}
