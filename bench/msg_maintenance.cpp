// Maintenance traffic of the message-driven backbone engine (src/proto).
//
// Two sections:
//  * Oracle soak (default): >= 200 ticks of churn for every mobility
//    model x coverage mode combination, with BOTH correctness harnesses
//    armed — the engine-internal from-scratch oracle diff and the
//    per-tick state-hash crosscheck against the snapshot-driven
//    incremental pipeline. A 30% move burst lands mid-run and reports
//    how many simulator rounds reconvergence took. Any divergence
//    aborts the bench (std::logic_error).
//  * Traffic sweep: per-node-per-tick transmission rates as n grows.
//    The paper's O(n) maintenance-communication claim shows as a flat
//    total rate; the exit code gates max/min rate <= 1.5 across the
//    sweep. --scale runs the committed 10k/100k rows (sparse grid +
//    streaming build + cell-major labels, correctness harnesses off so
//    the timings are honest); --scale-fast is the CI smoke (10k only).
//
// Flags: --fast (soak at 60 ticks), --seed=<u64>, --ticks=<k>,
//        --move-frac=<f> (default 0.02), --scale / --scale-fast,
//        --threads=<k> (default 2 — engine_threads of the sharded scale
//        rows; the verify stage sweeps {0,1,2,8} regardless),
//        --json=<path> (default BENCH_msgmaint.json in the working
//        directory — a committed top-level artifact like
//        BENCH_scale.json; regenerate with --scale),
//        --trace-out=<path> (Chrome-trace JSON of the last record's run —
//        repair waves render as flow arrows across node tracks in
//        Perfetto), --journal-out=<path> (the same run's event journal
//        as JSONL, the trace_inspect CLI's input).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "exp/msg_churn.hpp"
#include "obs/session.hpp"

namespace {

using namespace manet;

struct Record {
  exp::MsgChurnConfig config;
  exp::MsgChurnResult result;
  std::string metrics_json;  ///< obs registry snapshot of this run
  std::string section;       ///< "soak" / "traffic" / "scale"
};

/// A fresh session per record: each row's metrics block (proto.*,
/// proto.conv.*, net.*) covers exactly one run. --trace-out and
/// --journal-out are rewritten every record, so the files end up holding
/// the last (largest) run's trace and journal.
exp::MsgChurnResult run_record(exp::MsgChurnConfig config,
                               std::vector<Record>& records,
                               const std::string& section,
                               const std::string& trace_path,
                               const std::string& journal_path,
                               std::string* det_json = nullptr) {
  obs::Session session;
  config.base.obs = &session;
  const exp::MsgChurnResult r = exp::run_msg_churn(config);
  const obs::MetricsSnapshot snap = session.registry.snapshot();
  records.push_back({config, r, snap.to_json(), section});
  if (det_json != nullptr) *det_json = snap.deterministic().to_json();
  if (!trace_path.empty())
    session.trace.write_chrome_trace_file(trace_path, &session.journal);
  if (!journal_path.empty()) session.journal.write_jsonl_file(journal_path);
  return r;
}

/// Satellite: a disconnected sweep topology is a legitimate regime at
/// scale (connectivity is hopeless at d=6 and n >= 10k) but must never
/// pass silently — rates measured on a fragmented network are not
/// comparable with connected rows.
void warn_if_disconnected(const exp::MsgChurnConfig& c,
                          const exp::MsgChurnResult& r) {
  if (r.connected) return;
  std::printf(
      "*** WARNING: n=%zu row ran on a DISCONNECTED topology (%zu/%zu "
      "connect attempts used) — per-node rates reflect a fragmented "
      "network; raise connect_attempts or degree for connected rows ***\n",
      r.nodes, r.connect_attempts_used, c.base.connect_attempts);
}

const char* mode_name(core::CoverageMode mode) {
  return mode == core::CoverageMode::kTwoPointFiveHop ? "2.5-hop" : "3-hop";
}

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<Record>& records, bool traffic_flat,
                bool determinism_ok, bool rss_ok, bool scaling_ok) {
  // The default lands in the working directory (the committed artifact
  // convention of BENCH_scale.json); an explicit --json=dir/file.json
  // gets its parent created, matching common/artifacts.hpp.
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"msg_maintenance\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"traffic_o_n_ok\": " << (traffic_flat ? "true" : "false")
      << ",\n  \"sharded_determinism_ok\": "
      << (determinism_ok ? "true" : "false")
      << ",\n  \"rss_per_node_ok\": " << (rss_ok ? "true" : "false")
      << ",\n  \"wall_scaling_ok\": " << (scaling_ok ? "true" : "false")
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& [c, r, metrics, section] = records[i];
    out << "    {\"section\": \"" << section << "\", \"model\": \""
        << exp::model_name(c.base.model) << "\", \"mode\": \""
        << mode_name(c.base.mode) << "\", \"n\": " << r.nodes
        << ", \"degree\": " << c.base.degree
        << ", \"move_fraction\": " << c.base.move_fraction
        << ", \"ticks\": " << r.ticks
        << ", \"oracle\": " << (c.oracle_check ? "true" : "false")
        << ", \"crosscheck\": " << (c.crosscheck ? "true" : "false")
        << ", \"burst_fraction\": " << c.burst_fraction
        << ", \"mean_rounds\": " << r.mean_rounds
        << ", \"max_rounds\": " << r.max_rounds
        << ", \"burst_rounds\": " << r.burst_rounds
        << ", \"hello_rate\": " << r.hello_rate
        << ", \"repair_rate\": " << r.repair_rate
        << ", \"rows_rate\": " << r.rows_rate
        << ", \"gateway_rate\": " << r.gateway_rate
        << ", \"msgs_per_node_per_tick\": " << r.total_rate
        << ", \"deliveries_per_node_per_tick\": " << r.deliveries_rate
        << ", \"mean_link_changes\": " << r.mean_link_changes
        << ", \"mean_head_changes\": " << r.mean_head_changes
        << ", \"engine_threads\": " << c.engine_threads
        << ", \"host_hw_concurrency\": " << std::thread::hardware_concurrency()
        << ", \"throttled_host\": "
        << (std::thread::hardware_concurrency() <= 1 && c.engine_threads > 1
                ? "true"
                : "false")
        << ", \"wall_ms_per_tick\": " << r.wall_ms_per_tick
        << ", \"deliver_ms_per_tick\": " << r.deliver_ms_per_tick
        << ", \"node_step_ms_per_tick\": " << r.node_step_ms_per_tick
        << ", \"mirror_ms_per_tick\": " << r.mirror_ms_per_tick
        << ", \"connected\": " << (r.connected ? "true" : "false")
        << ", \"connect_attempts_used\": " << r.connect_attempts_used
        << ", \"state_hash\": \"" << std::hex << r.state_hash << std::dec
        << "\", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"rss_bytes_per_node\": "
        << static_cast<double>(r.peak_rss_bytes) / static_cast<double>(r.nodes)
        << ", \"metrics\": " << metrics << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void print_row(const char* tag, const exp::MsgChurnConfig& c,
               const exp::MsgChurnResult& r) {
  std::printf(
      "%-10s %-7s %7zu %6.2f %6.1f %6.1f  %6.3f %6.3f %6.3f %6.3f %7.3f\n",
      tag, mode_name(c.base.mode), r.nodes, r.mean_rounds,
      static_cast<double>(r.max_rounds), static_cast<double>(r.burst_rounds),
      r.hello_rate, r.repair_rate, r.rows_rate, r.gateway_rate,
      r.total_rate);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  const auto soak_ticks =
      static_cast<std::size_t>(flags.get_int("ticks", fast ? 60 : 200));
  const double move_frac = flags.get_double("move-frac", 0.02);
  const bool scale_fast = flags.get_bool("scale-fast");
  const bool scale = flags.get_bool("scale") || scale_fast;
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 2));
  const std::string json_path = flags.get("json", "BENCH_msgmaint.json");
  const std::string trace_path = flags.get("trace-out", "");
  const std::string journal_path = flags.get("journal-out", "");

  std::vector<Record> records;
  std::puts(
      "manetcast :: msg_maintenance — HELLO-paced protocol engine traffic");
  std::printf("%-10s %-7s %7s %6s %6s %6s  %6s %6s %6s %6s %7s\n", "model",
              "mode", "n", "rnds", "max", "burst", "hello", "repair", "rows",
              "gatewy", "msgs/nt");

  // Oracle soak: every model x mode, oracle + crosscheck + mid-run burst.
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    for (const auto mode : {core::CoverageMode::kTwoPointFiveHop,
                            core::CoverageMode::kThreeHop}) {
      exp::MsgChurnConfig config;
      config.base.nodes = 120;
      config.base.degree = 6.0;
      config.base.ticks = soak_ticks;
      config.base.move_fraction = move_frac;
      config.base.model = model;
      config.base.mode = mode;
      config.base.seed = seed;
      config.base.connect_attempts = 5;
      config.crosscheck = true;
      config.oracle_check = true;
      config.burst_fraction = 0.3;
      const exp::MsgChurnResult r =
          run_record(config, records, "soak", trace_path, journal_path);
      print_row(exp::model_name(model).c_str(), config, r);
    }
  }
  std::printf(
      "soak: %zu ticks per row, oracle diff + incremental crosscheck on "
      "every tick, 30%% move burst mid-run — all passed\n\n",
      soak_ticks);

  // Traffic sweep: the O(n) claim. Correctness harnesses off (the soak
  // just proved them); the gate is the flatness of msgs/node/tick.
  std::vector<std::size_t> sizes{200, 500, 1000, 2000};
  std::size_t sweep_ticks = fast ? 40 : 100;
  std::string section = "traffic";
  // Scale rows hold the ABSOLUTE churn fixed — 100 movers per tick at
  // every n — instead of a fixed fraction. That is the workload the
  // region-sharded engine is built for: the repair scope is O(changes),
  // so wall/tick must stay near-flat while n grows 100x. (A fixed
  // fraction at 1M paints essentially every grid cell, degenerating the
  // sharded tick into the sequential one plus overhead — it measures
  // cache thrash, not the engine.) Traffic stays HELLO-dominated, so
  // the flatness gate is unaffected.
  constexpr double kScaleMovers = 100.0;
  if (scale) {
    sizes = scale_fast
                ? std::vector<std::size_t>{10000}
                : std::vector<std::size_t>{10000, 100000, 1000000, 10000000};
    sweep_ticks = scale_fast ? 10 : 30;
    section = "scale";
    std::puts(scale_fast
                  ? "scale smoke — sparse grid + streaming cold start, "
                    "n=10k, 100 movers/tick"
                  : "scale sweep — sparse grid + streaming cold start, "
                    "10k/100k/1M/10M, fixed 100 movers/tick");
  } else {
    std::puts("traffic sweep — waypoint, 2.5-hop, correctness checks off");
  }

  const auto sweep_config = [&](std::size_t n) {
    exp::MsgChurnConfig config;
    config.base.nodes = n;
    config.base.degree = 6.0;
    config.base.ticks = sweep_ticks;
    config.base.move_fraction =
        scale ? kScaleMovers / static_cast<double>(n) : move_frac;
    config.base.model = exp::ChurnConfig::Model::kWaypoint;
    config.base.mode = core::CoverageMode::kTwoPointFiveHop;
    config.base.seed = seed;
    config.base.connect_attempts = 1;
    config.crosscheck = false;
    config.oracle_check = false;
    if (scale) {
      config.base.grid = geom::GridIndex::kSparse;
      config.base.streaming_build = true;
      config.base.cell_order = true;
      // Cell-by-cell placement + union-find connectivity: the cold
      // start never materializes a throwaway graph or an unordered
      // layout copy, which is what lets the 10M row start inside the
      // steady-state RSS budget.
      config.base.streaming_placement = true;
    }
    return config;
  };

  // Scale verify stage (before the sweep, so the monotone peak-RSS
  // counter still reads as a per-size peak for the ascending rows):
  // the region-sharded engine at threads {1,2,8} and the sequential
  // loop (threads=0) must land on ONE state hash and byte-identical
  // deterministic metrics over the identical workload.
  bool determinism_ok = true;
  if (scale) {
    const std::size_t vn = sizes.front();
    const std::vector<std::size_t> verify_threads =
        scale_fast ? std::vector<std::size_t>{0, threads}
                   : std::vector<std::size_t>{0, 1, 2, 8};
    std::printf(
        "\nscale verify — sharded engine vs sequential, n=%zu "
        "(one hash + byte-identical deterministic metrics required)\n",
        vn);
    std::uint64_t verify_hash = 0;
    std::string verify_metrics;
    for (const std::size_t t : verify_threads) {
      exp::MsgChurnConfig config = sweep_config(vn);
      config.engine_threads = t;
      std::string det;
      const exp::MsgChurnResult r = run_record(
          config, records, "scale-verify", trace_path, journal_path, &det);
      const bool first = t == verify_threads.front();
      if (first) {
        verify_hash = r.state_hash;
        verify_metrics = det;
      }
      const bool hash_ok = r.state_hash == verify_hash;
      const bool metrics_ok = det == verify_metrics;
      determinism_ok = determinism_ok && hash_ok && metrics_ok;
      std::printf("  engine_threads=%zu  %016llx  metrics %s\n", t,
                  static_cast<unsigned long long>(r.state_hash),
                  first         ? "(reference)"
                  : metrics_ok ? "identical"
                               : "DIVERGED");
      warn_if_disconnected(config, r);
    }
    std::printf("scale verify %s\n\n",
                determinism_ok
                    ? "passed — sharding changes no observable"
                    : "FAILED — sharded runs diverged");
  }

  double min_rate = 0.0, max_rate = 0.0;
  // (n, bytes/node) of each sweep size's final row, ascending n — the
  // memory-audit series for the RSS gate.
  std::vector<std::pair<std::size_t, double>> rss_series;
  // (n, wall ms/tick) of each scale size's sharded row — the series for
  // the sublinear-scaling gate.
  std::vector<std::pair<std::size_t, double>> wall_series;
  for (const std::size_t n : sizes) {
    // Thread variants per size: the smaller scale rows keep a
    // sequential (engine_threads=0) baseline next to the sharded row
    // so the sweep shows what the O(changes) tick buys; the 1M row
    // runs sharded only — a sequential run costs O(n) per tick for no
    // extra information. Traffic rows stay sequential (rates are
    // thread-invariant; the verify stage just proved it).
    std::vector<std::size_t> variants{0};
    if (scale) {
      variants.clear();
      if (n < 1000000) variants.push_back(0);
      variants.push_back(threads);
    }
    double rss_per_node = 0.0;
    for (const std::size_t t : variants) {
      exp::MsgChurnConfig config = sweep_config(n);
      config.engine_threads = t;
      const exp::MsgChurnResult r =
          run_record(config, records, section, trace_path, journal_path);
      print_row("waypoint", config, r);
      rss_per_node = static_cast<double>(r.peak_rss_bytes) /
                     static_cast<double>(r.nodes);
      std::printf(
          "%36s thr %zu, wall %.3f ms/tick (deliver %.3f, node %.3f, "
          "mirror %.3f), rss %.1f MB (%.0f B/node)\n",
          "", t, r.wall_ms_per_tick, r.deliver_ms_per_tick,
          r.node_step_ms_per_tick, r.mirror_ms_per_tick,
          static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0),
          rss_per_node);
      warn_if_disconnected(config, r);
      if (min_rate == 0.0 || r.total_rate < min_rate)
        min_rate = r.total_rate;
      max_rate = std::max(max_rate, r.total_rate);
      if (scale && t == variants.back())
        wall_series.emplace_back(n, r.wall_ms_per_tick);
    }
    rss_series.emplace_back(n, rss_per_node);
  }
  // O(n) gate: per-node traffic must stay flat as n grows 10-500x. The
  // 1.5x allowance absorbs boundary effects of the small sizes.
  const bool traffic_flat = min_rate > 0.0 && max_rate / min_rate <= 1.5;
  std::printf(
      "\nO(n) maintenance traffic: msgs/node/tick in [%.3f, %.3f], "
      "ratio %.2f (gate <= 1.50) — %s\n",
      min_rate, max_rate, max_rate / min_rate,
      traffic_flat ? "flat, O(n) holds" : "NOT FLAT — gate FAILED");

  // Memory gate, mirroring churn_maintenance's per-node budget: bytes
  // per node must not grow with n (10% allowance for measurement
  // noise), and the million-node-and-up rows must hold the post-diet
  // 1.0 KB/node budget absolutely. The smoke run gets its own absolute
  // budget (a 10k-node process is dominated by fixed overhead, so the
  // big rows' budget would be vacuous there) — this is the exit-code
  // gate CI leans on.
  bool rss_ok = true;
  if (scale) {
    for (std::size_t i = 1; i < rss_series.size(); ++i)
      if (rss_series[i].second > rss_series[i - 1].second * 1.10) {
        rss_ok = false;
        std::printf(
            "RSS gate FAILED: %.0f B/node at n=%zu grew from %.0f B/node "
            "at n=%zu\n",
            rss_series[i].second, rss_series[i].first,
            rss_series[i - 1].second, rss_series[i - 1].first);
      }
    for (const auto& [rn, per_node] : rss_series)
      if (rn >= 1000000 && per_node > 1024.0) {
        rss_ok = false;
        std::printf(
            "RSS gate FAILED: n=%zu row at %.0f B/node exceeds the "
            "1.0 KB/node budget\n",
            rn, per_node);
      }
    if (scale_fast && rss_series.back().second > 3072.0) {
      rss_ok = false;
      std::printf(
          "RSS gate FAILED: smoke row at %.0f B/node exceeds the 3.0 "
          "KB/node smoke budget\n",
          rss_series.back().second);
    }
    if (rss_ok)
      std::printf("RSS gate passed: bytes/node flat across the sweep "
                  "(last row %.0f B/node)\n",
                  rss_series.back().second);
  }

  // Sublinear-wall gate: with the absolute churn fixed, the sharded
  // tick is O(changes), so wall/tick must grow strictly slower than n
  // between consecutive scale rows (10x n must cost < 10x wall).
  bool scaling_ok = true;
  if (scale && wall_series.size() >= 2) {
    for (std::size_t i = 1; i < wall_series.size(); ++i) {
      const auto& [n0, w0] = wall_series[i - 1];
      const auto& [n1, w1] = wall_series[i];
      const double n_ratio =
          static_cast<double>(n1) / static_cast<double>(n0);
      const double w_ratio = w0 > 0.0 ? w1 / w0 : 0.0;
      const bool ok = w_ratio < n_ratio;
      scaling_ok = scaling_ok && ok;
      std::printf(
          "wall scaling %zu -> %zu: %.3f -> %.3f ms/tick, ratio %.2fx "
          "for %.0fx nodes — %s\n",
          n0, n1, w0, w1, w_ratio, n_ratio,
          ok ? "sublinear" : "NOT sublinear — gate FAILED");
    }
  }

  write_json(json_path, seed, records, traffic_flat, determinism_ok, rss_ok,
             scaling_ok);
  std::printf("records written to %s\n", json_path.c_str());
  return traffic_flat && determinism_ok && rss_ok && scaling_ok ? 0 : 1;
}
