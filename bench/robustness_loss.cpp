// Extension bench — the redundancy/robustness trade-off under packet
// loss. The paper (like the CDS literature) assumes an ideal MAC; this
// bench quantifies what the pruned backbones give up when deliveries fail
// independently with probability p: delivery ratio of blind flooding vs
// MPR vs SI-CDS (static backbone) vs the suppression floods of §3.
//
// Flags: --seed=<u64>, --reps=<int>, --nodes=<int>, --degree=<float>.
#include <cstdio>

#include "broadcast/lossy.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/suppression.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 68));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 60));
  const auto n = static_cast<std::size_t>(flags.get_int("nodes", 80));
  const double d = flags.get_double("degree", 10.0);

  std::printf("manetcast :: delivery ratio under per-delivery loss "
              "(n=%zu, d=%.0f, %zu reps)\n\n",
              n, d, reps);

  const exp::PaperScenario scenario;
  TextTable table({"loss", "flood", "MPR", "SI-CDS", "flood fwd",
                   "SI fwd"});
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    stats::RunningStats fl, mp, si, fl_fwd, si_fwd;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto net = exp::make_network(scenario, {n, d}, seed, rep);
      const auto bb = core::build_static_backbone(
          net.graph, core::CoverageMode::kTwoPointFiveHop);
      const auto mpr = broadcast::compute_mpr_sets(net.graph);
      Rng rng(derive_seed(seed, rep, static_cast<std::uint64_t>(loss * 100)));
      const auto source = static_cast<NodeId>(rng.index(n));
      const broadcast::LossModel model{loss};
      const auto f = broadcast::flood_lossy(net.graph, source, model, rng);
      fl.add(f.delivery_ratio());
      fl_fwd.add(static_cast<double>(f.forward_count()));
      mp.add(broadcast::mpr_broadcast_lossy(net.graph, mpr, source, model,
                                            rng)
                 .delivery_ratio());
      const auto s = broadcast::si_cds_broadcast_lossy(net.graph, bb.cds,
                                                       source, model, rng);
      si.add(s.delivery_ratio());
      si_fwd.add(static_cast<double>(s.forward_count()));
    }
    table.row({TextTable::num(loss, 1), TextTable::num(fl.mean(), 3),
               TextTable::num(mp.mean(), 3), TextTable::num(si.mean(), 3),
               TextTable::num(fl_fwd.mean(), 1),
               TextTable::num(si_fwd.mean(), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: flooding degrades most gracefully (its redundancy "
            "buys robustness); the pruned backbone pays for its savings as "
            "loss grows.");
  return 0;
}
