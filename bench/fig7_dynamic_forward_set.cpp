// Regenerates Figure 7 — average size of the forward-node set per
// broadcast: the dynamic backbone (2.5-hop and 3-hop) vs broadcasting
// over the MO_CDS, for d = 6 and 18, n = 20..100, uniformly random
// source per replication. Paper's observation: "the dynamic backbone
// algorithm shows much better performance than the MO_CDS".
//
// Flags: --fast, --seed=<u64>, --csv=<path> (under --out-dir, default
// results/),
//        --threads=<k> (parallel replications; 0 = hardware threads).
#include <cstdio>
#include <string>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  const manet::Flags flags(argc, argv);
  manet::exp::PaperScenario scenario;
  auto policy = manet::exp::bench_policy(
      static_cast<std::size_t>(flags.get_int("threads", 1)));
  if (flags.get_bool("fast")) {
    policy.min_replications = 10;
    policy.max_replications = 60;
  }
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20030423));

  std::puts("manetcast :: Figure 7 — average size of the forward node set");
  std::puts("(dynamic backbone vs MO_CDS broadcast; 99% CI half-widths "
            "shown; '*' = replication cap hit)\n");
  const auto rows = manet::exp::run_fig7(scenario, policy, seed);
  std::fputs(manet::exp::render_fig7(rows).c_str(), stdout);

  const auto csv =
      manet::artifact_path(flags, flags.get("csv", "fig7.csv"));
  manet::exp::write_fig7_csv(rows, csv);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
