// Ablation — what does the 2.5-hop coverage set give up vs the 3-hop one?
//
// The paper's claim (§4, conclusions): the 2.5-hop variant has comparable
// backbone quality (<2% size difference) while being cheaper to maintain
// (smaller coverage sets and CH_HOP2 tables). This bench quantifies both
// halves: CDS size, per-broadcast forward count, total coverage-set
// entries and total CH_HOP2 entries (the state a head must keep fresh
// under mobility).
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 61));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 40));

  std::puts("manetcast :: ablation — 2.5-hop vs 3-hop coverage sets");
  std::puts("(means over random connected topologies; 'hop2 entries' and "
            "'coverage entries' proxy the maintenance state)\n");

  const exp::PaperScenario scenario;
  TextTable table({"n", "d", "mode", "CDS size", "forward", "cov entries",
                   "hop2 entries"});
  for (double d : {6.0, 18.0}) {
    for (std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
      for (const auto mode : {core::CoverageMode::kTwoPointFiveHop,
                              core::CoverageMode::kThreeHop}) {
        stats::RunningStats cds, fwd, cov_entries, hop2_entries;
        for (std::size_t rep = 0; rep < reps; ++rep) {
          const auto net =
              exp::make_network(scenario, {n, d}, seed, rep);
          const auto st = core::build_static_backbone(net.graph, mode);
          cds.add(static_cast<double>(st.cds.size()));
          double centries = 0;
          for (NodeId h : st.clustering.heads)
            centries += static_cast<double>(st.coverage[h].size());
          cov_entries.add(centries);
          double h2 = 0;
          for (NodeId v = 0; v < net.graph.order(); ++v)
            h2 += static_cast<double>(st.tables.ch_hop2[v].size());
          hop2_entries.add(h2);

          const auto bb = core::build_dynamic_backbone(
              net.graph, st.clustering, mode);
          Rng pick(derive_seed(seed, rep, 99));
          const auto source =
              static_cast<NodeId>(pick.index(net.graph.order()));
          fwd.add(static_cast<double>(
              core::dynamic_broadcast(net.graph, bb, source)
                  .forward_count()));
        }
        table.row({std::to_string(n), TextTable::num(d, 0),
                   core::to_string(mode), TextTable::num(cds.mean(), 2),
                   TextTable::num(fwd.mean(), 2),
                   TextTable::num(cov_entries.mean(), 1),
                   TextTable::num(hop2_entries.mean(), 1)});
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: CDS sizes within ~2%; 2.5-hop keeps fewer entries.");
  return 0;
}
