// Overhead of the flight-recorder observability layer on the hot path.
//
// Methodology: ONE engine runs a churn workload and alternates, tick by
// tick, between having a full obs::Session attached (per-phase spans,
// counters, histograms — and for the protocol engine the causal flow
// events and the journal) and running unobserved — attaching never
// changes the maintained state, only what gets recorded. Each tick() is
// timed individually; consecutive ticks form a pair (which arm goes
// first alternates per pair), each rep estimates the overhead as the
// median of its per-pair differences, and the reported figure is the
// median across reps. Noise on a shared machine arrives in bursts
// lasting many ticks, so a burst inflates both halves of a pair and
// drops out of the difference; the rep median then rejects the
// occasional rep where a burst straddled pairs. Whole-run A/B
// comparisons (and even paired twin instances) were tried first and
// swing by several percent — more than the effect measured.
//
// Two sections: the snapshot-driven incremental pipeline (n
// configurable) and the message-driven protocol engine (n=1000), whose
// per-send instrumentation — instant event, flow begin/end, journal
// entry — is the heaviest in the tree.
//
// The contract documented in docs/OBSERVABILITY.md is <= 3% slowdown
// for both engines; --check turns that contract into an exit code.
//
// Flags: --fast (smaller run), --seed=<u64>, --ticks=<k>, --reps=<k>,
//        --warmup=<k> (untimed leading ticks per section; lets the
//        session's rings reach capacity before timing starts),
//        --check (exit 1 if either overhead exceeds --max-overhead,
//        default 3%; only meaningful when the layer is compiled in),
//        --json=<path> (default BENCH_obs_overhead.json under
//        --out-dir).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "incr/pipeline.hpp"
#include "mobility/waypoint.hpp"
#include "obs/session.hpp"
#include "proto/engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double median_us(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 ? samples[mid]
                            : (samples[mid - 1] + samples[mid]) / 2.0;
}

struct PairedResult {
  double plain_med = 0.0;
  double instr_med = 0.0;
  double overhead_pct = 0.0;
};

/// The paired-tick measurement over any engine: `stage()` advances the
/// mobility workload and stages the moves, `set_obs(bool)` attaches or
/// detaches the session (outside the timed region), `tick()` is the
/// timed hot path.
PairedResult measure_paired(std::size_t reps, std::size_t ticks,
                            std::size_t warmup,
                            const std::function<void()>& stage,
                            const std::function<void(bool)>& set_obs,
                            const std::function<void()>& tick_fn) {
  // Warmup (untimed, alternating like the measured ticks): the first
  // observed ticks pay one-off costs — first-touch page faults of the
  // trace/journal rings and their growth to capacity — that belong to
  // session setup, not the steady-state hot path the budget covers.
  for (std::size_t tick = 0; tick < warmup; ++tick) {
    stage();
    set_obs(tick % 2 == 0);
    tick_fn();
  }

  std::vector<double> all_plain_us, all_instr_us, rep_overheads;
  all_plain_us.reserve(reps * (ticks / 2 + 1));
  all_instr_us.reserve(reps * (ticks / 2 + 1));
  rep_overheads.reserve(reps);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    std::vector<double> plain_us, instrumented_us, pair_diff_us;
    plain_us.reserve(ticks / 2 + 1);
    instrumented_us.reserve(ticks / 2 + 1);
    pair_diff_us.reserve(ticks / 2 + 1);

    double current_pair[2] = {0.0, 0.0};
    for (std::size_t tick = 0; tick < ticks; ++tick) {
      stage();
      // Pair k = ticks (2k, 2k+1); the instrumented slot alternates per
      // pair so any period-2 structure in the workload cancels too.
      const std::size_t pair = tick / 2;
      const std::size_t slot = tick % 2;
      const bool observed = slot == pair % 2;
      set_obs(observed);  // outside the timing
      const auto start = Clock::now();
      tick_fn();
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count();
      (observed ? instrumented_us : plain_us).push_back(us);
      current_pair[observed ? 1 : 0] = us;
      if (slot == 1)
        pair_diff_us.push_back(current_pair[1] - current_pair[0]);
    }

    const double rep_plain = median_us(plain_us);
    const double rep_diff = median_us(std::move(pair_diff_us));
    const double rep_pct =
        rep_plain > 0.0 ? rep_diff / rep_plain * 100.0 : 0.0;
    std::printf("  rep %zu: plain median %.2f us, paired diff %.2f us "
                "(%.2f%%)\n",
                rep + 1, rep_plain, rep_diff, rep_pct);
    rep_overheads.push_back(rep_pct);
    all_plain_us.insert(all_plain_us.end(), plain_us.begin(),
                        plain_us.end());
    all_instr_us.insert(all_instr_us.end(), instrumented_us.begin(),
                        instrumented_us.end());
  }

  PairedResult result;
  result.plain_med = median_us(std::move(all_plain_us));
  result.instr_med = median_us(std::move(all_instr_us));
  result.overhead_pct = median_us(std::move(rep_overheads));
  std::printf("median per tick: plain %.2f us, instrumented %.2f us; "
              "median rep overhead %.2f%%\n",
              result.plain_med, result.instr_med, result.overhead_pct);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const bool check = flags.get_bool("check");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  // The per-tick instrumentation cost is ~1 us regardless of n, so the
  // gate needs ticks big enough that 3% is well above per-process
  // layout/ASLR jitter (a few us): n=1000 ticks run ~110 us, n=2000
  // ~365 us.
  const auto n = static_cast<std::size_t>(
      flags.get_int("nodes", fast ? 1000 : 2000));
  const auto ticks =
      static_cast<std::size_t>(flags.get_int("ticks", 1600));
  // Per-rep medians still carry a few percent of burst noise on a
  // shared machine; the rep count must be high enough that their median
  // resolves a ~2% effect against a 3% budget. 9 reps keeps the full
  // gate under ~15 s.
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 9));
  // Enough observed warmup ticks to fill the protocol session's journal
  // ring to capacity (~36 observed ticks at n=1000) before timing.
  const auto warmup =
      static_cast<std::size_t>(flags.get_int("warmup", 100));
  const double max_overhead = flags.get_double("max-overhead", 3.0);
  const std::string json_path =
      artifact_path(flags, flags.get("json", "BENCH_obs_overhead.json"));

  std::puts("manetcast :: obs_overhead — flight recorder on vs off");
  std::printf("obs layer compiled %s; n=%zu ticks=%zu reps=%zu (paired "
              "ticks, median of per-rep medians)\n",
              obs::kEnabled ? "in" : "out", n, ticks, reps);

  // ---- Section 1: the snapshot-driven incremental pipeline ----
  geom::UnitDiskConfig net;
  net.nodes = n;
  net.range = geom::range_for_average_degree(6.0, n, net.width, net.height);
  Rng topo_rng(derive_seed(seed, 0, 0));
  auto network = geom::generate_connected_unit_disk(net, topo_rng, 100);
  if (!network) network = geom::generate_unit_disk(net, topo_rng);

  mobility::WaypointConfig mc;
  mc.width = net.width;
  mc.height = net.height;
  mobility::WaypointModel mover(network->positions, mc,
                                Rng(derive_seed(seed, 0, 1)));
  Rng sample_rng(derive_seed(seed, 0, 2));

  obs::Session session;
  incr::IncrementalPipeline pipeline(network->positions, net.range,
                                     net.width, net.height,
                                     incr::PipelineOptions{});

  const std::size_t movers_per_tick = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(0.01 * static_cast<double>(n))));
  std::vector<NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);

  const auto stage_moves = [&](mobility::WaypointModel& m, auto& engine) {
    for (std::size_t j = 0; j < movers_per_tick; ++j) {
      const std::size_t k =
          j + static_cast<std::size_t>(sample_rng.below(ids.size() - j));
      std::swap(ids[j], ids[k]);
    }
    const std::span<const NodeId> moved(ids.data(), movers_per_tick);
    m.step_nodes(moved, 1.0);
    const auto& positions = m.positions();
    for (const NodeId v : moved) engine.stage_move(v, positions[v]);
  };

  std::puts("incremental pipeline:");
  const PairedResult incr_res = measure_paired(
      reps, ticks, warmup, [&] { stage_moves(mover, pipeline); },
      [&](bool on) { pipeline.set_obs(on ? &session : nullptr); },
      [&] { pipeline.tick(); });

  // ---- Section 2: the message-driven protocol engine (n=1000) ----
  // Per-send instrumentation (instant + flow begin/end + journal entry)
  // is the layer's heaviest path; measure it on the engine that pays it.
  const std::size_t proto_n = 1000;
  const std::size_t proto_ticks = std::max<std::size_t>(ticks / 4, 100);
  geom::UnitDiskConfig pnet;
  pnet.nodes = proto_n;
  pnet.range =
      geom::range_for_average_degree(6.0, proto_n, pnet.width, pnet.height);
  Rng ptopo_rng(derive_seed(seed, 1, 0));
  auto pnetwork = geom::generate_connected_unit_disk(pnet, ptopo_rng, 100);
  if (!pnetwork) pnetwork = geom::generate_unit_disk(pnet, ptopo_rng);

  mobility::WaypointModel pmover(pnetwork->positions, mc,
                                 Rng(derive_seed(seed, 1, 1)));
  obs::Session proto_session;
  proto::MaintenanceEngine engine(pnetwork->positions, pnet.range, pnet.width,
                                  pnet.height, proto::EngineOptions{});
  ids.resize(proto_n);
  for (std::size_t i = 0; i < proto_n; ++i) ids[i] = static_cast<NodeId>(i);

  std::printf("protocol engine (n=%zu, ticks=%zu):\n", proto_n, proto_ticks);
  const PairedResult proto_res = measure_paired(
      reps, proto_ticks, warmup, [&] { stage_moves(pmover, engine); },
      [&](bool on) { engine.set_obs(on ? &proto_session : nullptr); },
      [&] { engine.tick(); });

  {
    std::ofstream out(json_path);
    out << "{\"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
        << ", \"nodes\": " << n << ", \"ticks\": " << ticks
        << ", \"reps\": " << reps
        << ", \"plain_us_per_tick\": " << incr_res.plain_med
        << ", \"instrumented_us_per_tick\": " << incr_res.instr_med
        << ", \"overhead_pct\": " << incr_res.overhead_pct
        << ", \"proto_nodes\": " << proto_n
        << ", \"proto_ticks\": " << proto_ticks
        << ", \"proto_plain_us_per_tick\": " << proto_res.plain_med
        << ", \"proto_instrumented_us_per_tick\": " << proto_res.instr_med
        << ", \"proto_overhead_pct\": " << proto_res.overhead_pct << "}\n";
  }
  std::printf("written to %s\n", json_path.c_str());

  if (check && obs::kEnabled) {
    bool failed = false;
    if (incr_res.overhead_pct > max_overhead) {
      std::fprintf(stderr,
                   "FAIL: pipeline overhead %.2f%% exceeds the %.2f%% "
                   "budget\n",
                   incr_res.overhead_pct, max_overhead);
      failed = true;
    }
    if (proto_res.overhead_pct > max_overhead) {
      std::fprintf(stderr,
                   "FAIL: protocol-engine overhead %.2f%% exceeds the "
                   "%.2f%% budget\n",
                   proto_res.overhead_pct, max_overhead);
      failed = true;
    }
    if (failed) return 1;
  }
  return 0;
}
