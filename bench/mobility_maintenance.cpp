// Extension bench — the maintenance-cost argument of the paper's
// conclusions: "maintaining a static backbone at all times for
// broadcasting is costly and unnecessary. Therefore, building a dynamic
// backbone on-demand is a better choice."
//
// Nodes move under random waypoint; after every time step we diff the
// structures. The static backbone must repair clustering + coverage +
// gateway selections (static column); the dynamic backbone only repairs
// clustering + coverage (dynamic column). Faster nodes widen the gap.
//
// Flags: --seed=<u64>, --steps=<int>, --nodes=<int>.
#include <cstdio>

#include "cluster/lcc.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "exp/scenario.hpp"
#include "mobility/maintenance.hpp"
#include "mobility/waypoint.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 66));
  const auto steps = static_cast<std::size_t>(flags.get_int("steps", 30));
  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes", 60));

  std::puts("manetcast :: backbone maintenance under random waypoint");
  std::puts("(per-step mean structure churn; static = heads + backbone "
            "membership + coverage, dynamic = heads + coverage)\n");

  const exp::PaperScenario scenario;
  TextTable table({"speed", "link chg", "head chg", "backbone chg",
                   "static cost", "dynamic cost", "saving", "LCC churn"});
  for (double speed : {0.5, 1.0, 2.0, 4.0}) {
    const auto net = exp::make_network(scenario, {nodes, 8.0}, seed, 0);
    mobility::WaypointConfig cfg;
    cfg.min_speed = speed * 0.5;
    cfg.max_speed = speed;
    mobility::WaypointModel model(net.positions, cfg,
                                  Rng(derive_seed(seed, 1, 7)));
    stats::RunningStats links, heads, backbone, stat_cost, dyn_cost,
        lcc_churn;
    auto prev = net.graph;
    auto lcc = cluster::lowest_id_clustering(net.graph);
    for (std::size_t step = 0; step < steps; ++step) {
      model.step(1.0);
      const auto cur = model.snapshot(net.config.range);
      const auto delta = mobility::compare_snapshots(
          prev, cur, core::CoverageMode::kTwoPointFiveHop);
      links.add(static_cast<double>(delta.link_changes));
      heads.add(static_cast<double>(delta.head_changes));
      backbone.add(static_cast<double>(delta.backbone_changes));
      stat_cost.add(static_cast<double>(delta.static_maintenance()));
      dyn_cost.add(static_cast<double>(delta.dynamic_maintenance()));
      // Incremental LCC repair instead of full re-clustering.
      cluster::LccDelta repair;
      lcc = cluster::lcc_update(cur, lcc, &repair);
      lcc_churn.add(static_cast<double>(repair.total()));
      prev = cur;
    }
    const double saving =
        stat_cost.mean() > 0
            ? 100.0 * (stat_cost.mean() - dyn_cost.mean()) / stat_cost.mean()
            : 0.0;
    table.row({TextTable::num(speed, 1), TextTable::num(links.mean(), 1),
               TextTable::num(heads.mean(), 1),
               TextTable::num(backbone.mean(), 1),
               TextTable::num(stat_cost.mean(), 1),
               TextTable::num(dyn_cost.mean(), 1),
               TextTable::num(saving, 0) + "%",
               TextTable::num(lcc_churn.mean(), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: churn grows with speed; the dynamic backbone "
            "always repairs less state.");
  return 0;
}
