// Times the generate -> cluster -> backbone -> replicate pipeline at
// n in {100, 500, 1000, 2000} and writes machine-readable records to
// BENCH_pipeline.json so future PRs have a perf trajectory to compare
// against. Also reports the spatial-grid vs O(n^2)-reference speedup of
// unit_disk_graph (the acceptance gate for the spatial-grid kernel).
//
// Benches per n:
//   * topology_grid_d{6,18}      — unit_disk_graph (spatial grid)
//   * topology_reference_d{6,18} — unit_disk_graph_reference (O(n^2) scan)
//   * coverage_build     — neighbor tables + all coverage sets
//   * static_backbone    — full SI-CDS construction
//   * replicate_full     — a fixed-count replicate of the whole pipeline
//                          (honors --threads)
//
// Flags: --fast (fewer timing reps, sizes capped at 1000),
//        --seed=<u64>, --json=<path> (default BENCH_pipeline.json under
//        --out-dir, default results/),
//        --threads=<k> for replicate_full (0 = hardware threads).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/coverage.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "geom/unit_disk.hpp"
#include "stats/replicator.hpp"

namespace {

using namespace manet;

struct Record {
  std::string bench;
  std::size_t n;
  double mean_ms;
  std::size_t reps;
};

/// Mean wall-clock milliseconds of `reps` invocations of `fn`.
template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double total = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = clock::now();
    fn();
    total += std::chrono::duration<double, std::milli>(clock::now() - start)
                 .count();
  }
  return total / static_cast<double>(reps);
}

std::vector<geom::Point> make_positions(std::size_t n, std::uint64_t seed) {
  Rng rng(derive_seed(seed, 0, n));
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  return pts;
}

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"n\": " << r.n
        << ", \"mean_ms\": " << r.mean_ms << ", \"reps\": " << r.reps << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const std::string json_path =
      artifact_path(flags, flags.get("json", "BENCH_pipeline.json"));
  const std::size_t reps = fast ? 3 : 10;

  std::vector<std::size_t> sizes{100, 500, 1000, 2000};
  if (fast) sizes.pop_back();

  // Fixed average degree 18 (the paper's dense setting) keeps topologies
  // connected w.h.p. at every n, so the backbone stages stay comparable.
  const double degree = 18.0;

  std::vector<Record> records;
  std::puts("manetcast :: micro_pipeline — pipeline stage timings (ms)");
  std::printf("%-20s %6s %12s %6s\n", "bench", "n", "mean_ms", "reps");

  auto record = [&](const std::string& bench, std::size_t n, double ms,
                    std::size_t r) {
    records.push_back({bench, n, ms, r});
    std::printf("%-20s %6zu %12.3f %6zu\n", bench.c_str(), n, ms, r);
  };

  for (const std::size_t n : sizes) {
    const auto positions = make_positions(n, seed);

    // Topology construction at both paper densities (d = 6 common,
    // d = 18 highly dense): grid vs O(n^2) reference.
    // Topology benches are cheap, so triple the reps for tighter means.
    const std::size_t topo_reps = reps * 3;
    for (const double d : {6.0, 18.0}) {
      const double r = geom::range_for_average_degree(d, n, 100, 100);
      const std::string suffix = d == 6.0 ? "_d6" : "_d18";
      const double grid_ms = time_ms(
          topo_reps, [&] { (void)geom::unit_disk_graph(positions, r); });
      record("topology_grid" + suffix, n, grid_ms, topo_reps);
      const double ref_ms = time_ms(topo_reps, [&] {
        (void)geom::unit_disk_graph_reference(positions, r);
      });
      record("topology_reference" + suffix, n, ref_ms, topo_reps);
      if (ref_ms > 0.0 && grid_ms > 0.0)
        std::printf("  -> grid speedup at n=%zu, d=%g: %.1fx\n", n, d,
                    ref_ms / grid_ms);
    }

    const double range = geom::range_for_average_degree(degree, n, 100, 100);
    const auto g = geom::unit_disk_graph(positions, range);
    const auto c = cluster::lowest_id_clustering(g);
    record("coverage_build", n, time_ms(reps, [&] {
             const auto tables = core::build_neighbor_tables(
                 g, c, core::CoverageMode::kTwoPointFiveHop);
             (void)core::build_all_coverage(g, c, tables);
           }),
           reps);
    record("static_backbone", n, time_ms(reps, [&] {
             (void)core::build_static_backbone(
                 g, c, core::CoverageMode::kTwoPointFiveHop);
           }),
           reps);

    // Full replicate of the whole pipeline at a fixed replication count
    // (stopping rule pinned so every run times the same work).
    exp::PaperScenario scenario;
    scenario.sizes = {n};
    scenario.degrees = {degree};
    auto policy = exp::bench_policy(threads);
    policy.min_replications = fast ? 4 : 8;
    policy.max_replications = policy.min_replications;
    const exp::ScenarioPoint point{n, degree};
    record("replicate_full", n, time_ms(1, [&] {
             (void)stats::replicate(
                 policy, 1, [&](std::size_t rep, std::vector<double>& out) {
                   const auto net =
                       exp::make_network(scenario, point, seed, rep);
                   const auto cl = cluster::lowest_id_clustering(net.graph);
                   out.push_back(static_cast<double>(
                       core::build_static_backbone(
                           net.graph, cl, core::CoverageMode::kTwoPointFiveHop)
                           .cds.size()));
                 });
           }),
           1);
  }

  write_json(json_path, records);
  std::printf("records written to %s\n", json_path.c_str());
  return 0;
}
