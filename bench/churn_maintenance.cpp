// Incremental vs full-rebuild maintenance cost under churn.
//
// Drives exp::run_churn over both mobility models (random waypoint and
// random direction) at n up to 2000 with ~1% of nodes moving per tick,
// and reports per-tick wall-clock of the incremental engine (src/incr)
// against the batch baseline (unit-disk graph + full LCC pass + full
// backbone rebuild). The acceptance gate for the engine is the waypoint
// n=2000, d=6 row: incremental must be >= 5x faster than the rebuild.
//
// Flags: --fast (fewer ticks, sizes capped at 500), --seed=<u64>,
//        --ticks=<k>, --move-frac=<f> (default 0.01),
//        --json=<path> (default BENCH_churn.json under --out-dir,
//        default results/),
//        --trace-out=<path> (Chrome-trace JSON of the last record's run;
//        open in Perfetto / chrome://tracing).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "exp/churn.hpp"
#include "obs/session.hpp"

namespace {

using namespace manet;

struct Record {
  exp::ChurnConfig config;
  exp::ChurnResult result;
  std::string metrics_json;  ///< obs registry snapshot of this run
};

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& [c, r, metrics] = records[i];
    out << "  {\"model\": \"" << exp::model_name(c.model)
        << "\", \"n\": " << c.nodes << ", \"degree\": " << c.degree
        << ", \"move_fraction\": " << c.move_fraction
        << ", \"ticks\": " << r.ticks
        << ", \"incremental_ms_per_tick\": " << r.incremental_ms_per_tick
        << ", \"rebuild_ms_per_tick\": " << r.rebuild_ms_per_tick
        << ", \"speedup\": " << r.speedup
        << ", \"mean_link_changes\": " << r.mean_link_changes
        << ", \"mean_head_changes\": " << r.mean_head_changes
        << ", \"mean_backbone_changes\": " << r.mean_backbone_changes
        << ", \"mean_rows_recomputed\": " << r.mean_rows_recomputed
        << ", \"mean_heads_reselected\": " << r.mean_heads_reselected
        << ", \"metrics\": " << metrics << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  const auto ticks =
      static_cast<std::size_t>(flags.get_int("ticks", fast ? 50 : 200));
  const double move_frac = flags.get_double("move-frac", 0.01);
  const std::string json_path =
      artifact_path(flags, flags.get("json", "BENCH_churn.json"));
  const std::string trace_path = flags.get("trace-out", "");

  std::vector<std::size_t> sizes{100, 500, 1000, 2000};
  if (fast) sizes.resize(2);

  std::puts(
      "manetcast :: churn_maintenance — incremental engine vs full rebuild");
  std::printf("%-10s %6s %4s %10s %10s %8s %8s %8s\n", "model", "n", "d",
              "incr_ms", "rebuild_ms", "speedup", "links/t", "rows/t");

  std::vector<Record> records;
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    for (const std::size_t n : sizes) {
      for (const double degree : {6.0, 18.0}) {
        // The dense setting is only interesting at the paper's scale.
        if (degree == 18.0 && n > 500) continue;
        exp::ChurnConfig config;
        config.model = model;
        config.nodes = n;
        config.degree = degree;
        config.ticks = ticks;
        config.move_fraction = move_frac;
        config.seed = seed;
        // A fresh session per record: each row's metrics block covers
        // exactly one run. --trace-out is rewritten every record, so the
        // file ends up holding the last (largest) run's trace.
        obs::Session session;
        config.obs = &session;
        const exp::ChurnResult r = exp::run_churn(config);
        records.push_back(
            {config, r, session.registry.snapshot().to_json()});
        if (!trace_path.empty())
          session.trace.write_chrome_trace_file(trace_path);
        std::printf("%-10s %6zu %4g %10.4f %10.4f %7.1fx %8.2f %8.1f\n",
                    exp::model_name(model).c_str(), n, degree,
                    r.incremental_ms_per_tick, r.rebuild_ms_per_tick,
                    r.speedup, r.mean_link_changes, r.mean_rows_recomputed);
      }
    }
  }

  write_json(json_path, records);
  std::printf("records written to %s\n", json_path.c_str());
  if (!trace_path.empty())
    std::printf("chrome trace (last record) written to %s\n",
                trace_path.c_str());
  return 0;
}
