// Incremental vs full-rebuild maintenance cost under churn.
//
// Drives exp::run_churn over both mobility models (random waypoint and
// random direction) at n up to 2000 with ~1% of nodes moving per tick,
// and reports per-tick wall-clock of the incremental engine (src/incr)
// against the batch baseline (unit-disk graph + full LCC pass + full
// backbone rebuild). The acceptance gate for the engine is the waypoint
// n=2000, d=6 row: incremental must be >= 5x faster than the rebuild.
//
// Two extra sections ride on top of the matrix:
//  * --threads=<k> with k > 1 additionally runs a sharded-vs-sequential
//    comparison (waypoint, d=6, heavier churn) plus a pipelined
//    (depth-2) row, and cross-checks that all engines produced the same
//    final state hash;
//  * --scale (or --scale-fast) appends the 100k/300k/1M scaling sweep —
//    sparse cell index + streaming topology build + cell-major labels,
//    ascending sizes, no rebuild baseline, peak-RSS column — after a
//    verify stage that pins the sparse engine's state
//    hash at threads {1, 2, 8}, pipelined depth 2 at threads {2, 8},
//    against the dense sequential engine. Below 1M each size runs a
//    threads sweep {1, 2, 4} (threaded rows pipelined at depth 2) and
//    reports wall-clock speedup against the same-size threads=1 row.
//    The sweep feeds the O(n) memory audit in docs/PERFORMANCE.md and
//    the exit code gates the hash checks and the <= 1 KB/node RSS
//    budget of the largest row.
//
// Flags: --fast (fewer ticks, sizes capped at 500), --seed=<u64>,
//        --ticks=<k>, --move-frac=<f> (default 0.01),
//        --threads=<k> (default 1, engine lanes for every row),
//        --pipeline (tick pipelining depth 2 for every engine row),
//        --repeat=<k> (median-of-k scale rows; hashes must agree),
//        --scale / --scale-fast (scaling sweep; fast stops at 10k),
//        --json=<path> (default BENCH_churn.json under --out-dir,
//        default results/),
//        --scale-json=<path> (default BENCH_scale.json in the working
//        directory — intentionally NOT under results/, so the committed
//        top-level artifact tracks the perf trajectory across PRs),
//        --trace-out=<path> (Chrome-trace JSON of the last record's run;
//        open in Perfetto / chrome://tracing).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "exp/churn.hpp"
#include "obs/session.hpp"

namespace {

using namespace manet;

struct Record {
  exp::ChurnConfig config;
  exp::ChurnResult result;
  std::string metrics_json;  ///< obs registry snapshot of this run
  std::string section;       ///< "matrix" / "parallel" / "scale"
};

const char* grid_name(geom::GridIndex g) {
  switch (g) {
    case geom::GridIndex::kDense:
      return "dense";
    case geom::GridIndex::kSparse:
      return "sparse";
    default:
      return "auto";
  }
}

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& [c, r, metrics, section] = records[i];
    out << "  {\"section\": \"" << section << "\", \"model\": \""
        << exp::model_name(c.model) << "\", \"n\": " << c.nodes
        << ", \"degree\": " << c.degree
        << ", \"move_fraction\": " << c.move_fraction
        << ", \"threads\": " << c.threads
        << ", \"pipeline_depth\": " << c.pipeline_depth
        << ", \"ticks\": " << r.ticks
        << ", \"grid\": \"" << grid_name(c.grid) << "\""
        << ", \"streaming\": " << (c.streaming_build ? "true" : "false")
        << ", \"connected\": " << (r.connected ? "true" : "false")
        << ", \"connect_attempts_used\": " << r.connect_attempts_used
        << ", \"incremental_ms_per_tick\": " << r.incremental_ms_per_tick
        << ", \"wall_ms_per_tick\": " << r.wall_ms_per_tick
        << ", \"rebuild_ms_per_tick\": " << r.rebuild_ms_per_tick
        << ", \"speedup\": " << r.speedup
        << ", \"mean_link_changes\": " << r.mean_link_changes
        << ", \"mean_head_changes\": " << r.mean_head_changes
        << ", \"mean_backbone_changes\": " << r.mean_backbone_changes
        << ", \"mean_rows_recomputed\": " << r.mean_rows_recomputed
        << ", \"mean_heads_reselected\": " << r.mean_heads_reselected
        << ", \"mean_regions\": " << r.mean_regions
        << ", \"state_hash\": \"" << std::hex << r.state_hash << std::dec
        << "\", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"metrics\": " << metrics << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

/// One line of the committed top-level perf-trajectory artifact.
struct ScaleRow {
  std::size_t n = 0;
  std::size_t threads = 0;
  std::size_t pipeline_depth = 1;
  std::size_t ticks = 0;
  std::size_t repeat = 1;
  double incr_ms_per_tick = 0.0;
  double wall_ms_per_tick = 0.0;
  /// Wall-clock speedup against the same-size threads=1 row (1.0 for
  /// that row itself). Honest multi-core number: ~1x on a single
  /// hardware thread no matter how many lanes are configured.
  double wall_speedup_vs_1t = 0.0;
  std::size_t peak_rss_bytes = 0;
  std::uint64_t state_hash = 0;
};

void write_scale_json(const std::string& path, std::uint64_t seed,
                      const std::vector<ScaleRow>& rows, bool verify_ok,
                      bool rss_ok) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"churn_maintenance --scale\",\n"
      << "  \"workload\": \"waypoint d=6, 0.5% movers, sparse grid + "
         "streaming build + cell-major labels\",\n"
      << "  \"seed\": " << seed << ",\n"
      // Threaded rows only mean something relative to the physical
      // parallelism of the host that produced the artifact.
      << "  \"host_hw_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"verify_threads_1_2_8_pipelined_and_dense_ok\": "
      << (verify_ok ? "true" : "false") << ",\n"
      << "  \"rss_budget_1kb_per_node_ok\": " << (rss_ok ? "true" : "false")
      << ",\n  \"rows\": [\n";
  // A threaded row produced on a single-hardware-thread host measured
  // scheduling overhead, not parallel speedup — tag it so downstream
  // trajectory tooling never compares it against a real multi-core row.
  const bool throttled = std::thread::hardware_concurrency() <= 1;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    const double ticks_per_s =
        r.wall_ms_per_tick > 0.0 ? 1000.0 / r.wall_ms_per_tick : 0.0;
    out << "    {\"n\": " << r.n << ", \"threads\": " << r.threads
        << ", \"pipeline_depth\": " << r.pipeline_depth
        << ", \"ticks\": " << r.ticks << ", \"repeat\": " << r.repeat;
    if (throttled && r.threads > 1) out << ", \"throttled_host\": true";
    out
        << ", \"incremental_ms_per_tick\": " << r.incr_ms_per_tick
        << ", \"wall_ms_per_tick\": " << r.wall_ms_per_tick
        << ", \"wall_speedup_vs_1t\": " << r.wall_speedup_vs_1t
        << ", \"ticks_per_s\": " << ticks_per_s
        << ", \"peak_rss_bytes\": " << r.peak_rss_bytes
        << ", \"rss_bytes_per_node\": "
        << static_cast<double>(r.peak_rss_bytes) / static_cast<double>(r.n)
        << ", \"state_hash\": \"" << std::hex << r.state_hash << std::dec
        << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

exp::ChurnResult run_record(exp::ChurnConfig config,
                            std::vector<Record>& records,
                            const std::string& section,
                            const std::string& trace_path) {
  // A fresh session per record: each row's metrics block covers exactly
  // one run. --trace-out is rewritten every record, so the file ends up
  // holding the last run's trace.
  obs::Session session;
  config.obs = &session;
  const exp::ChurnResult r = exp::run_churn(config);
  records.push_back({config, r, session.registry.snapshot().to_json(),
                     section});
  if (!trace_path.empty()) session.trace.write_chrome_trace_file(trace_path);
  return r;
}

/// Median-of-k by wall clock: timings on a shared machine are noisy,
/// hashes are not — every repeat must land on the same state hash or
/// `stable` trips (and with it the bench's exit code). All repeats are
/// recorded; the caller publishes only the median row.
exp::ChurnResult run_repeated(const exp::ChurnConfig& config,
                              std::size_t repeat,
                              std::vector<Record>& records,
                              const std::string& section,
                              const std::string& trace_path, bool& stable) {
  std::vector<exp::ChurnResult> runs;
  runs.reserve(repeat);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, repeat); ++i) {
    runs.push_back(run_record(config, records, section, trace_path));
    stable = stable && runs.back().state_hash == runs.front().state_hash;
  }
  std::sort(runs.begin(), runs.end(),
            [](const exp::ChurnResult& a, const exp::ChurnResult& b) {
              return a.wall_ms_per_tick < b.wall_ms_per_tick;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool fast = flags.get_bool("fast");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2003));
  const auto ticks =
      static_cast<std::size_t>(flags.get_int("ticks", fast ? 50 : 200));
  const double move_frac = flags.get_double("move-frac", 0.01);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 1));
  const bool pipeline = flags.get_bool("pipeline");
  const std::size_t depth = pipeline ? 2 : 1;
  const auto repeat = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("repeat", 1)));
  const bool scale_fast = flags.get_bool("scale-fast");
  const bool scale = flags.get_bool("scale") || scale_fast;
  const std::string json_path =
      artifact_path(flags, flags.get("json", "BENCH_churn.json"));
  const std::string scale_json_path =
      flags.get("scale-json", "BENCH_scale.json");
  const std::string trace_path = flags.get("trace-out", "");

  std::vector<std::size_t> sizes{100, 500, 1000, 2000};
  if (fast) sizes.resize(2);

  std::puts(
      "manetcast :: churn_maintenance — incremental engine vs full rebuild");
  std::printf("%-10s %6s %4s %3s %10s %10s %8s %8s %8s %6s\n", "model", "n",
              "d", "thr", "incr_ms", "rebuild_ms", "speedup", "links/t",
              "rows/t", "reg/t");

  std::vector<Record> records;
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    for (const std::size_t n : sizes) {
      for (const double degree : {6.0, 18.0}) {
        // The dense setting is only interesting at the paper's scale.
        if (degree == 18.0 && n > 500) continue;
        exp::ChurnConfig config;
        config.model = model;
        config.nodes = n;
        config.degree = degree;
        config.ticks = ticks;
        config.move_fraction = move_frac;
        config.seed = seed;
        config.threads = threads;
        config.pipeline_depth = depth;
        const exp::ChurnResult r =
            run_record(config, records, "matrix", trace_path);
        std::printf(
            "%-10s %6zu %4g %3zu %10.4f %10.4f %7.1fx %8.2f %8.1f %6.1f\n",
            exp::model_name(model).c_str(), n, degree, threads,
            r.incremental_ms_per_tick, r.rebuild_ms_per_tick, r.speedup,
            r.mean_link_changes, r.mean_rows_recomputed, r.mean_regions);
      }
    }
  }

  bool determinism_ok = true;
  if (threads > 1) {
    // Sharded vs sequential head-to-head at the matrix's largest size.
    // Churn stays at the matrix's 1%: at 5% the staged nodes' painted
    // blocks chain into a single region almost every tick and the
    // sharded path never engages, making the comparison (and the
    // state-hash cross-check) vacuous.
    std::puts(
        "\nparallel repair — sequential vs sharded vs pipelined "
        "(waypoint, d=6)");
    std::printf("%6s %3s %5s %10s %10s %8s %6s  %s\n", "n", "thr", "depth",
                "incr_ms", "wall_ms", "speedup", "reg/t", "state_hash");
    exp::ChurnConfig config;
    config.model = exp::ChurnConfig::Model::kWaypoint;
    config.nodes = sizes.back();
    config.degree = 6.0;
    config.ticks = ticks;
    config.move_fraction = move_frac;
    config.seed = seed;
    config.rebuild_baseline = false;
    config.threads = 1;
    const exp::ChurnResult seq =
        run_record(config, records, "parallel", trace_path);
    config.threads = threads;
    const exp::ChurnResult par =
        run_record(config, records, "parallel", trace_path);
    config.pipeline_depth = 2;
    const exp::ChurnResult piped =
        run_record(config, records, "parallel", trace_path);
    const auto row = [&](std::size_t thr, std::size_t d,
                         const exp::ChurnResult& r) {
      const double wall_speedup = r.wall_ms_per_tick > 0.0
                                      ? seq.wall_ms_per_tick /
                                            r.wall_ms_per_tick
                                      : 0.0;
      std::printf("%6zu %3zu %5zu %10.4f %10.4f %7.2fx %6.1f  %016llx\n",
                  config.nodes, thr, d, r.incremental_ms_per_tick,
                  r.wall_ms_per_tick, wall_speedup, r.mean_regions,
                  static_cast<unsigned long long>(r.state_hash));
    };
    row(1, 1, seq);
    row(threads, 1, par);
    row(threads, 2, piped);
    determinism_ok = seq.state_hash == par.state_hash &&
                     seq.state_hash == piped.state_hash;
    std::printf("state hashes %s\n",
                determinism_ok ? "identical — sharded and pipelined runs "
                                 "are bitwise equivalent"
                               : "DIVERGED — parallel engine bug");
  }

  bool rss_ok = true;
  if (scale) {
    // 100k–1M scaling sweep, all rows on the million-node configuration:
    // sparse cell index, streaming topology build, cell-major node
    // labels, 0.5% movers, one-shot topology generation (connectivity is
    // hopeless at d=6 and these sizes). Ascending sizes so the monotone
    // peak-RSS counter reads as a per-size peak; no rebuild baseline
    // anywhere in the sweep (at 1M a second full backbone would double
    // the audited footprint, and everywhere it would skew the threaded
    // wall-clock comparison — see the sweep loop).
    std::vector<std::size_t> scale_sizes{100000, 300000, 1000000};
    if (scale_fast) scale_sizes = {10000};
    const std::size_t scale_ticks = scale_fast ? 10 : 30;
    const auto scale_config = [&](std::size_t n) {
      exp::ChurnConfig config;
      config.model = exp::ChurnConfig::Model::kWaypoint;
      config.nodes = n;
      config.degree = 6.0;
      config.ticks = scale_ticks;
      config.move_fraction = 0.005;
      config.seed = seed;
      config.threads = threads;
      config.connect_attempts = 1;
      config.rebuild_every = std::max<std::size_t>(1, scale_ticks / 3);
      config.grid = geom::GridIndex::kSparse;
      config.streaming_build = true;
      config.cell_order = true;
      return config;
    };

    // Verify stage at the sweep's smallest size: the sparse engine must
    // land on one state hash at threads {1, 2, 8}, and that hash must
    // match the dense sequential engine on the same workload — the
    // head-to-head that proves sparse index + streaming build + sharded
    // settling change nothing but footprint and speed. cell_order stays
    // off here: the relabeling permutation depends on the chosen grid's
    // lattice (dense clamping coarsens it), so cross-mode hash
    // comparisons need the original labels on both sides.
    const std::size_t vn = scale_sizes.front();
    std::printf(
        "\nscale verify — sparse engine at threads {1,2,8}, pipelined "
        "at {2,8}, vs dense sequential (waypoint, d=6, n=%zu)\n",
        vn);
    std::printf("%7s %6s %3s %5s %10s  %s\n", "n", "grid", "thr", "depth",
                "incr_ms", "state_hash");
    std::uint64_t verify_hash = 0;
    // (threads, pipeline_depth) pairs; the depth-2 entries prove that
    // overlapping tick t+1's commit with tick t's repair lands on the
    // bit-identical state the synchronous engine reaches (DESIGN S31).
    const std::pair<std::size_t, std::size_t> verify_configs[] = {
        {1, 1}, {2, 1}, {8, 1}, {2, 2}, {8, 2}};
    for (const auto& [t, d] : verify_configs) {
      exp::ChurnConfig config = scale_config(vn);
      config.threads = t;
      config.pipeline_depth = d;
      config.rebuild_baseline = false;
      config.cell_order = false;
      const exp::ChurnResult r =
          run_record(config, records, "scale-verify", trace_path);
      if (t == 1 && d == 1) verify_hash = r.state_hash;
      determinism_ok = determinism_ok && r.state_hash == verify_hash;
      std::printf("%7zu %6s %3zu %5zu %10.4f  %016llx\n", vn, "sparse", t, d,
                  r.incremental_ms_per_tick,
                  static_cast<unsigned long long>(r.state_hash));
    }
    {
      exp::ChurnConfig config = scale_config(vn);
      config.threads = 1;
      config.rebuild_baseline = false;
      config.cell_order = false;
      config.grid = geom::GridIndex::kDense;
      config.streaming_build = false;
      const exp::ChurnResult r =
          run_record(config, records, "scale-verify", trace_path);
      determinism_ok = determinism_ok && r.state_hash == verify_hash;
      std::printf("%7zu %6s %3d %5d %10.4f  %016llx\n", vn, "dense", 1, 1,
                  r.incremental_ms_per_tick,
                  static_cast<unsigned long long>(r.state_hash));
    }
    std::printf("scale verify %s\n",
                determinism_ok
                    ? "passed — one hash across threads, pipelining and "
                      "cell indexes"
                    : "FAILED — hashes diverged");

    std::puts("\nscaling sweep — waypoint, d=6, 0.5% movers, sparse+stream");
    std::printf("%8s %3s %5s %10s %10s %8s %6s %9s %9s  %s\n", "n", "thr",
                "depth", "incr_ms", "wall_ms", "wall_spd", "reg/t", "rss_mb",
                "rss_b/n", "state_hash");
    std::vector<ScaleRow> scale_rows;
    for (const std::size_t n : scale_sizes) {
      // Threads dimension: the threaded rows run pipelined at depth 2 so
      // wall_ms reflects the full overlap machinery. Every sweep row
      // drops the rebuild baseline — the rebuild-vs-incremental story
      // lives in the matrix section, and an O(n) rebuild interleaved
      // with only the threads=1 row would pollute its caches and fake a
      // multi-core speedup the threaded rows never earned. The 1M row
      // stays threads=1 — it is the memory-audit row, and RSS is
      // monotone per process, so a threaded rerun would contaminate the
      // reading.
      std::vector<std::size_t> thread_sweep{1, 2, 4};
      if (n >= 1000000) thread_sweep = {1};
      double wall_1t = 0.0;
      std::uint64_t row_hash = 0;
      for (const std::size_t t : thread_sweep) {
        exp::ChurnConfig config = scale_config(n);
        config.threads = t;
        config.rebuild_baseline = false;
        if (t > 1) config.pipeline_depth = 2;
        bool stable = true;
        const exp::ChurnResult r = run_repeated(config, repeat, records,
                                                "scale", trace_path, stable);
        determinism_ok = determinism_ok && stable;
        if (t == 1) {
          wall_1t = r.wall_ms_per_tick;
          row_hash = r.state_hash;
        } else {
          determinism_ok = determinism_ok && r.state_hash == row_hash;
        }
        const double wall_speedup =
            r.wall_ms_per_tick > 0.0 ? wall_1t / r.wall_ms_per_tick : 0.0;
        const double rss_per_node = static_cast<double>(r.peak_rss_bytes) /
                                    static_cast<double>(n);
        std::printf("%8zu %3zu %5zu %10.4f %10.4f %7.2fx %6.1f %9.1f "
                    "%9.0f  %016llx\n",
                    n, t, config.pipeline_depth, r.incremental_ms_per_tick,
                    r.wall_ms_per_tick, wall_speedup, r.mean_regions,
                    static_cast<double>(r.peak_rss_bytes) /
                        (1024.0 * 1024.0),
                    rss_per_node,
                    static_cast<unsigned long long>(r.state_hash));
        scale_rows.push_back({n, t, config.pipeline_depth, r.ticks, repeat,
                              r.incremental_ms_per_tick, r.wall_ms_per_tick,
                              wall_speedup, r.peak_rss_bytes, r.state_hash});
        // The memory-audit gate: the largest row must hold the O(n)
        // budget (RSS is monotone, so only the last reading is binding).
        if (n == scale_sizes.back() && t == 1 && n >= 1000000 &&
            rss_per_node > 1024.0)
          rss_ok = false;
      }
    }
    write_scale_json(scale_json_path, seed, scale_rows, determinism_ok,
                     rss_ok);
    std::printf("scale summary written to %s\n", scale_json_path.c_str());
    if (std::thread::hardware_concurrency() <= 1)
      std::puts(
          "\n*** WARNING: this host exposes a single hardware thread — the "
          "threaded sweep rows measured scheduler overhead, not parallel "
          "speedup. They are tagged \"throttled_host\" in the JSON; do not "
          "read their wall_speedup_vs_1t as engine performance. ***");
    if (!rss_ok)
      std::printf("RSS budget EXCEEDED: largest row above 1 KB/node\n");
  }

  write_json(json_path, records);
  std::printf("records written to %s\n", json_path.c_str());
  if (!trace_path.empty())
    std::printf("chrome trace (last record) written to %s\n",
                trace_path.c_str());
  return determinism_ok && rss_ok ? 0 : 1;
}
