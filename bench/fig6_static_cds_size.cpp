// Regenerates Figure 6 — average CDS size of the static backbone
// (2.5-hop and 3-hop coverage) vs MO_CDS, for d = 6 and d = 18,
// n = 20..100. The paper's observations to check against:
//   * both algorithms produce similar CDS sizes;
//   * the static backbone is (insignificantly) better than MO_CDS;
//   * 2.5-hop vs 3-hop differ by less than ~2%.
//
// Flags: --fast (reduced replication caps), --seed=<u64>,
//        --csv=<path> (defaults to fig6.csv under --out-dir, default results/),
//        --threads=<k> (parallel replications; 0 = hardware threads).
#include <cstdio>
#include <string>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  const manet::Flags flags(argc, argv);
  manet::exp::PaperScenario scenario;
  auto policy = manet::exp::bench_policy(
      static_cast<std::size_t>(flags.get_int("threads", 1)));
  if (flags.get_bool("fast")) {
    policy.min_replications = 10;
    policy.max_replications = 60;
  }
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20030422));

  std::puts("manetcast :: Figure 6 — average size of the generated CDS");
  std::puts("(static backbone vs MO_CDS; 99% CI half-widths shown; '*' = "
            "replication cap hit)\n");
  const auto rows = manet::exp::run_fig6(scenario, policy, seed);
  std::fputs(manet::exp::render_fig6(rows).c_str(), stdout);

  const auto csv =
      manet::artifact_path(flags, flags.get("csv", "fig6.csv"));
  manet::exp::write_fig6_csv(rows, csv);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
