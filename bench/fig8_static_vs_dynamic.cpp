// Regenerates Figure 8 — average forward-node-set sizes of the static
// vs the dynamic backbone, for d = 6 and 18, n = 20..100. Paper's
// observations: broadcasting in the dynamic backbone has less redundancy
// than in the static backbone, and the 2.5-hop / 3-hop difference is
// very small.
//
// Flags: --fast, --seed=<u64>, --csv=<path> (under --out-dir, default
// results/),
//        --threads=<k> (parallel replications; 0 = hardware threads).
#include <cstdio>
#include <string>

#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"

int main(int argc, char** argv) {
  const manet::Flags flags(argc, argv);
  manet::exp::PaperScenario scenario;
  auto policy = manet::exp::bench_policy(
      static_cast<std::size_t>(flags.get_int("threads", 1)));
  if (flags.get_bool("fast")) {
    policy.min_replications = 10;
    policy.max_replications = 60;
  }
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20030424));

  std::puts("manetcast :: Figure 8 — forward node sets, static vs dynamic");
  std::puts("(99% CI half-widths shown; '*' = replication cap hit)\n");
  const auto rows = manet::exp::run_fig8(scenario, policy, seed);
  std::fputs(manet::exp::render_fig8(rows).c_str(), stdout);

  const auto csv =
      manet::artifact_path(flags, flags.get("csv", "fig8.csv"));
  manet::exp::write_fig8_csv(rows, csv);
  std::printf("series written to %s\n", csv.c_str());
  return 0;
}
