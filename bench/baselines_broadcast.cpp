// Extension bench — the full broadcast-protocol zoo on one table:
// blind flooding, MPR, DP, PDP, broadcasting over the static SI-CDS, and
// the paper's dynamic SD-CDS. All protocols see identical topologies and
// sources, so the columns are directly comparable (the paper's §2
// taxonomy, quantified).
//
// Flags: --seed=<u64>, --reps=<int>,
//        --json=<path> (protocol metric totals from the obs registry,
//        default BENCH_broadcast_metrics.json under --out-dir).
#include <cstdio>

#include "broadcast/dominant_pruning.hpp"
#include "broadcast/flooding.hpp"
#include "broadcast/forwarding_tree.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/si_cds.hpp"
#include "broadcast/suppression.hpp"
#include "common/artifacts.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 65));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 40));

  std::puts("manetcast :: broadcast baselines — mean forward-node count");
  std::puts("(identical topologies and sources per row; SI/SD use the "
            "2.5-hop coverage set)\n");

  const exp::PaperScenario scenario;
  TextTable table({"n", "d", "flood", "backoff", "piggyback", "MPR", "DP",
                   "PDP", "tree", "SI static", "SD dynamic"});
  for (double d : {6.0, 18.0}) {
    for (std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
      stats::RunningStats flood_s, backoff_s, piggy_s, mpr_s, dp_s, pdp_s,
          tree_s, si_s, sd_s;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto net = exp::make_network(scenario, {n, d}, seed, rep);
        Rng pick(derive_seed(seed, rep, 97));
        const auto source =
            static_cast<NodeId>(pick.index(net.graph.order()));
        const auto c = cluster::lowest_id_clustering(net.graph);
        const auto st = core::build_static_backbone(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);
        const auto bb = core::build_dynamic_backbone(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);

        flood_s.add(static_cast<double>(
            broadcast::flood(net.graph, source).forward_count()));
        Rng sup_rng(derive_seed(seed, rep, 94));
        broadcast::SuppressionOptions sup;
        backoff_s.add(static_cast<double>(
            broadcast::suppression_flood(net.graph, source, sup, sup_rng)
                .forward_count()));
        sup.piggyback_neighbors = true;
        piggy_s.add(static_cast<double>(
            broadcast::suppression_flood(net.graph, source, sup, sup_rng)
                .forward_count()));
        const auto tables = core::build_neighbor_tables(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);
        const auto tree = broadcast::build_forwarding_tree(net.graph, c,
                                                           tables, source);
        tree_s.add(static_cast<double>(
            broadcast::forwarding_tree_broadcast(net.graph, tree, source)
                .forward_count()));
        mpr_s.add(static_cast<double>(
            broadcast::mpr_broadcast(net.graph, source).forward_count()));
        dp_s.add(static_cast<double>(
            broadcast::dominant_pruning_broadcast(
                net.graph, source, broadcast::PruningRule::kDominant)
                .forward_count()));
        pdp_s.add(static_cast<double>(
            broadcast::dominant_pruning_broadcast(
                net.graph, source, broadcast::PruningRule::kPartialDominant)
                .forward_count()));
        si_s.add(static_cast<double>(
            broadcast::si_cds_broadcast(net.graph, st.cds, source)
                .forward_count()));
        sd_s.add(static_cast<double>(
            core::dynamic_broadcast(net.graph, bb, source)
                .forward_count()));
      }
      table.row({std::to_string(n), TextTable::num(d, 0),
                 TextTable::num(flood_s.mean(), 1),
                 TextTable::num(backoff_s.mean(), 1),
                 TextTable::num(piggy_s.mean(), 1),
                 TextTable::num(mpr_s.mean(), 1),
                 TextTable::num(dp_s.mean(), 1),
                 TextTable::num(pdp_s.mean(), 1),
                 TextTable::num(tree_s.mean(), 1),
                 TextTable::num(si_s.mean(), 1),
                 TextTable::num(sd_s.mean(), 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: flood = n; every pruned protocol well below it; "
            "SD dynamic below SI static.");
  if (obs::kEnabled) {
    // Every protocol run above recorded its broadcast.* counters and the
    // shared forward-set/delivery/latency histograms ambiently.
    const std::string metrics_path = artifact_path(
        flags, flags.get("json", "BENCH_broadcast_metrics.json"));
    obs::global_registry().snapshot().write_json_file(metrics_path);
    std::printf("obs metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
