// Google-benchmark microbenchmarks of the core kernels: clustering,
// neighbor tables, coverage, gateway selection, full static-backbone
// construction, one dynamic broadcast, and the distributed protocol run.
// These put numbers on the "linear time" analysis of §4.
#include <benchmark/benchmark.h>

#include "broadcast/si_cds.hpp"
#include "cluster/lowest_id.hpp"
#include "common/rng.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "net/protocol.hpp"

namespace {

using namespace manet;

geom::UnitDiskNetwork benchmark_network(std::size_t n, double d) {
  Rng rng(derive_seed(4242, n, static_cast<std::uint64_t>(d)));
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  auto net = geom::generate_connected_unit_disk(cfg, rng);
  if (!net) throw std::runtime_error("no connected topology");
  return std::move(*net);
}

void BM_LowestIdClustering(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(cluster::lowest_id_clustering(net.graph));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LowestIdClustering)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_NeighborTables(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  const auto c = cluster::lowest_id_clustering(net.graph);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::build_neighbor_tables(
        net.graph, c, core::CoverageMode::kTwoPointFiveHop));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NeighborTables)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_StaticBackbone(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::build_static_backbone(
        net.graph, core::CoverageMode::kTwoPointFiveHop));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StaticBackbone)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_MoCds(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::build_mo_cds(net.graph));
}
BENCHMARK(BM_MoCds)->Arg(128)->Arg(256);

void BM_DynamicBroadcast(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  const auto bb = core::build_dynamic_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::dynamic_broadcast(net.graph, bb, 0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DynamicBroadcast)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity();

void BM_SiCdsBroadcast(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  const auto st = core::build_static_backbone(
      net.graph, core::CoverageMode::kTwoPointFiveHop);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        broadcast::si_cds_broadcast(net.graph, st.cds, 0));
}
BENCHMARK(BM_SiCdsBroadcast)->Arg(128)->Arg(512);

void BM_DistributedProtocol(benchmark::State& state) {
  const auto net = benchmark_network(
      static_cast<std::size_t>(state.range(0)), 12.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(net::run_distributed_backbone(
        net.graph, core::CoverageMode::kTwoPointFiveHop));
}
BENCHMARK(BM_DistributedProtocol)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
