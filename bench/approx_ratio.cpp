// Empirical approximation ratios against the true minimum CDS.
//
// The paper (and [1], [14]) prove a *constant* approximation ratio for
// the cluster-based backbones. The exact branch-and-bound solver is only
// tractable on small instances, so this bench reports, for n = 12..20,
// the mean ratio |CDS| / |MCDS| of the static backbone (both modes),
// MO_CDS and the greedy Guha–Khuller CDS.
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "mcds/bounds.hpp"
#include "mcds/exact.hpp"
#include "mcds/greedy.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 64));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 20));

  std::puts("manetcast :: approximation ratios vs exact MCDS");
  std::puts("(small instances; ratio = |CDS| / |MCDS|, mean over random "
            "connected unit-disk graphs, d = 6)\n");

  const exp::PaperScenario scenario;
  TextTable table({"n", "MCDS", "static 2.5", "static 3", "MO_CDS",
                   "greedy GK"});
  for (std::size_t n : {12u, 14u, 16u, 18u, 20u}) {
    stats::RunningStats opt, r25, r3, rmo, rgk;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto net = exp::make_network(scenario, {n, 6.0}, seed, rep);
      const auto mcds =
          static_cast<double>(mcds::exact_mcds(net.graph).size());
      opt.add(mcds);
      r25.add(static_cast<double>(
                  core::build_static_backbone(
                      net.graph, core::CoverageMode::kTwoPointFiveHop)
                      .cds.size()) /
              mcds);
      r3.add(static_cast<double>(
                 core::build_static_backbone(net.graph,
                                             core::CoverageMode::kThreeHop)
                     .cds.size()) /
             mcds);
      rmo.add(static_cast<double>(core::build_mo_cds(net.graph).cds.size()) /
              mcds);
      rgk.add(static_cast<double>(mcds::greedy_cds(net.graph).size()) /
              mcds);
    }
    table.row({std::to_string(n), TextTable::num(opt.mean(), 2),
               TextTable::num(r25.mean(), 2), TextTable::num(r3.mean(), 2),
               TextTable::num(rmo.mean(), 2),
               TextTable::num(rgk.mean(), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: ratios stay bounded (constant-factor claim) and "
            "do not grow with n.\n");

  // Paper scale: the exact solver is out of reach, so certify against
  // the sound lower bound max(ceil(n/(Δ+1)), diam-1). These ratios
  // over-estimate the true ones but still bound them from above.
  std::puts("ratio vs MCDS *lower bound* at paper scale (d = 6):");
  TextTable big({"n", "lower bound", "static 2.5 /lb", "MO_CDS /lb",
                 "greedy GK /lb"});
  for (std::size_t n : {40u, 60u, 80u, 100u}) {
    stats::RunningStats lb, r25, rmo, rgk;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto net = exp::make_network(scenario, {n, 6.0}, seed, rep);
      const auto bound =
          static_cast<double>(mcds::mcds_lower_bound(net.graph));
      lb.add(bound);
      r25.add(static_cast<double>(
                  core::build_static_backbone(
                      net.graph, core::CoverageMode::kTwoPointFiveHop)
                      .cds.size()) /
              bound);
      rmo.add(static_cast<double>(core::build_mo_cds(net.graph).cds.size()) /
              bound);
      rgk.add(static_cast<double>(mcds::greedy_cds(net.graph).size()) /
              bound);
    }
    big.row({std::to_string(n), TextTable::num(lb.mean(), 2),
             TextTable::num(r25.mean(), 2), TextTable::num(rmo.mean(), 2),
             TextTable::num(rgk.mean(), 2)});
  }
  std::fputs(big.render().c_str(), stdout);
  return 0;
}
