// Ablation — what does each pruning rule of the dynamic broadcast buy?
//
// The SD-CDS broadcast has two pruning ingredients (paper §3): the
// piggybacked upstream coverage set (C(v) − C(u) − {u}) and the relay
// exclusion (− N(r)). This bench measures the mean forward-node count
// with each combination, from 'none' (every head covers its full
// coverage set) to 'both' (the paper's algorithm). The row computation
// lives in exp::run_pruning_ablation (unit-tested).
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "exp/ablations.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 62));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 50));

  std::puts("manetcast :: ablation — SD-CDS pruning rules");
  std::puts("(mean forward-node count per broadcast; 2.5-hop coverage)\n");

  const auto rows = exp::run_pruning_ablation(
      {20, 40, 60, 80, 100}, {6.0, 18.0}, reps, seed);

  TextTable table({"n", "d", "none", "piggyback", "relay", "both"});
  for (const auto& r : rows) {
    if (!r.all_delivered) {
      std::fprintf(stderr, "delivery failure at n=%zu d=%g!\n", r.nodes,
                   r.degree);
      return 1;
    }
    table.row({std::to_string(r.nodes), TextTable::num(r.degree, 0),
               TextTable::num(r.forward_none, 2),
               TextTable::num(r.forward_piggyback, 2),
               TextTable::num(r.forward_relay, 2),
               TextTable::num(r.forward_both, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: none >= piggyback/relay >= both; delivery stays "
            "100% in all variants.");
  return 0;
}
