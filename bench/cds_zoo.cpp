// Extension bench — every SI-CDS construction in the repository on one
// table: the paper's static backbone (both coverage modes), MO_CDS, the
// Wu–Li marking process (raw, Rule 1, Rules 1+2), the greedy
// Guha–Khuller CDS, and the Pagani–Rossi forwarding tree (per-source;
// averaged over random roots). Smaller is better; all are verified CDSs.
//
// Flags: --seed=<u64>, --reps=<int>.
#include <cstdio>

#include "broadcast/forwarding_tree.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"
#include "exp/scenario.hpp"
#include "mcds/greedy.hpp"
#include "mcds/wu_li.hpp"
#include "stats/running.hpp"

using namespace manet;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 67));
  const auto reps = static_cast<std::size_t>(flags.get_int("reps", 40));

  std::puts("manetcast :: CDS constructions — average backbone size");
  std::puts("(same topologies per row; 'tree' is the per-source forwarding "
            "tree, averaged over a random root)\n");

  const exp::PaperScenario scenario;
  TextTable table({"n", "d", "static 2.5", "static 3", "MO_CDS",
                   "WuLi marked", "WuLi R1", "WuLi R1+R2", "greedy GK",
                   "tree"});
  for (double d : {6.0, 18.0}) {
    for (std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
      stats::RunningStats s25, s3, mo, marked, r1, r12, gk, tree;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto net = exp::make_network(scenario, {n, d}, seed, rep);
        const auto c = cluster::lowest_id_clustering(net.graph);
        s25.add(static_cast<double>(
            core::build_static_backbone(net.graph, c,
                                        core::CoverageMode::kTwoPointFiveHop)
                .cds.size()));
        s3.add(static_cast<double>(
            core::build_static_backbone(net.graph, c,
                                        core::CoverageMode::kThreeHop)
                .cds.size()));
        mo.add(static_cast<double>(
            core::build_mo_cds(net.graph, c).cds.size()));
        marked.add(static_cast<double>(
            mcds::wu_li_cds(net.graph, {false, false}).size()));
        r1.add(static_cast<double>(
            mcds::wu_li_cds(net.graph, {true, false}).size()));
        r12.add(static_cast<double>(mcds::wu_li_cds(net.graph).size()));
        gk.add(static_cast<double>(mcds::greedy_cds(net.graph).size()));
        const auto tables = core::build_neighbor_tables(
            net.graph, c, core::CoverageMode::kTwoPointFiveHop);
        Rng pick(derive_seed(seed, rep, 96));
        const auto source =
            static_cast<NodeId>(pick.index(net.graph.order()));
        tree.add(static_cast<double>(
            broadcast::build_forwarding_tree(net.graph, c, tables, source)
                .members.size()));
      }
      table.row({std::to_string(n), TextTable::num(d, 0),
                 TextTable::num(s25.mean(), 1), TextTable::num(s3.mean(), 1),
                 TextTable::num(mo.mean(), 1),
                 TextTable::num(marked.mean(), 1),
                 TextTable::num(r1.mean(), 1), TextTable::num(r12.mean(), 1),
                 TextTable::num(gk.mean(), 1),
                 TextTable::num(tree.mean(), 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nExpected: Wu–Li marking alone is large and the rules shrink "
            "it; greedy GK is the smallest; cluster backbones sit between.");
  return 0;
}
