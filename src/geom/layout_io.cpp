#include "geom/layout_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace manet::geom {

void write_positions(std::ostream& out,
                     const std::vector<Point>& positions) {
  out << positions.size() << '\n';
  for (const auto& p : positions) out << p.x << ' ' << p.y << '\n';
}

std::vector<Point> read_positions(std::istream& in) {
  std::size_t count = 0;
  if (!(in >> count))
    throw std::invalid_argument("positions: missing count header");
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point p;
    if (!(in >> p.x >> p.y))
      throw std::invalid_argument("positions: truncated input");
    out.push_back(p);
  }
  return out;
}

}  // namespace manet::geom
