// Uniform spatial hashing grid for range queries over node positions.
//
// Unit-disk topology construction only needs pairs closer than the
// transmission range r. Bucketing nodes into square cells of side r means
// every such pair sits in the same or an adjacent cell, so the O(n^2)
// pair scan collapses to an expected O(n * d) sweep over 3x3 cell
// neighborhoods (d = average degree). The grid is rebuilt from scratch
// per topology — construction is a two-pass counting sort, O(n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "geom/point.hpp"

namespace manet::geom {

/// A uniform cell grid over the bounding box of a point set. Cells are
/// squares of side >= cell_size; the grid dimensions are clamped so the
/// cell array stays O(n) even for a tiny cell_size over a huge area.
class SpatialGrid {
 public:
  /// Buckets `positions` (indexed by NodeId) into cells of side at least
  /// `cell_size` (> 0). The point vector must outlive nothing — the grid
  /// copies nothing and stores only ids.
  SpatialGrid(const std::vector<Point>& positions, double cell_size);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }

  /// Column of `p` (clamped to the grid, so out-of-box points land on the
  /// border cells).
  std::size_t col_of(const Point& p) const;
  /// Row of `p` (clamped likewise).
  std::size_t row_of(const Point& p) const;

  /// Node ids bucketed in cell (col, row), in increasing id order.
  std::span<const NodeId> cell(std::size_t col, std::size_t row) const;

  /// Calls `fn(NodeId)` for every node in the 3x3 cell block around
  /// (col, row) — the candidate set for a range query of radius
  /// <= cell_size anchored in that cell.
  template <typename Fn>
  void for_each_in_block(std::size_t col, std::size_t row, Fn&& fn) const {
    const std::size_t c0 = col > 0 ? col - 1 : 0;
    const std::size_t c1 = col + 1 < cols_ ? col + 1 : cols_ - 1;
    const std::size_t r0 = row > 0 ? row - 1 : 0;
    const std::size_t r1 = row + 1 < rows_ ? row + 1 : rows_ - 1;
    for (std::size_t r = r0; r <= r1; ++r)
      for (std::size_t c = c0; c <= c1; ++c)
        for (NodeId v : cell(c, r)) fn(v);
  }

  /// All bucketed node ids in cell-sweep order (row-major cells, ids
  /// ascending within a cell). Slot k of this span corresponds to slot k
  /// of slot_x()/slot_y().
  std::span<const NodeId> slots() const { return ids_; }

  /// Cell-ordered copies of the point coordinates: slot_x()[k] is the x
  /// coordinate of node slots()[k]. Keeping these contiguous per cell
  /// block turns neighborhood scans into linear sweeps.
  std::span<const double> slot_x() const { return xs_; }
  std::span<const double> slot_y() const { return ys_; }

  /// First slot index of cell (col, row).
  std::size_t cell_begin(std::size_t col, std::size_t row) const {
    return offsets_[row * cols_ + col];
  }
  /// One-past-last slot index of cell (col, row).
  std::size_t cell_end(std::size_t col, std::size_t row) const {
    return offsets_[row * cols_ + col + 1];
  }

 private:
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double inv_cell_x_ = 0.0;  // cols / width  (0 when width is 0)
  double inv_cell_y_ = 0.0;  // rows / height (0 when height is 0)
  std::vector<std::size_t> offsets_;  // size cols*rows + 1 (CSR layout)
  std::vector<NodeId> ids_;           // node ids grouped by cell
  std::vector<double> xs_;            // coordinates in slot order
  std::vector<double> ys_;
};

}  // namespace manet::geom
