// Uniform spatial hashing grid for range queries over node positions.
//
// Unit-disk topology construction only needs pairs closer than the
// transmission range r. Bucketing nodes into square cells of side r means
// every such pair sits in the same or an adjacent cell, so the O(n^2)
// pair scan collapses to an expected O(n * d) sweep over 3x3 cell
// neighborhoods (d = average degree). The grid is rebuilt from scratch
// per topology — construction is a two-pass counting sort (dense index)
// or a key sort over occupied cells (sparse index), O(n) / O(n log n).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "geom/point.hpp"

namespace manet::geom {

/// How the grid stores its cells.
///
///  * kDense  — a CSR offset per lattice cell, O(cols * rows) memory;
///    the lattice is clamped to O(n) cells, which can coarsen cells (and
///    so widen candidate sets) for tiny cell sizes over huge areas.
///  * kSparse — CSR offsets over *occupied* cells only, keyed by the
///    row-major cell index, O(n) memory at full lattice resolution no
///    matter how large the field or how small the cell.
///  * kAuto   — dense while the unclamped lattice fits the dense cap
///    (identical to the historical grid), sparse beyond it.
///
/// Both index modes bucket identically (same cell geometry up to the
/// dense clamp, ids ascending within a cell, row-major cell order), so
/// every consumer sees the same candidate sets in the same order.
enum class GridIndex { kAuto, kDense, kSparse };

/// A uniform cell grid over the bounding box of a point set. Cells are
/// squares of side >= cell_size.
class SpatialGrid {
 public:
  /// Buckets `positions` (indexed by NodeId) into cells of side at least
  /// `cell_size` (> 0). The point vector must outlive nothing — the grid
  /// copies nothing and stores only ids.
  SpatialGrid(const std::vector<Point>& positions, double cell_size,
              GridIndex index = GridIndex::kAuto);

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }

  /// True when the grid resolved to the sparse occupied-cell index.
  bool sparse() const { return sparse_; }

  /// Number of cells holding at least one node.
  std::size_t occupied_cells() const;

  /// Column of `p` (clamped to the grid, so out-of-box points land on the
  /// border cells).
  std::size_t col_of(const Point& p) const;
  /// Row of `p` (clamped likewise).
  std::size_t row_of(const Point& p) const;

  /// Node ids bucketed in cell (col, row), in increasing id order.
  std::span<const NodeId> cell(std::size_t col, std::size_t row) const;

  /// Calls `fn(NodeId)` for every node in the 3x3 cell block around
  /// (col, row) — the candidate set for a range query of radius
  /// <= cell_size anchored in that cell.
  template <typename Fn>
  void for_each_in_block(std::size_t col, std::size_t row, Fn&& fn) const {
    const std::size_t c0 = col > 0 ? col - 1 : 0;
    const std::size_t c1 = col + 1 < cols_ ? col + 1 : cols_ - 1;
    const std::size_t r0 = row > 0 ? row - 1 : 0;
    const std::size_t r1 = row + 1 < rows_ ? row + 1 : rows_ - 1;
    for (std::size_t r = r0; r <= r1; ++r)
      for (std::size_t c = c0; c <= c1; ++c)
        for (NodeId v : cell(c, r)) fn(v);
  }

  /// Calls `fn(col, row, slot_begin, slot_end)` for every *occupied*
  /// cell in row-major order — the sweep unit_disk_graph iterates, and
  /// the only full-grid traversal the sparse index supports (iterating
  /// the whole lattice would be O(cols * rows)).
  template <typename Fn>
  void for_each_occupied(Fn&& fn) const {
    if (sparse_) {
      for (std::size_t i = 0; i < keys_.size(); ++i)
        fn(static_cast<std::size_t>(keys_[i] % cols_),
           static_cast<std::size_t>(keys_[i] / cols_), offsets_[i],
           offsets_[i + 1]);
      return;
    }
    for (std::size_t cell_idx = 0; cell_idx + 1 < offsets_.size(); ++cell_idx)
      if (offsets_[cell_idx] != offsets_[cell_idx + 1])
        fn(cell_idx % cols_, cell_idx / cols_, offsets_[cell_idx],
           offsets_[cell_idx + 1]);
  }

  /// All bucketed node ids in cell-sweep order (row-major cells, ids
  /// ascending within a cell). Slot k of this span corresponds to slot k
  /// of slot_x()/slot_y().
  std::span<const NodeId> slots() const { return ids_; }

  /// Cell-ordered copies of the point coordinates: slot_x()[k] is the x
  /// coordinate of node slots()[k]. Keeping these contiguous per cell
  /// block turns neighborhood scans into linear sweeps.
  std::span<const double> slot_x() const { return xs_; }
  std::span<const double> slot_y() const { return ys_; }

  /// First slot index of cell (col, row). In sparse mode an empty cell
  /// resolves to the slot where its content would sit, so contiguous
  /// cell ranges still map to contiguous slot spans.
  std::size_t cell_begin(std::size_t col, std::size_t row) const;
  /// One-past-last slot index of cell (col, row).
  std::size_t cell_end(std::size_t col, std::size_t row) const;

 private:
  std::uint64_t key_of(const Point& p) const;

  bool sparse_ = false;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double inv_cell_x_ = 0.0;  // cols / width  (0 when width is 0)
  double inv_cell_y_ = 0.0;  // rows / height (0 when height is 0)
  /// Dense: CSR over all cols*rows cells (size cols*rows + 1).
  /// Sparse: CSR over keys_ (size keys_.size() + 1).
  std::vector<std::size_t> offsets_;
  std::vector<std::uint64_t> keys_;   // sparse only: sorted occupied cells
  std::vector<NodeId> ids_;           // node ids grouped by cell
  std::vector<double> xs_;            // coordinates in slot order
  std::vector<double> ys_;
};

}  // namespace manet::geom
