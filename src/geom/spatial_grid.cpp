#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace manet::geom {
namespace {

// Per-dimension bound for the sparse index. Keys are row * cols + col in
// a uint64, so dims up to 2^25 keep keys below 2^50 with no overflow.
// Capping only grows the cell side, which widens candidate sets but never
// loses an in-range pair.
constexpr std::size_t kMaxSparseDim = std::size_t{1} << 25;

std::size_t clamp_index(double v, std::size_t bound) {
  if (!(v > 0.0)) return 0;  // also catches NaN
  const auto idx = static_cast<std::size_t>(v);
  return idx < bound ? idx : bound - 1;
}

// floor(extent / cell_size) with the double clamped before the integer
// cast (extent / cell_size can exceed the size_t range for degenerate
// huge-area / tiny-cell inputs, where the cast would be undefined).
std::size_t dim_for(double extent, double cell_size, std::size_t max_dim) {
  const double cells = extent / cell_size;
  if (!(cells > 1.0)) return 1;
  if (cells >= static_cast<double>(max_dim)) return max_dim;
  return std::max<std::size_t>(1, static_cast<std::size_t>(cells));
}

}  // namespace

SpatialGrid::SpatialGrid(const std::vector<Point>& positions, double cell_size,
                         GridIndex index) {
  MANET_REQUIRE(cell_size > 0.0, "cell size must be positive");
  const std::size_t n = positions.size();
  sparse_ = index == GridIndex::kSparse;
  offsets_.assign(sparse_ ? 1 : 2, 0);  // 1x1-grid placeholder when empty
  if (n == 0) return;

  double max_x = positions[0].x, max_y = positions[0].y;
  min_x_ = positions[0].x;
  min_y_ = positions[0].y;
  for (const Point& p : positions) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double width = max_x - min_x_;
  const double height = max_y - min_y_;

  // floor(extent / cell_size) keeps the actual cell side >= cell_size, so
  // any pair within cell_size is confined to a 3x3 cell block.
  cols_ = dim_for(width, cell_size, kMaxSparseDim);
  rows_ = dim_for(height, cell_size, kMaxSparseDim);

  // The dense index clamps the cell array to O(n): growing cells only
  // widens the candidate set, never loses a pair, so correctness is
  // preserved. kAuto stays dense (bit-compatible with the historical
  // grid) while the unclamped lattice fits that cap, and switches to the
  // sparse occupied-cell index beyond it, keeping full resolution.
  const std::size_t cell_cap = std::max<std::size_t>(64, 4 * n);
  if (index == GridIndex::kAuto && cols_ * rows_ > cell_cap) sparse_ = true;
  if (!sparse_) {
    while (cols_ * rows_ > cell_cap) {
      if (cols_ >= rows_)
        cols_ = (cols_ + 1) / 2;
      else
        rows_ = (rows_ + 1) / 2;
    }
  }

  inv_cell_x_ = width > 0.0 ? static_cast<double>(cols_) / width : 0.0;
  inv_cell_y_ = height > 0.0 ? static_cast<double>(rows_) / height : 0.0;

  // Two-pass counting sort of node ids into cells; scanning ids in order
  // leaves each cell's id list sorted. The sparse index first compacts
  // the occupied cell keys and counts into their rank instead of the raw
  // lattice index — everything downstream is identical.
  std::vector<std::uint64_t> key_of_node(n);
  for (std::size_t i = 0; i < n; ++i) key_of_node[i] = key_of(positions[i]);
  if (sparse_) {
    keys_ = key_of_node;
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
    offsets_.assign(keys_.size() + 1, 0);
  } else {
    offsets_.assign(cols_ * rows_ + 1, 0);
  }
  std::vector<std::size_t> cell_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c =
        sparse_ ? static_cast<std::size_t>(
                      std::lower_bound(keys_.begin(), keys_.end(),
                                       key_of_node[i]) -
                      keys_.begin())
                : static_cast<std::size_t>(key_of_node[i]);
    cell_of[i] = c;
    ++offsets_[c + 1];
  }
  for (std::size_t c = 1; c < offsets_.size(); ++c)
    offsets_[c] += offsets_[c - 1];
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = cursor[cell_of[i]]++;
    ids_[slot] = static_cast<NodeId>(i);
    xs_[slot] = positions[i].x;
    ys_[slot] = positions[i].y;
  }
}

std::size_t SpatialGrid::occupied_cells() const {
  if (sparse_) return keys_.size();
  std::size_t count = 0;
  for (std::size_t c = 0; c + 1 < offsets_.size(); ++c)
    if (offsets_[c] != offsets_[c + 1]) ++count;
  return count;
}

std::size_t SpatialGrid::col_of(const Point& p) const {
  return clamp_index((p.x - min_x_) * inv_cell_x_, cols_);
}

std::size_t SpatialGrid::row_of(const Point& p) const {
  return clamp_index((p.y - min_y_) * inv_cell_y_, rows_);
}

std::uint64_t SpatialGrid::key_of(const Point& p) const {
  return static_cast<std::uint64_t>(row_of(p)) * cols_ + col_of(p);
}

std::span<const NodeId> SpatialGrid::cell(std::size_t col,
                                          std::size_t row) const {
  MANET_REQUIRE(col < cols_ && row < rows_, "cell index out of range");
  const std::size_t b = cell_begin(col, row);
  return {ids_.data() + b, cell_end(col, row) - b};
}

std::size_t SpatialGrid::cell_begin(std::size_t col, std::size_t row) const {
  const std::uint64_t key = static_cast<std::uint64_t>(row) * cols_ + col;
  if (!sparse_) return offsets_[static_cast<std::size_t>(key)];
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  return offsets_[static_cast<std::size_t>(it - keys_.begin())];
}

std::size_t SpatialGrid::cell_end(std::size_t col, std::size_t row) const {
  const std::uint64_t key = static_cast<std::uint64_t>(row) * cols_ + col;
  if (!sparse_) return offsets_[static_cast<std::size_t>(key) + 1];
  // lower_bound on key+1: lands one past this cell's slot span whether or
  // not the cell is occupied, so empty cells yield empty spans and
  // contiguous cell ranges yield contiguous slot spans.
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key + 1);
  return offsets_[static_cast<std::size_t>(it - keys_.begin())];
}

}  // namespace manet::geom
