#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace manet::geom {
namespace {

std::size_t clamp_index(double v, std::size_t bound) {
  if (!(v > 0.0)) return 0;  // also catches NaN
  const auto idx = static_cast<std::size_t>(v);
  return idx < bound ? idx : bound - 1;
}

}  // namespace

SpatialGrid::SpatialGrid(const std::vector<Point>& positions,
                         double cell_size) {
  MANET_REQUIRE(cell_size > 0.0, "cell size must be positive");
  const std::size_t n = positions.size();
  offsets_.assign(2, 0);  // 1x1 grid placeholder for the empty case
  if (n == 0) return;

  double max_x = positions[0].x, max_y = positions[0].y;
  min_x_ = positions[0].x;
  min_y_ = positions[0].y;
  for (const Point& p : positions) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double width = max_x - min_x_;
  const double height = max_y - min_y_;

  // floor(extent / cell_size) keeps the actual cell side >= cell_size, so
  // any pair within cell_size is confined to a 3x3 cell block.
  cols_ = std::max<std::size_t>(1, static_cast<std::size_t>(width / cell_size));
  rows_ = std::max<std::size_t>(1, static_cast<std::size_t>(height / cell_size));

  // Clamp the cell array to O(n): growing cells only widens the candidate
  // set, never loses a pair, so correctness is preserved.
  const std::size_t cell_cap = std::max<std::size_t>(64, 4 * n);
  while (cols_ * rows_ > cell_cap) {
    if (cols_ >= rows_)
      cols_ = (cols_ + 1) / 2;
    else
      rows_ = (rows_ + 1) / 2;
  }

  inv_cell_x_ = width > 0.0 ? static_cast<double>(cols_) / width : 0.0;
  inv_cell_y_ = height > 0.0 ? static_cast<double>(rows_) / height : 0.0;

  // Two-pass counting sort of node ids into cells; scanning ids in order
  // leaves each cell's id list sorted.
  offsets_.assign(cols_ * rows_ + 1, 0);
  std::vector<std::size_t> cell_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c =
        row_of(positions[i]) * cols_ + col_of(positions[i]);
    cell_of[i] = c;
    ++offsets_[c + 1];
  }
  for (std::size_t c = 1; c < offsets_.size(); ++c)
    offsets_[c] += offsets_[c - 1];
  ids_.resize(n);
  xs_.resize(n);
  ys_.resize(n);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = cursor[cell_of[i]]++;
    ids_[slot] = static_cast<NodeId>(i);
    xs_[slot] = positions[i].x;
    ys_[slot] = positions[i].y;
  }
}

std::size_t SpatialGrid::col_of(const Point& p) const {
  return clamp_index((p.x - min_x_) * inv_cell_x_, cols_);
}

std::size_t SpatialGrid::row_of(const Point& p) const {
  return clamp_index((p.y - min_y_) * inv_cell_y_, rows_);
}

std::span<const NodeId> SpatialGrid::cell(std::size_t col,
                                          std::size_t row) const {
  MANET_REQUIRE(col < cols_ && row < rows_, "cell index out of range");
  const std::size_t c = row * cols_ + col;
  return {ids_.data() + offsets_[c], offsets_[c + 1] - offsets_[c]};
}

}  // namespace manet::geom
