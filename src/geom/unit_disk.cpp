#include "geom/unit_disk.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/algorithms.hpp"

namespace manet::geom {

double range_for_average_degree(double d, std::size_t n, double width,
                                double height) {
  MANET_REQUIRE(d > 0.0, "average degree must be positive");
  MANET_REQUIRE(n > 0, "network size must be positive");
  MANET_REQUIRE(width > 0.0 && height > 0.0, "area must be positive");
  // Each node expects (n-1) * pi r^2 / A neighbors; the paper's coarse
  // model uses n, and the difference is within border-effect noise. We use
  // n to match the conventional calibration.
  return std::sqrt(d * width * height /
                   (static_cast<double>(n) * std::numbers::pi));
}

graph::Graph unit_disk_graph(const std::vector<Point>& positions,
                             double range) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  graph::GraphBuilder builder(n);
  const double range_sq = range * range;

  // Cell size >= range, so every in-range pair lies in the same cell or
  // in adjacent cells. The grid stores slots in row-major cell order, so
  // each node's "forward" candidates — the rest of its own cell plus the
  // E neighbor cell, and the SW/S/SE cells of the next row — are exactly
  // two contiguous slot spans, scanned linearly over the grid's
  // cell-ordered coordinate arrays. Every unordered pair is visited at
  // most once.
  const SpatialGrid grid(positions, range);
  const auto ids = grid.slots();
  const auto xs = grid.slot_x();
  const auto ys = grid.slot_y();
  const std::size_t cols = grid.cols();
  const std::size_t rows = grid.rows();
  builder.reserve(n * 4);  // ballpark for typical paper densities
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t own_end = grid.cell_end(c, r);
      const std::size_t same_row_end =
          c + 1 < cols ? grid.cell_end(c + 1, r) : own_end;
      std::size_t next_begin = 0, next_end = 0;
      if (r + 1 < rows) {
        next_begin = grid.cell_begin(c > 0 ? c - 1 : 0, r + 1);
        next_end = grid.cell_end(c + 1 < cols ? c + 1 : cols - 1, r + 1);
      }
      for (std::size_t k = grid.cell_begin(c, r); k < own_end; ++k) {
        const double xi = xs[k], yi = ys[k];
        const NodeId i = ids[k];
        for (std::size_t j = k + 1; j < same_row_end; ++j) {
          const double dx = xi - xs[j], dy = yi - ys[j];
          if (dx * dx + dy * dy < range_sq) builder.edge(i, ids[j]);
        }
        for (std::size_t j = next_begin; j < next_end; ++j) {
          const double dx = xi - xs[j], dy = yi - ys[j];
          if (dx * dx + dy * dy < range_sq) builder.edge(i, ids[j]);
        }
      }
    }
  }
  return builder.build_and_clear();
}

graph::Graph unit_disk_graph_reference(const std::vector<Point>& positions,
                                       double range) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  graph::GraphBuilder builder(n);
  const double range_sq = range * range;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (distance_sq(positions[i], positions[j]) < range_sq)
        builder.edge(i, j);
  return builder.build_and_clear();
}

UnitDiskNetwork generate_unit_disk(const UnitDiskConfig& config, Rng& rng) {
  MANET_REQUIRE(config.nodes > 0, "network size must be positive");
  UnitDiskNetwork net;
  net.config = config;
  net.positions.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i)
    net.positions.push_back(
        {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)});
  net.graph = unit_disk_graph(net.positions, config.range);
  return net;
}

std::optional<UnitDiskNetwork> generate_connected_unit_disk(
    const UnitDiskConfig& config, Rng& rng, std::size_t max_attempts) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    UnitDiskNetwork net = generate_unit_disk(config, rng);
    if (graph::is_connected(net.graph)) return net;
  }
  return std::nullopt;
}

}  // namespace manet::geom
