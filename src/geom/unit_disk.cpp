#include "geom/unit_disk.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::geom {
namespace {

// Forward-span sweep over every in-range slot pair of `grid`, visiting
// each unordered pair exactly once. Cell size >= range, so every in-range
// pair lies in the same cell or in adjacent cells; each slot's "forward"
// candidates — the rest of its own cell plus the E neighbor cell, and the
// SW/S/SE cells of the next row — are exactly two contiguous slot spans,
// scanned linearly over the grid's cell-ordered coordinate arrays. Only
// occupied cells are walked, so the sweep is O(n * d) for the sparse
// index too, where the full lattice would be O(cols * rows).
template <typename PairFn>
void sweep_in_range_pairs(const SpatialGrid& grid, double range_sq,
                          PairFn&& fn) {
  const auto xs = grid.slot_x();
  const auto ys = grid.slot_y();
  const std::size_t cols = grid.cols();
  const std::size_t rows = grid.rows();
  grid.for_each_occupied([&](std::size_t c, std::size_t r, std::size_t begin,
                             std::size_t own_end) {
    const std::size_t same_row_end =
        c + 1 < cols ? grid.cell_end(c + 1, r) : own_end;
    std::size_t next_begin = 0, next_end = 0;
    if (r + 1 < rows) {
      next_begin = grid.cell_begin(c > 0 ? c - 1 : 0, r + 1);
      next_end = grid.cell_end(c + 1 < cols ? c + 1 : cols - 1, r + 1);
    }
    for (std::size_t k = begin; k < own_end; ++k) {
      const double xi = xs[k], yi = ys[k];
      for (std::size_t j = k + 1; j < same_row_end; ++j) {
        const double dx = xi - xs[j], dy = yi - ys[j];
        if (dx * dx + dy * dy < range_sq) fn(k, j);
      }
      for (std::size_t j = next_begin; j < next_end; ++j) {
        const double dx = xi - xs[j], dy = yi - ys[j];
        if (dx * dx + dy * dy < range_sq) fn(k, j);
      }
    }
  });
}

}  // namespace

double range_for_average_degree(double d, std::size_t n, double width,
                                double height) {
  MANET_REQUIRE(d > 0.0, "average degree must be positive");
  MANET_REQUIRE(n > 0, "network size must be positive");
  MANET_REQUIRE(width > 0.0 && height > 0.0, "area must be positive");
  // Each node expects (n-1) * pi r^2 / A neighbors; the paper's coarse
  // model uses n, and the difference is within border-effect noise. We use
  // n to match the conventional calibration.
  return std::sqrt(d * width * height /
                   (static_cast<double>(n) * std::numbers::pi));
}

graph::Graph unit_disk_graph(const std::vector<Point>& positions, double range,
                             GridIndex index) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  graph::GraphBuilder builder(n);
  const SpatialGrid grid(positions, range, index);
  const auto ids = grid.slots();
  builder.reserve(n * 4);  // ballpark for typical paper densities
  sweep_in_range_pairs(grid, range * range, [&](std::size_t k, std::size_t j) {
    builder.edge(ids[k], ids[j]);
  });
  return builder.build_and_clear();
}

graph::Graph unit_disk_graph_streaming(const std::vector<Point>& positions,
                                       double range, GridIndex index) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  const SpatialGrid grid(positions, range, index);
  const auto ids = grid.slots();
  const double range_sq = range * range;

  // Counting pass: per-node degrees straight from the pair sweep. The
  // second sweep re-tests the same distances — trading ~2x the distance
  // arithmetic for never materializing the O(m) intermediate edge list a
  // GraphBuilder accumulates, which dominates peak RSS of the cold build
  // at n = 1M.
  std::vector<std::size_t> offsets(n + 1, 0);
  sweep_in_range_pairs(grid, range_sq, [&](std::size_t k, std::size_t j) {
    ++offsets[ids[k] + 1];
    ++offsets[ids[j] + 1];
  });
  for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  // Fill pass, scattering both directions through per-row cursors.
  std::vector<NodeId> adjacency(offsets[n]);
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  sweep_in_range_pairs(grid, range_sq, [&](std::size_t k, std::size_t j) {
    adjacency[cursor[ids[k]]++] = ids[j];
    adjacency[cursor[ids[j]]++] = ids[k];
  });

  // When node ids are already in cell-sweep order (cell_order_layout),
  // every row comes out sorted: a row's backward entries arrive from
  // ascending earlier slots and are all smaller than its forward entries,
  // which the spans emit in ascending order. Arbitrary id orders need the
  // per-row fix-up below.
  for (std::size_t v = 0; v < n; ++v) {
    const auto first = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    const auto last = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    if (!std::is_sorted(first, last)) std::sort(first, last);
  }
  return graph::Graph::from_csr(std::move(offsets), std::move(adjacency));
}

std::vector<Point> cell_order_layout(const std::vector<Point>& positions,
                                     double cell_size, GridIndex index) {
  const SpatialGrid grid(positions, cell_size, index);
  std::vector<Point> out;
  out.reserve(positions.size());
  for (NodeId v : grid.slots()) out.push_back(positions[v]);
  return out;
}

std::vector<Point> generate_unit_disk_cell_order(const UnitDiskConfig& config,
                                                 Rng& rng) {
  MANET_REQUIRE(config.nodes > 0, "network size must be positive");
  MANET_REQUIRE(config.range > 0.0, "transmission range must be positive");
  MANET_REQUIRE(config.width > 0.0 && config.height > 0.0,
                "area must be positive");
  const std::size_t n = config.nodes;

  // Square cells of side >= range, row-major over the working space.
  // Capping the cell count at O(n) only widens cells — the order is a
  // valid cell-major order at any resolution — and keeps the offset
  // table from outgrowing the points it is ordering.
  const std::size_t cell_cap = std::max<std::size_t>(64, n);
  const auto dim = [&](double extent) {
    const double cells = extent / config.range;
    if (!(cells > 1.0)) return std::size_t{1};
    if (cells >= static_cast<double>(cell_cap)) return cell_cap;
    return std::max<std::size_t>(1, static_cast<std::size_t>(cells));
  };
  std::size_t cols = dim(config.width);
  std::size_t rows = dim(config.height);
  while (cols * rows > cell_cap) {
    if (cols >= rows)
      cols = (cols + 1) / 2;
    else
      rows = (rows + 1) / 2;
  }
  const double inv_x = static_cast<double>(cols) / config.width;
  const double inv_y = static_cast<double>(rows) / config.height;
  const auto cell_of = [&](double x, double y) {
    const std::size_t c =
        x <= 0.0 ? 0
                 : std::min(cols - 1, static_cast<std::size_t>(x * inv_x));
    const std::size_t r =
        y <= 0.0 ? 0
                 : std::min(rows - 1, static_cast<std::size_t>(y * inv_y));
    return r * cols + c;
  };

  // Pass 1 on a copy of the rng: per-cell occupancy, then exclusive
  // prefix sums so offsets[c] is cell c's first slot.
  std::vector<std::uint64_t> offsets(cols * rows + 1, 0);
  Rng replay = rng;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = replay.uniform(0.0, config.width);
    const double y = replay.uniform(0.0, config.height);
    ++offsets[cell_of(x, y) + 1];
  }
  for (std::size_t c = 1; c < offsets.size(); ++c)
    offsets[c] += offsets[c - 1];

  // Pass 2 on the caller's rng: identical draws, scattered through the
  // per-cell cursors. Draw order is ascending within each cell, so the
  // layout matches cell_order_layout's within-cell convention.
  std::vector<Point> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, config.width);
    const double y = rng.uniform(0.0, config.height);
    out[offsets[cell_of(x, y)]++] = {x, y};
  }
  return out;
}

bool unit_disk_connected(const std::vector<Point>& positions, double range,
                         GridIndex index) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  if (n <= 1) return true;
  const SpatialGrid grid(positions, range, index);
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // halve the path
      x = parent[x];
    }
    return x;
  };
  std::size_t components = n;
  // Slot-space union-find: connectivity is label-invariant, so the
  // sweep's slot indices serve directly.
  sweep_in_range_pairs(grid, range * range,
                       [&](std::size_t k, std::size_t j) {
                         const std::uint32_t a =
                             find(static_cast<std::uint32_t>(k));
                         const std::uint32_t b =
                             find(static_cast<std::uint32_t>(j));
                         if (a == b) return;
                         parent[std::max(a, b)] = std::min(a, b);
                         --components;
                       });
  return components == 1;
}

graph::Graph unit_disk_graph_reference(const std::vector<Point>& positions,
                                       double range) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  graph::GraphBuilder builder(n);
  const double range_sq = range * range;
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (distance_sq(positions[i], positions[j]) < range_sq)
        builder.edge(i, j);
  return builder.build_and_clear();
}

UnitDiskNetwork generate_unit_disk(const UnitDiskConfig& config, Rng& rng) {
  MANET_REQUIRE(config.nodes > 0, "network size must be positive");
  UnitDiskNetwork net;
  net.config = config;
  net.positions.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i)
    net.positions.push_back(
        {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)});
  net.graph = unit_disk_graph(net.positions, config.range);
  return net;
}

std::optional<UnitDiskNetwork> generate_connected_unit_disk(
    const UnitDiskConfig& config, Rng& rng, std::size_t max_attempts,
    std::size_t* attempts_used) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    UnitDiskNetwork net = generate_unit_disk(config, rng);
    if (graph::is_connected(net.graph)) {
      if (attempts_used) *attempts_used = attempt + 1;
      return net;
    }
  }
  if (attempts_used) *attempts_used = max_attempts;
  return std::nullopt;
}

}  // namespace manet::geom
