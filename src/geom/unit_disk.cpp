#include "geom/unit_disk.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::geom {

double range_for_average_degree(double d, std::size_t n, double width,
                                double height) {
  MANET_REQUIRE(d > 0.0, "average degree must be positive");
  MANET_REQUIRE(n > 0, "network size must be positive");
  MANET_REQUIRE(width > 0.0 && height > 0.0, "area must be positive");
  // Each node expects (n-1) * pi r^2 / A neighbors; the paper's coarse
  // model uses n, and the difference is within border-effect noise. We use
  // n to match the conventional calibration.
  return std::sqrt(d * width * height /
                   (static_cast<double>(n) * std::numbers::pi));
}

graph::Graph unit_disk_graph(const std::vector<Point>& positions,
                             double range) {
  MANET_REQUIRE(range > 0.0, "transmission range must be positive");
  const std::size_t n = positions.size();
  graph::GraphBuilder builder(n);
  const double range_sq = range * range;
  // O(n^2) pair scan; n <= a few hundred in every paper scenario, so a
  // spatial grid would not pay for itself.
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (distance_sq(positions[i], positions[j]) < range_sq)
        builder.edge(i, j);
  return builder.build();
}

UnitDiskNetwork generate_unit_disk(const UnitDiskConfig& config, Rng& rng) {
  MANET_REQUIRE(config.nodes > 0, "network size must be positive");
  UnitDiskNetwork net;
  net.config = config;
  net.positions.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i)
    net.positions.push_back(
        {rng.uniform(0.0, config.width), rng.uniform(0.0, config.height)});
  net.graph = unit_disk_graph(net.positions, config.range);
  return net;
}

std::optional<UnitDiskNetwork> generate_connected_unit_disk(
    const UnitDiskConfig& config, Rng& rng, std::size_t max_attempts) {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    UnitDiskNetwork net = generate_unit_disk(config, rng);
    if (graph::is_connected(net.graph)) return net;
  }
  return std::nullopt;
}

}  // namespace manet::geom
