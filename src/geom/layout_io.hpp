// Serialization for node layouts: one "x y" line per node, prefixed by
// the count, so generated unit-disk placements persist alongside their
// edge lists (graph/io.hpp).
#pragma once

#include <iosfwd>
#include <vector>

#include "geom/point.hpp"

namespace manet::geom {

/// Writes the count followed by one "x y" line per node.
void write_positions(std::ostream& out, const std::vector<Point>& positions);

/// Parses the write_positions format; throws std::invalid_argument on
/// truncated or malformed input.
std::vector<Point> read_positions(std::istream& in);

}  // namespace manet::geom
