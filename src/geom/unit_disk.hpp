// Unit-disk graph generation — the paper's simulation workload.
//
// The paper places n nodes uniformly at random in a 100 x 100 working
// space, gives every node the same transmission range r, links nodes whose
// distance is below r, and *discards disconnected topologies*. Networks
// are generated for two target average degrees (d = 6 and d = 18); we
// derive r from d with the standard area argument E[deg] ~= n * pi * r^2 /
// A and keep the generator honest with tests on the achieved degree.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "geom/point.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/graph.hpp"

namespace manet::geom {

/// Parameters of the random-placement workload.
struct UnitDiskConfig {
  double width = 100.0;        ///< working space width (paper: 100)
  double height = 100.0;       ///< working space height (paper: 100)
  std::size_t nodes = 50;      ///< network size n
  double range = 25.0;         ///< transmission range r
};

/// A generated topology: positions plus the induced unit-disk graph.
struct UnitDiskNetwork {
  UnitDiskConfig config;
  std::vector<Point> positions;
  graph::Graph graph;
};

/// Transmission range that yields expected average degree `d` for `n`
/// nodes uniform in a `width` x `height` area (border effects ignored):
/// r = sqrt(d * A / (n * pi)).
double range_for_average_degree(double d, std::size_t n, double width,
                                double height);

/// Places nodes uniformly at random and links pairs closer than range.
UnitDiskNetwork generate_unit_disk(const UnitDiskConfig& config, Rng& rng);

/// Builds the unit-disk graph induced by fixed positions (used by the
/// mobility module after each movement step). Uses a spatial grid with
/// cell size = range, so construction is expected O(n * d) instead of the
/// naive O(n^2) pair scan. `index` picks the grid's cell storage (see
/// GridIndex); the resulting graph is identical in every mode.
graph::Graph unit_disk_graph(const std::vector<Point>& positions, double range,
                             GridIndex index = GridIndex::kAuto);

/// Same graph as unit_disk_graph, built by a two-pass counting sweep
/// (degree count, prefix sum, cursor fill) straight into CSR arrays — no
/// intermediate per-pair edge buffer, so peak RSS of a cold build is
/// roughly halved. Slightly more distance arithmetic (each pair is tested
/// twice); use for large-n cold builds where memory is the binding
/// constraint.
graph::Graph unit_disk_graph_streaming(const std::vector<Point>& positions,
                                       double range,
                                       GridIndex index = GridIndex::kAuto);

/// Returns `positions` permuted into spatial-grid slot order (row-major
/// cells of side >= cell_size, original index ascending within a cell).
/// Re-gridding the returned layout at the same cell size maps node id k
/// to slot k, which gives cache-friendly neighborhoods and lets
/// unit_disk_graph_streaming emit sorted rows without a fix-up pass. For
/// i.i.d. random placements the relabeling does not change the
/// distribution.
std::vector<Point> cell_order_layout(const std::vector<Point>& positions,
                                     double cell_size,
                                     GridIndex index = GridIndex::kAuto);

/// Streaming cell-major placement: draws the exact same uniform point
/// stream as generate_unit_disk (`rng` is advanced identically) but
/// writes each point straight into its row-major lattice-cell slot —
/// square cells of side >= range over [0, width] x [0, height], cell
/// count capped at O(n) like the dense grid. Two passes over a replayed
/// copy of the rng (count per-cell occupancy, prefix-sum, re-draw and
/// scatter), so the only working memory beyond the returned vector is
/// the per-cell offset table: no intermediate layout copy, no
/// SpatialGrid, no graph. The result is a cell-major relabeling of an
/// i.i.d. uniform placement — the distribution cell_order_layout
/// produces, without ever materializing the unordered layout.
std::vector<Point> generate_unit_disk_cell_order(const UnitDiskConfig& config,
                                                 Rng& rng);

/// Connectivity of the unit-disk graph induced by `positions`, without
/// materializing the graph: a union-find over the grid sweep's in-range
/// pairs. Equivalent to graph::is_connected(unit_disk_graph(positions,
/// range, index)) at O(n) working memory instead of O(n + m).
bool unit_disk_connected(const std::vector<Point>& positions, double range,
                         GridIndex index = GridIndex::kAuto);

/// Reference O(n^2) pair-scan implementation. Kept for cross-checking the
/// grid-based unit_disk_graph (tests assert identical edge sets) and as
/// the baseline for bench/micro_pipeline speedup numbers.
graph::Graph unit_disk_graph_reference(const std::vector<Point>& positions,
                                       double range);

/// Rejection-samples topologies until one is connected, or gives up after
/// `max_attempts` (returns nullopt). The paper: "If the generated network
/// is not connected, it is discarded." When `attempts_used` is non-null
/// it receives the number of topologies generated (== max_attempts on
/// exhaustion), so callers can report the retry budget they spent.
std::optional<UnitDiskNetwork> generate_connected_unit_disk(
    const UnitDiskConfig& config, Rng& rng, std::size_t max_attempts = 10000,
    std::size_t* attempts_used = nullptr);

}  // namespace manet::geom
