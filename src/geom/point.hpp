// 2D geometry primitives for node placement in the confined working space.
#pragma once

#include <cmath>

namespace manet::geom {

/// A point in the simulation plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Squared Euclidean distance (avoids the sqrt in hot loops).
inline double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distance_sq(a, b));
}

}  // namespace manet::geom
