// The distributed backbone-construction protocol (paper §3), as a node
// state machine for the round simulator.
//
// Phases per node, driven entirely by received messages and the round
// clock (no global knowledge):
//   1. HELLO        — round 0 beacon; neighbor sets known at round 1.
//   2. clustering   — a candidate decides once every smaller-id neighbor
//                     has announced: it joins the smallest announced
//                     clusterhead neighbor, or declares itself head.
//   3. CH_HOP1      — a non-head reports its adjacent heads once every
//                     neighbor has announced its role.
//   4. CH_HOP2      — sent once CH_HOP1 arrived from every non-head
//                     neighbor; contents depend on the coverage mode.
//   5. selection    — a head that heard CH_HOP1+CH_HOP2 from all its
//                     neighbors builds its coverage set, runs the shared
//                     greedy (core::select_gateways_local) and floods a
//                     GATEWAY message with TTL 2.
//   6. gateway      — selected nodes mark themselves backbone members and
//                     forward the GATEWAY message while TTL remains.
//
// The integration tests assert that the emergent clustering, tables,
// coverage sets, selections and backbone equal the centralized reference
// for every topology tried — and the message totals back the paper's
// O(n) communication-complexity claim.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "cluster/lowest_id.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "net/simulator.hpp"

namespace manet::net {

/// One node of the distributed protocol.
class BackboneNode final : public NodeProcess {
 public:
  BackboneNode(NodeId id, core::CoverageMode mode);

  // NodeProcess interface.
  void start(Mailbox& out) override;
  void on_round(std::uint32_t round, Inbox inbox, Mailbox& out) override;
  bool done() const override;

  // Result accessors (valid after the simulation is quiescent).
  bool decided() const { return role_.has_value(); }
  bool is_head() const { return role_ == cluster::Role::kClusterhead; }
  NodeId head() const { return head_; }
  const NodeSet& known_neighbors() const { return neighbors_; }
  const NodeSet& sent_hop1() const { return my_hop1_; }
  const std::vector<core::Hop2Entry>& sent_hop2() const { return my_hop2_; }
  const core::Coverage& coverage() const { return coverage_; }
  const core::GatewaySelection& selection() const { return selection_; }
  bool in_backbone() const { return is_head() || gateway_flag_; }

  // ---- Data-broadcast phase (SD-CDS, paper §3) ----
  // After construction quiesces, the application layer hands the source
  // its packet: the returned message is what the source transmits
  // (inject it into the simulator). A clusterhead source runs its
  // selection process first; a member sends a bare handoff.
  MessageBody make_broadcast_packet();
  bool data_received() const { return data_received_; }
  bool data_forwarded() const { return data_sent_; }
  void reset_broadcast_state();

 private:
  void try_decide_role(Mailbox& out);
  void try_send_hop1(Mailbox& out);
  void try_send_hop2(Mailbox& out);
  void try_select(Mailbox& out);
  std::size_t non_head_neighbor_count() const;

  NodeId id_;
  core::CoverageMode mode_;

  NodeSet neighbors_;
  bool neighbors_final_ = false;

  std::optional<cluster::Role> role_;
  NodeId head_ = kInvalidNode;
  std::map<NodeId, NodeId> neighbor_head_;  ///< announced role per neighbor
                                            ///< (head id; w -> w if head)
  NodeSet my_hop1_;
  std::vector<core::Hop2Entry> my_hop2_;
  bool hop1_sent_ = false;
  bool hop2_sent_ = false;

  std::map<NodeId, NodeSet> hop1_received_;
  std::map<NodeId, std::vector<core::Hop2Entry>> hop2_received_;

  core::Coverage coverage_;
  core::GatewaySelection selection_;
  bool selected_sent_ = false;

  bool gateway_flag_ = false;
  NodeSet forwarded_gateway_origins_;

  void on_data(const Message& m, Mailbox& out);
  core::GatewaySelection select_for_broadcast(NodeId relay,
                                              NodeId upstream,
                                              const NodeSet& upstream_cov);

  bool data_received_ = false;
  bool data_sent_ = false;
  bool head_data_processed_ = false;
  NodeSet relayed_data_origins_;
};

/// Everything the distributed run produces, reassembled for comparison
/// with the centralized pipeline.
struct DistributedRun {
  cluster::Clustering clustering;
  core::NeighborTables tables;
  std::vector<core::Coverage> coverage;             ///< indexed by node id
  std::vector<core::GatewaySelection> selection;    ///< indexed by node id
  NodeSet backbone;                                 ///< heads + informed gateways
  MessageCounts counts;
  DeliveryStats delivery;
  std::uint32_t rounds = 0;
};

/// Runs the protocol on `g` and extracts the results.
DistributedRun run_distributed_backbone(const graph::Graph& g,
                                        core::CoverageMode mode);

/// Result of one message-level SD-CDS data broadcast.
struct DistributedBroadcast {
  NodeSet forward_nodes;       ///< nodes that transmitted the data packet
  std::vector<char> received;  ///< per-node delivery
  bool delivered_all = false;
  std::size_t data_messages = 0;
  std::uint32_t rounds = 0;  ///< rounds the broadcast phase took
};

/// Runs backbone construction and then one data broadcast from `source`,
/// all through the message simulator (the fully distributed counterpart
/// of core::dynamic_broadcast).
DistributedBroadcast run_distributed_broadcast(const graph::Graph& g,
                                               core::CoverageMode mode,
                                               NodeId source);

}  // namespace manet::net
