// Synchronous-round discrete-event simulator over an ideal broadcast
// medium.
//
// Time advances in rounds (the unit-time model the paper's complexity
// analysis uses). A message sent in round r is delivered to every
// neighbor of the sender at the start of round r+1 — the paper assumes
// collisions and contention are resolved below the network layer, so the
// medium is lossless. Each node is a protocol state machine; the
// simulation runs until no messages are in flight and no node wants to
// transmit.
//
// Two topology sources: a fixed graph::Graph snapshot (construction
// protocols) or any Topology implementation whose adjacency may change
// between run() calls (the maintenance protocol reads the mobile
// unit-disk overlay through it). Delivery is by reference: each receiver
// gets pointers into the shared in-flight storage, never a copy of the
// message bodies (which carry whole NodeSets), so one round's delivery
// work is O(messages x degree) pointer pushes regardless of payload.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::net {

/// The causal ancestry a node declares for an outgoing message: the
/// trace id of the received message that triggered it plus that
/// message's wave depth (both read off the triggering Message).
struct Cause {
  std::uint64_t id = 0;     ///< parent trace id (0 = no cause, wave root)
  std::uint32_t depth = 0;  ///< parent's depth (child = depth + 1)
};

/// Interface handed to a node when it may transmit.
class Mailbox {
 public:
  virtual ~Mailbox() = default;
  /// Queues a local broadcast for delivery next round (a wave root:
  /// no causal parent).
  virtual void send(MessageBody body) = 0;
  /// Causal send: like send(), with the triggering message declared so
  /// the envelope carries parent id + depth. Default ignores the cause
  /// (custom mailboxes that predate causal tracing keep working).
  virtual void send_caused(MessageBody body, Cause cause) {
    (void)cause;
    send(std::move(body));
  }
};

/// Messages delivered to one node this round, as pointers into the
/// simulator's shared in-flight storage (valid for the duration of the
/// on_round call).
using Inbox = std::span<const Message* const>;

/// A protocol state machine living on one node.
class NodeProcess {
 public:
  virtual ~NodeProcess() = default;

  /// Called once before round 0.
  virtual void start(Mailbox& out) = 0;

  /// Called every round the node is dispatched, with the messages
  /// delivered this round (possibly none). May transmit via `out`.
  virtual void on_round(std::uint32_t round, Inbox inbox, Mailbox& out) = 0;

  /// Timer tick (Simulator::trigger_timers — e.g. the maintenance
  /// protocol's per-mobility-tick HELLO pacing). Default: no-op.
  virtual void on_timer(std::uint32_t round, Mailbox& out) {
    (void)round;
    (void)out;
  }

  /// Event-driven dispatch only: true while the node has pending
  /// obligations (running expiry timers, undecided repair state) and
  /// must be dispatched next round even with an empty inbox. A node
  /// with no inbox and awake() == false sleeps through the round.
  virtual bool awake() const { return false; }

  /// True once the node will never transmit again regardless of input
  /// (used only as a liveness diagnostic).
  virtual bool done() const = 0;
};

/// Topology the medium delivers over. Implementations may mutate their
/// adjacency between run() calls (never during one); the simulator reads
/// through the interface every round.
class Topology {
 public:
  virtual ~Topology() = default;
  virtual std::size_t order() const = 0;
  /// Sorted neighbors of `v`.
  virtual std::span<const NodeId> neighbors(NodeId v) const = 0;
};

/// Delivery-layer cost accounting: the satellite O(messages) contract.
/// `deliveries` counts inbox pointer pushes (one per message x receiving
/// neighbor); `inbox_resets` counts per-round inbox clears, which only
/// happen on inboxes that received something (so bookkeeping never scales
/// with the node count); `dispatches` counts on_round invocations.
struct DeliveryStats {
  std::size_t deliveries = 0;
  std::size_t inbox_resets = 0;
  std::size_t dispatches = 0;
};

/// Runs a set of NodeProcesses over the topology until quiescence.
class Simulator {
 public:
  using Factory = std::function<std::unique_ptr<NodeProcess>(NodeId)>;

  /// How nodes are dispatched each round.
  enum class Dispatch {
    /// Every node, every round (the construction protocols' round
    /// clock doubles as their phase driver). Quiescence = a full round
    /// with no traffic in or out.
    kEveryNode,
    /// Only nodes with a non-empty inbox or awake() == true — O(work),
    /// not O(n), per round. Quiescence = nothing in flight and no node
    /// awake. The maintenance protocol's mode.
    kEventDriven,
  };

  /// Creates one process per vertex of `g` via `factory`.
  Simulator(const graph::Graph& g, const Factory& factory);

  /// Dynamic-topology mode: delivery reads `topo` (which must outlive
  /// the simulator) every round, so adjacency edits between run() calls
  /// take effect immediately.
  Simulator(const Topology& topo, const Factory& factory,
            Dispatch dispatch = Dispatch::kEventDriven);

  /// Runs to quiescence; returns the number of rounds executed by this
  /// call. Throws std::runtime_error if `max_rounds` elapse first
  /// (livelock guard). The first call invokes every process's start();
  /// later calls resume — inject() then run() models multi-phase
  /// protocols (e.g. backbone construction followed by data broadcasts).
  std::uint32_t run(std::uint32_t max_rounds = 100000);

  /// Invokes every process's on_timer (queued transmissions deliver in
  /// the first round of the next run()) and re-polls awake(). The
  /// maintenance engine calls this once per mobility tick, after
  /// committing the tick's adjacency changes.
  void trigger_timers();

  /// Queues a transmission from `from` for the next run() (an external
  /// stimulus, e.g. a data packet handed to the network layer).
  void inject(NodeId from, MessageBody body);

  /// Observer invoked for every transmission (round, message) — used by
  /// the trace example and available for custom instrumentation.
  using Observer = std::function<void(std::uint32_t, const Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches an observability session: every transmission is journaled
  /// with its causal envelope, and `net.*` counters/histograms land in
  /// the session's registry (flushed from local accumulators at the end
  /// of each run(), so the per-send hot path is one ring write). The
  /// renderable per-send trace events are synthesized from the journal
  /// at export time — pass the session's journal to
  /// TraceRecorder::write_chrome_trace. nullptr detaches (flushing any
  /// pending accumulation). The session must outlive the simulator.
  void set_obs(obs::Session* session);

  /// Per-depth counts of caused transmissions accumulated since the last
  /// reset (index = causal depth; roots are not counted). Only grows
  /// while a session is attached. The maintenance engine drains this
  /// once per tick into its `proto.conv.wave_depth` histogram.
  const std::vector<std::uint32_t>& wave_depth_counts() const {
    return depth_counts_;
  }
  void reset_wave_depth_counts() {
    depth_counts_.assign(depth_counts_.size(), 0);
  }

  const MessageCounts& counts() const { return counts_; }
  const DeliveryStats& delivery_stats() const { return delivery_; }
  std::uint32_t round() const { return round_; }

  /// Access to a node's process (for result extraction after run()).
  NodeProcess& process(NodeId v);
  const NodeProcess& process(NodeId v) const;

 private:
  class RoundMailbox;

  /// Stamps the causal trace id (monotonic send sequence) and counts one
  /// transmission: protocol counters, the user observer, and — when a
  /// session is attached — the journal entry plus local accumulators
  /// (wave depth, per-type counts) flushed by flush_obs().
  void record_send(Message& m);

  /// Pushes the locally accumulated per-type message counts and inbox
  /// sizes into the attached session's registry (end of run(), detach).
  void flush_obs();

  /// Rebuilds awake_ by polling every process (start / timer edges).
  void poll_awake();

  const Topology* topo_;  ///< delivery adjacency (never null)
  /// Owned adapter when constructed from a graph::Graph.
  std::unique_ptr<Topology> owned_topo_;
  Dispatch dispatch_;
  std::vector<std::unique_ptr<NodeProcess>> nodes_;
  MessageCounts counts_;
  DeliveryStats delivery_;
  Observer observer_;
  std::vector<Message> in_flight_;   ///< being delivered this round
  std::vector<Message> next_flight_; ///< queued during this round
  /// Per-node inboxes of pointers into in_flight_; only entries listed
  /// in touched_ are non-empty between rounds.
  std::vector<std::vector<const Message*>> inboxes_;
  std::vector<NodeId> touched_;
  /// Nodes awake() after their last dispatch (event-driven mode).
  std::vector<NodeId> awake_;
  /// Dispatch dedup stamps (touched vs awake), epoch = dispatch_epoch_.
  std::vector<std::uint32_t> seen_stamp_;
  std::uint32_t dispatch_epoch_ = 0;
  bool started_ = false;
  std::uint32_t round_ = 0;
  std::uint64_t trace_seq_ = 0;  ///< causal trace ids handed out so far
  obs::Session* obs_ = nullptr;
  /// counts_ as of the last flush_obs() — the registry's `net.msg.*`
  /// counters advance by the delta, so per-send work stays off the
  /// atomics.
  MessageCounts last_flushed_counts_;
  /// Exact inbox-size occurrence counts since the last flush (index =
  /// size; sizes are small, degree-bounded integers).
  std::vector<std::uint32_t> inbox_size_counts_;
  /// Caused-send counts by causal depth since the last engine drain.
  std::vector<std::uint32_t> depth_counts_;
  obs::Counter msg_counters_[std::variant_size_v<MessageBody>];
  obs::Counter rounds_counter_;
  obs::Gauge quiescence_gauge_;
  obs::Histogram inbox_hist_;
  obs::Histogram in_flight_hist_;
  /// (round, messages queued for the next round) over the last few
  /// rounds — the livelock diagnostic reported when run() hits its
  /// round limit.
  std::vector<std::pair<std::uint32_t, std::size_t>> recent_in_flight_;
};

}  // namespace manet::net
