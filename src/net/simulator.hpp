// Synchronous-round discrete-event simulator over an ideal broadcast
// medium.
//
// Time advances in rounds (the unit-time model the paper's complexity
// analysis uses). A message sent in round r is delivered to every
// neighbor of the sender at the start of round r+1 — the paper assumes
// collisions and contention are resolved below the network layer, so the
// medium is lossless. Each node is a protocol state machine; the
// simulation runs until no messages are in flight and no node wants to
// transmit.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::net {

/// Interface handed to a node when it may transmit.
class Mailbox {
 public:
  virtual ~Mailbox() = default;
  /// Queues a local broadcast for delivery next round.
  virtual void send(MessageBody body) = 0;
};

/// A protocol state machine living on one node.
class NodeProcess {
 public:
  virtual ~NodeProcess() = default;

  /// Called once before round 0.
  virtual void start(Mailbox& out) = 0;

  /// Called every round with the messages delivered this round (possibly
  /// none). May transmit via `out`.
  virtual void on_round(std::uint32_t round,
                        const std::vector<Message>& inbox, Mailbox& out) = 0;

  /// True once the node will never transmit again regardless of input
  /// (used only as a liveness diagnostic).
  virtual bool done() const = 0;
};

/// Runs a set of NodeProcesses over the topology until quiescence.
class Simulator {
 public:
  using Factory = std::function<std::unique_ptr<NodeProcess>(NodeId)>;

  /// Creates one process per vertex of `g` via `factory`.
  Simulator(const graph::Graph& g, const Factory& factory);

  /// Runs to quiescence; returns the number of rounds executed by this
  /// call. Throws std::runtime_error if `max_rounds` elapse first
  /// (livelock guard). The first call invokes every process's start();
  /// later calls resume — inject() then run() models multi-phase
  /// protocols (e.g. backbone construction followed by data broadcasts).
  std::uint32_t run(std::uint32_t max_rounds = 100000);

  /// Queues a transmission from `from` for the next run() (an external
  /// stimulus, e.g. a data packet handed to the network layer).
  void inject(NodeId from, MessageBody body);

  /// Observer invoked for every transmission (round, message) — used by
  /// the trace example and available for custom instrumentation.
  using Observer = std::function<void(std::uint32_t, const Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches an observability session: every transmission becomes an
  /// instant trace event on the sender's track (one simulated round =
  /// 1 ms of trace time, so the exchange reads round-by-round in
  /// Perfetto), and `net.*` counters/histograms land in its registry.
  /// nullptr detaches. The session must outlive the simulator.
  void set_obs(obs::Session* session);

  const MessageCounts& counts() const { return counts_; }

  /// Access to a node's process (for result extraction after run()).
  NodeProcess& process(NodeId v);
  const NodeProcess& process(NodeId v) const;

 private:
  /// Counts one transmission: protocol counters, the user observer, the
  /// obs session (counter by type + instant trace event).
  void record_send(const Message& m);

  const graph::Graph& g_;
  std::vector<std::unique_ptr<NodeProcess>> nodes_;
  MessageCounts counts_;
  Observer observer_;
  std::vector<Message> in_flight_;
  bool started_ = false;
  std::uint32_t round_ = 0;
  obs::Session* obs_ = nullptr;
  obs::Counter msg_counters_[std::variant_size_v<MessageBody>];
  obs::Counter rounds_counter_;
  obs::Gauge quiescence_gauge_;
  obs::Histogram inbox_hist_;
  obs::Histogram in_flight_hist_;
  /// (round, messages queued for the next round) over the last few
  /// rounds — the livelock diagnostic reported when run() hits its
  /// round limit.
  std::vector<std::pair<std::uint32_t, std::size_t>> recent_in_flight_;
};

}  // namespace manet::net
