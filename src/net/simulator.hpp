// Synchronous-round discrete-event simulator over an ideal broadcast
// medium.
//
// Time advances in rounds (the unit-time model the paper's complexity
// analysis uses). A message sent in round r is delivered to every
// neighbor of the sender at the start of round r+1 — the paper assumes
// collisions and contention are resolved below the network layer, so the
// medium is lossless. Each node is a protocol state machine; the
// simulation runs until no messages are in flight and no node wants to
// transmit.
//
// Two topology sources: a fixed graph::Graph snapshot (construction
// protocols) or any Topology implementation whose adjacency may change
// between run() calls (the maintenance protocol reads the mobile
// unit-disk overlay through it). Delivery is by reference: each receiver
// gets pointers into the shared in-flight storage, never a copy of the
// message bodies (which carry whole NodeSets), so one round's delivery
// work is O(messages x degree) pointer pushes regardless of payload.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::net {

/// The causal ancestry a node declares for an outgoing message: the
/// trace id of the received message that triggered it plus that
/// message's wave depth (both read off the triggering Message).
struct Cause {
  std::uint64_t id = 0;     ///< parent trace id (0 = no cause, wave root)
  std::uint32_t depth = 0;  ///< parent's depth (child = depth + 1)
};

/// Interface handed to a node when it may transmit.
class Mailbox {
 public:
  virtual ~Mailbox() = default;
  /// Queues a local broadcast for delivery next round (a wave root:
  /// no causal parent).
  virtual void send(MessageBody body) = 0;
  /// Causal send: like send(), with the triggering message declared so
  /// the envelope carries parent id + depth. Default ignores the cause
  /// (custom mailboxes that predate causal tracing keep working).
  virtual void send_caused(MessageBody body, Cause cause) {
    (void)cause;
    send(std::move(body));
  }
};

/// Messages delivered to one node this round, as pointers into the
/// simulator's shared in-flight storage (valid for the duration of the
/// on_round call).
using Inbox = std::span<const Message* const>;

/// A protocol state machine living on one node.
class NodeProcess {
 public:
  virtual ~NodeProcess() = default;

  /// Called once before round 0.
  virtual void start(Mailbox& out) = 0;

  /// Called every round the node is dispatched, with the messages
  /// delivered this round (possibly none). May transmit via `out`.
  virtual void on_round(std::uint32_t round, Inbox inbox, Mailbox& out) = 0;

  /// Timer tick (Simulator::trigger_timers — e.g. the maintenance
  /// protocol's per-mobility-tick HELLO pacing). Default: no-op.
  virtual void on_timer(std::uint32_t round, Mailbox& out) {
    (void)round;
    (void)out;
  }

  /// Event-driven dispatch only: true while the node has pending
  /// obligations (running expiry timers, undecided repair state) and
  /// must be dispatched next round even with an empty inbox. A node
  /// with no inbox and awake() == false sleeps through the round.
  virtual bool awake() const { return false; }

  /// True once the node will never transmit again regardless of input
  /// (used only as a liveness diagnostic).
  virtual bool done() const = 0;
};

/// Topology the medium delivers over. Implementations may mutate their
/// adjacency between run() calls (never during one); the simulator reads
/// through the interface every round.
class Topology {
 public:
  virtual ~Topology() = default;
  virtual std::size_t order() const = 0;
  /// Sorted neighbors of `v`.
  virtual std::span<const NodeId> neighbors(NodeId v) const = 0;
};

/// Delivery-layer cost accounting: the satellite O(messages) contract.
/// `deliveries` counts inbox pointer pushes (one per message x receiving
/// neighbor); `inbox_resets` counts per-round inbox clears, which only
/// happen on inboxes that received something (so bookkeeping never scales
/// with the node count); `dispatches` counts on_round invocations.
struct DeliveryStats {
  std::size_t deliveries = 0;
  std::size_t inbox_resets = 0;
  std::size_t dispatches = 0;
};

/// One buffered journal record of a region run. Regions journal into
/// private buffers while running concurrently; finish_sharded_tick
/// flushes them region-ascending, so the session journal is
/// bitwise-identical across thread counts.
struct ShardJournalEntry {
  std::uint32_t round = 0;
  NodeId from = 0;
  const char* type = nullptr;  ///< static wire name (message_type_name)
  std::uint64_t trace_id = 0;
  std::uint64_t parent_id = 0;
  std::uint32_t depth = 0;
  std::uint64_t a = 0, b = 0;  ///< payload summary
};

/// Private execution context of one active repair region during a
/// sharded maintenance tick (Simulator::run_region). The caller sets the
/// inputs, run_region fills the outputs, finish_sharded_tick merges them
/// region-ascending. Instances are reusable across ticks (run_region
/// resets the outputs); the scratch vectors amortize to zero allocation.
struct RegionRun {
  // ---- inputs ----
  std::span<const NodeId> scope;   ///< sorted in-scope node ids
  std::uint32_t region = 0;        ///< 0-based index among active regions
  std::uint32_t region_count = 1;  ///< number of active regions this tick
  // ---- outputs ----
  std::uint32_t rounds = 0;  ///< local rounds to regional quiescence
  std::uint32_t sends = 0;   ///< round-phase sends (beacons excluded)
  MessageCounts counts;      ///< sends by type (beacons included)
  DeliveryStats delivery;    ///< in-scope deliveries/dispatches (resets
                             ///< are accounted analytically at merge)
  std::size_t round1_deliveries = 0;  ///< in-scope beacon deliveries
  std::size_t cross_scope_late = 0;   ///< scope-filtered sends, rounds>=2
                                      ///< (independence violations; 0)
  std::uint64_t deliver_ns = 0;  ///< wall time in delivery passes
  std::uint64_t step_ns = 0;     ///< wall time in on_timer/on_round
  /// queued[j-1] = messages queued for delivery after local round j.
  std::vector<std::size_t> queued;
  /// touched_by_round[j-1] = inboxes that received in local round j.
  std::vector<std::uint32_t> touched_by_round;
  /// Nodes whose inboxes are left non-empty at regional quiescence
  /// (cleared by the next begin_sharded_tick).
  std::vector<NodeId> final_touched;
  /// Exact inbox-size occurrence counts, local rounds >= 2 only (round
  /// 1 is the beacon storm, bulk-recorded from the degree histogram).
  std::vector<std::uint32_t> inbox_size_counts;
  /// Caused-send counts by causal depth (observed runs only).
  std::vector<std::uint32_t> depth_counts;
  std::vector<ShardJournalEntry> journal;
  // ---- private scratch ----
  std::vector<Message> flight, next_flight;
  std::vector<NodeId> touched, awake, dispatch;
  /// This region's delivery arena (the shared per-node offset arrays are
  /// written only at in-scope indices, so regions never contend).
  std::vector<const Message*> arena;
};

/// The whole-network quantities finish_sharded_tick needs to account for
/// everything the region runs skipped: out-of-scope beacons, their
/// deliveries, and the quiescent bulk of round-1 bookkeeping.
struct ShardedMergeInputs {
  std::size_t n_total = 0;         ///< all nodes (every one beacons)
  std::size_t scope_total = 0;     ///< sum of active scope sizes
  std::size_t edges2 = 0;          ///< 2|E| after this tick's commit
  std::size_t degpos_total = 0;    ///< nodes with degree > 0
  std::size_t degpos_in_scope = 0; ///< ... of the active scopes
  /// deg_count[d] = number of nodes with degree d (d >= 1 used).
  std::span<const std::size_t> deg_count;
};

/// Runs a set of NodeProcesses over the topology until quiescence.
class Simulator {
 public:
  using Factory = std::function<std::unique_ptr<NodeProcess>(NodeId)>;

  /// How nodes are dispatched each round.
  enum class Dispatch {
    /// Every node, every round (the construction protocols' round
    /// clock doubles as their phase driver). Quiescence = a full round
    /// with no traffic in or out.
    kEveryNode,
    /// Only nodes with a non-empty inbox or awake() == true — O(work),
    /// not O(n), per round. Quiescence = nothing in flight and no node
    /// awake. The maintenance protocol's mode.
    kEventDriven,
  };

  /// Creates one process per vertex of `g` via `factory`.
  Simulator(const graph::Graph& g, const Factory& factory);

  /// Dynamic-topology mode: delivery reads `topo` (which must outlive
  /// the simulator) every round, so adjacency edits between run() calls
  /// take effect immediately.
  Simulator(const Topology& topo, const Factory& factory,
            Dispatch dispatch = Dispatch::kEventDriven);

  /// Runs to quiescence; returns the number of rounds executed by this
  /// call. Throws std::runtime_error if `max_rounds` elapse first
  /// (livelock guard). The first call invokes every process's start();
  /// later calls resume — inject() then run() models multi-phase
  /// protocols (e.g. backbone construction followed by data broadcasts).
  std::uint32_t run(std::uint32_t max_rounds = 100000);

  /// Invokes every process's on_timer (queued transmissions deliver in
  /// the first round of the next run()) and re-polls awake(). The
  /// maintenance engine calls this once per mobility tick, after
  /// committing the tick's adjacency changes.
  void trigger_timers();

  /// Queues a transmission from `from` for the next run() (an external
  /// stimulus, e.g. a data packet handed to the network layer).
  void inject(NodeId from, MessageBody body);

  // ---- Region-sharded maintenance ticks ----------------------------------
  //
  // The maintenance protocol's repair waves are confined to the painted
  // dirty regions of the tick's movement (incr::RegionPartition with
  // region_scopes): nodes of distinct regions exchange no messages
  // within a tick, and nodes outside every region do nothing but beacon
  // and refresh heard flags. A sharded tick exploits that:
  //
  //   base = begin_sharded_tick();          // once, sequential
  //   run_region(rr_i, tag, ...);           // concurrently, one per region
  //   finish_sharded_tick(regions, bulk);   // once, sequential
  //
  // run_region replays the legacy tick exactly for its scope — timer
  // phase (one beacon per node, trace id base+v+1, the id the sequential
  // trigger_timers would assign), then rounds to regional quiescence
  // with delivery filtered to the scope. Everything the scopes exclude
  // is bulk-accounted at merge from whole-network aggregates, making a
  // tick's cost O(active work), not O(n), while every counter, metric
  // and histogram lands bitwise-identical to the same tick sequence run
  // at any other thread count.

  /// Opens a sharded tick: clears the inboxes the previous sharded tick
  /// left dirty and returns the tick's trace-id base (the current send
  /// sequence). Event-driven dispatch only; per-send observers are not
  /// supported (regions journal into private buffers instead).
  std::uint64_t begin_sharded_tick();

  /// Runs one active region to quiescence. `scope_tag[v] == rr.region+1`
  /// identifies rr's scope (any other value is foreign). `before_timer`
  /// and `after_timer` bracket every scope node's on_timer — the engine
  /// uses them to bind per-lane scratch and to synthesize heard marks
  /// for live out-of-scope neighbors whose beacons the scope filter
  /// withholds. Callable concurrently for distinct regions (disjoint
  /// scopes touch disjoint node state and inboxes).
  void run_region(RegionRun& rr, const std::uint32_t* scope_tag,
                  const std::function<void(NodeId)>& before_timer,
                  const std::function<void(NodeId)>& after_timer,
                  std::uint32_t max_rounds = 100000);

  /// Merges the region runs (region-ascending — deterministic) plus the
  /// bulk accounting of everything out of scope; advances the round
  /// clock by the tick's round count R = max(1, max_r rounds_r) and
  /// returns it. Call with an empty span for a fully quiescent tick
  /// (beacons and round-1 bookkeeping are still accounted).
  std::uint32_t finish_sharded_tick(std::span<RegionRun> regions,
                                    const ShardedMergeInputs& bulk);

  /// Total scope-filtered deliveries in local rounds >= 2 across all
  /// sharded ticks so far. Always 0 unless region independence is
  /// violated (the partition-separation property test's subject).
  std::size_t cross_scope_late() const { return cross_scope_late_; }

  /// Observer invoked for every transmission (round, message) — used by
  /// the trace example and available for custom instrumentation.
  using Observer = std::function<void(std::uint32_t, const Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches an observability session: every transmission is journaled
  /// with its causal envelope, and `net.*` counters/histograms land in
  /// the session's registry (flushed from local accumulators at the end
  /// of each run(), so the per-send hot path is one ring write). The
  /// renderable per-send trace events are synthesized from the journal
  /// at export time — pass the session's journal to
  /// TraceRecorder::write_chrome_trace. nullptr detaches (flushing any
  /// pending accumulation). The session must outlive the simulator.
  void set_obs(obs::Session* session);

  /// Per-depth counts of caused transmissions accumulated since the last
  /// reset (index = causal depth; roots are not counted). Only grows
  /// while a session is attached. The maintenance engine drains this
  /// once per tick into its `proto.conv.wave_depth` histogram.
  const std::vector<std::uint32_t>& wave_depth_counts() const {
    return depth_counts_;
  }
  void reset_wave_depth_counts() {
    depth_counts_.assign(depth_counts_.size(), 0);
  }

  const MessageCounts& counts() const { return counts_; }
  const DeliveryStats& delivery_stats() const { return delivery_; }
  std::uint32_t round() const { return round_; }

  /// Cumulative wall time spent in delivery passes / in node code
  /// (on_timer + on_round), for the bench's per-phase breakdown. Wall
  /// clock, never part of deterministic metrics. Under concurrent region
  /// execution the per-lane times sum, so these read as CPU time there.
  std::uint64_t deliver_ns() const { return deliver_ns_; }
  std::uint64_t step_ns() const { return step_ns_; }

  /// Access to a node's process (for result extraction after run()).
  NodeProcess& process(NodeId v);
  const NodeProcess& process(NodeId v) const;

 private:
  class RoundMailbox;
  class ShardMailbox;

  /// The inbox span of `v` in `arena` (empty when nothing was placed —
  /// the begin/cursor entries are then stale and must not be read).
  Inbox inbox_of(NodeId v, const std::vector<const Message*>& arena) const {
    const std::uint32_t c = inbox_count_[v];
    if (c == 0) return Inbox{};
    return Inbox{arena.data() + inbox_begin_[v], c};
  }

  /// Stamps the causal trace id (monotonic send sequence) and counts one
  /// transmission: protocol counters, the user observer, and — when a
  /// session is attached — the journal entry plus local accumulators
  /// (wave depth, per-type counts) flushed by flush_obs().
  void record_send(Message& m);

  /// Pushes the locally accumulated per-type message counts and inbox
  /// sizes into the attached session's registry (end of run(), detach).
  void flush_obs();

  /// Rebuilds awake_ by polling every process (start / timer edges).
  void poll_awake();

  const Topology* topo_;  ///< delivery adjacency (never null)
  /// Owned adapter when constructed from a graph::Graph.
  std::unique_ptr<Topology> owned_topo_;
  Dispatch dispatch_;
  std::vector<std::unique_ptr<NodeProcess>> nodes_;
  MessageCounts counts_;
  DeliveryStats delivery_;
  Observer observer_;
  std::vector<Message> in_flight_;   ///< being delivered this round
  std::vector<Message> next_flight_; ///< queued during this round
  /// Per-node inbox placement in the round's delivery arena (counting
  /// sort: count, then prefix-sum start, then a write cursor). Replaces
  /// a vector-of-vectors — no per-node heap blocks, and a node's whole
  /// footprint here is 12 bytes whether or not it ever receives. Only
  /// entries listed in touched_ have a nonzero count between rounds.
  std::vector<std::uint32_t> inbox_count_, inbox_begin_, inbox_cursor_;
  /// The sequential paths' delivery arena (regions carry their own).
  std::vector<const Message*> arena_;
  std::vector<NodeId> touched_;
  /// Nodes awake() after their last dispatch (event-driven mode).
  std::vector<NodeId> awake_;
  /// Dispatch dedup stamps (touched vs awake), epoch = dispatch_epoch_.
  std::vector<std::uint32_t> seen_stamp_;
  std::uint32_t dispatch_epoch_ = 0;
  bool started_ = false;
  std::uint32_t round_ = 0;
  std::uint64_t trace_seq_ = 0;  ///< causal trace ids handed out so far
  // ---- Sharded-tick bookkeeping ----
  std::uint64_t sharded_base_ = 0;  ///< trace_seq_ at begin_sharded_tick
  std::size_t sharded_n_ = 0;       ///< topology order at tick open
  /// Inboxes the last sharded tick left non-empty (regional final
  /// touched) — physically cleared by the next begin_sharded_tick.
  std::vector<NodeId> sharded_dirty_;
  /// Inbox clears the sequential tick would perform in its NEXT round 1:
  /// the previous tick's never-cleared final touched count (V_{T-1}).
  std::size_t pending_inbox_resets_ = 0;
  std::size_t cross_scope_late_ = 0;
  std::uint64_t deliver_ns_ = 0;  ///< cumulative delivery wall time
  std::uint64_t step_ns_ = 0;     ///< cumulative node-code wall time
  obs::Session* obs_ = nullptr;
  /// counts_ as of the last flush_obs() — the registry's `net.msg.*`
  /// counters advance by the delta, so per-send work stays off the
  /// atomics.
  MessageCounts last_flushed_counts_;
  /// Exact inbox-size occurrence counts since the last flush (index =
  /// size; sizes are small, degree-bounded integers).
  std::vector<std::uint32_t> inbox_size_counts_;
  /// Caused-send counts by causal depth since the last engine drain.
  std::vector<std::uint32_t> depth_counts_;
  obs::Counter msg_counters_[std::variant_size_v<MessageBody>];
  obs::Counter rounds_counter_;
  obs::Gauge quiescence_gauge_;
  obs::Histogram inbox_hist_;
  obs::Histogram in_flight_hist_;
  /// (round, messages queued for the next round) over the last few
  /// rounds — the livelock diagnostic reported when run() hits its
  /// round limit.
  std::vector<std::pair<std::uint32_t, std::size_t>> recent_in_flight_;
};

}  // namespace manet::net
