#include "net/protocol.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::net {
namespace {

/// LocalSelectionView over the node's received-message stores.
class ReceivedView final : public core::LocalSelectionView {
 public:
  ReceivedView(const NodeSet& neighbors,
               const std::map<NodeId, NodeSet>& hop1,
               const std::map<NodeId, std::vector<core::Hop2Entry>>& hop2)
      : neighbors_(neighbors), hop1_(hop1), hop2_(hop2) {}

  const NodeSet& neighbors() const override { return neighbors_; }
  const NodeSet& hop1(NodeId v) const override {
    const auto it = hop1_.find(v);
    return it == hop1_.end() ? empty_set_ : it->second;
  }
  const std::vector<core::Hop2Entry>& hop2(NodeId v) const override {
    const auto it = hop2_.find(v);
    return it == hop2_.end() ? empty_entries_ : it->second;
  }

 private:
  const NodeSet& neighbors_;
  const std::map<NodeId, NodeSet>& hop1_;
  const std::map<NodeId, std::vector<core::Hop2Entry>>& hop2_;
  NodeSet empty_set_;
  std::vector<core::Hop2Entry> empty_entries_;
};

}  // namespace

BackboneNode::BackboneNode(NodeId id, core::CoverageMode mode)
    : id_(id), mode_(mode) {}

void BackboneNode::start(Mailbox& out) { out.send(HelloMsg{}); }

std::size_t BackboneNode::non_head_neighbor_count() const {
  std::size_t count = 0;
  for (const auto& [w, h] : neighbor_head_)
    if (h != w) ++count;
  return count;
}

void BackboneNode::on_round(std::uint32_t round, Inbox inbox, Mailbox& out) {
  // Ingest everything delivered this round.
  for (const Message* mp : inbox) {
    const Message& m = *mp;
    if (std::holds_alternative<HelloMsg>(m.body)) {
      insert_sorted(neighbors_, m.from);
    } else if (std::holds_alternative<ClusterHeadMsg>(m.body)) {
      neighbor_head_[m.from] = m.from;
    } else if (const auto* nch = std::get_if<NonClusterHeadMsg>(&m.body)) {
      neighbor_head_[m.from] = nch->head;
    } else if (const auto* h1 = std::get_if<ChHop1Msg>(&m.body)) {
      hop1_received_[m.from] = h1->heads;
    } else if (const auto* h2 = std::get_if<ChHop2Msg>(&m.body)) {
      hop2_received_[m.from] = h2->entries;
    } else if (const auto* gw = std::get_if<GatewayMsg>(&m.body)) {
      if (contains_sorted(gw->selected, id_)) {
        gateway_flag_ = true;
        if (gw->ttl > 1 &&
            insert_sorted(forwarded_gateway_origins_, gw->origin)) {
          out.send(GatewayMsg{gw->origin, gw->selected,
                              static_cast<std::uint8_t>(gw->ttl - 1)});
        }
      }
    } else if (std::holds_alternative<DataMsg>(m.body)) {
      on_data(m, out);
    }
  }
  // All HELLOs were sent in round 0, so the neighbor set is final once
  // round 1 has been ingested (the unit-time synchronous model of the
  // paper's complexity analysis).
  if (round >= 1) neighbors_final_ = true;

  if (!neighbors_final_) return;
  try_decide_role(out);
  try_send_hop1(out);
  try_send_hop2(out);
  try_select(out);
}

void BackboneNode::try_decide_role(Mailbox& out) {
  if (role_.has_value()) return;
  // Wait until every smaller-id neighbor has announced.
  for (NodeId w : neighbors_) {
    if (w >= id_) break;  // sorted
    if (neighbor_head_.find(w) == neighbor_head_.end()) return;
  }
  // Join the smallest announced clusterhead neighbor, if any.
  NodeId smallest_head = kInvalidNode;
  for (const auto& [w, h] : neighbor_head_) {
    if (h == w && w < smallest_head) smallest_head = w;
  }
  if (smallest_head != kInvalidNode) {
    role_ = cluster::Role::kOrdinary;  // gateway status resolved later
    head_ = smallest_head;
    out.send(NonClusterHeadMsg{head_});
  } else {
    role_ = cluster::Role::kClusterhead;
    head_ = id_;
    out.send(ClusterHeadMsg{});
  }
}

void BackboneNode::try_send_hop1(Mailbox& out) {
  if (hop1_sent_ || !role_.has_value() || is_head()) return;
  // Every neighbor must have announced its role.
  if (neighbor_head_.size() != neighbors_.size()) return;
  for (const auto& [w, h] : neighbor_head_)
    if (h == w) insert_sorted(my_hop1_, w);
  hop1_sent_ = true;
  out.send(ChHop1Msg{my_hop1_});
}

void BackboneNode::try_send_hop2(Mailbox& out) {
  if (hop2_sent_ || !hop1_sent_) return;
  // CH_HOP1 must have arrived from every non-head neighbor.
  if (hop1_received_.size() != non_head_neighbor_count()) return;
  for (const auto& [x, heads] : hop1_received_) {
    if (mode_ == core::CoverageMode::kTwoPointFiveHop) {
      const NodeId head_of_x = neighbor_head_.at(x);
      if (!contains_sorted(neighbors_, head_of_x))
        my_hop2_.push_back({head_of_x, x});
    } else {
      for (NodeId w : heads)
        if (!contains_sorted(neighbors_, w)) my_hop2_.push_back({w, x});
    }
  }
  std::sort(my_hop2_.begin(), my_hop2_.end());
  my_hop2_.erase(std::unique(my_hop2_.begin(), my_hop2_.end()),
                 my_hop2_.end());
  hop2_sent_ = true;
  out.send(ChHop2Msg{my_hop2_});
}

void BackboneNode::try_select(Mailbox& out) {
  if (selected_sent_ || !role_.has_value() || !is_head()) return;
  // A head's neighbors are all non-heads; it needs CH_HOP1 and CH_HOP2
  // from each of them.
  if (hop1_received_.size() != neighbors_.size() ||
      hop2_received_.size() != neighbors_.size())
    return;

  for (const auto& received : hop1_received_)
    for (NodeId w : received.second)
      if (w != id_) insert_sorted(coverage_.two_hop, w);
  for (const auto& received : hop2_received_)
    for (const auto& e : received.second)
      if (e.head != id_ && !contains_sorted(coverage_.two_hop, e.head))
        insert_sorted(coverage_.three_hop, e.head);

  selection_ = core::select_gateways_local(
      ReceivedView(neighbors_, hop1_received_, hop2_received_), coverage_);
  selected_sent_ = true;
  if (!selection_.gateways.empty())
    out.send(GatewayMsg{id_, selection_.gateways, 2});
}

core::GatewaySelection BackboneNode::select_for_broadcast(
    NodeId relay, NodeId upstream, const NodeSet& upstream_cov) {
  core::Coverage remaining = coverage_;
  if (upstream != kInvalidNode) {
    remaining.two_hop = set_difference(remaining.two_hop, upstream_cov);
    remaining.three_hop = set_difference(remaining.three_hop, upstream_cov);
    erase_sorted(remaining.two_hop, upstream);
    erase_sorted(remaining.three_hop, upstream);
  }
  if (relay != kInvalidNode) {
    // Relay exclusion: heads adjacent to the relay heard its
    // transmission; their CH_HOP1 report is already in our store.
    const auto it = hop1_received_.find(relay);
    if (it != hop1_received_.end()) {
      remaining.two_hop = set_difference(remaining.two_hop, it->second);
      remaining.three_hop = set_difference(remaining.three_hop, it->second);
    }
  }
  return core::select_gateways_local(
      ReceivedView(neighbors_, hop1_received_, hop2_received_), remaining);
}

void BackboneNode::on_data(const Message& m, Mailbox& out) {
  const auto& data = std::get<DataMsg>(m.body);
  data_received_ = true;
  if (is_head()) {
    if (head_data_processed_) return;
    head_data_processed_ = true;
    const auto sel =
        select_for_broadcast(m.from, data.origin_head, data.coverage);
    data_sent_ = true;
    out.send(DataMsg{id_, coverage_.all(), sel.gateways});
    return;
  }
  // A named forward node relays once per origin.
  if (contains_sorted(data.forward_set, id_)) {
    const NodeId origin_key =
        data.origin_head == kInvalidNode ? m.from : data.origin_head;
    if (insert_sorted(relayed_data_origins_, origin_key)) {
      data_sent_ = true;
      out.send(DataMsg{data.origin_head, data.coverage, data.forward_set});
    }
  }
}

MessageBody BackboneNode::make_broadcast_packet() {
  MANET_REQUIRE(decided(), "construction must finish before broadcasting");
  data_received_ = true;
  data_sent_ = true;
  if (is_head()) {
    MANET_REQUIRE(selected_sent_, "head has not built its coverage yet");
    head_data_processed_ = true;
    const auto sel = select_for_broadcast(kInvalidNode, kInvalidNode, {});
    return DataMsg{id_, coverage_.all(), sel.gateways};
  }
  // Member handoff: physically a broadcast; the head picks it up.
  return DataMsg{kInvalidNode, {}, {}};
}

void BackboneNode::reset_broadcast_state() {
  data_received_ = false;
  data_sent_ = false;
  head_data_processed_ = false;
  relayed_data_origins_.clear();
}

bool BackboneNode::done() const {
  if (!role_.has_value()) return false;
  return is_head() ? selected_sent_ : hop2_sent_;
}

DistributedRun run_distributed_backbone(const graph::Graph& g,
                                        core::CoverageMode mode) {
  Simulator sim(g, [mode](NodeId v) {
    return std::make_unique<BackboneNode>(v, mode);
  });
  DistributedRun run;
  run.rounds = sim.run();
  run.counts = sim.counts();
  run.delivery = sim.delivery_stats();

  const std::size_t n = g.order();
  run.clustering.head_of.assign(n, kInvalidNode);
  run.clustering.roles.assign(n, cluster::Role::kOrdinary);
  run.tables.mode = mode;
  run.tables.ch_hop1.resize(n);
  run.tables.ch_hop2.resize(n);
  run.coverage.resize(n);
  run.selection.resize(n);

  for (NodeId v = 0; v < n; ++v) {
    const auto& node = dynamic_cast<const BackboneNode&>(sim.process(v));
    MANET_ASSERT(node.decided(), "protocol quiesced with undecided node");
    run.clustering.head_of[v] = node.head();
    if (node.is_head()) {
      run.clustering.heads.push_back(v);
      run.clustering.roles[v] = cluster::Role::kClusterhead;
      run.coverage[v] = node.coverage();
      run.selection[v] = node.selection();
    } else {
      run.tables.ch_hop1[v] = node.sent_hop1();
      run.tables.ch_hop2[v] = node.sent_hop2();
    }
    if (node.in_backbone()) insert_sorted(run.backbone, v);
  }
  // Reconstruct gateway roles the classical way (neighbor in another
  // cluster) so the struct is directly comparable with the centralized
  // clustering.
  for (NodeId v = 0; v < n; ++v) {
    if (run.clustering.head_of[v] == v) continue;
    for (NodeId w : g.neighbors(v)) {
      if (run.clustering.head_of[w] != run.clustering.head_of[v]) {
        run.clustering.roles[v] = cluster::Role::kGateway;
        break;
      }
    }
  }
  return run;
}

DistributedBroadcast run_distributed_broadcast(const graph::Graph& g,
                                               core::CoverageMode mode,
                                               NodeId source) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  Simulator sim(g, [mode](NodeId v) {
    return std::make_unique<BackboneNode>(v, mode);
  });
  sim.run();  // construction phase to quiescence

  auto& src = dynamic_cast<BackboneNode&>(sim.process(source));
  const std::size_t construction_msgs = sim.counts().total();
  (void)construction_msgs;
  sim.inject(source, src.make_broadcast_packet());
  DistributedBroadcast result;
  result.rounds = sim.run();  // broadcast phase
  result.data_messages = sim.counts().data;

  result.received.assign(g.order(), 0);
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto& node = dynamic_cast<const BackboneNode&>(sim.process(v));
    result.received[v] = node.data_received() ? 1 : 0;
    if (node.data_forwarded()) insert_sorted(result.forward_nodes, v);
  }
  result.delivered_all =
      std::all_of(result.received.begin(), result.received.end(),
                  [](char c) { return c != 0; });
  return result;
}

}  // namespace manet::net
