#include "net/simulator.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::net {
namespace {

/// Rounds of in-flight history kept for the livelock report.
constexpr std::size_t kLivelockWindow = 8;

/// MessageCounts in MessageBody variant order (the order the `net.msg.*`
/// counter handles are registered in) — the flush path diffs two of
/// these to advance the registry by exactly the sends since last flush.
std::array<std::uint64_t, std::variant_size_v<MessageBody>> counts_by_type(
    const MessageCounts& c) {
  return {c.hello,   c.cluster_head, c.non_cluster_head, c.ch_hop1,
          c.ch_hop2, c.gateway,      c.data,             c.maint_hello,
          c.r1_status, c.r2_status};
}

/// Fixed-graph adapter: delivery reads the snapshot's adjacency.
class GraphTopology final : public Topology {
 public:
  explicit GraphTopology(const graph::Graph& g) : g_(g) {}
  std::size_t order() const override { return g_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return g_.neighbors(v);
  }

 private:
  const graph::Graph& g_;
};

}  // namespace

void MessageCounts::count(const MessageBody& body) {
  struct Visitor {
    MessageCounts& c;
    void operator()(const HelloMsg&) { ++c.hello; }
    void operator()(const ClusterHeadMsg&) { ++c.cluster_head; }
    void operator()(const NonClusterHeadMsg&) { ++c.non_cluster_head; }
    void operator()(const ChHop1Msg&) { ++c.ch_hop1; }
    void operator()(const ChHop2Msg&) { ++c.ch_hop2; }
    void operator()(const GatewayMsg&) { ++c.gateway; }
    void operator()(const DataMsg&) { ++c.data; }
    void operator()(const MaintHelloMsg&) { ++c.maint_hello; }
    void operator()(const R1StatusMsg&) { ++c.r1_status; }
    void operator()(const R2StatusMsg&) { ++c.r2_status; }
  };
  std::visit(Visitor{*this}, body);
}

/// Collects one sender's transmissions into a target flight buffer,
/// counting each at send time. Rounds send into next_flight_; start(),
/// on_timer() and inject() send into in_flight_ (delivered in the first
/// round of the next run()).
class Simulator::RoundMailbox final : public Mailbox {
 public:
  RoundMailbox(Simulator& sim, std::vector<Message>& target, NodeId from)
      : sim_(sim), target_(target), from_(from) {}
  void send(MessageBody body) override {
    send_caused(std::move(body), Cause{});
  }
  void send_caused(MessageBody body, Cause cause) override {
    Message m{from_, std::move(body)};
    m.parent_id = cause.id;
    m.depth = cause.id != 0 ? cause.depth + 1 : 0;
    sim_.record_send(m);  // stamps the trace id
    target_.push_back(std::move(m));
  }
  void retarget(NodeId from) { from_ = from; }

 private:
  Simulator& sim_;
  std::vector<Message>& target_;
  NodeId from_;
};

Simulator::Simulator(const graph::Graph& g, const Factory& factory)
    : owned_topo_(std::make_unique<GraphTopology>(g)),
      dispatch_(Dispatch::kEveryNode) {
  topo_ = owned_topo_.get();
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inboxes_.resize(n);
  seen_stamp_.assign(n, 0);
}

Simulator::Simulator(const Topology& topo, const Factory& factory,
                     Dispatch dispatch)
    : topo_(&topo), dispatch_(dispatch) {
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inboxes_.resize(n);
  seen_stamp_.assign(n, 0);
}

NodeProcess& Simulator::process(NodeId v) {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

const NodeProcess& Simulator::process(NodeId v) const {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

void Simulator::set_obs(obs::Session* session) {
  // Pending local accumulation belongs to the session that observed the
  // sends — flush through the old handles before they are replaced.
  if (obs_ != nullptr) flush_obs();
  obs_ = session;
  reset_wave_depth_counts();
  for (auto& c : msg_counters_) c = obs::Counter();
  rounds_counter_ = obs::Counter();
  quiescence_gauge_ = obs::Gauge();
  inbox_hist_ = obs::Histogram();
  in_flight_hist_ = obs::Histogram();
  if (!session) return;
  auto& r = session->registry;
  static constexpr const char* kCounterNames[] = {
      "net.msg.hello",       "net.msg.cluster_head",
      "net.msg.non_cluster_head", "net.msg.ch_hop1",
      "net.msg.ch_hop2",     "net.msg.gateway",
      "net.msg.data",        "net.msg.maint_hello",
      "net.msg.r1_status",   "net.msg.r2_status"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kCounterNames) / sizeof(kCounterNames[0]));
  for (std::size_t i = 0; i < std::variant_size_v<MessageBody>; ++i)
    msg_counters_[i] = r.counter(kCounterNames[i]);
  rounds_counter_ = r.counter("net.rounds");
  quiescence_gauge_ = r.gauge("net.quiescence_round");
  inbox_hist_ = r.histogram("net.inbox_size", {1, 2, 4, 8, 16, 32, 64, 128});
  in_flight_hist_ =
      r.histogram("net.in_flight", {1, 4, 16, 64, 256, 1024, 4096});
  // Only sends made while attached count toward the session's registry.
  last_flushed_counts_ = counts_;
}

void Simulator::flush_obs() {
  const auto now = counts_by_type(counts_);
  const auto then = counts_by_type(last_flushed_counts_);
  for (std::size_t i = 0; i < now.size(); ++i)
    if (now[i] != then[i]) msg_counters_[i].add(now[i] - then[i]);
  last_flushed_counts_ = counts_;
  for (std::size_t s = 0; s < inbox_size_counts_.size(); ++s)
    if (inbox_size_counts_[s] != 0) {
      inbox_hist_.record_many(s, inbox_size_counts_[s]);
      inbox_size_counts_[s] = 0;
    }
}

namespace {

/// Journal payload summary (a, b) per message type — the fields the
/// forensic causal slice needs to name what a message carried.
struct JournalSummaryVisitor {
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const MaintHelloMsg& m) const {
    return {m.head, m.is_head ? 1u : 0u};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const R1StatusMsg& m) const {
    return {m.final_ ? 1u : 0u, m.survived ? 1u : 0u};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const R2StatusMsg& m) const {
    return {m.head, (m.final_ ? 1u : 0u) | (m.declared ? 2u : 0u)};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const GatewayMsg& m) const {
    return {m.origin, m.seq};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const ChHop1Msg& m) const {
    return {m.heads.size(), 0};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const ChHop2Msg& m) const {
    return {m.entries.size(), 0};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const NonClusterHeadMsg& m) const {
    return {m.head, 0};
  }
  template <typename T>
  std::pair<std::uint64_t, std::uint64_t> operator()(const T&) const {
    return {0, 0};
  }
};

std::pair<std::uint64_t, std::uint64_t> journal_summary(
    const MessageBody& body) {
  return std::visit(JournalSummaryVisitor{}, body);
}

}  // namespace

void Simulator::record_send(Message& m) {
  m.trace_id = ++trace_seq_;
  counts_.count(m.body);
  if (observer_) observer_(round_, m);
  if (obs_) {
    // Observed hot path = one journal ring write plus two plain-array
    // increments. The registry counters advance from counts_ deltas in
    // flush_obs(), and the renderable per-send trace events (instant +
    // causal flow arrows) are synthesized from the journal at export
    // time (TraceRecorder::write_chrome_trace with a journal).
    if (m.parent_id != 0) {
      if (m.depth >= depth_counts_.size())
        depth_counts_.resize(m.depth + 1, 0);
      ++depth_counts_[m.depth];
    }
    const auto [a, b] = journal_summary(m.body);
    obs_->journal.record(round_, m.from, message_type_name(m.body),
                         m.trace_id, m.parent_id, m.depth, a, b);
  }
}

void Simulator::inject(NodeId from, MessageBody body) {
  MANET_REQUIRE(from < topo_->order(), "inject source out of range");
  Message m{from, std::move(body)};
  record_send(m);
  in_flight_.push_back(std::move(m));
}

void Simulator::poll_awake() {
  awake_.clear();
  if (dispatch_ != Dispatch::kEventDriven) return;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (nodes_[v]->awake()) awake_.push_back(v);
}

void Simulator::trigger_timers() {
  if (!started_) {
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
  }
  RoundMailbox mb(*this, in_flight_, 0);
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    mb.retarget(v);
    nodes_[v]->on_timer(round_, mb);
  }
  poll_awake();
}

std::uint32_t Simulator::run(std::uint32_t max_rounds) {
  const std::size_t n = topo_->order();

  if (!started_) {
    // start(): nodes queue their round-0 transmissions (HELLO).
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < n; ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
    poll_awake();
  }

  std::uint32_t executed = 0;
  std::vector<NodeId> dispatch_set;
  while (true) {
    if (dispatch_ == Dispatch::kEventDriven && in_flight_.empty() &&
        awake_.empty())
      break;  // quiescent before the round even starts

    // Deliver last round's transmissions to every current neighbor of
    // the sender. Only inboxes that received something last round are
    // non-empty, so clearing is O(receivers), not O(n).
    for (const NodeId w : touched_) {
      inboxes_[w].clear();
      ++delivery_.inbox_resets;
    }
    touched_.clear();
    for (const auto& m : in_flight_) {
      for (const NodeId w : topo_->neighbors(m.from)) {
        if (inboxes_[w].empty()) touched_.push_back(w);
        inboxes_[w].push_back(&m);
        ++delivery_.deliveries;
      }
    }
    const bool had_traffic = !in_flight_.empty();
    if (obs_) {
      // Exact-size occurrence counts in a plain array (touched inboxes
      // are never empty, so index 0 stays unused); flush_obs() folds
      // them into the net.inbox_size histogram after the run.
      for (const NodeId w : touched_) {
        const std::size_t sz = inboxes_[w].size();
        if (sz >= inbox_size_counts_.size())
          inbox_size_counts_.resize(sz + 1, 0);
        ++inbox_size_counts_[sz];
      }
    }

    // Let the dispatched nodes react (sends land in next_flight_, so
    // inbox pointers into in_flight_ stay valid all round).
    ++round_;
    ++executed;
    RoundMailbox mb(*this, next_flight_, 0);
    if (dispatch_ == Dispatch::kEveryNode) {
      for (NodeId v = 0; v < n; ++v) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inboxes_[v], mb);
        ++delivery_.dispatches;
      }
    } else {
      // Invocation set = receivers + self-awake nodes, in id order (the
      // order is immaterial to semantics — sends deliver next round —
      // but determinism keeps runs reproducible).
      dispatch_set.clear();
      ++dispatch_epoch_;
      for (const NodeId v : touched_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      for (const NodeId v : awake_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      std::sort(dispatch_set.begin(), dispatch_set.end());
      for (const NodeId v : dispatch_set) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inboxes_[v], mb);
        ++delivery_.dispatches;
      }
      // Every previously awake node was just dispatched, and awake() only
      // changes during a dispatch — so re-polling the dispatched set
      // alone keeps awake_ exact.
      awake_.clear();
      for (const NodeId v : dispatch_set)
        if (nodes_[v]->awake()) awake_.push_back(v);
    }

    in_flight_.clear();
    std::swap(in_flight_, next_flight_);

    if (obs_) in_flight_hist_.record(in_flight_.size());
    if (recent_in_flight_.size() >= kLivelockWindow)
      recent_in_flight_.erase(recent_in_flight_.begin());
    recent_in_flight_.emplace_back(round_, in_flight_.size());

    if (dispatch_ == Dispatch::kEveryNode && in_flight_.empty() &&
        !had_traffic)
      break;  // a full round with no traffic in or out
    if (executed >= max_rounds) {
      // Livelock guard: report how much traffic was still circulating in
      // the final rounds — "the round limit elapsed" alone says nothing
      // about whether the protocol was converging or ringing.
      std::ostringstream os;
      os << "simulator exceeded max_rounds=" << max_rounds
         << " (livelock?); in-flight messages over the final rounds:";
      for (const auto& [r, cnt] : recent_in_flight_)
        os << " round " << r << "=" << cnt;
      throw std::runtime_error(os.str());
    }
  }
  rounds_counter_.add(executed);
  quiescence_gauge_.set(round_);
  if (obs_) flush_obs();
  return executed;
}

}  // namespace manet::net
