#include "net/simulator.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace manet::net {
namespace {

/// Collects one node's outgoing transmissions for the current round.
class QueueMailbox final : public Mailbox {
 public:
  explicit QueueMailbox(NodeId from) : from_(from) {}
  void send(MessageBody body) override {
    queued_.push_back({from_, std::move(body)});
  }
  std::vector<Message> take() { return std::move(queued_); }

 private:
  NodeId from_;
  std::vector<Message> queued_;
};

}  // namespace

void MessageCounts::count(const MessageBody& body) {
  struct Visitor {
    MessageCounts& c;
    void operator()(const HelloMsg&) { ++c.hello; }
    void operator()(const ClusterHeadMsg&) { ++c.cluster_head; }
    void operator()(const NonClusterHeadMsg&) { ++c.non_cluster_head; }
    void operator()(const ChHop1Msg&) { ++c.ch_hop1; }
    void operator()(const ChHop2Msg&) { ++c.ch_hop2; }
    void operator()(const GatewayMsg&) { ++c.gateway; }
    void operator()(const DataMsg&) { ++c.data; }
  };
  std::visit(Visitor{*this}, body);
}

Simulator::Simulator(const graph::Graph& g, const Factory& factory) : g_(g) {
  MANET_REQUIRE(factory != nullptr, "node factory required");
  nodes_.reserve(g.order());
  for (NodeId v = 0; v < g.order(); ++v) nodes_.push_back(factory(v));
}

NodeProcess& Simulator::process(NodeId v) {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

const NodeProcess& Simulator::process(NodeId v) const {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

void Simulator::inject(NodeId from, MessageBody body) {
  MANET_REQUIRE(from < g_.order(), "inject source out of range");
  Message m{from, std::move(body)};
  counts_.count(m.body);
  if (observer_) observer_(round_, m);
  in_flight_.push_back(std::move(m));
}

std::uint32_t Simulator::run(std::uint32_t max_rounds) {
  const std::size_t n = g_.order();

  if (!started_) {
    // start(): nodes queue their round-0 transmissions (HELLO).
    started_ = true;
    for (NodeId v = 0; v < n; ++v) {
      QueueMailbox mb(v);
      nodes_[v]->start(mb);
      for (auto& m : mb.take()) {
        counts_.count(m.body);
        if (observer_) observer_(round_, m);
        in_flight_.push_back(std::move(m));
      }
    }
  }

  std::uint32_t executed = 0;
  std::vector<std::vector<Message>> inboxes(n);
  while (true) {
    // Deliver last round's transmissions to every neighbor.
    for (auto& box : inboxes) box.clear();
    for (const auto& m : in_flight_)
      for (NodeId w : g_.neighbors(m.from)) inboxes[w].push_back(m);
    const bool had_traffic = !in_flight_.empty();
    in_flight_.clear();

    // Let every node react (and possibly transmit for next round).
    ++round_;
    ++executed;
    for (NodeId v = 0; v < n; ++v) {
      QueueMailbox mb(v);
      nodes_[v]->on_round(round_, inboxes[v], mb);
      for (auto& m : mb.take()) {
        counts_.count(m.body);
        if (observer_) observer_(round_, m);
        in_flight_.push_back(std::move(m));
      }
    }

    if (in_flight_.empty() && !had_traffic) break;  // quiescent
    if (executed >= max_rounds)
      throw std::runtime_error("simulator exceeded max_rounds (livelock?)");
  }
  return executed;
}

}  // namespace manet::net
