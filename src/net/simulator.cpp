#include "net/simulator.hpp"

#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::net {
namespace {

/// Rounds of in-flight history kept for the livelock report.
constexpr std::size_t kLivelockWindow = 8;

/// One simulated round maps to 1 ms of trace time, so protocol
/// exchanges line up round-by-round in Perfetto.
constexpr std::uint64_t kRoundNs = 1'000'000;

/// Collects one node's outgoing transmissions for the current round.
class QueueMailbox final : public Mailbox {
 public:
  explicit QueueMailbox(NodeId from) : from_(from) {}
  void send(MessageBody body) override {
    queued_.push_back({from_, std::move(body)});
  }
  std::vector<Message> take() { return std::move(queued_); }

 private:
  NodeId from_;
  std::vector<Message> queued_;
};

}  // namespace

void MessageCounts::count(const MessageBody& body) {
  struct Visitor {
    MessageCounts& c;
    void operator()(const HelloMsg&) { ++c.hello; }
    void operator()(const ClusterHeadMsg&) { ++c.cluster_head; }
    void operator()(const NonClusterHeadMsg&) { ++c.non_cluster_head; }
    void operator()(const ChHop1Msg&) { ++c.ch_hop1; }
    void operator()(const ChHop2Msg&) { ++c.ch_hop2; }
    void operator()(const GatewayMsg&) { ++c.gateway; }
    void operator()(const DataMsg&) { ++c.data; }
  };
  std::visit(Visitor{*this}, body);
}

Simulator::Simulator(const graph::Graph& g, const Factory& factory) : g_(g) {
  MANET_REQUIRE(factory != nullptr, "node factory required");
  nodes_.reserve(g.order());
  for (NodeId v = 0; v < g.order(); ++v) nodes_.push_back(factory(v));
}

NodeProcess& Simulator::process(NodeId v) {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

const NodeProcess& Simulator::process(NodeId v) const {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

void Simulator::set_obs(obs::Session* session) {
  obs_ = session;
  for (auto& c : msg_counters_) c = obs::Counter();
  rounds_counter_ = obs::Counter();
  quiescence_gauge_ = obs::Gauge();
  inbox_hist_ = obs::Histogram();
  in_flight_hist_ = obs::Histogram();
  if (!session) return;
  auto& r = session->registry;
  static constexpr const char* kCounterNames[] = {
      "net.msg.hello",   "net.msg.cluster_head", "net.msg.non_cluster_head",
      "net.msg.ch_hop1", "net.msg.ch_hop2",      "net.msg.gateway",
      "net.msg.data"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kCounterNames) / sizeof(kCounterNames[0]));
  for (std::size_t i = 0; i < std::variant_size_v<MessageBody>; ++i)
    msg_counters_[i] = r.counter(kCounterNames[i]);
  rounds_counter_ = r.counter("net.rounds");
  quiescence_gauge_ = r.gauge("net.quiescence_round");
  inbox_hist_ = r.histogram("net.inbox_size", {1, 2, 4, 8, 16, 32, 64, 128});
  in_flight_hist_ =
      r.histogram("net.in_flight", {1, 4, 16, 64, 256, 1024, 4096});
}

void Simulator::record_send(const Message& m) {
  counts_.count(m.body);
  if (observer_) observer_(round_, m);
  if (obs_) {
    msg_counters_[m.body.index()].add();
    obs_->trace.instant_at(std::uint64_t{round_} * kRoundNs, "net",
                           message_type_name(m.body), round_, m.from, "from",
                           m.from);
  }
}

void Simulator::inject(NodeId from, MessageBody body) {
  MANET_REQUIRE(from < g_.order(), "inject source out of range");
  Message m{from, std::move(body)};
  record_send(m);
  in_flight_.push_back(std::move(m));
}

std::uint32_t Simulator::run(std::uint32_t max_rounds) {
  const std::size_t n = g_.order();

  if (!started_) {
    // start(): nodes queue their round-0 transmissions (HELLO).
    started_ = true;
    for (NodeId v = 0; v < n; ++v) {
      QueueMailbox mb(v);
      nodes_[v]->start(mb);
      for (auto& m : mb.take()) {
        record_send(m);
        in_flight_.push_back(std::move(m));
      }
    }
  }

  std::uint32_t executed = 0;
  std::vector<std::vector<Message>> inboxes(n);
  while (true) {
    // Deliver last round's transmissions to every neighbor.
    for (auto& box : inboxes) box.clear();
    for (const auto& m : in_flight_)
      for (NodeId w : g_.neighbors(m.from)) inboxes[w].push_back(m);
    const bool had_traffic = !in_flight_.empty();
    in_flight_.clear();
    if (obs_) {
      for (const auto& box : inboxes)
        if (!box.empty()) inbox_hist_.record(box.size());
    }

    // Let every node react (and possibly transmit for next round).
    ++round_;
    ++executed;
    for (NodeId v = 0; v < n; ++v) {
      QueueMailbox mb(v);
      nodes_[v]->on_round(round_, inboxes[v], mb);
      for (auto& m : mb.take()) {
        record_send(m);
        in_flight_.push_back(std::move(m));
      }
    }

    if (obs_) in_flight_hist_.record(in_flight_.size());
    if (recent_in_flight_.size() >= kLivelockWindow)
      recent_in_flight_.erase(recent_in_flight_.begin());
    recent_in_flight_.emplace_back(round_, in_flight_.size());

    if (in_flight_.empty() && !had_traffic) break;  // quiescent
    if (executed >= max_rounds) {
      // Livelock guard: report how much traffic was still circulating in
      // the final rounds — "the round limit elapsed" alone says nothing
      // about whether the protocol was converging or ringing.
      std::ostringstream os;
      os << "simulator exceeded max_rounds=" << max_rounds
         << " (livelock?); in-flight messages over the final rounds:";
      for (const auto& [r, cnt] : recent_in_flight_)
        os << " round " << r << "=" << cnt;
      throw std::runtime_error(os.str());
    }
  }
  rounds_counter_.add(executed);
  quiescence_gauge_.set(round_);
  return executed;
}

}  // namespace manet::net
