#include "net/simulator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::net {
namespace {

/// Rounds of in-flight history kept for the livelock report.
constexpr std::size_t kLivelockWindow = 8;

/// One simulated round maps to 1 ms of trace time, so protocol
/// exchanges line up round-by-round in Perfetto.
constexpr std::uint64_t kRoundNs = 1'000'000;

/// Fixed-graph adapter: delivery reads the snapshot's adjacency.
class GraphTopology final : public Topology {
 public:
  explicit GraphTopology(const graph::Graph& g) : g_(g) {}
  std::size_t order() const override { return g_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return g_.neighbors(v);
  }

 private:
  const graph::Graph& g_;
};

}  // namespace

void MessageCounts::count(const MessageBody& body) {
  struct Visitor {
    MessageCounts& c;
    void operator()(const HelloMsg&) { ++c.hello; }
    void operator()(const ClusterHeadMsg&) { ++c.cluster_head; }
    void operator()(const NonClusterHeadMsg&) { ++c.non_cluster_head; }
    void operator()(const ChHop1Msg&) { ++c.ch_hop1; }
    void operator()(const ChHop2Msg&) { ++c.ch_hop2; }
    void operator()(const GatewayMsg&) { ++c.gateway; }
    void operator()(const DataMsg&) { ++c.data; }
    void operator()(const MaintHelloMsg&) { ++c.maint_hello; }
    void operator()(const R1StatusMsg&) { ++c.r1_status; }
    void operator()(const R2StatusMsg&) { ++c.r2_status; }
  };
  std::visit(Visitor{*this}, body);
}

/// Collects one sender's transmissions into a target flight buffer,
/// counting each at send time. Rounds send into next_flight_; start(),
/// on_timer() and inject() send into in_flight_ (delivered in the first
/// round of the next run()).
class Simulator::RoundMailbox final : public Mailbox {
 public:
  RoundMailbox(Simulator& sim, std::vector<Message>& target, NodeId from)
      : sim_(sim), target_(target), from_(from) {}
  void send(MessageBody body) override {
    Message m{from_, std::move(body)};
    sim_.record_send(m);
    target_.push_back(std::move(m));
  }
  void retarget(NodeId from) { from_ = from; }

 private:
  Simulator& sim_;
  std::vector<Message>& target_;
  NodeId from_;
};

Simulator::Simulator(const graph::Graph& g, const Factory& factory)
    : owned_topo_(std::make_unique<GraphTopology>(g)),
      dispatch_(Dispatch::kEveryNode) {
  topo_ = owned_topo_.get();
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inboxes_.resize(n);
  seen_stamp_.assign(n, 0);
}

Simulator::Simulator(const Topology& topo, const Factory& factory,
                     Dispatch dispatch)
    : topo_(&topo), dispatch_(dispatch) {
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inboxes_.resize(n);
  seen_stamp_.assign(n, 0);
}

NodeProcess& Simulator::process(NodeId v) {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

const NodeProcess& Simulator::process(NodeId v) const {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

void Simulator::set_obs(obs::Session* session) {
  obs_ = session;
  for (auto& c : msg_counters_) c = obs::Counter();
  rounds_counter_ = obs::Counter();
  quiescence_gauge_ = obs::Gauge();
  inbox_hist_ = obs::Histogram();
  in_flight_hist_ = obs::Histogram();
  if (!session) return;
  auto& r = session->registry;
  static constexpr const char* kCounterNames[] = {
      "net.msg.hello",       "net.msg.cluster_head",
      "net.msg.non_cluster_head", "net.msg.ch_hop1",
      "net.msg.ch_hop2",     "net.msg.gateway",
      "net.msg.data",        "net.msg.maint_hello",
      "net.msg.r1_status",   "net.msg.r2_status"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kCounterNames) / sizeof(kCounterNames[0]));
  for (std::size_t i = 0; i < std::variant_size_v<MessageBody>; ++i)
    msg_counters_[i] = r.counter(kCounterNames[i]);
  rounds_counter_ = r.counter("net.rounds");
  quiescence_gauge_ = r.gauge("net.quiescence_round");
  inbox_hist_ = r.histogram("net.inbox_size", {1, 2, 4, 8, 16, 32, 64, 128});
  in_flight_hist_ =
      r.histogram("net.in_flight", {1, 4, 16, 64, 256, 1024, 4096});
}

void Simulator::record_send(const Message& m) {
  counts_.count(m.body);
  if (observer_) observer_(round_, m);
  if (obs_) {
    msg_counters_[m.body.index()].add();
    obs_->trace.instant_at(std::uint64_t{round_} * kRoundNs, "net",
                           message_type_name(m.body), round_, m.from, "from",
                           m.from);
  }
}

void Simulator::inject(NodeId from, MessageBody body) {
  MANET_REQUIRE(from < topo_->order(), "inject source out of range");
  Message m{from, std::move(body)};
  record_send(m);
  in_flight_.push_back(std::move(m));
}

void Simulator::poll_awake() {
  awake_.clear();
  if (dispatch_ != Dispatch::kEventDriven) return;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (nodes_[v]->awake()) awake_.push_back(v);
}

void Simulator::trigger_timers() {
  if (!started_) {
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
  }
  RoundMailbox mb(*this, in_flight_, 0);
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    mb.retarget(v);
    nodes_[v]->on_timer(round_, mb);
  }
  poll_awake();
}

std::uint32_t Simulator::run(std::uint32_t max_rounds) {
  const std::size_t n = topo_->order();

  if (!started_) {
    // start(): nodes queue their round-0 transmissions (HELLO).
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < n; ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
    poll_awake();
  }

  std::uint32_t executed = 0;
  std::vector<NodeId> dispatch_set;
  while (true) {
    if (dispatch_ == Dispatch::kEventDriven && in_flight_.empty() &&
        awake_.empty())
      break;  // quiescent before the round even starts

    // Deliver last round's transmissions to every current neighbor of
    // the sender. Only inboxes that received something last round are
    // non-empty, so clearing is O(receivers), not O(n).
    for (const NodeId w : touched_) {
      inboxes_[w].clear();
      ++delivery_.inbox_resets;
    }
    touched_.clear();
    for (const auto& m : in_flight_) {
      for (const NodeId w : topo_->neighbors(m.from)) {
        if (inboxes_[w].empty()) touched_.push_back(w);
        inboxes_[w].push_back(&m);
        ++delivery_.deliveries;
      }
    }
    const bool had_traffic = !in_flight_.empty();
    if (obs_) {
      for (const NodeId w : touched_) inbox_hist_.record(inboxes_[w].size());
    }

    // Let the dispatched nodes react (sends land in next_flight_, so
    // inbox pointers into in_flight_ stay valid all round).
    ++round_;
    ++executed;
    RoundMailbox mb(*this, next_flight_, 0);
    if (dispatch_ == Dispatch::kEveryNode) {
      for (NodeId v = 0; v < n; ++v) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inboxes_[v], mb);
        ++delivery_.dispatches;
      }
    } else {
      // Invocation set = receivers + self-awake nodes, in id order (the
      // order is immaterial to semantics — sends deliver next round —
      // but determinism keeps runs reproducible).
      dispatch_set.clear();
      ++dispatch_epoch_;
      for (const NodeId v : touched_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      for (const NodeId v : awake_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      std::sort(dispatch_set.begin(), dispatch_set.end());
      for (const NodeId v : dispatch_set) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inboxes_[v], mb);
        ++delivery_.dispatches;
      }
      // Every previously awake node was just dispatched, and awake() only
      // changes during a dispatch — so re-polling the dispatched set
      // alone keeps awake_ exact.
      awake_.clear();
      for (const NodeId v : dispatch_set)
        if (nodes_[v]->awake()) awake_.push_back(v);
    }

    in_flight_.clear();
    std::swap(in_flight_, next_flight_);

    if (obs_) in_flight_hist_.record(in_flight_.size());
    if (recent_in_flight_.size() >= kLivelockWindow)
      recent_in_flight_.erase(recent_in_flight_.begin());
    recent_in_flight_.emplace_back(round_, in_flight_.size());

    if (dispatch_ == Dispatch::kEveryNode && in_flight_.empty() &&
        !had_traffic)
      break;  // a full round with no traffic in or out
    if (executed >= max_rounds) {
      // Livelock guard: report how much traffic was still circulating in
      // the final rounds — "the round limit elapsed" alone says nothing
      // about whether the protocol was converging or ringing.
      std::ostringstream os;
      os << "simulator exceeded max_rounds=" << max_rounds
         << " (livelock?); in-flight messages over the final rounds:";
      for (const auto& [r, cnt] : recent_in_flight_)
        os << " round " << r << "=" << cnt;
      throw std::runtime_error(os.str());
    }
  }
  rounds_counter_.add(executed);
  quiescence_gauge_.set(round_);
  return executed;
}

}  // namespace manet::net
