#include "net/simulator.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::net {
namespace {

/// Rounds of in-flight history kept for the livelock report.
constexpr std::size_t kLivelockWindow = 8;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// MessageCounts in MessageBody variant order (the order the `net.msg.*`
/// counter handles are registered in) — the flush path diffs two of
/// these to advance the registry by exactly the sends since last flush.
std::array<std::uint64_t, std::variant_size_v<MessageBody>> counts_by_type(
    const MessageCounts& c) {
  return {c.hello,   c.cluster_head, c.non_cluster_head, c.ch_hop1,
          c.ch_hop2, c.gateway,      c.data,             c.maint_hello,
          c.r1_status, c.r2_status};
}

/// Fixed-graph adapter: delivery reads the snapshot's adjacency.
class GraphTopology final : public Topology {
 public:
  explicit GraphTopology(const graph::Graph& g) : g_(g) {}
  std::size_t order() const override { return g_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return g_.neighbors(v);
  }

 private:
  const graph::Graph& g_;
};

}  // namespace

void MessageCounts::count(const MessageBody& body) {
  struct Visitor {
    MessageCounts& c;
    void operator()(const HelloMsg&) { ++c.hello; }
    void operator()(const ClusterHeadMsg&) { ++c.cluster_head; }
    void operator()(const NonClusterHeadMsg&) { ++c.non_cluster_head; }
    void operator()(const ChHop1Msg&) { ++c.ch_hop1; }
    void operator()(const ChHop2Msg&) { ++c.ch_hop2; }
    void operator()(const GatewayMsg&) { ++c.gateway; }
    void operator()(const DataMsg&) { ++c.data; }
    void operator()(const MaintHelloMsg&) { ++c.maint_hello; }
    void operator()(const R1StatusMsg&) { ++c.r1_status; }
    void operator()(const R2StatusMsg&) { ++c.r2_status; }
  };
  std::visit(Visitor{*this}, body);
}

/// Collects one sender's transmissions into a target flight buffer,
/// counting each at send time. Rounds send into next_flight_; start(),
/// on_timer() and inject() send into in_flight_ (delivered in the first
/// round of the next run()).
class Simulator::RoundMailbox final : public Mailbox {
 public:
  RoundMailbox(Simulator& sim, std::vector<Message>& target, NodeId from)
      : sim_(sim), target_(target), from_(from) {}
  void send(MessageBody body) override {
    send_caused(std::move(body), Cause{});
  }
  void send_caused(MessageBody body, Cause cause) override {
    Message m{std::move(body)};
    m.from = from_;
    m.parent_id = cause.id;
    m.depth = cause.id != 0 ? cause.depth + 1 : 0;
    sim_.record_send(m);  // stamps the trace id
    target_.push_back(std::move(m));
  }
  void retarget(NodeId from) { from_ = from; }

 private:
  Simulator& sim_;
  std::vector<Message>& target_;
  NodeId from_;
};

Simulator::Simulator(const graph::Graph& g, const Factory& factory)
    : owned_topo_(std::make_unique<GraphTopology>(g)),
      dispatch_(Dispatch::kEveryNode) {
  topo_ = owned_topo_.get();
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inbox_count_.assign(n, 0);
  inbox_begin_.assign(n, 0);
  inbox_cursor_.assign(n, 0);
  seen_stamp_.assign(n, 0);
}

Simulator::Simulator(const Topology& topo, const Factory& factory,
                     Dispatch dispatch)
    : topo_(&topo), dispatch_(dispatch) {
  MANET_REQUIRE(factory != nullptr, "node factory required");
  const std::size_t n = topo_->order();
  nodes_.reserve(n);
  for (NodeId v = 0; v < n; ++v) nodes_.push_back(factory(v));
  inbox_count_.assign(n, 0);
  inbox_begin_.assign(n, 0);
  inbox_cursor_.assign(n, 0);
  seen_stamp_.assign(n, 0);
}

NodeProcess& Simulator::process(NodeId v) {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

const NodeProcess& Simulator::process(NodeId v) const {
  MANET_REQUIRE(v < nodes_.size(), "node id out of range");
  return *nodes_[v];
}

void Simulator::set_obs(obs::Session* session) {
  // Pending local accumulation belongs to the session that observed the
  // sends — flush through the old handles before they are replaced.
  if (obs_ != nullptr) flush_obs();
  obs_ = session;
  reset_wave_depth_counts();
  for (auto& c : msg_counters_) c = obs::Counter();
  rounds_counter_ = obs::Counter();
  quiescence_gauge_ = obs::Gauge();
  inbox_hist_ = obs::Histogram();
  in_flight_hist_ = obs::Histogram();
  if (!session) return;
  auto& r = session->registry;
  static constexpr const char* kCounterNames[] = {
      "net.msg.hello",       "net.msg.cluster_head",
      "net.msg.non_cluster_head", "net.msg.ch_hop1",
      "net.msg.ch_hop2",     "net.msg.gateway",
      "net.msg.data",        "net.msg.maint_hello",
      "net.msg.r1_status",   "net.msg.r2_status"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kCounterNames) / sizeof(kCounterNames[0]));
  for (std::size_t i = 0; i < std::variant_size_v<MessageBody>; ++i)
    msg_counters_[i] = r.counter(kCounterNames[i]);
  rounds_counter_ = r.counter("net.rounds");
  quiescence_gauge_ = r.gauge("net.quiescence_round");
  inbox_hist_ = r.histogram("net.inbox_size", {1, 2, 4, 8, 16, 32, 64, 128});
  in_flight_hist_ =
      r.histogram("net.in_flight", {1, 4, 16, 64, 256, 1024, 4096});
  // Only sends made while attached count toward the session's registry.
  last_flushed_counts_ = counts_;
}

void Simulator::flush_obs() {
  const auto now = counts_by_type(counts_);
  const auto then = counts_by_type(last_flushed_counts_);
  for (std::size_t i = 0; i < now.size(); ++i)
    if (now[i] != then[i]) msg_counters_[i].add(now[i] - then[i]);
  last_flushed_counts_ = counts_;
  for (std::size_t s = 0; s < inbox_size_counts_.size(); ++s)
    if (inbox_size_counts_[s] != 0) {
      inbox_hist_.record_many(s, inbox_size_counts_[s]);
      inbox_size_counts_[s] = 0;
    }
}

namespace {

/// Journal payload summary (a, b) per message type — the fields the
/// forensic causal slice needs to name what a message carried.
struct JournalSummaryVisitor {
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const MaintHelloMsg& m) const {
    return {m.head, m.is_head ? 1u : 0u};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const R1StatusMsg& m) const {
    return {m.final_ ? 1u : 0u, m.survived ? 1u : 0u};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const R2StatusMsg& m) const {
    return {m.head, (m.final_ ? 1u : 0u) | (m.declared ? 2u : 0u)};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const GatewayMsg& m) const {
    return {m.origin, m.seq};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const ChHop1Msg& m) const {
    return {m.heads.size(), 0};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const ChHop2Msg& m) const {
    return {m.entries.size(), 0};
  }
  std::pair<std::uint64_t, std::uint64_t> operator()(
      const NonClusterHeadMsg& m) const {
    return {m.head, 0};
  }
  template <typename T>
  std::pair<std::uint64_t, std::uint64_t> operator()(const T&) const {
    return {0, 0};
  }
};

std::pair<std::uint64_t, std::uint64_t> journal_summary(
    const MessageBody& body) {
  return std::visit(JournalSummaryVisitor{}, body);
}

}  // namespace

void Simulator::record_send(Message& m) {
  m.trace_id = ++trace_seq_;
  counts_.count(m.body);
  if (observer_) observer_(round_, m);
  if (obs_) {
    // Observed hot path = one journal ring write plus two plain-array
    // increments. The registry counters advance from counts_ deltas in
    // flush_obs(), and the renderable per-send trace events (instant +
    // causal flow arrows) are synthesized from the journal at export
    // time (TraceRecorder::write_chrome_trace with a journal).
    if (m.parent_id != 0) {
      if (m.depth >= depth_counts_.size())
        depth_counts_.resize(m.depth + 1, 0);
      ++depth_counts_[m.depth];
    }
    const auto [a, b] = journal_summary(m.body);
    obs_->journal.record(round_, m.from, message_type_name(m.body),
                         m.trace_id, m.parent_id, m.depth, a, b);
  }
}

void Simulator::inject(NodeId from, MessageBody body) {
  MANET_REQUIRE(from < topo_->order(), "inject source out of range");
  Message m{std::move(body)};
  m.from = from;
  record_send(m);
  in_flight_.push_back(std::move(m));
}

void Simulator::poll_awake() {
  awake_.clear();
  if (dispatch_ != Dispatch::kEventDriven) return;
  for (NodeId v = 0; v < nodes_.size(); ++v)
    if (nodes_[v]->awake()) awake_.push_back(v);
}

void Simulator::trigger_timers() {
  if (!started_) {
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
  }
  const std::uint64_t t0 = now_ns();
  RoundMailbox mb(*this, in_flight_, 0);
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    mb.retarget(v);
    nodes_[v]->on_timer(round_, mb);
  }
  step_ns_ += now_ns() - t0;
  poll_awake();
}

std::uint32_t Simulator::run(std::uint32_t max_rounds) {
  const std::size_t n = topo_->order();

  if (!started_) {
    // start(): nodes queue their round-0 transmissions (HELLO).
    started_ = true;
    RoundMailbox mb(*this, in_flight_, 0);
    for (NodeId v = 0; v < n; ++v) {
      mb.retarget(v);
      nodes_[v]->start(mb);
    }
    poll_awake();
  }

  std::uint32_t executed = 0;
  std::vector<NodeId> dispatch_set;
  while (true) {
    if (dispatch_ == Dispatch::kEventDriven && in_flight_.empty() &&
        awake_.empty())
      break;  // quiescent before the round even starts

    // Deliver last round's transmissions to every current neighbor of
    // the sender. Only inboxes that received something last round are
    // non-empty, so clearing is O(receivers), not O(n).
    const std::uint64_t deliver_t0 = now_ns();
    for (const NodeId w : touched_) {
      inbox_count_[w] = 0;
      ++delivery_.inbox_resets;
    }
    touched_.clear();
    // Counting-sort delivery into the round arena: count per receiver,
    // prefix-place the receivers, then write the pointers in message
    // order (identical inbox order to the old per-node vectors).
    for (const auto& m : in_flight_) {
      for (const NodeId w : topo_->neighbors(m.from)) {
        if (inbox_count_[w]++ == 0) touched_.push_back(w);
        ++delivery_.deliveries;
      }
    }
    std::uint32_t arena_total = 0;
    for (const NodeId w : touched_) {
      inbox_begin_[w] = arena_total;
      inbox_cursor_[w] = arena_total;
      arena_total += inbox_count_[w];
    }
    if (arena_.size() < arena_total) arena_.resize(arena_total);
    for (const auto& m : in_flight_)
      for (const NodeId w : topo_->neighbors(m.from))
        arena_[inbox_cursor_[w]++] = &m;
    deliver_ns_ += now_ns() - deliver_t0;
    const bool had_traffic = !in_flight_.empty();
    if (obs_) {
      // Exact-size occurrence counts in a plain array (touched inboxes
      // are never empty, so index 0 stays unused); flush_obs() folds
      // them into the net.inbox_size histogram after the run.
      for (const NodeId w : touched_) {
        const std::size_t sz = inbox_count_[w];
        if (sz >= inbox_size_counts_.size())
          inbox_size_counts_.resize(sz + 1, 0);
        ++inbox_size_counts_[sz];
      }
    }

    // Let the dispatched nodes react (sends land in next_flight_, so
    // inbox pointers into in_flight_ stay valid all round).
    ++round_;
    ++executed;
    const std::uint64_t step_t0 = now_ns();
    RoundMailbox mb(*this, next_flight_, 0);
    if (dispatch_ == Dispatch::kEveryNode) {
      for (NodeId v = 0; v < n; ++v) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inbox_of(v, arena_), mb);
        ++delivery_.dispatches;
      }
    } else {
      // Invocation set = receivers + self-awake nodes, in id order (the
      // order is immaterial to semantics — sends deliver next round —
      // but determinism keeps runs reproducible).
      dispatch_set.clear();
      ++dispatch_epoch_;
      for (const NodeId v : touched_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      for (const NodeId v : awake_) {
        if (seen_stamp_[v] != dispatch_epoch_) {
          seen_stamp_[v] = dispatch_epoch_;
          dispatch_set.push_back(v);
        }
      }
      std::sort(dispatch_set.begin(), dispatch_set.end());
      for (const NodeId v : dispatch_set) {
        mb.retarget(v);
        nodes_[v]->on_round(round_, inbox_of(v, arena_), mb);
        ++delivery_.dispatches;
      }
      // Every previously awake node was just dispatched, and awake() only
      // changes during a dispatch — so re-polling the dispatched set
      // alone keeps awake_ exact.
      awake_.clear();
      for (const NodeId v : dispatch_set)
        if (nodes_[v]->awake()) awake_.push_back(v);
    }
    step_ns_ += now_ns() - step_t0;

    in_flight_.clear();
    std::swap(in_flight_, next_flight_);

    if (obs_) in_flight_hist_.record(in_flight_.size());
    if (recent_in_flight_.size() >= kLivelockWindow)
      recent_in_flight_.erase(recent_in_flight_.begin());
    recent_in_flight_.emplace_back(round_, in_flight_.size());

    if (dispatch_ == Dispatch::kEveryNode && in_flight_.empty() &&
        !had_traffic)
      break;  // a full round with no traffic in or out
    if (executed >= max_rounds) {
      // Livelock guard: report how much traffic was still circulating in
      // the final rounds — "the round limit elapsed" alone says nothing
      // about whether the protocol was converging or ringing.
      std::ostringstream os;
      os << "simulator exceeded max_rounds=" << max_rounds
         << " (livelock?); in-flight messages over the final rounds:";
      for (const auto& [r, cnt] : recent_in_flight_)
        os << " round " << r << "=" << cnt;
      throw std::runtime_error(os.str());
    }
  }
  rounds_counter_.add(executed);
  quiescence_gauge_.set(round_);
  if (obs_) flush_obs();
  return executed;
}

// ---- Region-sharded maintenance ticks ------------------------------------

/// Collects one region's transmissions, stamping the trace ids the
/// sharded scheme assigns: beacons get the id the sequential
/// trigger_timers would have handed out (base + sender + 1 — every node
/// beacons in id order there), round-phase sends get region-interleaved
/// ids above the beacon block (base + n + k*R + r + 1 for the region's
/// k-th send) so ids stay unique and deterministic no matter how many
/// threads execute the regions. Counting and journaling land in the
/// RegionRun, never in shared simulator state.
class Simulator::ShardMailbox final : public Mailbox {
 public:
  ShardMailbox(const Simulator& sim, RegionRun& rr, bool observed)
      : sim_(sim), rr_(rr), observed_(observed) {}

  void begin_timer(NodeId from) {
    timer_mode_ = true;
    timer_sends_ = 0;
    from_ = from;
    target_ = &rr_.flight;
    journal_round_ = sim_.round_;
  }
  void end_timer() {
    MANET_ASSERT(timer_sends_ == 1,
                 "maintenance timer must send exactly the beacon");
  }
  void begin_round(NodeId from, std::uint32_t local_round) {
    timer_mode_ = false;
    from_ = from;
    target_ = &rr_.next_flight;
    journal_round_ = sim_.round_ + local_round;
  }

  void send(MessageBody body) override {
    send_caused(std::move(body), Cause{});
  }
  void send_caused(MessageBody body, Cause cause) override {
    Message m{std::move(body)};
    m.from = from_;
    m.parent_id = cause.id;
    m.depth = cause.id != 0 ? cause.depth + 1 : 0;
    if (timer_mode_) {
      ++timer_sends_;
      m.trace_id = sim_.sharded_base_ + from_ + 1;
    } else {
      m.trace_id = sim_.sharded_base_ + sim_.sharded_n_ +
                   static_cast<std::uint64_t>(rr_.sends) * rr_.region_count +
                   rr_.region + 1;
      ++rr_.sends;
    }
    rr_.counts.count(m.body);
    if (observed_) {
      if (m.parent_id != 0) {
        if (m.depth >= rr_.depth_counts.size())
          rr_.depth_counts.resize(m.depth + 1, 0);
        ++rr_.depth_counts[m.depth];
      }
      const auto [a, b] = journal_summary(m.body);
      rr_.journal.push_back({journal_round_, m.from,
                             message_type_name(m.body), m.trace_id,
                             m.parent_id, m.depth, a, b});
    }
    target_->push_back(std::move(m));
  }

 private:
  const Simulator& sim_;
  RegionRun& rr_;
  bool observed_;
  bool timer_mode_ = false;
  std::uint32_t timer_sends_ = 0;
  NodeId from_ = 0;
  std::vector<Message>* target_ = nullptr;
  std::uint32_t journal_round_ = 0;
};

std::uint64_t Simulator::begin_sharded_tick() {
  MANET_REQUIRE(dispatch_ == Dispatch::kEventDriven,
                "sharded ticks need event-driven dispatch");
  MANET_REQUIRE(observer_ == nullptr,
                "per-send observers are unsupported in sharded mode");
  MANET_REQUIRE(in_flight_.empty() && next_flight_.empty(),
                "sharded tick opened with legacy traffic in flight");
  started_ = true;
  // The previous tick's regional final touched: the sequential engine
  // would clear (and count) these in its next round 1; the count is
  // carried in pending_inbox_resets_, the clear happens here.
  for (const NodeId w : sharded_dirty_) inbox_count_[w] = 0;
  sharded_dirty_.clear();
  sharded_base_ = trace_seq_;
  sharded_n_ = topo_->order();
  return sharded_base_;
}

void Simulator::run_region(RegionRun& rr, const std::uint32_t* scope_tag,
                           const std::function<void(NodeId)>& before_timer,
                           const std::function<void(NodeId)>& after_timer,
                           std::uint32_t max_rounds) {
  rr.rounds = 0;
  rr.sends = 0;
  rr.counts = MessageCounts{};
  rr.delivery = DeliveryStats{};
  rr.round1_deliveries = 0;
  rr.cross_scope_late = 0;
  rr.deliver_ns = 0;
  rr.step_ns = 0;
  rr.queued.clear();
  rr.touched_by_round.clear();
  rr.final_touched.clear();
  rr.inbox_size_counts.clear();
  rr.depth_counts.clear();
  rr.journal.clear();
  rr.flight.clear();
  rr.next_flight.clear();
  rr.touched.clear();
  rr.awake.clear();

  const bool observed = obs_ != nullptr;
  ShardMailbox mb(*this, rr, observed);
  const std::uint32_t tag = rr.region + 1;

  // Timer phase: every scope node beacons (trace id base+v+1, exactly
  // the sequential assignment). The hooks let the engine bind per-lane
  // scratch before and synthesize out-of-scope heard marks after.
  const std::uint64_t timer_t0 = now_ns();
  for (const NodeId v : rr.scope) {
    if (before_timer) before_timer(v);
    mb.begin_timer(v);
    nodes_[v]->on_timer(round_, mb);
    mb.end_timer();
    if (after_timer) after_timer(v);
  }
  for (const NodeId v : rr.scope)
    if (nodes_[v]->awake()) rr.awake.push_back(v);
  rr.step_ns += now_ns() - timer_t0;

  while (true) {
    if (rr.flight.empty() && rr.awake.empty()) break;
    const std::uint32_t j = rr.rounds + 1;

    // Clear the previous local round's inboxes. Resets are not counted
    // here: the merge reproduces the sequential engine's reset count
    // analytically (whole rounds of it never happen locally).
    const std::uint64_t deliver_t0 = now_ns();
    for (const NodeId w : rr.touched) inbox_count_[w] = 0;
    rr.touched.clear();
    // Counting-sort delivery, like run() but scope-filtered and into the
    // region's private arena. The shared count/begin/cursor arrays are
    // only written at in-scope indices, so concurrent regions (disjoint
    // scopes) never touch the same entries.
    for (const auto& m : rr.flight) {
      for (const NodeId w : topo_->neighbors(m.from)) {
        if (scope_tag[w] != tag) {
          // Round 1: a boundary beacon heard outside the region —
          // expected, bulk-accounted (2E covers every beacon delivery).
          // Later rounds: a repair wave escaping its painted region
          // would break independence; count it for the property test.
          if (j >= 2) ++rr.cross_scope_late;
          continue;
        }
        if (inbox_count_[w]++ == 0) rr.touched.push_back(w);
        ++rr.delivery.deliveries;
        if (j == 1) ++rr.round1_deliveries;
      }
    }
    std::uint32_t arena_total = 0;
    for (const NodeId w : rr.touched) {
      inbox_begin_[w] = arena_total;
      inbox_cursor_[w] = arena_total;
      arena_total += inbox_count_[w];
    }
    if (rr.arena.size() < arena_total) rr.arena.resize(arena_total);
    for (const auto& m : rr.flight)
      for (const NodeId w : topo_->neighbors(m.from))
        if (scope_tag[w] == tag) rr.arena[inbox_cursor_[w]++] = &m;
    rr.deliver_ns += now_ns() - deliver_t0;
    rr.touched_by_round.push_back(
        static_cast<std::uint32_t>(rr.touched.size()));
    if (observed && j >= 2) {
      for (const NodeId w : rr.touched) {
        const std::size_t sz = inbox_count_[w];
        if (sz >= rr.inbox_size_counts.size())
          rr.inbox_size_counts.resize(sz + 1, 0);
        ++rr.inbox_size_counts[sz];
      }
    }

    // Dispatch = receivers + self-awake nodes, in id order (matching
    // the sequential dispatch set restricted to the scope). Awake nodes
    // with a non-empty inbox are already in touched.
    rr.dispatch.clear();
    rr.dispatch.insert(rr.dispatch.end(), rr.touched.begin(),
                       rr.touched.end());
    for (const NodeId v : rr.awake)
      if (inbox_count_[v] == 0) rr.dispatch.push_back(v);
    std::sort(rr.dispatch.begin(), rr.dispatch.end());
    ++rr.rounds;
    const std::uint64_t step_t0 = now_ns();
    for (const NodeId v : rr.dispatch) {
      mb.begin_round(v, j);
      nodes_[v]->on_round(round_ + j, inbox_of(v, rr.arena), mb);
      ++rr.delivery.dispatches;
    }
    rr.awake.clear();
    for (const NodeId v : rr.dispatch)
      if (nodes_[v]->awake()) rr.awake.push_back(v);
    rr.step_ns += now_ns() - step_t0;

    rr.flight.clear();
    std::swap(rr.flight, rr.next_flight);
    rr.queued.push_back(rr.flight.size());

    if (rr.rounds >= max_rounds)
      throw std::runtime_error(
          "region run exceeded max_rounds (livelock?)");
  }
  rr.final_touched = rr.touched;
}

std::uint32_t Simulator::finish_sharded_tick(std::span<RegionRun> regions,
                                             const ShardedMergeInputs& bulk) {
  std::uint32_t rounds = 1;
  for (const RegionRun& rr : regions) rounds = std::max(rounds, rr.rounds);

  // Sends: the regions' own counts plus one beacon per out-of-scope
  // node (the sequential tick beacons all n; quiescent nodes' beacons
  // cause nothing, so skipping them changes no other counter).
  std::size_t round1_in_scope = 0;
  std::uint32_t max_sends = 0;
  for (const RegionRun& rr : regions) {
    counts_ += rr.counts;
    delivery_.deliveries += rr.delivery.deliveries;
    delivery_.dispatches += rr.delivery.dispatches;
    round1_in_scope += rr.round1_deliveries;
    cross_scope_late_ += rr.cross_scope_late;
    deliver_ns_ += rr.deliver_ns;
    step_ns_ += rr.step_ns;
    max_sends = std::max(max_sends, rr.sends);
  }
  counts_.maint_hello += bulk.n_total - bulk.scope_total;
  // Round 1 delivers every beacon to every neighbor: 2E deliveries in
  // the sequential tick, of which the regions performed their in-scope
  // share physically.
  delivery_.deliveries += bulk.edges2 - round1_in_scope;
  // Round 1 dispatches every node with a non-empty inbox (degree > 0)
  // or awake after its timer (non-empty cache — for out-of-scope nodes
  // the two coincide: their links did not change). In-scope round-1
  // dispatches are already in the regions' counts.
  delivery_.dispatches += bulk.degpos_total - bulk.degpos_in_scope;

  // Inbox resets, exactly as the sequential engine counts them: round 1
  // clears the previous tick's final touched (V_{T-1}); round 2 — if it
  // happens anywhere — clears all degpos beacon inboxes; later rounds
  // clear the previous round's receivers. The final round's receivers
  // are never cleared this tick: they carry to the next (V_T).
  delivery_.inbox_resets += pending_inbox_resets_;
  if (rounds >= 2) {
    delivery_.inbox_resets += bulk.degpos_total;
    for (std::uint32_t j = 2; j + 1 <= rounds; ++j)
      for (const RegionRun& rr : regions)
        if (j <= rr.rounds) delivery_.inbox_resets += rr.touched_by_round[j - 1];
    pending_inbox_resets_ = 0;
    for (const RegionRun& rr : regions)
      if (rr.rounds == rounds)
        pending_inbox_resets_ += rr.touched_by_round[rounds - 1];
  } else {
    pending_inbox_resets_ = bulk.degpos_total;
  }
  for (const RegionRun& rr : regions)
    sharded_dirty_.insert(sharded_dirty_.end(), rr.final_touched.begin(),
                          rr.final_touched.end());

  // Trace ids: n beacon ids (assigned whether or not materialized) plus
  // the regions' interleaved round-phase block.
  trace_seq_ = sharded_base_ + bulk.n_total +
               static_cast<std::uint64_t>(max_sends) * regions.size();

  if (obs_ != nullptr) {
    // Region-ascending journal flush + summed accumulator merges keep
    // every observable bitwise-identical across thread counts.
    for (const RegionRun& rr : regions)
      for (const ShardJournalEntry& e : rr.journal)
        obs_->journal.record(e.round, e.from, e.type, e.trace_id,
                             e.parent_id, e.depth, e.a, e.b);
    for (const RegionRun& rr : regions) {
      if (rr.depth_counts.size() > depth_counts_.size())
        depth_counts_.resize(rr.depth_counts.size(), 0);
      for (std::size_t d = 0; d < rr.depth_counts.size(); ++d)
        depth_counts_[d] += rr.depth_counts[d];
      if (rr.inbox_size_counts.size() > inbox_size_counts_.size())
        inbox_size_counts_.resize(rr.inbox_size_counts.size(), 0);
      for (std::size_t s = 0; s < rr.inbox_size_counts.size(); ++s)
        inbox_size_counts_[s] += rr.inbox_size_counts[s];
    }
    // Round 1 inbox sizes are the degree histogram (every degpos node's
    // inbox holds exactly its neighbors' beacons).
    if (!bulk.deg_count.empty() &&
        bulk.deg_count.size() > inbox_size_counts_.size())
      inbox_size_counts_.resize(bulk.deg_count.size(), 0);
    for (std::size_t d = 1; d < bulk.deg_count.size(); ++d)
      inbox_size_counts_[d] += static_cast<std::uint32_t>(bulk.deg_count[d]);
  }
  for (std::uint32_t k = 1; k <= rounds; ++k) {
    std::size_t queued = 0;
    for (const RegionRun& rr : regions)
      if (k <= rr.rounds) queued += rr.queued[k - 1];
    if (obs_ != nullptr) in_flight_hist_.record(queued);
    if (recent_in_flight_.size() >= kLivelockWindow)
      recent_in_flight_.erase(recent_in_flight_.begin());
    recent_in_flight_.emplace_back(round_ + k, queued);
  }

  round_ += rounds;
  rounds_counter_.add(rounds);
  quiescence_gauge_.set(round_);
  if (obs_ != nullptr) flush_obs();
  return rounds;
}

}  // namespace manet::net
