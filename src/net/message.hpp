// Wire messages of the distributed backbone protocols: the construction
// phase (paper §3: HELLO, CLUSTER_HEAD, NON_CLUSTER_HEAD, CH_HOP1,
// CH_HOP2, GATEWAY, DATA) and the maintenance phase (src/proto:
// MAINT_HELLO beacons plus the LCC rule-1/rule-2 repair announcements;
// CH_HOP1/CH_HOP2/GATEWAY are reused as the incremental row and
// selection updates).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"

namespace manet::net {

/// Round-0 neighbor discovery beacon.
struct HelloMsg {};

/// "I am a clusterhead."
struct ClusterHeadMsg {};

/// "I joined cluster `head`."
struct NonClusterHeadMsg {
  NodeId head;
};

/// A non-clusterhead's 1-hop neighboring clusterheads.
struct ChHop1Msg {
  NodeSet heads;
};

/// A non-clusterhead's 2-hop clusterhead entries (head, via).
struct ChHop2Msg {
  std::vector<core::Hop2Entry> entries;
};

/// A clusterhead's gateway announcement, flooded 2 hops by the selected
/// nodes themselves (TTL counts remaining forwards). The maintenance
/// protocol reuses it as the incremental selection update, stamped with
/// a per-origin sequence number so cached re-announcements (sent to
/// newly formed links) can never roll a fresher selection back.
struct GatewayMsg {
  NodeId origin;     ///< selecting clusterhead
  NodeSet selected;  ///< its gateways (first- and second-hop)
  std::uint8_t ttl;
  std::uint32_t seq = 0;  ///< maintenance: origin's selection version
};

/// A broadcast data packet of the SD-CDS dynamic backbone: the upstream
/// clusterhead's identity, coverage set and forward-node set ride on the
/// packet (paper §3, "Broadcasting in a Cluster-Based SD-CDS Backbone").
struct DataMsg {
  NodeId origin_head;   ///< upstream head (kInvalidNode for a handoff)
  NodeSet coverage;     ///< C(origin) piggyback
  NodeSet forward_set;  ///< F(origin) piggyback
};

/// Maintenance-phase HELLO beacon (src/proto): sent once per mobility
/// tick by every node. Carries the sender's cluster status (so new
/// neighbors can seed their caches and heads can spot added head-head
/// edges); receipt alone is the paper's bidirectional-link verification
/// — a node that misses a neighbor's beacon expires the link. No row
/// payload rides on it (receivers never read one), which keeps the
/// per-tick all-nodes beacon storm allocation-free.
struct MaintHelloMsg {
  bool is_head;
  NodeId head;  ///< sender's clusterhead (itself when is_head)
};

/// LCC rule-1 announcement of an affected previous head (one whose
/// neighborhood gained a head-head edge this tick). `final_` false means
/// "my survival depends on a smaller affected head, decision pending" —
/// members hearing it know they may have to re-affiliate.
struct R1StatusMsg {
  bool final_;
  bool survived;  ///< meaningful only when final_
};

/// LCC rule-2 announcement of a node whose affiliation broke (or may
/// break). Pending first, then final with the chosen head; `declared`
/// marks a self-declaration (the sender is now a clusterhead).
struct R2StatusMsg {
  bool final_;
  NodeId head;    ///< new affiliation (sender id when declared)
  bool declared;  ///< sender became a clusterhead
};

/// Message body (one alternative per protocol message type).
using MessageBody =
    std::variant<HelloMsg, ClusterHeadMsg, NonClusterHeadMsg, ChHop1Msg,
                 ChHop2Msg, GatewayMsg, DataMsg, MaintHelloMsg, R1StatusMsg,
                 R2StatusMsg>;

/// A transmission on the (ideal, collision-free) broadcast medium.
///
/// The causal envelope: `trace_id` is a per-simulator monotonic send
/// sequence number stamped at transmission (seq-derived, never
/// wall-clock, so two runs of the same seed assign identical ids);
/// `parent_id` names the message that caused this send (0 = a wave root,
/// e.g. a timer-paced beacon); `depth` counts causal hops from the root.
/// The ids feed the flow events and the journal of an attached
/// obs::Session — protocols that don't declare causes simply send roots.
///
/// Field order packs the two 32-bit fields together after the 8-aligned
/// ones: a million-message flight buffer is measurably smaller than with
/// the naive declaration order (one pointer-size hole per message gone).
struct Message {
  MessageBody body;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_id = 0;
  NodeId from = 0;
  std::uint32_t depth = 0;
};

/// Wire name of a message body's alternative (trace labels, reports).
inline const char* message_type_name(const MessageBody& body) {
  static constexpr const char* kNames[] = {
      "HELLO",   "CLUSTER_HEAD", "NON_CLUSTER_HEAD",
      "CH_HOP1", "CH_HOP2",      "GATEWAY",
      "DATA",    "MAINT_HELLO",  "R1_STATUS",
      "R2_STATUS"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kNames) / sizeof(kNames[0]));
  return kNames[body.index()];
}

/// Per-type transmission counters — the material for the paper's O(n)
/// communication-complexity claim.
struct MessageCounts {
  std::size_t hello = 0;
  std::size_t cluster_head = 0;
  std::size_t non_cluster_head = 0;
  std::size_t ch_hop1 = 0;
  std::size_t ch_hop2 = 0;
  std::size_t gateway = 0;
  std::size_t data = 0;
  std::size_t maint_hello = 0;
  std::size_t r1_status = 0;
  std::size_t r2_status = 0;

  /// Construction-phase total (HELLO through GATEWAY).
  std::size_t total() const {
    return hello + cluster_head + non_cluster_head + ch_hop1 + ch_hop2 +
           gateway;
  }

  /// Maintenance-phase total: beacons, repair announcements, and the
  /// reused row/selection updates (src/proto never sends the
  /// construction-only types).
  std::size_t maintenance_total() const {
    return maint_hello + r1_status + r2_status + ch_hop1 + ch_hop2 + gateway;
  }

  void count(const MessageBody& body);

  MessageCounts& operator+=(const MessageCounts& b) {
    hello += b.hello;
    cluster_head += b.cluster_head;
    non_cluster_head += b.non_cluster_head;
    ch_hop1 += b.ch_hop1;
    ch_hop2 += b.ch_hop2;
    gateway += b.gateway;
    data += b.data;
    maint_hello += b.maint_hello;
    r1_status += b.r1_status;
    r2_status += b.r2_status;
    return *this;
  }

  friend MessageCounts operator-(MessageCounts a, const MessageCounts& b) {
    a.hello -= b.hello;
    a.cluster_head -= b.cluster_head;
    a.non_cluster_head -= b.non_cluster_head;
    a.ch_hop1 -= b.ch_hop1;
    a.ch_hop2 -= b.ch_hop2;
    a.gateway -= b.gateway;
    a.data -= b.data;
    a.maint_hello -= b.maint_hello;
    a.r1_status -= b.r1_status;
    a.r2_status -= b.r2_status;
    return a;
  }
};

}  // namespace manet::net
