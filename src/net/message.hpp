// Wire messages of the distributed backbone-construction protocol
// (paper §3): HELLO, CLUSTER_HEAD, NON_CLUSTER_HEAD, CH_HOP1, CH_HOP2
// and GATEWAY.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"

namespace manet::net {

/// Round-0 neighbor discovery beacon.
struct HelloMsg {};

/// "I am a clusterhead."
struct ClusterHeadMsg {};

/// "I joined cluster `head`."
struct NonClusterHeadMsg {
  NodeId head;
};

/// A non-clusterhead's 1-hop neighboring clusterheads.
struct ChHop1Msg {
  NodeSet heads;
};

/// A non-clusterhead's 2-hop clusterhead entries (head, via).
struct ChHop2Msg {
  std::vector<core::Hop2Entry> entries;
};

/// A clusterhead's gateway announcement, flooded 2 hops by the selected
/// nodes themselves (TTL counts remaining forwards).
struct GatewayMsg {
  NodeId origin;     ///< selecting clusterhead
  NodeSet selected;  ///< its gateways (first- and second-hop)
  std::uint8_t ttl;
};

/// A broadcast data packet of the SD-CDS dynamic backbone: the upstream
/// clusterhead's identity, coverage set and forward-node set ride on the
/// packet (paper §3, "Broadcasting in a Cluster-Based SD-CDS Backbone").
struct DataMsg {
  NodeId origin_head;   ///< upstream head (kInvalidNode for a handoff)
  NodeSet coverage;     ///< C(origin) piggyback
  NodeSet forward_set;  ///< F(origin) piggyback
};

/// Message body (one alternative per protocol message type).
using MessageBody = std::variant<HelloMsg, ClusterHeadMsg, NonClusterHeadMsg,
                                 ChHop1Msg, ChHop2Msg, GatewayMsg, DataMsg>;

/// A transmission on the (ideal, collision-free) broadcast medium.
struct Message {
  NodeId from;
  MessageBody body;
};

/// Wire name of a message body's alternative (trace labels, reports).
inline const char* message_type_name(const MessageBody& body) {
  static constexpr const char* kNames[] = {
      "HELLO",   "CLUSTER_HEAD", "NON_CLUSTER_HEAD",
      "CH_HOP1", "CH_HOP2",      "GATEWAY",
      "DATA"};
  static_assert(std::variant_size_v<MessageBody> ==
                sizeof(kNames) / sizeof(kNames[0]));
  return kNames[body.index()];
}

/// Per-type transmission counters — the material for the paper's O(n)
/// communication-complexity claim.
struct MessageCounts {
  std::size_t hello = 0;
  std::size_t cluster_head = 0;
  std::size_t non_cluster_head = 0;
  std::size_t ch_hop1 = 0;
  std::size_t ch_hop2 = 0;
  std::size_t gateway = 0;
  std::size_t data = 0;

  /// Construction-phase total (HELLO through GATEWAY).
  std::size_t total() const {
    return hello + cluster_head + non_cluster_head + ch_hop1 + ch_hop2 +
           gateway;
  }

  void count(const MessageBody& body);
};

}  // namespace manet::net
