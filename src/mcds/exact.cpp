#include "mcds/exact.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"
#include "mcds/greedy.hpp"

namespace manet::mcds {
namespace {

class Solver {
 public:
  Solver(const graph::Graph& g, const ExactOptions& options)
      : g_(g),
        options_(options),
        in_set_(g.order(), 0),
        dominator_count_(g.order(), 0) {
    best_ = greedy_cds(g);  // incumbent upper bound
  }

  NodeSet solve() {
    branch();
    return best_;
  }

 private:
  void add(NodeId u) {
    in_set_[u] = 1;
    chosen_.push_back(u);
    ++dominator_count_[u];
    for (NodeId w : g_.neighbors(u)) ++dominator_count_[w];
  }

  void remove(NodeId u) {
    in_set_[u] = 0;
    chosen_.pop_back();
    --dominator_count_[u];
    for (NodeId w : g_.neighbors(u)) --dominator_count_[w];
  }

  NodeId first_undominated() const {
    for (NodeId v = 0; v < g_.order(); ++v)
      if (dominator_count_[v] == 0) return v;
    return kInvalidNode;
  }

  /// Components of the chosen set, as (component index per chosen node).
  std::size_t chosen_component_count(std::vector<NodeId>* of_first = nullptr)
      const {
    std::size_t comps = 0;
    std::vector<char> seen(g_.order(), 0);
    NodeId first_comp_member = kInvalidNode;
    for (NodeId s : chosen_) {
      if (seen[s]) continue;
      if (comps == 0) first_comp_member = s;
      ++comps;
      std::vector<NodeId> stack{s};
      seen[s] = 1;
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        for (NodeId w : g_.neighbors(v)) {
          if (in_set_[w] && !seen[w]) {
            seen[w] = 1;
            stack.push_back(w);
          }
        }
      }
    }
    if (of_first != nullptr && first_comp_member != kInvalidNode) {
      // Re-walk the first component to report its members.
      std::vector<char> seen2(g_.order(), 0);
      std::vector<NodeId> stack{first_comp_member};
      seen2[first_comp_member] = 1;
      while (!stack.empty()) {
        const NodeId v = stack.back();
        stack.pop_back();
        of_first->push_back(v);
        for (NodeId w : g_.neighbors(v)) {
          if (in_set_[w] && !seen2[w]) {
            seen2[w] = 1;
            stack.push_back(w);
          }
        }
      }
    }
    return comps;
  }

  /// Lower bound on extra vertices needed from here.
  std::size_t remaining_lower_bound(std::size_t comps) const {
    std::size_t undominated = 0;
    for (NodeId v = 0; v < g_.order(); ++v)
      if (dominator_count_[v] == 0) ++undominated;
    const std::size_t dom_lb =
        undominated == 0
            ? 0
            : (undominated + g_.max_degree()) / (g_.max_degree() + 1);
    const std::size_t conn_lb = comps > 1 ? comps - 1 : 0;
    return std::max(dom_lb, conn_lb);
  }

  void branch() {
    if (++search_nodes_ > options_.max_search_nodes)
      throw std::runtime_error("exact_mcds: search-node budget exceeded");

    const std::size_t comps = chosen_.empty() ? 0 : chosen_component_count();
    if (chosen_.size() + remaining_lower_bound(comps) >= best_.size())
      return;  // cannot improve the incumbent

    const NodeId v = first_undominated();
    if (v != kInvalidNode) {
      // Some member of N[v] must be in any dominating set.
      add(v);
      branch();
      remove(v);
      for (NodeId u : g_.neighbors(v)) {
        add(u);
        branch();
        remove(u);
      }
      return;
    }

    // Everything dominated. Connected?
    if (comps <= 1) {
      if (chosen_.size() < best_.size()) {
        best_.assign(chosen_.begin(), chosen_.end());
        std::sort(best_.begin(), best_.end());
      }
      return;
    }
    // Merge components: any connected superset must pick a neighbor of
    // the first component that is not yet chosen.
    std::vector<NodeId> first_comp;
    chosen_component_count(&first_comp);
    NodeSet frontier;
    for (NodeId s : first_comp)
      for (NodeId w : g_.neighbors(s))
        if (!in_set_[w]) insert_sorted(frontier, w);
    for (NodeId u : frontier) {
      add(u);
      branch();
      remove(u);
    }
  }

  const graph::Graph& g_;
  ExactOptions options_;
  std::vector<char> in_set_;
  std::vector<std::uint32_t> dominator_count_;
  std::vector<NodeId> chosen_;
  NodeSet best_;
  std::size_t search_nodes_ = 0;
};

}  // namespace

NodeSet exact_mcds(const graph::Graph& g, const ExactOptions& options) {
  MANET_REQUIRE(g.order() > 0, "exact_mcds needs a non-empty graph");
  MANET_REQUIRE(graph::is_connected(g), "exact_mcds needs a connected graph");
  if (g.order() == 1) return {0};
  NodeSet result = Solver(g, options).solve();
  MANET_ASSERT(graph::is_connected_dominating_set(g, result),
               "solver returned a non-CDS");
  return result;
}

}  // namespace manet::mcds
