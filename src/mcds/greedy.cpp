#include "mcds/greedy.hpp"

#include "common/assert.hpp"
#include "graph/algorithms.hpp"
#include "graph/bitset.hpp"

namespace manet::mcds {

NodeSet greedy_cds(const graph::Graph& g) {
  const std::size_t n = g.order();
  MANET_REQUIRE(n > 0, "greedy_cds needs a non-empty graph");
  MANET_REQUIRE(graph::is_connected(g), "greedy_cds needs a connected graph");
  if (n == 1) return {0};

  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(n, kWhite);
  // Collected in a bitset, materialized sorted once at the end.
  graph::NodeBitset cds(n);

  auto blacken = [&](NodeId v) {
    color[v] = kBlack;
    cds.set(v);
    for (NodeId w : g.neighbors(v))
      if (color[w] == kWhite) color[w] = kGray;
  };

  // Seed with the max-degree vertex.
  NodeId seed = 0;
  for (NodeId v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(seed)) seed = v;
  blacken(seed);

  std::size_t white_left = 0;
  for (char c : color)
    if (c == kWhite) ++white_left;

  while (white_left > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (color[v] != kGray) continue;
      std::size_t gain = 0;
      for (NodeId w : g.neighbors(v))
        if (color[w] == kWhite) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    MANET_ASSERT(best != kInvalidNode,
                 "connected graph always has a helpful gray vertex");
    white_left -= best_gain;
    blacken(best);
  }
  // A singleton dominating tree can appear when the seed dominates
  // everything; that is still a CDS.
  return cds.to_node_set();
}

}  // namespace manet::mcds
