#include "mcds/wu_li.hpp"

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::mcds {
namespace {

/// N[v] as a sorted set.
NodeSet closed(const graph::Graph& g, NodeId v) {
  const auto nb = g.neighbors(v);
  NodeSet out(nb.begin(), nb.end());
  insert_sorted(out, v);
  return out;
}

}  // namespace

NodeSet wu_li_marked(const graph::Graph& g) {
  NodeSet marked;
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto nb = g.neighbors(v);
    bool has_unconnected_pair = false;
    for (std::size_t i = 0; i < nb.size() && !has_unconnected_pair; ++i)
      for (std::size_t j = i + 1; j < nb.size(); ++j)
        if (!g.has_edge(nb[i], nb[j])) {
          has_unconnected_pair = true;
          break;
        }
    if (has_unconnected_pair) marked.push_back(v);
  }
  if (marked.empty() && g.order() > 0) marked.push_back(0);  // complete graph
  return marked;
}

NodeSet wu_li_cds(const graph::Graph& g, const WuLiOptions& options) {
  MANET_REQUIRE(g.order() > 0, "wu_li_cds needs a non-empty graph");
  MANET_REQUIRE(graph::is_connected(g), "wu_li_cds needs a connected graph");
  const NodeSet marked = wu_li_marked(g);
  if (marked.size() <= 1) return marked;

  // Both rules are evaluated against the *original* marking, so the
  // unmark decisions are order-independent (as in the paper).
  std::vector<char> unmark(g.order(), 0);
  for (NodeId v : marked) {
    const NodeSet nv_closed = closed(g, v);
    const auto nb = g.neighbors(v);

    if (options.rule1) {
      for (NodeId u : nb) {
        if (!contains_sorted(marked, u) || v >= u) continue;
        if (is_subset(nv_closed, closed(g, u))) {
          unmark[v] = 1;
          break;
        }
      }
    }
    if (options.rule2 && !unmark[v]) {
      NodeSet nv_open(nb.begin(), nb.end());
      for (std::size_t i = 0; i < nb.size() && !unmark[v]; ++i) {
        const NodeId u = nb[i];
        if (!contains_sorted(marked, u) || v >= u) continue;
        for (std::size_t j = i + 1; j < nb.size(); ++j) {
          const NodeId w = nb[j];
          if (!contains_sorted(marked, w) || v >= w) continue;
          const auto nu = g.neighbors(u);
          const auto nw = g.neighbors(w);
          const NodeSet cover = set_union(NodeSet(nu.begin(), nu.end()),
                                          NodeSet(nw.begin(), nw.end()));
          if (is_subset(nv_open, cover)) {
            unmark[v] = 1;
            break;
          }
        }
      }
    }
  }

  NodeSet cds;
  for (NodeId v : marked)
    if (!unmark[v]) cds.push_back(v);
  // Degenerate safeguard: pruning rules never empty a valid marking, but
  // keep the invariant explicit for the CDS contract.
  MANET_ASSERT(!cds.empty(), "pruning rules must leave a non-empty CDS");
  return cds;
}

}  // namespace manet::mcds
