#include "mcds/bounds.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::mcds {

std::size_t domination_lower_bound(const graph::Graph& g) {
  MANET_REQUIRE(g.order() > 0, "bound needs a non-empty graph");
  const std::size_t cap = g.max_degree() + 1;
  return (g.order() + cap - 1) / cap;
}

std::size_t diameter_lower_bound(const graph::Graph& g) {
  MANET_REQUIRE(g.order() > 0, "bound needs a non-empty graph");
  const auto diam = graph::diameter(g);
  MANET_REQUIRE(diam != graph::kUnreachable, "bound needs a connected graph");
  // Endpoints of a diametral path need diam-1 internal connectors; any
  // CDS contains a connected dominating path for them of at least that
  // many vertices. Every non-empty CDS has >= 1 member.
  return std::max<std::size_t>(1, diam > 0 ? diam - 1 : 1);
}

std::size_t mcds_lower_bound(const graph::Graph& g) {
  return std::max(domination_lower_bound(g), diameter_lower_bound(g));
}

}  // namespace manet::mcds
