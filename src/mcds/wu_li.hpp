// The Wu & Li marking process with Rules 1 and 2 (DIALM'99) — the
// classical localized SI-CDS construction cited in the paper's §2.
//
// Marking: a node is marked iff it has two neighbors that are not
// adjacent to each other. For a connected graph the marked set is a CDS
// (or empty when the graph is complete, in which case any single vertex
// serves). Two pruning rules shrink it, evaluated simultaneously against
// the original marking:
//   Rule 1: unmark v if N[v] ⊆ N[u] for some marked neighbor u with
//           id(v) < id(u).
//   Rule 2: unmark v if N(v) ⊆ N(u) ∪ N(w) for two marked neighbors
//           u, w and id(v) = min(id(v), id(u), id(w)).
#pragma once

#include <string>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::mcds {

/// Which pruning rules to apply after marking.
struct WuLiOptions {
  bool rule1 = true;
  bool rule2 = true;
};

/// The marked set before pruning (plus the complete-graph fallback {0}).
NodeSet wu_li_marked(const graph::Graph& g);

/// The Wu–Li CDS of a connected, non-empty graph.
NodeSet wu_li_cds(const graph::Graph& g, const WuLiOptions& options = {});

}  // namespace manet::mcds
