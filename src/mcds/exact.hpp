// Exact minimum connected dominating set by branch and bound.
//
// Finding an MCDS is NP-complete (also on unit disk graphs), so this
// solver is for small instances only — it exists to measure the *actual*
// approximation ratios of the static/dynamic backbones and MO_CDS against
// the true optimum (the paper's "constant approximation ratio" claim).
//
// Search: branch on the lowest-id undominated vertex (some member of its
// closed neighborhood must join the set); once dominating, branch on
// frontier vertices to connect the components. Bounds: the greedy CDS
// seeds the incumbent; |S| + (#components(S) - 1) prunes connectivity
// work; a lower bound from disjoint closed neighborhoods prunes
// domination work.
#pragma once

#include <cstddef>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::mcds {

/// Exact-solver knobs.
struct ExactOptions {
  /// Hard cap on explored search nodes (throws std::runtime_error when
  /// exceeded, so callers never hang on an oversized instance).
  std::size_t max_search_nodes = 50'000'000;
};

/// An exact MCDS of a connected, non-empty graph.
NodeSet exact_mcds(const graph::Graph& g, const ExactOptions& options = {});

}  // namespace manet::mcds
