// Lower bounds on the minimum CDS size.
//
// The exact solver caps out around 20 nodes, but approximation ratios at
// paper scale (n = 100) still need a denominator. Two classical sound
// bounds, cheap to compute on any connected graph:
//
//  * domination bound — a vertex dominates at most Δ+1 vertices, so any
//    dominating set has at least ceil(n / (Δ+1)) members;
//  * diameter bound — a CDS must contain an internal vertex of some
//    shortest path between any two vertices, and the subgraph it induces
//    must span their distance: |CDS| >= diam(G) - 1.
//
// mcds_lower_bound returns the max of the two; every ratio reported by
// bench/approx_ratio at large n divides by this certificate.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace manet::mcds {

/// ceil(n / (max_degree + 1)); sound for any dominating set.
std::size_t domination_lower_bound(const graph::Graph& g);

/// diameter - 1 (>= 1 for non-complete connected graphs); requires a
/// connected, non-empty graph.
std::size_t diameter_lower_bound(const graph::Graph& g);

/// max of the two bounds; requires a connected, non-empty graph.
std::size_t mcds_lower_bound(const graph::Graph& g);

}  // namespace manet::mcds
