// Greedy connected dominating set (Guha–Khuller flavor).
//
// Grows one black tree: start from the maximum-degree vertex; repeatedly
// blacken the gray (covered, tree-adjacent) vertex that whitens the most
// uncovered vertices. Used as the upper bound seeding the exact solver
// and as an extra comparison point in the approximation-ratio bench.
#pragma once

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::mcds {

/// Greedy CDS of a connected graph (singleton for order <= 1; the whole
/// dominating tree otherwise). Requires a connected, non-empty graph.
NodeSet greedy_cds(const graph::Graph& g);

}  // namespace manet::mcds
