// Random-direction mobility — the second standard MANET movement model.
//
// Each node picks a uniform heading and speed, travels until it hits the
// area boundary (or its travel-time budget expires), pauses, and picks a
// fresh heading. Compared to random waypoint, node density stays uniform
// over the area (waypoint concentrates nodes in the middle), which makes
// it the fairer model for churn experiments near the border.
#pragma once

#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "geom/point.hpp"
#include "geom/unit_disk.hpp"
#include "graph/graph.hpp"

namespace manet::mobility {

/// Random-direction parameters.
struct RandomDirectionConfig {
  double width = 100.0;
  double height = 100.0;
  double min_speed = 0.5;
  double max_speed = 2.0;
  double pause_time = 1.0;
  /// Maximum travel time before re-drawing a heading even without
  /// hitting a wall.
  double max_leg_time = 20.0;
};

/// Mutable random-direction state for a set of nodes.
class RandomDirectionModel {
 public:
  RandomDirectionModel(std::vector<geom::Point> initial,
                       RandomDirectionConfig config, Rng rng);

  /// Advances every node by `dt` time units (reflecting at walls).
  void step(double dt);

  /// Advances only the listed nodes by `dt` time units, leaving the rest
  /// frozen (see WaypointModel::step_nodes).
  void step_nodes(std::span<const NodeId> nodes, double dt);

  const std::vector<geom::Point>& positions() const { return positions_; }
  std::size_t size() const { return positions_.size(); }

  /// Unit-disk graph of the current positions.
  graph::Graph snapshot(double range) const;

 private:
  struct NodeMotion {
    double vx = 0.0;          ///< velocity components (reflected at walls)
    double vy = 0.0;
    double leg_left = 0.0;    ///< remaining travel time on this heading
    double pause_left = 0.0;
  };
  void pick_heading(std::size_t i);
  void advance(std::size_t i, double dt);

  std::vector<geom::Point> positions_;
  std::vector<NodeMotion> motion_;
  RandomDirectionConfig config_;
  Rng rng_;
};

}  // namespace manet::mobility
