#include "mobility/waypoint.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace manet::mobility {

WaypointModel::WaypointModel(std::vector<geom::Point> initial,
                             WaypointConfig config, Rng rng)
    : positions_(std::move(initial)),
      motion_(positions_.size()),
      config_(config),
      rng_(rng) {
  MANET_REQUIRE(!positions_.empty(), "mobility model needs nodes");
  MANET_REQUIRE(config_.min_speed > 0.0 &&
                    config_.max_speed >= config_.min_speed,
                "speeds must satisfy 0 < min <= max");
  MANET_REQUIRE(config_.pause_time >= 0.0, "pause time must be >= 0");
  for (std::size_t i = 0; i < positions_.size(); ++i) pick_waypoint(i);
}

void WaypointModel::pick_waypoint(std::size_t i) {
  motion_[i].waypoint = {rng_.uniform(0.0, config_.width),
                         rng_.uniform(0.0, config_.height)};
  motion_[i].speed = rng_.uniform(config_.min_speed, config_.max_speed);
  motion_[i].pause_left = 0.0;
}

void WaypointModel::advance(std::size_t i, double dt) {
  double remaining = dt;
  while (remaining > 0.0) {
    auto& m = motion_[i];
    auto& p = positions_[i];
    if (m.pause_left > 0.0) {
      const double wait = std::min(m.pause_left, remaining);
      m.pause_left -= wait;
      remaining -= wait;
      if (m.pause_left == 0.0) pick_waypoint(i);
      continue;
    }
    const double dist = geom::distance(p, m.waypoint);
    const double step_len = m.speed * remaining;
    if (step_len >= dist) {
      // Arrive and start pausing within this step.
      p = m.waypoint;
      remaining -= (m.speed > 0.0 ? dist / m.speed : remaining);
      m.pause_left = config_.pause_time;
      if (config_.pause_time == 0.0) pick_waypoint(i);
    } else {
      const double scale = step_len / dist;
      p.x += (m.waypoint.x - p.x) * scale;
      p.y += (m.waypoint.y - p.y) * scale;
      remaining = 0.0;
    }
  }
}

void WaypointModel::step(double dt) {
  MANET_REQUIRE(dt > 0.0, "time step must be positive");
  for (std::size_t i = 0; i < positions_.size(); ++i) advance(i, dt);
}

void WaypointModel::step_nodes(std::span<const NodeId> nodes, double dt) {
  MANET_REQUIRE(dt > 0.0, "time step must be positive");
  for (const NodeId v : nodes) {
    MANET_REQUIRE(v < positions_.size(), "node id out of range");
    advance(v, dt);
  }
}

graph::Graph WaypointModel::snapshot(double range) const {
  return geom::unit_disk_graph(positions_, range);
}

}  // namespace manet::mobility
