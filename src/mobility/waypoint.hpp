// Random-waypoint mobility — the standard MANET movement model.
//
// Each node repeatedly: picks a uniform destination in the working space
// and a uniform speed in [min_speed, max_speed], travels there in a
// straight line, pauses, and repeats. The paper's simulations are static
// snapshots; this module supports the maintenance-cost story its
// conclusions draw ("maintaining a static backbone at all times for
// broadcasting is costly") by generating correlated topology sequences.
#pragma once

#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "geom/point.hpp"
#include "geom/unit_disk.hpp"
#include "graph/graph.hpp"

namespace manet::mobility {

/// Random-waypoint parameters.
struct WaypointConfig {
  double width = 100.0;
  double height = 100.0;
  double min_speed = 0.5;   ///< distance units per time unit
  double max_speed = 2.0;
  double pause_time = 1.0;  ///< time units to wait at each waypoint
};

/// Mutable mobility state for a set of nodes.
class WaypointModel {
 public:
  /// Starts from the given positions (e.g. a generated unit-disk layout).
  WaypointModel(std::vector<geom::Point> initial, WaypointConfig config,
                Rng rng);

  /// Advances every node by `dt` time units.
  void step(double dt);

  /// Advances only the listed nodes by `dt` time units, leaving the rest
  /// frozen — the churn workload for the incremental engine, where a
  /// small fraction of the population moves per tick. Ids may repeat (a
  /// repeated id moves again).
  void step_nodes(std::span<const NodeId> nodes, double dt);

  const std::vector<geom::Point>& positions() const { return positions_; }
  std::size_t size() const { return positions_.size(); }

  /// Unit-disk graph of the current positions.
  graph::Graph snapshot(double range) const;

 private:
  struct NodeMotion {
    geom::Point waypoint;
    double speed = 0.0;
    double pause_left = 0.0;
  };
  void pick_waypoint(std::size_t i);
  void advance(std::size_t i, double dt);

  std::vector<geom::Point> positions_;
  std::vector<NodeMotion> motion_;
  WaypointConfig config_;
  Rng rng_;
};

}  // namespace manet::mobility
