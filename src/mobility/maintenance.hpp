// Backbone maintenance-cost metrics under mobility.
//
// The paper's closing argument: "maintaining a static backbone at all
// times for broadcasting is costly and unnecessary", because the static
// backbone must repair both the clusters *and* the gateway selections
// after every topology change, whereas the dynamic backbone only keeps
// the cluster structure (gateways are re-derived per broadcast for free).
// This module quantifies that: given consecutive topology snapshots it
// reports how much of each structure churned.
#pragma once

#include <cstddef>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"
#include "core/static_backbone.hpp"
#include "graph/graph.hpp"

namespace manet::mobility {

/// Structure churn between two consecutive snapshots.
struct MaintenanceDelta {
  std::size_t link_changes = 0;      ///< edges appearing or disappearing
  std::size_t head_changes = 0;      ///< nodes whose clusterhead changed
  std::size_t role_changes = 0;      ///< nodes whose cluster role changed
  std::size_t backbone_changes = 0;  ///< static-CDS membership flips
  std::size_t coverage_changes = 0;  ///< heads whose coverage set changed

  /// Cost proxy for keeping the *static* backbone correct: every head or
  /// membership flip plus every gateway reselection must be signalled.
  std::size_t static_maintenance() const {
    return head_changes + backbone_changes + coverage_changes;
  }
  /// Cost proxy for the *dynamic* backbone: only clustering (plus the
  /// coverage tables every head keeps either way) needs repair.
  std::size_t dynamic_maintenance() const {
    return head_changes + coverage_changes;
  }
};

/// Compares the clustering/backbone structures of two snapshots of the
/// same node population. The `after` structure is the LCC repair of the
/// `before` structure (computed with the incremental engine in src/incr,
/// which is what a deployed network would actually run), so the churn
/// counters measure maintenance work, not the distance between two
/// independent from-scratch builds.
MaintenanceDelta compare_snapshots(const graph::Graph& before,
                                   const graph::Graph& after,
                                   core::CoverageMode mode);

}  // namespace manet::mobility
