#include "mobility/maintenance.hpp"

#include "common/assert.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/backbone.hpp"
#include "incr/edge_delta.hpp"

namespace manet::mobility {

MaintenanceDelta compare_snapshots(const graph::Graph& before,
                                   const graph::Graph& after,
                                   core::CoverageMode mode) {
  MANET_REQUIRE(before.order() == after.order(),
                "snapshots must share the node population");

  // Seed the maintained state from `before`, then push the edge delta
  // through the incremental engine: the churn counters fall out of the
  // repair itself instead of a second from-scratch rebuild.
  graph::DynamicAdjacency adj(before);
  incr::IncrementalBackbone state(adj, mode);
  const incr::EdgeDelta delta = incr::diff_graphs(before, after);
  for (const auto& [u, w] : delta.removed) adj.remove_edge(u, w);
  for (const auto& [u, w] : delta.added) adj.add_edge(u, w);
  const incr::TickStats stats = state.apply(adj, delta);

  MaintenanceDelta d;
  d.link_changes = stats.link_changes;
  d.head_changes = stats.head_changes;
  d.role_changes = stats.role_changes;
  d.backbone_changes = stats.backbone_changes;
  d.coverage_changes = stats.coverage_changes;
  return d;
}

}  // namespace manet::mobility
