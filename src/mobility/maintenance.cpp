#include "mobility/maintenance.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::mobility {

MaintenanceDelta compare_snapshots(const graph::Graph& before,
                                   const graph::Graph& after,
                                   core::CoverageMode mode) {
  MANET_REQUIRE(before.order() == after.order(),
                "snapshots must share the node population");
  MaintenanceDelta delta;

  // Symmetric difference of the edge sets.
  const auto eb = before.edges();
  const auto ea = after.edges();
  std::vector<std::pair<NodeId, NodeId>> diff;
  std::set_symmetric_difference(eb.begin(), eb.end(), ea.begin(), ea.end(),
                                std::back_inserter(diff));
  delta.link_changes = diff.size();

  const auto bb_before = core::build_static_backbone(before, mode);
  const auto bb_after = core::build_static_backbone(after, mode);

  for (NodeId v = 0; v < before.order(); ++v) {
    if (bb_before.clustering.head_of[v] != bb_after.clustering.head_of[v])
      ++delta.head_changes;
    if (bb_before.clustering.roles[v] != bb_after.clustering.roles[v])
      ++delta.role_changes;
    if (bb_before.in_backbone(v) != bb_after.in_backbone(v))
      ++delta.backbone_changes;
  }
  for (NodeId h : bb_after.clustering.heads) {
    const bool was_head = bb_before.clustering.is_head(h);
    if (!was_head ||
        bb_before.coverage[h].all() != bb_after.coverage[h].all())
      ++delta.coverage_changes;
  }
  return delta;
}

}  // namespace manet::mobility
