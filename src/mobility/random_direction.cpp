#include "mobility/random_direction.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace manet::mobility {

RandomDirectionModel::RandomDirectionModel(std::vector<geom::Point> initial,
                                           RandomDirectionConfig config,
                                           Rng rng)
    : positions_(std::move(initial)),
      motion_(positions_.size()),
      config_(config),
      rng_(rng) {
  MANET_REQUIRE(!positions_.empty(), "mobility model needs nodes");
  MANET_REQUIRE(config_.min_speed > 0.0 &&
                    config_.max_speed >= config_.min_speed,
                "speeds must satisfy 0 < min <= max");
  MANET_REQUIRE(config_.pause_time >= 0.0, "pause time must be >= 0");
  MANET_REQUIRE(config_.max_leg_time > 0.0, "leg time must be positive");
  for (std::size_t i = 0; i < positions_.size(); ++i) pick_heading(i);
}

void RandomDirectionModel::pick_heading(std::size_t i) {
  const double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  const double speed = rng_.uniform(config_.min_speed, config_.max_speed);
  motion_[i].vx = std::cos(heading) * speed;
  motion_[i].vy = std::sin(heading) * speed;
  motion_[i].leg_left = rng_.uniform(0.0, config_.max_leg_time);
  motion_[i].pause_left = 0.0;
}

void RandomDirectionModel::advance(std::size_t i, double dt) {
  double remaining = dt;
  while (remaining > 1e-12) {
    auto& m = motion_[i];
    auto& p = positions_[i];
    if (m.pause_left > 0.0) {
      const double wait = std::min(m.pause_left, remaining);
      m.pause_left -= wait;
      remaining -= wait;
      if (m.pause_left <= 0.0) pick_heading(i);
      continue;
    }
    const double travel = std::min(m.leg_left, remaining);
    if (travel <= 0.0) {
      m.pause_left = config_.pause_time;
      if (config_.pause_time == 0.0) pick_heading(i);
      continue;
    }
    p.x += m.vx * travel;
    p.y += m.vy * travel;
    // Reflect at the walls (billiard model keeps density uniform).
    auto reflect = [](double& coord, double& velocity, double hi) {
      while (coord < 0.0 || coord > hi) {
        if (coord < 0.0) {
          coord = -coord;
          velocity = -velocity;
        }
        if (coord > hi) {
          coord = 2 * hi - coord;
          velocity = -velocity;
        }
      }
    };
    reflect(p.x, m.vx, config_.width);
    reflect(p.y, m.vy, config_.height);
    m.leg_left -= travel;
    remaining -= travel;
    if (m.leg_left <= 0.0) {
      m.pause_left = config_.pause_time;
      if (config_.pause_time == 0.0) pick_heading(i);
    }
  }
}

void RandomDirectionModel::step(double dt) {
  MANET_REQUIRE(dt > 0.0, "time step must be positive");
  for (std::size_t i = 0; i < positions_.size(); ++i) advance(i, dt);
}

void RandomDirectionModel::step_nodes(std::span<const NodeId> nodes,
                                      double dt) {
  MANET_REQUIRE(dt > 0.0, "time step must be positive");
  for (const NodeId v : nodes) {
    MANET_REQUIRE(v < positions_.size(), "node id out of range");
    advance(v, dt);
  }
}

graph::Graph RandomDirectionModel::snapshot(double range) const {
  return geom::unit_disk_graph(positions_, range);
}

}  // namespace manet::mobility
