#include "incr/backbone.hpp"

#include <span>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "core/table_kernels.hpp"
#include "incr/delta_tracker.hpp"
#include "incr/worker_pool.hpp"
#include "obs/session.hpp"

namespace manet::incr {
namespace {

/// LocalSelectionView over the mutable adjacency and the maintained
/// table rows — the same interface the batch TablesView adapts, so
/// core::select_gateways_local runs the identical greedy either way.
class OverlayView final : public core::LocalSelectionView {
 public:
  OverlayView(const graph::DynamicAdjacency& g,
              const core::NeighborTables& tables, NodeId head)
      : tables_(tables) {
    const auto nb = g.neighbors(head);
    neighbors_.assign(nb.begin(), nb.end());
  }
  const NodeSet& neighbors() const override { return neighbors_; }
  const NodeSet& hop1(NodeId v) const override { return tables_.ch_hop1[v]; }
  const std::vector<core::Hop2Entry>& hop2(NodeId v) const override {
    return tables_.ch_hop2[v];
  }

 private:
  const core::NeighborTables& tables_;
  NodeSet neighbors_;
};

/// Accumulates a sorted-unique dirty set via closed neighborhoods.
class DirtySet {
 public:
  explicit DirtySet(std::size_t universe) : seen_(universe) {}
  void add(NodeId v) {
    if (seen_.set(v)) nodes_.push_back(v);
  }
  void add_closed_neighborhood(const graph::DynamicAdjacency& g, NodeId v) {
    add(v);
    for (const NodeId w : g.neighbors(v)) add(w);
  }
  NodeSet take() {
    normalize(nodes_);
    return std::move(nodes_);
  }

 private:
  graph::NodeBitset seen_;
  NodeSet nodes_;
};

/// Splits [0, items) into ascending contiguous (begin, count) chunks —
/// a pure function of (items, lanes), so every stage output indexed by
/// chunk id concatenates to the same sorted list at any lane count.
std::vector<std::pair<std::size_t, std::size_t>> plan_chunks(
    std::size_t items, std::size_t lanes) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (items == 0) return chunks;
  // A few chunks per lane so an unlucky heavy chunk can't serialize the
  // stage; chunky enough that claim overhead stays irrelevant.
  const std::size_t target = std::min(items, lanes * 4);
  const std::size_t size = (items + target - 1) / target;
  for (std::size_t begin = 0; begin < items; begin += size)
    chunks.emplace_back(begin, std::min(size, items - begin));
  return chunks;
}

/// obs::Span lookalike that can buffer instead of writing the recorder:
/// with `buf` non-null the completed span lands there (deferred-trace
/// mode), otherwise it goes straight to `tr`. `tr == nullptr` disables.
class StageSpan {
 public:
  StageSpan(obs::TraceRecorder* tr, std::vector<TraceSpanRec>* buf,
            const char* name, std::uint64_t tick, const char* arg_name)
      : tr_(tr), buf_(buf), name_(name), arg_name_(arg_name), tick_(tick) {
    if (tr_) start_ns_ = tr_->now_ns();
  }
  ~StageSpan() {
    if (!tr_) return;
    const std::uint64_t dur = tr_->now_ns() - start_ns_;
    if (buf_)
      buf_->push_back({name_, start_ns_, dur, tick_, 0, arg_name_, arg_});
    else
      tr_->complete("incr", name_, start_ns_, dur, tick_, 0, arg_name_, arg_);
  }
  void set_arg(std::uint64_t v) { arg_ = v; }
  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  obs::TraceRecorder* tr_;
  std::vector<TraceSpanRec>* buf_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t tick_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

}  // namespace

void IncrementalBackbone::flush_trace() {
  if (trace_buf_.empty()) return;
  if (obs_) {
    for (const TraceSpanRec& s : trace_buf_)
      obs_->trace.complete("incr", s.name, s.ts, s.dur, s.tick, s.tid,
                           s.arg_name, s.arg);
  }
  trace_buf_.clear();
}

IncrementalBackbone::IncrementalBackbone(const graph::DynamicAdjacency& g,
                                         core::CoverageMode mode) {
  // One batch build seeds every cache; ticks only repair from here on.
  auto full = core::build_static_backbone(g.freeze(), mode);
  clustering_ = std::move(full.clustering);
  tables_ = std::move(full.tables);
  coverage_ = std::move(full.coverage);
  selection_ = std::move(full.selection);

  const std::size_t n = g.order();
  head_bits_ = graph::NodeBitset(n);
  for (const NodeId h : clustering_.heads) head_bits_.set(h);
  selection_refs_.assign(n, 0);
  cds_bits_ = graph::NodeBitset(n);
  for (const NodeId h : clustering_.heads) {
    cds_bits_.set(h);
    for (const NodeId v : selection_[h].gateways) {
      ++selection_refs_[v];
      cds_bits_.set(v);
    }
  }
}

void IncrementalBackbone::set_obs(obs::Session* session) {
  obs_ = session;
  obs_handles_ = {};
  if (!session) return;
  auto& r = session->registry;
  obs_handles_.links_appeared = r.counter("incr.links_appeared");
  obs_handles_.links_disappeared = r.counter("incr.links_disappeared");
  obs_handles_.reaffiliations = r.counter("incr.reaffiliations");
  obs_handles_.role_changes = r.counter("incr.role_changes");
  obs_handles_.heads_declared = r.counter("incr.heads_declared");
  obs_handles_.heads_resigned = r.counter("incr.heads_resigned");
  obs_handles_.hop1_rows_scanned = r.counter("incr.hop1_rows_scanned");
  obs_handles_.hop1_rows_changed = r.counter("incr.hop1_rows_changed");
  obs_handles_.hop2_rows_scanned = r.counter("incr.hop2_rows_scanned");
  obs_handles_.hop2_rows_changed = r.counter("incr.hop2_rows_changed");
  obs_handles_.heads_reselected = r.counter("incr.heads_reselected");
  obs_handles_.coverage_changes = r.counter("incr.coverage_changes");
  obs_handles_.backbone_flips = r.counter("incr.backbone_flips");
  obs_handles_.links_per_tick = r.histogram(
      "incr.links_per_tick", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  obs_handles_.rows_per_tick = r.histogram(
      "incr.rows_per_tick", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
}

void IncrementalBackbone::apply_selection_refs(const NodeSet& old_gateways,
                                               const NodeSet& new_gateways,
                                               NodeSet& cds_candidates) {
  for (const NodeId v : set_difference(old_gateways, new_gateways)) {
    MANET_ASSERT(selection_refs_[v] > 0, "gateway refcount underflow");
    if (--selection_refs_[v] == 0) cds_candidates.push_back(v);
  }
  for (const NodeId v : set_difference(new_gateways, old_gateways)) {
    if (selection_refs_[v]++ == 0) cds_candidates.push_back(v);
  }
}

void IncrementalBackbone::clear_head_rows(NodeId v, NodeSet& cds_candidates) {
  if (!selection_[v].gateways.empty() || !selection_[v].steps.empty() ||
      !selection_[v].leftover_pairs.empty()) {
    apply_selection_refs(selection_[v].gateways, {}, cds_candidates);
    selection_[v] = core::GatewaySelection{};
  }
  if (!coverage_[v].empty()) coverage_[v] = core::Coverage{};
}

IncrementalBackbone::HeadRow IncrementalBackbone::compute_head_row(
    const graph::DynamicAdjacency& g, NodeId h,
    core::CoverageScratch& scratch,
    core::SelectionScratch& sel_scratch) const {
  // Reads g, the frozen table rows and the clustering only — safe to run
  // for distinct heads concurrently with per-lane scratches.
  HeadRow row;
  row.cov = core::coverage_row(g, tables_, h, g.order(), scratch);
  row.sel = core::select_gateways_local(OverlayView(g, tables_, h), row.cov,
                                        sel_scratch);
  return row;
}

void IncrementalBackbone::commit_head_row(NodeId h, bool was_head,
                                          HeadRow&& row, TickStats& stats,
                                          NodeSet& cds_candidates) {
  if (!was_head || !(row.cov == coverage_[h])) ++stats.coverage_changes;
  coverage_[h] = std::move(row.cov);
  apply_selection_refs(selection_[h].gateways, row.sel.gateways,
                       cds_candidates);
  selection_[h] = std::move(row.sel);
  ++stats.heads_reselected;
}

TickStats IncrementalBackbone::apply(const graph::DynamicAdjacency& g,
                                     const EdgeDelta& delta) {
  MANET_REQUIRE(g.order() == clustering_.head_of.size(),
                "adjacency does not match the maintained state");
  ++ticks_applied_;
  obs::TraceRecorder* tr = obs_ ? &obs_->trace : nullptr;
  TickStats stats;
  stats.link_changes = delta.link_changes();
  obs_handles_.links_appeared.add(delta.added.size());
  obs_handles_.links_disappeared.add(delta.removed.size());
  obs_handles_.links_per_tick.record(delta.link_changes());
  if (delta.empty()) return stats;

  ClusterRepair rep;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "cluster_repair",
                   ticks_applied_, "flips");
    rep = repair_clustering(g, delta, clustering_, head_bits_);
    span.set_arg(rep.declared.size() + rep.resigned.size());
  }
  stats.cluster_churn = rep.churn;
  stats.head_changes = rep.head_changed.size();
  stats.role_changes = rep.role_changed.size();
  obs_handles_.reaffiliations.add(rep.head_changed.size());
  obs_handles_.role_changes.add(rep.role_changed.size());
  obs_handles_.heads_declared.add(rep.declared.size());
  obs_handles_.heads_resigned.add(rep.resigned.size());

  // CH_HOP1(v) reads v's own head status, v's edges and its neighbors'
  // head status, so the exact dirty set is the changed-edge endpoints
  // plus the closed neighborhoods of the status flips. Rows that come
  // out identical are discarded and recorded as clean: they prove their
  // readers unchanged, which keeps each later stage small.
  const NodeSet status_flips = set_union(rep.declared, rep.resigned);
  DirtySet hop1_mark(g.order());
  for (const NodeId v : delta.touched) hop1_mark.add(v);
  for (const NodeId v : status_flips) hop1_mark.add_closed_neighborhood(g, v);
  const NodeSet hop1_dirty = hop1_mark.take();

  NodeSet hop1_changed;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "hop1_scan",
                   ticks_applied_, "rows");
    span.set_arg(hop1_dirty.size());
    for (const NodeId v : hop1_dirty) {
      auto row = core::hop1_row(g, clustering_, v);
      if (row != tables_.ch_hop1[v]) {
        tables_.ch_hop1[v] = std::move(row);
        hop1_changed.push_back(v);
      }
    }
  }
  obs_handles_.hop1_rows_scanned.add(hop1_dirty.size());
  obs_handles_.hop1_rows_changed.add(hop1_changed.size());

  // CH_HOP2(v) additionally reads the neighbors' head_of assignments and
  // their (already refreshed) CH_HOP1 rows: dirty set = changed-edge
  // endpoints ∪ closed neighborhoods of head_of changes and of actually
  // changed CH_HOP1 rows.
  DirtySet hop2_mark(g.order());
  for (const NodeId v : delta.touched) hop2_mark.add(v);
  for (const NodeId v : rep.head_changed)
    hop2_mark.add_closed_neighborhood(g, v);
  for (const NodeId v : hop1_changed) hop2_mark.add_closed_neighborhood(g, v);
  const NodeSet hop2_dirty = hop2_mark.take();

  NodeSet changed_rows = hop1_changed;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "hop2_scan",
                   ticks_applied_, "rows");
    span.set_arg(hop2_dirty.size());
    for (const NodeId v : hop2_dirty) {
      auto row =
          core::hop2_row(g, clustering_, tables_.mode, tables_.ch_hop1, v);
      if (row != tables_.ch_hop2[v]) {
        tables_.ch_hop2[v] = std::move(row);
        changed_rows.push_back(v);
      }
    }
  }
  obs_handles_.hop2_rows_scanned.add(hop2_dirty.size());
  obs_handles_.hop2_rows_changed.add(changed_rows.size() -
                                     hop1_changed.size());
  normalize(changed_rows);
  stats.rows_recomputed = hop1_dirty.size() + hop2_dirty.size();
  obs_handles_.rows_per_tick.record(stats.rows_recomputed);

  // A head's coverage and gateway selection read exactly its neighbor
  // list and the table rows of its neighbors, so a head needs a rerun
  // only when it gained/lost an edge (touched), just declared, or sits
  // next to a row that actually changed. Everything else keeps its
  // cached coverage and selection verbatim — bit-identical to the full
  // rebuild because the inputs are proven identical.
  graph::NodeBitset head_dirty(g.order());
  NodeSet recompute;
  const auto mark = [&](NodeId v) {
    if (head_bits_.test(v) && head_dirty.set(v)) recompute.push_back(v);
  };
  for (const NodeId v : delta.touched) mark(v);
  for (const NodeId v : rep.declared) mark(v);
  for (const NodeId v : changed_rows) {
    mark(v);
    for (const NodeId w : g.neighbors(v)) mark(w);
  }
  normalize(recompute);

  NodeSet cds_candidates;
  for (const NodeId h : rep.declared) cds_candidates.push_back(h);
  for (const NodeId h : rep.resigned) cds_candidates.push_back(h);
  const graph::NodeBitset declared_bits =
      graph::NodeBitset::from_node_set(g.order(), rep.declared);
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "head_reselect",
                   ticks_applied_, "heads");
    span.set_arg(recompute.size());
    for (const NodeId h : recompute)
      commit_head_row(h, /*was_head=*/!declared_bits.test(h),
                      compute_head_row(g, h, lane_scratch_[0],
                                       lane_sel_scratch_[0]),
                      stats, cds_candidates);
    // Resignations leave stale head rows behind; release their reference
    // counts (guard against a same-tick re-declaration, which rule 2 makes
    // impossible today but cheap to stay safe against).
    for (const NodeId v : rep.resigned)
      if (!head_bits_.test(v)) clear_head_rows(v, cds_candidates);
  }
  obs_handles_.heads_reselected.add(recompute.size());
  obs_handles_.coverage_changes.add(stats.coverage_changes);

  // Settle CDS membership for every node whose head status or selection
  // reference count moved this tick.
  normalize(cds_candidates);
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "cds_settle",
                   ticks_applied_, "candidates");
    span.set_arg(cds_candidates.size());
    for (const NodeId v : cds_candidates) {
      const bool member = head_bits_.test(v) || selection_refs_[v] > 0;
      if (member != cds_bits_.test(v)) {
        ++stats.backbone_changes;
        if (member)
          cds_bits_.set(v);
        else
          cds_bits_.reset(v);
      }
    }
  }
  obs_handles_.backbone_flips.add(stats.backbone_changes);
  return stats;
}

TickStats IncrementalBackbone::apply_parallel(const graph::DynamicAdjacency& g,
                                              const EdgeDelta& delta,
                                              const RegionPartition& partition,
                                              WorkerPool& pool) {
  MANET_REQUIRE(g.order() == clustering_.head_of.size(),
                "adjacency does not match the maintained state");
  ++ticks_applied_;
  obs::TraceRecorder* tr = obs_ ? &obs_->trace : nullptr;
  TickStats stats;
  stats.link_changes = delta.link_changes();
  stats.regions = partition.count;
  obs_handles_.links_appeared.add(delta.added.size());
  obs_handles_.links_disappeared.add(delta.removed.size());
  obs_handles_.links_per_tick.record(delta.link_changes());
  if (delta.empty()) return stats;

  const std::size_t lanes = pool.lanes();
  if (lane_scratch_.size() < lanes) lane_scratch_.resize(lanes);
  if (lane_sel_scratch_.size() < lanes) lane_sel_scratch_.resize(lanes);

  // Workers buffer their spans (TraceRecorder is single-writer) and the
  // caller flushes them after each join, one trace track per lane.
  struct LaneSpan {
    const char* name;
    std::uint64_t ts, dur, arg;
  };
  std::vector<std::vector<LaneSpan>> lane_spans(lanes);
  const auto timed = [&](std::size_t lane, const char* name,
                         std::uint64_t arg, auto&& fn) {
    if (!tr) {
      fn();
      return;
    }
    const std::uint64_t t0 = tr->now_ns();
    fn();
    lane_spans[lane].push_back({name, t0, tr->now_ns() - t0, arg});
  };
  const auto flush_spans = [&] {
    if (!tr) return;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      for (const LaneSpan& s : lane_spans[lane]) {
        const auto tid = static_cast<std::uint32_t>(lane + 1);
        if (defer_trace_)
          trace_buf_.push_back(
              {s.name, s.ts, s.dur, ticks_applied_, tid, "items", s.arg});
        else
          tr->complete("incr", s.name, s.ts, s.dur, ticks_applied_, tid,
                       "items", s.arg);
      }
      lane_spans[lane].clear();
    }
  };

  // --- Stage C: cluster-repair rules, one job per independent region.
  // Each job writes head_of inside its own region and buffers its head
  // status flips; head_bits_ stays read-only until the merge, so the
  // per-region ascending scans see exactly what the sequential global
  // scan would show them (S30: no other region's writes are within this
  // region's read radius).
  ClusterRepair rep;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "cluster_repair",
                   ticks_applied_, "flips");
    std::vector<ClusterRepair> reps(partition.count);
    std::vector<HeadStatusOverlay> overlays(partition.count,
                                            HeadStatusOverlay(head_bits_));
    pool.run(partition.count, [&](std::size_t r, std::size_t lane) {
      timed(lane, "region_repair", partition.deltas[r].link_changes(), [&] {
        reps[r] = repair_clustering_region(g, partition.deltas[r],
                                           clustering_, overlays[r]);
      });
    });
    // Merge in region order: flips onto the real bitset, churn sums, and
    // the per-region sorted sets (disjoint by S30) into global ones.
    for (std::size_t r = 0; r < partition.count; ++r) {
      overlays[r].apply(head_bits_);
      rep.churn.heads_resigned += reps[r].churn.heads_resigned;
      rep.churn.heads_declared += reps[r].churn.heads_declared;
      rep.churn.reaffiliations += reps[r].churn.reaffiliations;
      rep.resigned.insert(rep.resigned.end(), reps[r].resigned.begin(),
                          reps[r].resigned.end());
      rep.declared.insert(rep.declared.end(), reps[r].declared.begin(),
                          reps[r].declared.end());
      rep.head_changed.insert(rep.head_changed.end(),
                              reps[r].head_changed.begin(),
                              reps[r].head_changed.end());
    }
    normalize(rep.resigned);
    normalize(rep.declared);
    normalize(rep.head_changed);
    for (const NodeId h : rep.resigned) erase_sorted(clustering_.heads, h);
    for (const NodeId h : rep.declared) insert_sorted(clustering_.heads, h);

    // --- Roles against the final head_of, in sorted chunks: chunk c
    // writes roles of its own slice only, and the per-chunk changed
    // lists concatenate to the sequential ascending result.
    const NodeSet role_dirty =
        role_support(g, rep.head_changed, delta.touched);
    const auto chunks = plan_chunks(role_dirty.size(), lanes);
    std::vector<NodeSet> role_changed(chunks.size());
    pool.run(chunks.size(), [&](std::size_t ci, std::size_t lane) {
      timed(lane, "role_chunk", chunks[ci].second, [&] {
        refresh_roles(g, clustering_,
                      std::span<const NodeId>(role_dirty)
                          .subspan(chunks[ci].first, chunks[ci].second),
                      role_changed[ci]);
      });
    });
    for (const NodeSet& part : role_changed)
      rep.role_changed.insert(rep.role_changed.end(), part.begin(),
                              part.end());
    rep.dirty = set_union(rep.head_changed, delta.touched);
    span.set_arg(rep.declared.size() + rep.resigned.size());
    flush_spans();
  }
  stats.cluster_churn = rep.churn;
  stats.head_changes = rep.head_changed.size();
  stats.role_changes = rep.role_changed.size();
  obs_handles_.reaffiliations.add(rep.head_changed.size());
  obs_handles_.role_changes.add(rep.role_changed.size());
  obs_handles_.heads_declared.add(rep.declared.size());
  obs_handles_.heads_resigned.add(rep.resigned.size());

  // --- CH_HOP1, chunked over the sorted dirty set. Chunk c writes rows
  // of its own slice against frozen inputs (clustering, adjacency).
  const NodeSet status_flips = set_union(rep.declared, rep.resigned);
  DirtySet hop1_mark(g.order());
  for (const NodeId v : delta.touched) hop1_mark.add(v);
  for (const NodeId v : status_flips) hop1_mark.add_closed_neighborhood(g, v);
  const NodeSet hop1_dirty = hop1_mark.take();

  NodeSet hop1_changed;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "hop1_scan",
                   ticks_applied_, "rows");
    span.set_arg(hop1_dirty.size());
    const auto chunks = plan_chunks(hop1_dirty.size(), lanes);
    std::vector<NodeSet> changed(chunks.size());
    pool.run(chunks.size(), [&](std::size_t ci, std::size_t lane) {
      timed(lane, "hop1_chunk", chunks[ci].second, [&] {
        const auto [begin, count] = chunks[ci];
        for (std::size_t i = begin; i < begin + count; ++i) {
          const NodeId v = hop1_dirty[i];
          auto row = core::hop1_row(g, clustering_, v);
          if (row != tables_.ch_hop1[v]) {
            tables_.ch_hop1[v] = std::move(row);
            changed[ci].push_back(v);
          }
        }
      });
    });
    for (const NodeSet& part : changed)
      hop1_changed.insert(hop1_changed.end(), part.begin(), part.end());
    flush_spans();
  }
  obs_handles_.hop1_rows_scanned.add(hop1_dirty.size());
  obs_handles_.hop1_rows_changed.add(hop1_changed.size());

  // --- CH_HOP2 likewise, now that every CH_HOP1 row is final.
  DirtySet hop2_mark(g.order());
  for (const NodeId v : delta.touched) hop2_mark.add(v);
  for (const NodeId v : rep.head_changed)
    hop2_mark.add_closed_neighborhood(g, v);
  for (const NodeId v : hop1_changed) hop2_mark.add_closed_neighborhood(g, v);
  const NodeSet hop2_dirty = hop2_mark.take();

  NodeSet changed_rows = hop1_changed;
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "hop2_scan",
                   ticks_applied_, "rows");
    span.set_arg(hop2_dirty.size());
    const auto chunks = plan_chunks(hop2_dirty.size(), lanes);
    std::vector<NodeSet> changed(chunks.size());
    pool.run(chunks.size(), [&](std::size_t ci, std::size_t lane) {
      timed(lane, "hop2_chunk", chunks[ci].second, [&] {
        const auto [begin, count] = chunks[ci];
        for (std::size_t i = begin; i < begin + count; ++i) {
          const NodeId v = hop2_dirty[i];
          auto row = core::hop2_row(g, clustering_, tables_.mode,
                                    tables_.ch_hop1, v);
          if (row != tables_.ch_hop2[v]) {
            tables_.ch_hop2[v] = std::move(row);
            changed[ci].push_back(v);
          }
        }
      });
    });
    for (const NodeSet& part : changed)
      changed_rows.insert(changed_rows.end(), part.begin(), part.end());
    flush_spans();
  }
  obs_handles_.hop2_rows_scanned.add(hop2_dirty.size());
  obs_handles_.hop2_rows_changed.add(changed_rows.size() -
                                     hop1_changed.size());
  normalize(changed_rows);
  stats.rows_recomputed = hop1_dirty.size() + hop2_dirty.size();
  obs_handles_.rows_per_tick.record(stats.rows_recomputed);

  // --- Coverage + gateway reselection: the per-head computation is pure
  // over frozen tables, so one job per head; the stateful commits
  // (refcounts, coverage/selection moves) replay on the caller in the
  // same ascending head order the sequential path uses.
  graph::NodeBitset head_dirty(g.order());
  NodeSet recompute;
  const auto mark = [&](NodeId v) {
    if (head_bits_.test(v) && head_dirty.set(v)) recompute.push_back(v);
  };
  for (const NodeId v : delta.touched) mark(v);
  for (const NodeId v : rep.declared) mark(v);
  for (const NodeId v : changed_rows) {
    mark(v);
    for (const NodeId w : g.neighbors(v)) mark(w);
  }
  normalize(recompute);

  NodeSet cds_candidates;
  for (const NodeId h : rep.declared) cds_candidates.push_back(h);
  for (const NodeId h : rep.resigned) cds_candidates.push_back(h);
  const graph::NodeBitset declared_bits =
      graph::NodeBitset::from_node_set(g.order(), rep.declared);
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "head_reselect",
                   ticks_applied_, "heads");
    span.set_arg(recompute.size());
    std::vector<HeadRow> rows(recompute.size());
    pool.run(recompute.size(), [&](std::size_t i, std::size_t lane) {
      timed(lane, "head_row", recompute[i], [&] {
        rows[i] = compute_head_row(g, recompute[i], lane_scratch_[lane],
                                   lane_sel_scratch_[lane]);
      });
    });
    for (std::size_t i = 0; i < recompute.size(); ++i)
      commit_head_row(recompute[i],
                      /*was_head=*/!declared_bits.test(recompute[i]),
                      std::move(rows[i]), stats, cds_candidates);
    for (const NodeId v : rep.resigned)
      if (!head_bits_.test(v)) clear_head_rows(v, cds_candidates);
    flush_spans();
  }
  obs_handles_.heads_reselected.add(recompute.size());
  obs_handles_.coverage_changes.add(stats.coverage_changes);

  // --- CDS settling, the last stage of the sharded path: membership is a
  // pure read of head_bits_/selection_refs_/cds_bits_ (all frozen here),
  // so chunks over the sorted candidate set buffer their flips and the
  // caller applies them in chunk order — the exact ascending flip
  // sequence (and count) of the sequential loop.
  normalize(cds_candidates);
  {
    StageSpan span(tr, defer_trace_ ? &trace_buf_ : nullptr, "cds_settle",
                   ticks_applied_, "candidates");
    span.set_arg(cds_candidates.size());
    const auto chunks = plan_chunks(cds_candidates.size(), lanes);
    std::vector<std::vector<std::pair<NodeId, bool>>> flips(chunks.size());
    pool.run(chunks.size(), [&](std::size_t ci, std::size_t lane) {
      timed(lane, "cds_chunk", chunks[ci].second, [&] {
        const auto [begin, count] = chunks[ci];
        for (std::size_t i = begin; i < begin + count; ++i) {
          const NodeId v = cds_candidates[i];
          const bool member = head_bits_.test(v) || selection_refs_[v] > 0;
          if (member != cds_bits_.test(v)) flips[ci].emplace_back(v, member);
        }
      });
    });
    for (const auto& part : flips)
      for (const auto& [v, member] : part) {
        ++stats.backbone_changes;
        if (member)
          cds_bits_.set(v);
        else
          cds_bits_.reset(v);
      }
    flush_spans();
  }
  obs_handles_.backbone_flips.add(stats.backbone_changes);
  return stats;
}

NodeSet IncrementalBackbone::gateways() const {
  NodeSet out;
  cds_bits_.for_each([&](NodeId v) {
    if (!head_bits_.test(v)) out.push_back(v);
  });
  return out;
}

NodeSet IncrementalBackbone::cds() const { return cds_bits_.to_node_set(); }

core::StaticBackbone IncrementalBackbone::materialize() const {
  core::StaticBackbone b;
  b.mode = tables_.mode;
  b.clustering = clustering_;
  b.tables = tables_;
  b.coverage = coverage_;
  b.selection = selection_;
  b.gateways = gateways();
  b.cds = cds();
  return b;
}

std::string IncrementalBackbone::diff_against(
    const core::StaticBackbone& oracle) const {
  std::ostringstream err;
  if (!(clustering_ == oracle.clustering)) {
    err << "clustering mismatch vs full rebuild";
    return err.str();
  }
  if (tables_.mode != oracle.tables.mode ||
      tables_.ch_hop1 != oracle.tables.ch_hop1 ||
      tables_.ch_hop2 != oracle.tables.ch_hop2) {
    err << "neighbor-table mismatch vs full rebuild";
    return err.str();
  }
  for (NodeId v = 0; v < clustering_.head_of.size(); ++v) {
    if (!(coverage_[v] == oracle.coverage[v])) {
      err << "coverage mismatch at node " << v;
      return err.str();
    }
    if (!(selection_[v] == oracle.selection[v])) {
      err << "gateway-selection mismatch at head " << v;
      return err.str();
    }
  }
  if (gateways() != oracle.gateways) {
    err << "gateway-union mismatch vs full rebuild";
    return err.str();
  }
  if (cds() != oracle.cds) {
    err << "CDS mismatch vs full rebuild";
    return err.str();
  }
  return {};
}

}  // namespace manet::incr
