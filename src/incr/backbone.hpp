// Layer 3 of the incremental maintenance engine: keeping the CH_HOP1 /
// CH_HOP2 tables, coverage sets, per-head gateway selections and the
// SI-CDS current under a stream of edge deltas.
//
// Exact dependency tracking drives the invalidation:
//
//  * CH_HOP1(v) reads v's own head status, v's edges and its neighbors'
//    head status — dirty set = changed-edge endpoints ∪ closed
//    neighborhoods of the head-status flips;
//  * CH_HOP2(v) additionally reads the neighbors' head_of assignments
//    and CH_HOP1 rows — dirty set = changed-edge endpoints ∪ closed
//    neighborhoods of head_of changes and of CH_HOP1 rows that
//    *actually* changed;
//  * coverage and gateway selection of a head h read exactly h's
//    neighbor list and the table rows of h's neighbors — so h needs a
//    rerun only when an edge at h changed, h just became a head, or a
//    neighbor's row *actually* changed (recomputed rows that come out
//    identical prove their readers unchanged, which keeps the expensive
//    selection stage far smaller than the worst-case 3-hop ball).
//
// Rows inside the balls are recomputed with the exact per-row kernels
// the batch path uses (core/table_kernels.hpp,
// core::select_gateways_local), everything else keeps its cached value,
// so after every tick the whole structure is bit-identical to a
// from-scratch core::build_static_backbone over the current topology and
// clustering (asserted by the pipeline's oracle mode and the
// equivalence tests).
// The CDS itself is maintained with per-node selection reference counts,
// so membership materialization never rescans the selections.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/lcc.hpp"
#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "core/static_backbone.hpp"
#include "core/table_kernels.hpp"
#include "graph/bitset.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/cluster_repair.hpp"
#include "incr/edge_delta.hpp"
#include "obs/metrics.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::incr {

struct RegionPartition;
class WorkerPool;

/// One buffered trace span. TraceRecorder is single-writer, so when the
/// engine runs as an async pool batch (pipelined mode) it cannot write
/// spans directly while the driver thread records its own: it buffers
/// them as TraceSpanRec and the driver flushes after joining the tick.
struct TraceSpanRec {
  const char* name = "";
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint64_t tick = 0;
  std::uint32_t tid = 0;
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
};

/// What one tick cost and churned. The churn counters use the same
/// definitions as mobility::MaintenanceDelta, so the maintenance-cost
/// experiments can read them straight off the engine.
struct TickStats {
  std::size_t link_changes = 0;       ///< edges appearing or disappearing
  cluster::LccDelta cluster_churn;    ///< LCC rule-level repair counters
  std::size_t head_changes = 0;       ///< nodes whose clusterhead changed
  std::size_t role_changes = 0;       ///< nodes whose cluster role changed
  std::size_t backbone_changes = 0;   ///< static-CDS membership flips
  std::size_t coverage_changes = 0;   ///< heads with new/changed coverage
  std::size_t rows_recomputed = 0;    ///< hop1+hop2 row evaluations
  std::size_t heads_reselected = 0;   ///< coverage+selection reruns
  std::size_t regions = 0;            ///< independent repair regions
};

/// The incrementally maintained static backbone of a mutable topology.
class IncrementalBackbone {
 public:
  /// Full initial build over the current adjacency (one-time O(n) cost;
  /// every later tick is bounded by the dirty region).
  IncrementalBackbone(const graph::DynamicAdjacency& g,
                      core::CoverageMode mode);

  /// Consumes one edge delta. `g` must already reflect the delta (the
  /// DeltaTracker hands both over in that state).
  TickStats apply(const graph::DynamicAdjacency& g, const EdgeDelta& delta);

  /// Sharded variant of apply(): the tick's delta arrives pre-split into
  /// the independent regions of `partition` (DeltaTracker::commit), the
  /// region repairs and the row/reselect stages fan out on `pool`, and
  /// all shared-structure merges run on the caller between barriers. The
  /// maintained state afterwards is bitwise identical to apply() at any
  /// lane count (same dirty sets, same ascending orders — DESIGN S30);
  /// metric totals are too, because the per-shard counts partition the
  /// sequential ones.
  TickStats apply_parallel(const graph::DynamicAdjacency& g,
                           const EdgeDelta& delta,
                           const RegionPartition& partition,
                           WorkerPool& pool);

  /// Attaches an observability session: per-phase spans go to its
  /// flight recorder, `incr.*` counters/histograms to its registry.
  /// nullptr detaches. The session must outlive the backbone.
  void set_obs(obs::Session* session);

  /// Deferred-trace mode: apply()/apply_parallel() buffer every span
  /// instead of writing the recorder, so a tick may run concurrently
  /// with the driver thread's own recording. Metrics stay live (atomic
  /// adds commute). The driver calls flush_trace() after joining.
  void set_defer_trace(bool on) { defer_trace_ = on; }
  void flush_trace();

  core::CoverageMode mode() const { return tables_.mode; }
  const cluster::Clustering& clustering() const { return clustering_; }
  const core::NeighborTables& tables() const { return tables_; }
  const std::vector<core::Coverage>& coverage() const { return coverage_; }
  const std::vector<core::GatewaySelection>& selection() const {
    return selection_;
  }
  const NodeSet& heads() const { return clustering_.heads; }

  /// Union of all selected gateways, materialized from the maintained
  /// membership bitset.
  NodeSet gateways() const;

  /// The SI-CDS: clusterheads ∪ gateways.
  NodeSet cds() const;

  /// Copies the maintained state into the batch StaticBackbone shape.
  core::StaticBackbone materialize() const;

  /// Compares every maintained structure against a full-rebuild oracle.
  /// Returns an empty string on bitwise equality, else a description of
  /// the first mismatch.
  std::string diff_against(const core::StaticBackbone& oracle) const;

 private:
  /// Pre-resolved metric handles (inert when no session is attached).
  struct ObsHandles {
    obs::Counter links_appeared, links_disappeared, reaffiliations,
        role_changes, heads_declared, heads_resigned, hop1_rows_scanned,
        hop1_rows_changed, hop2_rows_scanned, hop2_rows_changed,
        heads_reselected, coverage_changes, backbone_flips;
    obs::Histogram links_per_tick, rows_per_tick;
  };

  /// One head's recomputed coverage + selection, produced read-only
  /// (thread-safe against other heads) and committed on the caller.
  struct HeadRow {
    core::Coverage cov;
    core::GatewaySelection sel;
  };

  HeadRow compute_head_row(const graph::DynamicAdjacency& g, NodeId h,
                           core::CoverageScratch& scratch,
                           core::SelectionScratch& sel_scratch) const;
  void commit_head_row(NodeId h, bool was_head, HeadRow&& row,
                       TickStats& stats, NodeSet& cds_candidates);
  void clear_head_rows(NodeId v, NodeSet& cds_candidates);
  void apply_selection_refs(const NodeSet& old_gateways,
                            const NodeSet& new_gateways,
                            NodeSet& cds_candidates);

  cluster::Clustering clustering_;
  graph::NodeBitset head_bits_;
  core::NeighborTables tables_;
  std::vector<core::Coverage> coverage_;
  std::vector<core::GatewaySelection> selection_;
  /// selection_refs_[v] = number of heads whose selection contains v.
  std::vector<std::uint32_t> selection_refs_;
  graph::NodeBitset cds_bits_;  ///< head_bits_ ∪ {v : selection_refs_[v]>0}
  obs::Session* obs_ = nullptr;
  ObsHandles obs_handles_;
  bool defer_trace_ = false;
  std::vector<TraceSpanRec> trace_buf_;
  std::uint64_t ticks_applied_ = 0;  ///< trace span "tick" argument
  /// Reusable coverage + selection bitsets: [0] serves the sequential
  /// path, one per lane serves apply_parallel (sized on first parallel
  /// tick).
  std::vector<core::CoverageScratch> lane_scratch_{1};
  std::vector<core::SelectionScratch> lane_sel_scratch_{1};
};

}  // namespace manet::incr
