#include "incr/edge_delta.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::incr {

EdgeDelta diff_graphs(const graph::Graph& before, const graph::Graph& after) {
  MANET_REQUIRE(before.order() == after.order(),
                "snapshots must share the node population");
  EdgeDelta delta;
  const auto eb = before.edges();  // sorted (u, v) with u < v
  const auto ea = after.edges();
  std::set_difference(ea.begin(), ea.end(), eb.begin(), eb.end(),
                      std::back_inserter(delta.added));
  std::set_difference(eb.begin(), eb.end(), ea.begin(), ea.end(),
                      std::back_inserter(delta.removed));
  for (const auto& [u, v] : delta.added) {
    delta.touched.push_back(u);
    delta.touched.push_back(v);
  }
  for (const auto& [u, v] : delta.removed) {
    delta.touched.push_back(u);
    delta.touched.push_back(v);
  }
  normalize(delta.touched);
  return delta;
}

}  // namespace manet::incr
