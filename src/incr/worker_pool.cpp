#include "incr/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/session.hpp"

namespace manet::incr {
namespace {

/// Lane of the current thread: workers set theirs once at startup,
/// every external thread stays 0. A job that re-enters the pool (the
/// pipelined repair driver calling run() for its stages) keeps helping
/// on its worker's lane, so lane-indexed scratch stays exclusive.
thread_local std::size_t tls_lane = 0;

std::uint64_t us_between(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
          .count());
}

}  // namespace

/// One batch of jobs: claim cursor, completion count, first error.
/// Guarded by the owning pool's mutex except for `fn`, which is
/// immutable after construction and invoked outside the lock.
struct WorkerPool::Ticket::Batch {
  Job fn;
  std::size_t jobs = 0;
  std::size_t next_job = 0;
  std::size_t done = 0;
  std::exception_ptr first_error;
};

WorkerPool::WorkerPool(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  threads_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    threads_.emplace_back([this, lane] { worker_loop(lane); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::set_obs(obs::Session* session) {
  metrics_on_ = session != nullptr;
  lane_busy_us_.assign(lanes_, obs::Counter());
  lane_jobs_.assign(lanes_, obs::Counter());
  queue_depth_ = obs::Gauge();
  if (!session) return;
  auto& r = session->registry;
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    const std::string prefix = "incr.lane." + std::to_string(lane);
    lane_busy_us_[lane] = r.counter(prefix + ".busy_us");
    lane_jobs_[lane] = r.counter(prefix + ".jobs");
  }
  queue_depth_ = r.gauge("incr.pool.queue_depth");
}

void WorkerPool::execute(Ticket::Batch& batch, std::size_t job,
                         std::size_t lane,
                         std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  std::exception_ptr err;
  const auto t0 = metrics_on_ ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  try {
    batch.fn(job, lane);
  } catch (...) {
    err = std::current_exception();
  }
  if (metrics_on_) {
    lane_busy_us_[lane].add(
        us_between(t0, std::chrono::steady_clock::now()));
    lane_jobs_[lane].add();
  }
  lock.lock();
  if (err && !batch.first_error) batch.first_error = err;
  if (++batch.done == batch.jobs) done_cv_.notify_all();
}

void WorkerPool::worker_loop(std::size_t lane) {
  tls_lane = lane;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping, nothing left to drain
    const std::shared_ptr<Ticket::Batch> batch = queue_.front();
    const std::size_t job = batch->next_job++;
    if (batch->next_job == batch->jobs) {
      queue_.pop_front();
      queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    execute(*batch, job, lane, lock);
  }
}

void WorkerPool::run(std::size_t jobs, const Job& fn) {
  if (jobs == 0) return;
  const std::size_t lane = std::min(tls_lane, lanes_ - 1);
  if (lanes_ == 1 || jobs == 1) {
    // Inline fast path: no synchronization at all.
    for (std::size_t job = 0; job < jobs; ++job) fn(job, lane);
    return;
  }

  // The batch lives on this stack frame: run() returns only after
  // observing done == jobs under the mutex, at which point no claimer
  // holds a reference any more.
  Ticket::Batch batch;
  batch.fn = fn;
  batch.jobs = jobs;
  const std::shared_ptr<Ticket::Batch> ref(
      std::shared_ptr<Ticket::Batch>{}, &batch);

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(ref);
  queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  work_cv_.notify_all();
  // The caller drains its own batch alongside the workers.
  while (batch.next_job < batch.jobs) {
    const std::size_t job = batch.next_job++;
    if (batch.next_job == batch.jobs) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), ref));
      queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    execute(batch, job, lane, lock);
  }
  done_cv_.wait(lock, [&] { return batch.done == batch.jobs; });

  if (batch.first_error) {
    const std::exception_ptr err = batch.first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

WorkerPool::Ticket WorkerPool::submit(std::size_t jobs, Job fn) {
  auto batch = std::make_shared<Ticket::Batch>();
  batch->fn = std::move(fn);
  batch->jobs = jobs;
  if (jobs > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(batch);
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    work_cv_.notify_all();
  }
  return Ticket(std::move(batch));
}

void WorkerPool::wait(Ticket& ticket) {
  if (!ticket.batch_) return;
  const std::shared_ptr<Ticket::Batch> batch = std::move(ticket.batch_);
  const std::size_t lane = std::min(tls_lane, lanes_ - 1);

  std::unique_lock<std::mutex> lock(mu_);
  while (batch->next_job < batch->jobs) {
    const std::size_t job = batch->next_job++;
    if (batch->next_job == batch->jobs) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), batch));
      queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    execute(*batch, job, lane, lock);
  }
  done_cv_.wait(lock, [&] { return batch->done == batch->jobs; });

  if (batch->first_error) {
    const std::exception_ptr err = batch->first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace manet::incr
