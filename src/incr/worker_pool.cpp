#include "incr/worker_pool.hpp"

namespace manet::incr {

WorkerPool::WorkerPool(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  threads_.reserve(lanes_ - 1);
  for (std::size_t lane = 1; lane < lanes_; ++lane)
    threads_.emplace_back([this, lane] { worker_loop(lane); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    const Job* fn = fn_;
    while (next_job_ < jobs_) {
      const std::size_t job = next_job_++;
      lock.unlock();
      std::exception_ptr err;
      try {
        (*fn)(job, lane);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !first_error_) first_error_ = err;
      if (++jobs_done_ == jobs_) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(std::size_t jobs, const Job& fn) {
  if (jobs == 0) return;
  if (lanes_ == 1 || jobs == 1) {
    // Inline fast path: no synchronization at all.
    for (std::size_t job = 0; job < jobs; ++job) fn(job, 0);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  jobs_ = jobs;
  next_job_ = 0;
  jobs_done_ = 0;
  first_error_ = nullptr;
  ++generation_;
  start_cv_.notify_all();

  // Caller drains alongside the workers as lane 0.
  while (next_job_ < jobs_) {
    const std::size_t job = next_job_++;
    lock.unlock();
    std::exception_ptr err;
    try {
      fn(job, 0);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !first_error_) first_error_ = err;
    ++jobs_done_;
  }
  done_cv_.wait(lock, [&] { return jobs_done_ == jobs_; });
  jobs_ = 0;  // stale wake-ups of this generation find no work

  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace manet::incr
