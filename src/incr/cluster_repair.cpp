#include "incr/cluster_repair.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::incr {

using cluster::Role;

namespace {

// Rules 1+2 over one delta against any head-status view (the real
// bitset sequentially, a HeadStatusOverlay per region in parallel).
// Fills rep.resigned / declared / head_changed / churn; heads-list and
// role maintenance are the caller's.
template <typename HeadBits>
void run_rules(const graph::DynamicAdjacency& g, const EdgeDelta& delta,
               cluster::Clustering& c, HeadBits& head_bits,
               ClusterRepair& rep) {
  // --- Rule 1: resignations among previous heads joined by new edges.
  // The affected set is closed under the cascade: any previous head
  // adjacent to an affected head is itself an endpoint of an added
  // head-head edge (previous heads were pairwise non-adjacent).
  NodeSet affected_heads;
  for (const auto& [u, w] : delta.added) {
    if (c.head_of[u] == u && c.head_of[w] == w) {
      affected_heads.push_back(u);
      affected_heads.push_back(w);
    }
  }
  normalize(affected_heads);
  // Ascending scan replaying lcc_update's rule 1: h resigns iff some
  // smaller surviving previous head is adjacent.
  for (const NodeId h : affected_heads) {
    bool blocked = false;
    for (const NodeId w : g.neighbors(h)) {
      if (w >= h) break;  // sorted adjacency
      if (c.head_of[w] == w && head_bits.test(w)) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      head_bits.reset(h);
      rep.resigned.push_back(h);
    }
  }
  rep.churn.heads_resigned = rep.resigned.size();

  // --- Rule 2 dirty set: nodes whose old affiliation broke.
  NodeSet dirty = rep.resigned;
  for (const NodeId h : rep.resigned)
    for (const NodeId v : g.neighbors(h))
      if (c.head_of[v] == h) dirty.push_back(v);
  for (const auto& [u, w] : delta.removed) {
    if (c.head_of[u] == w) dirty.push_back(u);
    if (c.head_of[w] == u) dirty.push_back(w);
  }
  normalize(dirty);

  // Ascending scan replaying lcc_update's rule 2. head_bits is exactly
  // lcc_update's is_head[] at the moment each dirty node is visited:
  // survivors of rule 1 plus smaller-id declarations (which can only
  // happen inside the dirty set).
  const std::size_t n = g.order();
  for (const NodeId v : dirty) {
    const NodeId old_head = c.head_of[v];
    const bool old_head_ok = old_head != kInvalidNode && old_head != v &&
                             old_head < n && head_bits.test(old_head) &&
                             g.has_edge(v, old_head);
    if (old_head_ok) continue;  // affiliation survived after all
    NodeId joined = kInvalidNode;
    for (const NodeId w : g.neighbors(v)) {
      if (head_bits.test(w)) {
        joined = w;  // sorted adjacency -> smallest neighboring head
        break;
      }
    }
    if (joined != kInvalidNode) {
      c.head_of[v] = joined;
      ++rep.churn.reaffiliations;
    } else {
      head_bits.set(v);
      c.head_of[v] = v;
      rep.declared.push_back(v);
      ++rep.churn.heads_declared;
    }
    if (c.head_of[v] != old_head) rep.head_changed.push_back(v);
  }
  // `dirty` is sorted, so head_changed / declared came out sorted too.
}

}  // namespace

ClusterRepair repair_clustering(const graph::DynamicAdjacency& g,
                                const EdgeDelta& delta,
                                cluster::Clustering& c,
                                graph::NodeBitset& head_bits) {
  MANET_REQUIRE(c.head_of.size() == g.order(),
                "clustering does not match the adjacency");
  ClusterRepair rep;
  if (delta.empty()) return rep;

  run_rules(g, delta, c, head_bits, rep);

  // Maintain the sorted head list incrementally.
  for (const NodeId h : rep.resigned) erase_sorted(c.heads, h);
  for (const NodeId h : rep.declared) insert_sorted(c.heads, h);

  // --- Roles: refresh exactly the support of the role predicate.
  const NodeSet role_dirty = role_support(g, rep.head_changed, delta.touched);
  refresh_roles(g, c, role_dirty, rep.role_changed);

  rep.dirty = set_union(rep.head_changed, delta.touched);
  return rep;
}

ClusterRepair repair_clustering_region(const graph::DynamicAdjacency& g,
                                       const EdgeDelta& region_delta,
                                       cluster::Clustering& c,
                                       HeadStatusOverlay& overlay) {
  ClusterRepair rep;
  if (region_delta.empty()) return rep;
  run_rules(g, region_delta, c, overlay, rep);
  return rep;
}

NodeSet role_support(const graph::DynamicAdjacency& g,
                     const NodeSet& head_changed, const NodeSet& touched) {
  NodeSet role_dirty = head_changed;
  for (const NodeId v : head_changed)
    for (const NodeId w : g.neighbors(v)) role_dirty.push_back(w);
  for (const NodeId v : touched) role_dirty.push_back(v);
  normalize(role_dirty);
  return role_dirty;
}

void refresh_roles(const graph::DynamicAdjacency& g, cluster::Clustering& c,
                   std::span<const NodeId> nodes, NodeSet& changed) {
  for (const NodeId v : nodes) {
    Role role = Role::kOrdinary;
    if (c.head_of[v] == v) {
      role = Role::kClusterhead;
    } else {
      for (const NodeId w : g.neighbors(v)) {
        if (c.head_of[w] != c.head_of[v]) {
          role = Role::kGateway;
          break;
        }
      }
    }
    if (c.roles[v] != role) {
      c.roles[v] = role;
      changed.push_back(v);
    }
  }
}

}  // namespace manet::incr
