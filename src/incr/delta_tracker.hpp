// Layer 1 of the incremental maintenance engine: turning per-node
// position updates into exact unit-disk link deltas.
//
// geom::SpatialGrid is a CSR counting sort rebuilt from scratch per
// topology — perfect for the batch pipeline, wasteful when only a
// handful of nodes move per tick. DeltaTracker keeps the same cell
// geometry (square cells of side >= range, so every in-range pair lies
// in the same or an adjacent cell) but with mutable per-cell buckets:
// a moving node is plucked out of its old cell and dropped into the new
// one, and only the 3x3 cell block around each dirty node is rescanned.
// The link predicate is the strict `distance < range` of
// geom::unit_disk_graph, so the maintained adjacency overlay is always
// edge-identical to a from-scratch unit_disk_graph over the current
// positions (the pipeline's oracle mode asserts exactly that).
//
// Cell storage follows geom::GridIndex: the dense index allocates one
// bucket per lattice cell with the per-dimension cell count clamped to
// O(sqrt(n)) (the historical layout), while the sparse index interns
// only cells that have ever held a node — uint64 row-major cell keys
// mapped to compact bucket slots through an open-addressing table — so
// memory stays O(n + moves) at full lattice resolution no matter how
// large the field. Both indexes run the same commit path (a dense slot
// IS its cell key), and the maintained adjacency, deltas, and region
// partitions are pure functions of positions and range either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "geom/point.hpp"
#include "geom/spatial_grid.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/edge_delta.hpp"

namespace manet::incr {

class WorkerPool;

/// How far, in grid cells, each staged node's dirty 3x3 block is grown
/// when forming independent repair regions (DESIGN S30). The parallel
/// cluster-repair stage writes head status within 1 hop of a region's
/// changed-edge endpoints and reads it within 2 hops; one unit-disk hop
/// never crosses more than one cell boundary (cell side >= range), so
/// distinct regions need their core cells >= 4 cells apart (Chebyshev).
/// Symmetric growth by 2 guarantees >= 2*2+1 = 5.
inline constexpr std::size_t kRegionGrowthCells = 2;

/// One commit's staged moves partitioned into independent dirty
/// regions: connected components of the grown dirty blocks. Every
/// changed edge (both endpoints) and every touched node of the tick
/// belongs to exactly one region, and distinct regions' core cells are
/// >= 2*kRegionGrowthCells+1 cells apart — far enough that the
/// region-parallel repair stage can never observe another region's
/// writes (the S30 independence argument, pinned by property tests).
struct RegionPartition {
  std::size_t count = 0;           ///< number of regions this commit
  std::vector<EdgeDelta> deltas;   ///< per-region slice of the delta
  /// Per-region sorted-unique core cell keys (row * cols + col of the
  /// 3x3 blocks around each staged node's old and new cells, before
  /// growth): the region size metric and the separation the property
  /// tests assert. 64-bit because the sparse index runs the lattice
  /// unclamped.
  std::vector<std::vector<std::uint64_t>> core_cells;
  /// Per-region sorted node ids living in the region's painted (grown)
  /// cells, filled only when CommitOptions::region_scopes is set. Every
  /// node belongs to at most one region's scope (painted areas are
  /// disjoint); a node outside every scope sits at least (g - 1) cells
  /// — hence at least that many unit-disk hops — from any changed edge
  /// painted with growth g, for every growth tier in play.
  std::vector<std::vector<NodeId>> scopes;
  std::size_t cols = 1;            ///< grid shape, for cell geometry
  std::size_t rows = 1;
};

/// Knobs of one commit(). Defaults reproduce the classic synchronous
/// serial commit; every combination yields the bitwise-identical delta,
/// because the scan diffs against the frozen pre-commit adjacency and
/// the results are merged in a canonical order (DESIGN S31).
struct CommitOptions {
  /// Filled with the tick's independent-region partition when non-null.
  RegionPartition* regions = nullptr;
  /// Shards the dirty-block scan over the pool's lanes when non-null.
  WorkerPool* pool = nullptr;
  /// Leave the adjacency overlay untouched: the returned delta is the
  /// exact edit list, to be replayed later via apply_delta(). This is
  /// what lets a pipelined engine commit tick t+1 while tick t's repair
  /// is still reading the overlay.
  bool defer_adjacency = false;
  /// Paint growth used when forming regions. The default reproduces the
  /// snapshot pipeline's partition (writes within 1 hop, reads within
  /// 2); the message-driven engine asks for a wider halo because its
  /// repair traffic travels further (row re-broadcasts feeding head
  /// reselection feeding TTL-2 gateway floods — see DESIGN).
  std::size_t growth_cells = kRegionGrowthCells;
  /// Also fill RegionPartition::scopes (nodes per painted region).
  bool region_scopes = false;
  /// Optional per-mover growth tiering. When `head_of` is non-empty
  /// (head_of[v] == v marks v a clusterhead as of the start of the
  /// tick), a staged node paints `growth_cells` only if one of its OWN
  /// changed edges touches a clusterhead — those edges can launch the
  /// full resignation / re-affiliation / reselection / flood chain. A
  /// mover whose changed edges connect only ordinary members paints
  /// `member_growth_cells` (its wave stops at the TTL-2 flood of an
  /// adjacent head), and a mover with no changed edges at all paints
  /// `quiet_growth_cells` (it launches no wave; the paint exists only
  /// so overlapping repair merges regions). Each mover's paint has to
  /// contain only the wave its own edges can start: waves from other
  /// movers are contained by those movers' paint, and any overlap
  /// between paints unions the regions.
  std::span<const NodeId> head_of = {};
  std::size_t member_growth_cells = kRegionGrowthCells;
  std::size_t quiet_growth_cells = kRegionGrowthCells;
};

/// Maintains node positions, a mutable cell grid over a fixed working
/// space, and the unit-disk adjacency overlay they induce.
class DeltaTracker {
 public:
  /// Builds the full initial state: positions bucketed into cells,
  /// adjacency = unit-disk graph of `positions` at `range`. The working
  /// space [0, width] x [0, height] fixes the cell geometry; positions
  /// outside it are clamped onto border cells (matching SpatialGrid).
  /// `index` picks the cell storage (kAuto: dense until the lattice
  /// outgrows the dense clamp). `streaming_build` constructs the
  /// initial adjacency through unit_disk_graph_streaming — same graph,
  /// no intermediate edge list, for memory-bound cold builds.
  DeltaTracker(std::vector<geom::Point> positions, double range, double width,
               double height, geom::GridIndex index = geom::GridIndex::kAuto,
               bool streaming_build = false);

  std::size_t size() const { return positions_.size(); }
  double range() const { return range_; }
  const std::vector<geom::Point>& positions() const { return positions_; }

  /// True when cell storage resolved to the sparse interned index.
  bool sparse() const { return sparse_; }
  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }

  /// Allocated cell buckets: cols*rows for the dense index, cells ever
  /// occupied (O(n + committed moves)) for the sparse one.
  std::size_t cell_slots() const { return cells_.size(); }

  /// The maintained adjacency overlay (always consistent with the last
  /// committed positions).
  const graph::DynamicAdjacency& adjacency() const { return adjacency_; }

  /// Stages a position update for `v`. Repeated stages for the same node
  /// before commit() keep the last position. O(1).
  void stage_move(NodeId v, geom::Point p);

  /// Number of staged (not yet committed) moves.
  std::size_t staged_count() const { return staged_.size(); }

  /// Distinct grid cells rescanned by the last commit() (the union of
  /// its 3x3 dirty blocks) — the engine's "dirty region" size at the
  /// geometry layer. Overlapping blocks count once.
  std::size_t last_cells_scanned() const { return last_cells_scanned_; }

  /// Applies all staged moves: updates positions, migrates dirty nodes
  /// between cells, rescans only the dirty 3x3 blocks, applies the edge
  /// changes to the adjacency overlay, and returns them. Expected
  /// O(dirty * d) for d = average degree. When `regions` is non-null it
  /// is additionally filled with the tick's independent-region
  /// partition (same cost class: O(dirty) cells painted).
  EdgeDelta commit(RegionPartition* regions = nullptr);

  /// Full-control commit: parallel scan and/or deferred adjacency
  /// edits. See CommitOptions; the delta is identical in every mode.
  EdgeDelta commit(const CommitOptions& opts);

  /// Replays a delta returned by a defer_adjacency commit onto the
  /// overlay. Must be applied in commit order before the next commit's
  /// scan (the scan diffs against the current overlay).
  void apply_delta(const EdgeDelta& delta);

  /// Sparse-index slot compactions performed so far (satellite: the
  /// intern table used to grow forever under long teleporting churn).
  std::uint64_t compactions() const { return compactions_; }

  /// Cell buckets currently holding at least one node.
  std::size_t occupied_cells() const { return occupied_cells_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Row-major cell key of `p` (row * cols + col, 64-bit so the sparse
  /// lattice never clamps).
  std::uint64_t cell_key(const geom::Point& p) const;

  /// Bucket slot of `key`, or kNoSlot when the sparse index has never
  /// seen the cell. Dense: the key itself.
  std::uint32_t slot_of(std::uint64_t key) const;

  /// Slot of `key`, creating a bucket on first occupancy (sparse).
  std::uint32_t intern(std::uint64_t key);

  /// Inverse of intern for occupied slots.
  std::uint64_t key_of_slot(std::uint32_t slot) const;

  /// Doubles the sparse key->slot table.
  void grow_table();

  /// Rebuilds the key->slot table at `cap` buckets (pow2) from
  /// slot_keys_.
  void rebuild_table(std::size_t cap);

  /// Sparse index only: when the ever-interned slot count has outgrown
  /// the occupied-cell count by 4x, drop the empty buckets and renumber
  /// the survivors (ascending old-slot order, so the result is a pure
  /// function of the commit history). Slot ids are internal — nothing
  /// outside the tracker keys off them — so renumbering is invisible to
  /// deltas, regions, and adjacency.
  void maybe_compact();

  /// Diffs staged_[i], i in [begin, end), against the frozen adjacency
  /// and appends normalized changed edges plus scanned cell keys to the
  /// chunk outputs; sorts all three on return. An edge between two
  /// staged nodes is recorded only by its smaller endpoint, so the
  /// concatenation over chunks has no duplicates.
  void scan_chunk(std::size_t begin, std::size_t end, EdgeDelta& delta,
                  std::vector<std::uint64_t>& keys) const;

  /// Prepares the per-commit paint map for ~`expected` distinct cells.
  void paint_reset(std::size_t expected);

  /// Records `label` as the painter of cell `key`. Returns the previous
  /// painter's label if the cell was already painted this commit, else
  /// kNoSlot. Grows on demand.
  std::uint32_t paint_insert(std::uint64_t key, std::uint32_t label);

  /// Label of the painter of `key`; asserts the cell was painted.
  std::uint32_t paint_get(std::uint64_t key) const;

  /// Paints the grown dirty blocks (per-mover growth per CommitOptions'
  /// tiering), unions overlapping labels, and fills `out` from the
  /// committed `delta`. `old_slots[i]` is the slot staged_[i] occupied
  /// before migration.
  void build_regions(const EdgeDelta& delta,
                     const std::vector<std::uint32_t>& old_slots,
                     const CommitOptions& opts, RegionPartition& out);

  std::vector<geom::Point> positions_;
  graph::DynamicAdjacency adjacency_;
  double range_;
  double range_sq_;
  double width_;
  double height_;
  bool sparse_ = false;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double inv_cell_x_ = 0.0;  // cols / width
  double inv_cell_y_ = 0.0;  // rows / height
  std::vector<std::vector<NodeId>> cells_;    // per-slot id buckets
  std::vector<std::uint64_t> slot_keys_;      // sparse: slot -> cell key
  std::vector<std::uint64_t> table_keys_;     // sparse: open addressing,
  std::vector<std::uint32_t> table_slots_;    //   UINT64_MAX = empty
  std::vector<std::uint32_t> cell_of_node_;   // node -> bucket slot
  std::vector<NodeId> staged_;                // dirty node ids
  std::vector<char> is_staged_;               // dedup flag per node
  std::size_t last_cells_scanned_ = 0;        // dirty-block cells, last commit
  std::size_t occupied_cells_ = 0;            // buckets with >= 1 node
  std::uint64_t compactions_ = 0;             // sparse slot compactions

  // Per-commit scratch (allocated once, O(staged) per tick): dirty-block
  // keys for the cells-scanned count, the open-addressing paint map of
  // the region builder, and the union-find over staged indices.
  std::vector<std::uint64_t> scanned_keys_;
  std::vector<std::uint64_t> paint_keys_;     // pow2, UINT64_MAX = empty
  std::vector<std::uint32_t> paint_labels_;
  std::size_t paint_count_ = 0;
  std::vector<std::uint32_t> union_parent_;   // DSU over staged indices
};

}  // namespace manet::incr
