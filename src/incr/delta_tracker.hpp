// Layer 1 of the incremental maintenance engine: turning per-node
// position updates into exact unit-disk link deltas.
//
// geom::SpatialGrid is a CSR counting sort rebuilt from scratch per
// topology — perfect for the batch pipeline, wasteful when only a
// handful of nodes move per tick. DeltaTracker keeps the same cell
// geometry (square cells of side >= range, so every in-range pair lies
// in the same or an adjacent cell) but with mutable per-cell buckets:
// a moving node is plucked out of its old cell and dropped into the new
// one, and only the 3x3 cell block around each dirty node is rescanned.
// The link predicate is the strict `distance < range` of
// geom::unit_disk_graph, so the maintained adjacency overlay is always
// edge-identical to a from-scratch unit_disk_graph over the current
// positions (the pipeline's oracle mode asserts exactly that).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "geom/point.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/edge_delta.hpp"

namespace manet::incr {

/// Maintains node positions, a mutable cell grid over a fixed working
/// space, and the unit-disk adjacency overlay they induce.
class DeltaTracker {
 public:
  /// Builds the full initial state: positions bucketed into cells,
  /// adjacency = unit-disk graph of `positions` at `range`. The working
  /// space [0, width] x [0, height] fixes the cell geometry; positions
  /// outside it are clamped onto border cells (matching SpatialGrid).
  DeltaTracker(std::vector<geom::Point> positions, double range,
               double width, double height);

  std::size_t size() const { return positions_.size(); }
  double range() const { return range_; }
  const std::vector<geom::Point>& positions() const { return positions_; }

  /// The maintained adjacency overlay (always consistent with the last
  /// committed positions).
  const graph::DynamicAdjacency& adjacency() const { return adjacency_; }

  /// Stages a position update for `v`. Repeated stages for the same node
  /// before commit() keep the last position. O(1).
  void stage_move(NodeId v, geom::Point p);

  /// Number of staged (not yet committed) moves.
  std::size_t staged_count() const { return staged_.size(); }

  /// Grid cells rescanned by the last commit() (its 3x3 dirty blocks) —
  /// the engine's "dirty region" size at the geometry layer.
  std::size_t last_cells_scanned() const { return last_cells_scanned_; }

  /// Applies all staged moves: updates positions, migrates dirty nodes
  /// between cells, rescans only the dirty 3x3 blocks, applies the edge
  /// changes to the adjacency overlay, and returns them. Expected
  /// O(dirty * d) for d = average degree.
  EdgeDelta commit();

 private:
  std::size_t cell_index(const geom::Point& p) const;

  std::vector<geom::Point> positions_;
  graph::DynamicAdjacency adjacency_;
  double range_;
  double range_sq_;
  double width_;
  double height_;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double inv_cell_x_ = 0.0;  // cols / width
  double inv_cell_y_ = 0.0;  // rows / height
  std::vector<std::vector<NodeId>> cells_;    // per-cell id buckets
  std::vector<std::uint32_t> cell_of_node_;   // node -> cell index
  std::vector<NodeId> staged_;                // dirty node ids
  std::vector<char> is_staged_;               // dedup flag per node
  std::size_t last_cells_scanned_ = 0;        // dirty-block cells, last commit
};

}  // namespace manet::incr
