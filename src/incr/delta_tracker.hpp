// Layer 1 of the incremental maintenance engine: turning per-node
// position updates into exact unit-disk link deltas.
//
// geom::SpatialGrid is a CSR counting sort rebuilt from scratch per
// topology — perfect for the batch pipeline, wasteful when only a
// handful of nodes move per tick. DeltaTracker keeps the same cell
// geometry (square cells of side >= range, so every in-range pair lies
// in the same or an adjacent cell) but with mutable per-cell buckets:
// a moving node is plucked out of its old cell and dropped into the new
// one, and only the 3x3 cell block around each dirty node is rescanned.
// The link predicate is the strict `distance < range` of
// geom::unit_disk_graph, so the maintained adjacency overlay is always
// edge-identical to a from-scratch unit_disk_graph over the current
// positions (the pipeline's oracle mode asserts exactly that).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "geom/point.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/edge_delta.hpp"

namespace manet::incr {

/// How far, in grid cells, each staged node's dirty 3x3 block is grown
/// when forming independent repair regions (DESIGN S30). The parallel
/// cluster-repair stage writes head status within 1 hop of a region's
/// changed-edge endpoints and reads it within 2 hops; one unit-disk hop
/// never crosses more than one cell boundary (cell side >= range), so
/// distinct regions need their core cells >= 4 cells apart (Chebyshev).
/// Symmetric growth by 2 guarantees >= 2*2+1 = 5.
inline constexpr std::size_t kRegionGrowthCells = 2;

/// One commit's staged moves partitioned into independent dirty
/// regions: connected components of the grown dirty blocks. Every
/// changed edge (both endpoints) and every touched node of the tick
/// belongs to exactly one region, and distinct regions' core cells are
/// >= 2*kRegionGrowthCells+1 cells apart — far enough that the
/// region-parallel repair stage can never observe another region's
/// writes (the S30 independence argument, pinned by property tests).
struct RegionPartition {
  std::size_t count = 0;           ///< number of regions this commit
  std::vector<EdgeDelta> deltas;   ///< per-region slice of the delta
  /// Per-region sorted-unique core cell indices (the 3x3 blocks around
  /// each staged node's old and new cells, before growth): the region
  /// size metric and the separation the property tests assert.
  std::vector<std::vector<std::uint32_t>> core_cells;
  std::size_t cols = 1;            ///< grid shape, for cell geometry
  std::size_t rows = 1;
};

/// Maintains node positions, a mutable cell grid over a fixed working
/// space, and the unit-disk adjacency overlay they induce.
class DeltaTracker {
 public:
  /// Builds the full initial state: positions bucketed into cells,
  /// adjacency = unit-disk graph of `positions` at `range`. The working
  /// space [0, width] x [0, height] fixes the cell geometry; positions
  /// outside it are clamped onto border cells (matching SpatialGrid).
  DeltaTracker(std::vector<geom::Point> positions, double range,
               double width, double height);

  std::size_t size() const { return positions_.size(); }
  double range() const { return range_; }
  const std::vector<geom::Point>& positions() const { return positions_; }

  /// The maintained adjacency overlay (always consistent with the last
  /// committed positions).
  const graph::DynamicAdjacency& adjacency() const { return adjacency_; }

  /// Stages a position update for `v`. Repeated stages for the same node
  /// before commit() keep the last position. O(1).
  void stage_move(NodeId v, geom::Point p);

  /// Number of staged (not yet committed) moves.
  std::size_t staged_count() const { return staged_.size(); }

  /// Distinct grid cells rescanned by the last commit() (the union of
  /// its 3x3 dirty blocks) — the engine's "dirty region" size at the
  /// geometry layer. Overlapping blocks count once.
  std::size_t last_cells_scanned() const { return last_cells_scanned_; }

  /// Applies all staged moves: updates positions, migrates dirty nodes
  /// between cells, rescans only the dirty 3x3 blocks, applies the edge
  /// changes to the adjacency overlay, and returns them. Expected
  /// O(dirty * d) for d = average degree. When `regions` is non-null it
  /// is additionally filled with the tick's independent-region
  /// partition (same cost class: O(dirty) cells painted).
  EdgeDelta commit(RegionPartition* regions = nullptr);

 private:
  std::size_t cell_index(const geom::Point& p) const;

  /// Advances the per-cell stamp epoch (wrap-safe).
  void bump_epoch();

  /// Paints the grown dirty blocks, unions overlapping labels, and
  /// fills `out` from the committed `delta`. `old_cells[i]` is the cell
  /// staged_[i] occupied before migration.
  void build_regions(const EdgeDelta& delta,
                     const std::vector<std::uint32_t>& old_cells,
                     RegionPartition& out);

  std::vector<geom::Point> positions_;
  graph::DynamicAdjacency adjacency_;
  double range_;
  double range_sq_;
  double width_;
  double height_;
  std::size_t cols_ = 1;
  std::size_t rows_ = 1;
  double inv_cell_x_ = 0.0;  // cols / width
  double inv_cell_y_ = 0.0;  // rows / height
  std::vector<std::vector<NodeId>> cells_;    // per-cell id buckets
  std::vector<std::uint32_t> cell_of_node_;   // node -> cell index
  std::vector<NodeId> staged_;                // dirty node ids
  std::vector<char> is_staged_;               // dedup flag per node
  std::size_t last_cells_scanned_ = 0;        // dirty-block cells, last commit

  // Epoch-stamped per-cell scratch (allocated once, O(cells) = O(n)):
  // a cell is "marked this commit" iff its stamp equals epoch_, so no
  // per-commit clearing is needed.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> scan_stamp_;     // cells-scanned dedup
  std::vector<std::uint32_t> core_stamp_;     // core-cell dedup (regions)
  std::vector<std::uint32_t> paint_stamp_;    // grown-block painting
  std::vector<std::uint32_t> paint_label_;    // painted staged-index label
  std::vector<std::uint32_t> union_parent_;   // DSU over staged indices
};

}  // namespace manet::incr
