// The unit of work the incremental maintenance engine consumes: the
// exact set of unit-disk links that appeared or disappeared between two
// consecutive topology states of the same node population.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::incr {

/// A batch of topology changes. Edges are normalized (min, max) and
/// lexicographically sorted; `touched` lists every endpoint of a changed
/// edge (sorted-unique) — the seed of the engine's dirty region.
struct EdgeDelta {
  std::vector<std::pair<NodeId, NodeId>> added;
  std::vector<std::pair<NodeId, NodeId>> removed;
  NodeSet touched;

  bool empty() const { return added.empty() && removed.empty(); }
  std::size_t link_changes() const { return added.size() + removed.size(); }
};

/// Symmetric edge-set difference of two snapshots of the same
/// population (used to feed arbitrary graph pairs into the engine, e.g.
/// by mobility::compare_snapshots).
EdgeDelta diff_graphs(const graph::Graph& before, const graph::Graph& after);

}  // namespace manet::incr
