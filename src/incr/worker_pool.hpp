// Fixed-width worker pool for the sharded parallel repair path, with
// both fork/join and asynchronous submit/wait batch execution.
//
// The engine's parallel stages are short (tens of microseconds to a few
// milliseconds) and fire every tick, so thread spawn-per-tick is off
// the table: the pool parks `lanes - 1` workers on a condition variable
// and callers participate as execution lanes themselves, which makes
// lanes == 1 a true zero-thread configuration (run() executes inline on
// the caller, submit() defers until wait()) and keeps the hot hand-off
// to one notify_all.
//
// Jobs are claimed one at a time under the mutex — jobs here are chunky
// (a repair region, a row chunk, a whole deferred repair), counted in
// the tens, so claim contention is irrelevant and the simplicity buys
// easy reasoning: determinism never depends on which lane ran a job,
// because callers index all outputs by job id.
//
// Asynchronous batches (submit/wait) are what the pipelined engine runs
// its deferred tick repairs on: the caller submits the repair as a
// one-job batch, keeps ingesting the next tick on its own lane, and
// joins the ticket at the handoff point. A job may itself call run() or
// submit()/wait() on the same pool (the repair driver fans its stages
// out this way); the claim loops always make progress on the claiming
// thread, so nesting cannot deadlock even with zero free workers.
//
// Lane identity: workers own lanes 1..lanes-1 for their lifetime;
// every external thread is lane 0. A job executing on a worker that
// re-enters the pool keeps its worker's lane (thread-local), so
// lane-indexed scratch stays exclusive while the main thread and an
// async repair share the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::incr {

class WorkerPool {
 public:
  /// fn(job, lane): job is the work-item index, lane identifies the
  /// executing lane (0 = any external caller) for per-lane scratch.
  using Job = std::function<void(std::size_t job, std::size_t lane)>;

  /// Handle of one submitted batch; redeemed exactly once by wait().
  class Ticket {
   public:
    Ticket() = default;
    /// True while the ticket references an un-waited batch.
    explicit operator bool() const { return batch_ != nullptr; }

   private:
    friend class WorkerPool;
    struct Batch;
    explicit Ticket(std::shared_ptr<Batch> batch)
        : batch_(std::move(batch)) {}
    std::shared_ptr<Batch> batch_;
  };

  /// `lanes` total execution lanes including the caller; clamped to 1.
  explicit WorkerPool(std::size_t lanes);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  /// Runs fn(job, lane) for every job in [0, jobs) and blocks until all
  /// complete. The caller drains jobs on its own lane alongside the
  /// workers. If any job throws, the first exception (in completion
  /// order) is rethrown after the batch drains; the rest are dropped.
  void run(std::size_t jobs, const Job& fn);

  /// Enqueues a batch without waiting: workers start claiming its jobs
  /// immediately (lanes > 1); with a single lane the batch sits queued
  /// until wait() drains it on the caller. Batches complete in claim
  /// order, not submission order — callers synchronize via wait().
  Ticket submit(std::size_t jobs, Job fn);

  /// Drains and joins one submitted batch: the caller claims this
  /// batch's remaining jobs on its own lane, then blocks until every
  /// claimed job finished. Rethrows the batch's first exception and
  /// invalidates the ticket. Waiting on an empty ticket is a no-op.
  void wait(Ticket& ticket);

  /// Registers per-lane utilization metrics (`incr.lane.<i>.busy_us`,
  /// `incr.lane.<i>.jobs`) and the `incr.pool.queue_depth` gauge on the
  /// session's registry; nullptr detaches. These record wall-clock and
  /// scheduling facts, so they are exempt from the metric-snapshot
  /// determinism contract (MetricsSnapshot::deterministic() drops
  /// them). Call between batches, not while jobs are in flight.
  void set_obs(obs::Session* session);

 private:
  struct BatchRef;  // claimed (batch, job) pair

  void worker_loop(std::size_t lane);
  /// Executes fn(job, lane), recording lane busy time, and folds any
  /// exception into the batch under the pool mutex. Returns true when
  /// this call completed the batch's last job.
  void execute(Ticket::Batch& batch, std::size_t job, std::size_t lane,
               std::unique_lock<std::mutex>& lock);

  std::size_t lanes_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // All below guarded by mu_.
  bool stopping_ = false;
  /// Batches with unclaimed jobs, oldest first. Fully claimed batches
  /// leave the queue; their waiters watch Batch::done instead.
  std::deque<std::shared_ptr<Ticket::Batch>> queue_;

  // Lane metrics (inert unless set_obs attached a session).
  bool metrics_on_ = false;
  std::vector<obs::Counter> lane_busy_us_;
  std::vector<obs::Counter> lane_jobs_;
  obs::Gauge queue_depth_;
};

}  // namespace manet::incr
