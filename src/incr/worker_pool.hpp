// Fixed-width fork/join pool for the sharded parallel repair path.
//
// The engine's parallel stages are short (tens of microseconds to a few
// milliseconds) and fire every tick, so thread spawn-per-tick is off
// the table: the pool parks `lanes - 1` workers on a condition variable
// and the *caller participates as lane 0*, which makes lanes == 1 a
// true zero-thread configuration (everything runs inline on the caller,
// no synchronization) and keeps the hot hand-off to one notify_all.
//
// Jobs are claimed one at a time under the mutex — jobs here are chunky
// (a repair region, a row chunk), counted in the tens, so claim
// contention is irrelevant and the simplicity buys easy reasoning:
// determinism never depends on which lane ran a job, because callers
// index all outputs by job id.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manet::incr {

class WorkerPool {
 public:
  /// fn(job, lane): job is the work-item index, lane identifies the
  /// executing lane (0 = caller) for per-lane scratch.
  using Job = std::function<void(std::size_t job, std::size_t lane)>;

  /// `lanes` total execution lanes including the caller; clamped to 1.
  explicit WorkerPool(std::size_t lanes);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  /// Runs fn(job, lane) for every job in [0, jobs) and blocks until all
  /// complete. The caller drains jobs as lane 0 alongside the workers.
  /// If any job throws, the first exception (in completion order) is
  /// rethrown after the batch drains; the rest are dropped.
  void run(std::size_t jobs, const Job& fn);

 private:
  void worker_loop(std::size_t lane);

  std::size_t lanes_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // All below guarded by mu_.
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
  const Job* fn_ = nullptr;
  std::size_t jobs_ = 0;
  std::size_t next_job_ = 0;
  std::size_t jobs_done_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace manet::incr
