#include "incr/delta_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "geom/unit_disk.hpp"

namespace manet::incr {

DeltaTracker::DeltaTracker(std::vector<geom::Point> positions, double range,
                           double width, double height)
    : positions_(std::move(positions)),
      adjacency_(geom::unit_disk_graph(positions_, range)),
      range_(range),
      range_sq_(range * range),
      width_(width),
      height_(height) {
  MANET_REQUIRE(!positions_.empty(), "tracker needs at least one node");
  MANET_REQUIRE(range_ > 0.0, "transmission range must be positive");
  MANET_REQUIRE(width_ > 0.0 && height_ > 0.0, "area must be positive");

  // Square cells of side >= range (so any in-range pair sits in the same
  // or an adjacent cell), with the per-dimension cell count clamped to
  // keep the cell array O(n) even for a tiny range over a huge area.
  const auto cap = static_cast<std::size_t>(
      std::ceil(std::sqrt(4.0 * static_cast<double>(positions_.size())))) +
      1;
  const auto fit_x = static_cast<std::size_t>(width_ / range_);
  const auto fit_y = static_cast<std::size_t>(height_ / range_);
  cols_ = std::clamp<std::size_t>(fit_x, 1, cap);
  rows_ = std::clamp<std::size_t>(fit_y, 1, cap);
  inv_cell_x_ = static_cast<double>(cols_) / width_;
  inv_cell_y_ = static_cast<double>(rows_) / height_;

  cells_.resize(cols_ * rows_);
  cell_of_node_.resize(positions_.size());
  is_staged_.assign(positions_.size(), 0);
  for (NodeId v = 0; v < positions_.size(); ++v) {
    const std::size_t cell = cell_index(positions_[v]);
    cell_of_node_[v] = static_cast<std::uint32_t>(cell);
    cells_[cell].push_back(v);
  }
}

std::size_t DeltaTracker::cell_index(const geom::Point& p) const {
  // Out-of-box positions clamp onto the border cells, like SpatialGrid.
  const std::size_t col =
      p.x <= 0.0 ? 0
                 : std::min(cols_ - 1,
                            static_cast<std::size_t>(p.x * inv_cell_x_));
  const std::size_t row =
      p.y <= 0.0 ? 0
                 : std::min(rows_ - 1,
                            static_cast<std::size_t>(p.y * inv_cell_y_));
  return row * cols_ + col;
}

void DeltaTracker::stage_move(NodeId v, geom::Point p) {
  MANET_REQUIRE(v < positions_.size(), "node id out of range");
  positions_[v] = p;  // last staged position wins
  if (!is_staged_[v]) {
    is_staged_[v] = 1;
    staged_.push_back(v);
  }
}

EdgeDelta DeltaTracker::commit() {
  EdgeDelta delta;
  last_cells_scanned_ = 0;
  if (staged_.empty()) return delta;

  // Phase 1: migrate every dirty node to its (possibly new) cell, so all
  // neighborhood scans below see final positions.
  for (const NodeId v : staged_) {
    const std::size_t cell = cell_index(positions_[v]);
    const std::size_t old_cell = cell_of_node_[v];
    if (cell == old_cell) continue;
    auto& bucket = cells_[old_cell];
    const auto it = std::find(bucket.begin(), bucket.end(), v);
    MANET_ASSERT(it != bucket.end(), "node missing from its grid cell");
    *it = bucket.back();
    bucket.pop_back();
    cells_[cell].push_back(v);
    cell_of_node_[v] = static_cast<std::uint32_t>(cell);
  }

  // Phase 2: rescan each dirty node's 3x3 block and diff against the
  // adjacency overlay. Edits are applied immediately, so when a later
  // dirty node is diffed the already-repaired pairs are no longer in its
  // symmetric difference — every changed edge is recorded exactly once.
  std::vector<NodeId> now;
  std::vector<NodeId> old;
  for (const NodeId v : staged_) {
    const geom::Point p = positions_[v];
    const std::size_t cell = cell_of_node_[v];
    const std::size_t col = cell % cols_;
    const std::size_t row = cell / cols_;
    const std::size_t c0 = col > 0 ? col - 1 : 0;
    const std::size_t c1 = col + 1 < cols_ ? col + 1 : cols_ - 1;
    const std::size_t r0 = row > 0 ? row - 1 : 0;
    const std::size_t r1 = row + 1 < rows_ ? row + 1 : rows_ - 1;
    last_cells_scanned_ += (r1 - r0 + 1) * (c1 - c0 + 1);
    now.clear();
    for (std::size_t r = r0; r <= r1; ++r)
      for (std::size_t c = c0; c <= c1; ++c)
        for (const NodeId w : cells_[r * cols_ + c])
          if (w != v && geom::distance_sq(p, positions_[w]) < range_sq_)
            now.push_back(w);
    std::sort(now.begin(), now.end());

    const auto nb = adjacency_.neighbors(v);
    old.assign(nb.begin(), nb.end());
    // Sorted two-pointer diff; mutations are deferred past the spans.
    std::vector<NodeId> to_add;
    std::vector<NodeId> to_remove;
    std::set_difference(now.begin(), now.end(), old.begin(), old.end(),
                        std::back_inserter(to_add));
    std::set_difference(old.begin(), old.end(), now.begin(), now.end(),
                        std::back_inserter(to_remove));
    for (const NodeId w : to_add) {
      adjacency_.add_edge(v, w);
      delta.added.emplace_back(std::min(v, w), std::max(v, w));
    }
    for (const NodeId w : to_remove) {
      adjacency_.remove_edge(v, w);
      delta.removed.emplace_back(std::min(v, w), std::max(v, w));
    }
  }

  for (const NodeId v : staged_) is_staged_[v] = 0;
  staged_.clear();

  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  for (const auto& [u, w] : delta.added) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  for (const auto& [u, w] : delta.removed) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  normalize(delta.touched);
  return delta;
}

}  // namespace manet::incr
