#include "incr/delta_tracker.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/assert.hpp"
#include "geom/unit_disk.hpp"
#include "incr/worker_pool.hpp"

namespace manet::incr {
namespace {

// Per-dimension bound for the sparse lattice: keys row * cols + col stay
// below 2^50 in a uint64. Capping only grows the cell side, which widens
// rescan blocks but never loses an in-range pair.
constexpr std::size_t kMaxSparseDim = std::size_t{1} << 25;

// splitmix64 finalizer — the probe hash for both open-addressing maps.
// A pure function of the key, so probing is deterministic across runs.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// floor(extent / cell) clamped into [1, kMaxSparseDim], computed in
// double so degenerate huge-area / tiny-range inputs cannot overflow the
// integer cast.
std::size_t lattice_dim(double extent, double cell) {
  const double cells = extent / cell;
  if (!(cells > 1.0)) return 1;
  if (cells >= static_cast<double>(kMaxSparseDim)) return kMaxSparseDim;
  return std::max<std::size_t>(1, static_cast<std::size_t>(cells));
}

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

// Folds sorted per-chunk vectors into one sorted vector (stable k-way
// merge, so cross-chunk duplicates stay adjacent for a later unique).
// Done iteratively because k is a handful of chunks per lane.
template <typename T>
std::vector<T> merge_sorted(std::vector<std::vector<T>>& parts) {
  std::vector<T> merged;
  std::vector<T> tmp;
  for (auto& part : parts) {
    if (part.empty()) continue;
    if (merged.empty()) {
      merged = std::move(part);
      continue;
    }
    tmp.clear();
    tmp.reserve(merged.size() + part.size());
    std::merge(merged.begin(), merged.end(), part.begin(), part.end(),
               std::back_inserter(tmp));
    merged.swap(tmp);
  }
  return merged;
}

}  // namespace

DeltaTracker::DeltaTracker(std::vector<geom::Point> positions, double range,
                           double width, double height, geom::GridIndex index,
                           bool streaming_build)
    : positions_(std::move(positions)),
      adjacency_(streaming_build
                     ? geom::unit_disk_graph_streaming(positions_, range, index)
                     : geom::unit_disk_graph(positions_, range, index)),
      range_(range),
      range_sq_(range * range),
      width_(width),
      height_(height) {
  MANET_REQUIRE(!positions_.empty(), "tracker needs at least one node");
  MANET_REQUIRE(range_ > 0.0, "transmission range must be positive");
  MANET_REQUIRE(width_ > 0.0 && height_ > 0.0, "area must be positive");

  // Square cells of side >= range (so any in-range pair sits in the same
  // or an adjacent cell). The dense index clamps the per-dimension cell
  // count to keep the cell array O(n) even for a tiny range over a huge
  // area; the sparse index runs the lattice unclamped and interns only
  // occupied cells. kAuto goes sparse exactly when the dense clamp would
  // have had to coarsen the cells.
  const std::size_t n = positions_.size();
  const auto cap = static_cast<std::size_t>(
                       std::ceil(std::sqrt(4.0 * static_cast<double>(n)))) +
                   1;
  const std::size_t fit_x = lattice_dim(width_, range_);
  const std::size_t fit_y = lattice_dim(height_, range_);
  sparse_ = index == geom::GridIndex::kSparse ||
            (index == geom::GridIndex::kAuto && (fit_x > cap || fit_y > cap));
  cols_ = sparse_ ? fit_x : std::clamp<std::size_t>(fit_x, 1, cap);
  rows_ = sparse_ ? fit_y : std::clamp<std::size_t>(fit_y, 1, cap);
  inv_cell_x_ = static_cast<double>(cols_) / width_;
  inv_cell_y_ = static_cast<double>(rows_) / height_;

  if (sparse_) {
    const std::size_t table = pow2_at_least(2 * n);
    table_keys_.assign(table, ~std::uint64_t{0});
    table_slots_.resize(table);
  } else {
    cells_.resize(cols_ * rows_);
  }
  cell_of_node_.resize(n);
  is_staged_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t slot = intern(cell_key(positions_[v]));
    cell_of_node_[v] = slot;
    if (cells_[slot].empty()) ++occupied_cells_;
    cells_[slot].push_back(v);
  }
}

std::uint64_t DeltaTracker::cell_key(const geom::Point& p) const {
  // Out-of-box positions clamp onto the border cells, like SpatialGrid.
  const std::size_t col =
      p.x <= 0.0 ? 0
                 : std::min(cols_ - 1,
                            static_cast<std::size_t>(p.x * inv_cell_x_));
  const std::size_t row =
      p.y <= 0.0 ? 0
                 : std::min(rows_ - 1,
                            static_cast<std::size_t>(p.y * inv_cell_y_));
  return static_cast<std::uint64_t>(row) * cols_ + col;
}

std::uint32_t DeltaTracker::slot_of(std::uint64_t key) const {
  if (!sparse_) return static_cast<std::uint32_t>(key);
  const std::size_t mask = table_keys_.size() - 1;
  for (std::size_t h = mix64(key) & mask;; h = (h + 1) & mask) {
    if (table_keys_[h] == key) return table_slots_[h];
    if (table_keys_[h] == ~std::uint64_t{0}) return kNoSlot;
  }
}

std::uint32_t DeltaTracker::intern(std::uint64_t key) {
  if (!sparse_) return static_cast<std::uint32_t>(key);
  const std::size_t mask = table_keys_.size() - 1;
  for (std::size_t h = mix64(key) & mask;; h = (h + 1) & mask) {
    if (table_keys_[h] == key) return table_slots_[h];
    if (table_keys_[h] != ~std::uint64_t{0}) continue;
    const auto slot = static_cast<std::uint32_t>(slot_keys_.size());
    table_keys_[h] = key;
    table_slots_[h] = slot;
    slot_keys_.push_back(key);
    cells_.emplace_back();
    if (2 * slot_keys_.size() > table_keys_.size()) grow_table();
    return slot;
  }
}

std::uint64_t DeltaTracker::key_of_slot(std::uint32_t slot) const {
  return sparse_ ? slot_keys_[slot] : slot;
}

void DeltaTracker::grow_table() { rebuild_table(table_keys_.size() * 2); }

void DeltaTracker::rebuild_table(std::size_t cap) {
  table_keys_.assign(cap, ~std::uint64_t{0});
  table_slots_.resize(cap);
  const std::size_t mask = cap - 1;
  for (std::uint32_t slot = 0; slot < slot_keys_.size(); ++slot) {
    std::size_t h = mix64(slot_keys_[slot]) & mask;
    while (table_keys_[h] != ~std::uint64_t{0}) h = (h + 1) & mask;
    table_keys_[h] = slot_keys_[slot];
    table_slots_[h] = slot;
  }
}

void DeltaTracker::maybe_compact() {
  if (!sparse_) return;
  if (slot_keys_.size() < 4 * occupied_cells_ + 64) return;
  ++compactions_;

  // Survivors keep their relative order, so the renumbering (and with
  // it every future intern) is a pure function of the commit history —
  // independent of thread count or pipelining.
  std::vector<std::uint32_t> remap(slot_keys_.size(), kNoSlot);
  std::vector<std::uint64_t> keys;
  std::vector<std::vector<NodeId>> buckets;
  keys.reserve(occupied_cells_);
  buckets.reserve(occupied_cells_);
  for (std::uint32_t slot = 0; slot < slot_keys_.size(); ++slot) {
    if (cells_[slot].empty()) continue;
    remap[slot] = static_cast<std::uint32_t>(keys.size());
    keys.push_back(slot_keys_[slot]);
    buckets.push_back(std::move(cells_[slot]));
  }
  MANET_ASSERT(keys.size() == occupied_cells_,
               "occupancy count out of sync with cell buckets");
  slot_keys_ = std::move(keys);
  cells_ = std::move(buckets);
  for (auto& slot : cell_of_node_) {
    slot = remap[slot];  // every node's cell is occupied by definition
    MANET_ASSERT(slot != kNoSlot, "node mapped to an evicted cell slot");
  }
  rebuild_table(pow2_at_least(
      2 * std::max(positions_.size(), slot_keys_.size())));
}

void DeltaTracker::stage_move(NodeId v, geom::Point p) {
  MANET_REQUIRE(v < positions_.size(), "node id out of range");
  positions_[v] = p;  // last staged position wins
  if (!is_staged_[v]) {
    is_staged_[v] = 1;
    staged_.push_back(v);
  }
}

EdgeDelta DeltaTracker::commit(RegionPartition* regions) {
  CommitOptions opts;
  opts.regions = regions;
  return commit(opts);
}

void DeltaTracker::scan_chunk(std::size_t begin, std::size_t end,
                              EdgeDelta& delta,
                              std::vector<std::uint64_t>& keys) const {
  // Diff against the *frozen* pre-commit adjacency. The classic serial
  // commit mutated the overlay mid-scan so each changed edge fell out of
  // exactly one endpoint's symmetric difference; against a frozen
  // overlay a staged-staged edge shows up at both endpoints instead, so
  // the smaller endpoint claims it. Both rules select the same edge set
  // (every changed pair incident to a staged node, once), which is what
  // keeps deferred, parallel, and serial commits hash-identical.
  std::vector<NodeId> now;
  std::vector<NodeId> old;
  std::vector<NodeId> to_add;
  std::vector<NodeId> to_remove;
  for (std::size_t i = begin; i < end; ++i) {
    const NodeId v = staged_[i];
    const geom::Point p = positions_[v];
    const std::uint64_t key = key_of_slot(cell_of_node_[v]);
    const auto col = static_cast<std::size_t>(key % cols_);
    const auto row = static_cast<std::size_t>(key / cols_);
    const std::size_t c0 = col > 0 ? col - 1 : 0;
    const std::size_t c1 = col + 1 < cols_ ? col + 1 : cols_ - 1;
    const std::size_t r0 = row > 0 ? row - 1 : 0;
    const std::size_t r1 = row + 1 < rows_ ? row + 1 : rows_ - 1;
    now.clear();
    for (std::size_t r = r0; r <= r1; ++r)
      for (std::size_t c = c0; c <= c1; ++c) {
        const std::uint64_t k = static_cast<std::uint64_t>(r) * cols_ + c;
        keys.push_back(k);
        const std::uint32_t slot = slot_of(k);
        if (slot == kNoSlot) continue;  // sparse: cell never occupied
        for (const NodeId w : cells_[slot])
          if (w != v && geom::distance_sq(p, positions_[w]) < range_sq_)
            now.push_back(w);
      }
    std::sort(now.begin(), now.end());

    const auto nb = adjacency_.neighbors(v);
    old.assign(nb.begin(), nb.end());
    to_add.clear();
    to_remove.clear();
    std::set_difference(now.begin(), now.end(), old.begin(), old.end(),
                        std::back_inserter(to_add));
    std::set_difference(old.begin(), old.end(), now.begin(), now.end(),
                        std::back_inserter(to_remove));
    for (const NodeId w : to_add)
      if (!is_staged_[w] || v < w)
        delta.added.emplace_back(std::min(v, w), std::max(v, w));
    for (const NodeId w : to_remove)
      if (!is_staged_[w] || v < w)
        delta.removed.emplace_back(std::min(v, w), std::max(v, w));
  }
  // Partial sorts inside the (possibly worker-side) chunk; the caller
  // k-way merges, so the serial tail is O(changes), not O(changes log).
  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

EdgeDelta DeltaTracker::commit(const CommitOptions& opts) {
  EdgeDelta delta;
  last_cells_scanned_ = 0;
  if (opts.regions) {
    opts.regions->count = 0;
    opts.regions->deltas.clear();
    opts.regions->core_cells.clear();
    opts.regions->scopes.clear();
    opts.regions->cols = cols_;
    opts.regions->rows = rows_;
  }
  if (staged_.empty()) return delta;

  // Phase 1: migrate every dirty node to its (possibly new) cell, so all
  // neighborhood scans below see final positions. The pre-move slots are
  // kept: removed edges live near the *old* positions, so the region
  // partition must treat both blocks of a mover as dirty.
  std::vector<std::uint32_t> old_slots(staged_.size());
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const NodeId v = staged_[i];
    const std::uint64_t key = cell_key(positions_[v]);
    const std::uint32_t old_slot = cell_of_node_[v];
    old_slots[i] = old_slot;
    if (key == key_of_slot(old_slot)) continue;
    const std::uint32_t slot = intern(key);
    auto& bucket = cells_[old_slot];
    const auto it = std::find(bucket.begin(), bucket.end(), v);
    MANET_ASSERT(it != bucket.end(), "node missing from its grid cell");
    *it = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) --occupied_cells_;
    if (cells_[slot].empty()) ++occupied_cells_;
    cells_[slot].push_back(v);
    cell_of_node_[v] = slot;
  }

  // Phase 2: rescan the dirty 3x3 blocks against the frozen adjacency,
  // sharded into contiguous staged ranges when a pool is attached. The
  // chunking never shows: chunk outputs are disjoint by the
  // smaller-endpoint rule and the merge below restores the one global
  // sorted order the serial scan produces.
  const std::size_t lanes = opts.pool ? opts.pool->lanes() : 1;
  const std::size_t n_chunks =
      lanes <= 1 ? 1 : std::min(staged_.size(), lanes * 4);
  std::vector<EdgeDelta> chunk_deltas(n_chunks);
  std::vector<std::vector<std::uint64_t>> chunk_keys(n_chunks);
  const auto scan_job = [&](std::size_t job, std::size_t /*lane*/) {
    const std::size_t begin = job * staged_.size() / n_chunks;
    const std::size_t end = (job + 1) * staged_.size() / n_chunks;
    scan_chunk(begin, end, chunk_deltas[job], chunk_keys[job]);
  };
  if (opts.pool && n_chunks > 1) {
    opts.pool->run(n_chunks, scan_job);
  } else {
    scan_job(0, 0);
  }

  {
    std::vector<std::vector<std::pair<NodeId, NodeId>>> parts;
    parts.reserve(n_chunks);
    for (auto& c : chunk_deltas) parts.push_back(std::move(c.added));
    delta.added = merge_sorted(parts);
    parts.clear();
    for (auto& c : chunk_deltas) parts.push_back(std::move(c.removed));
    delta.removed = merge_sorted(parts);
  }
  // Overlapping dirty blocks count once, whether or not their cells have
  // ever been occupied (the dense index used to stamp per-cell scratch;
  // key dedup gives the identical count without O(cells) state).
  scanned_keys_ = merge_sorted(chunk_keys);
  last_cells_scanned_ = static_cast<std::size_t>(
      std::unique(scanned_keys_.begin(), scanned_keys_.end()) -
      scanned_keys_.begin());

  for (const NodeId v : staged_) is_staged_[v] = 0;

  for (const auto& [u, w] : delta.added) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  for (const auto& [u, w] : delta.removed) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  normalize(delta.touched);

  if (!opts.defer_adjacency) apply_delta(delta);
  if (opts.regions) build_regions(delta, old_slots, opts, *opts.regions);
  staged_.clear();
  maybe_compact();
  return delta;
}

void DeltaTracker::apply_delta(const EdgeDelta& delta) {
  for (const auto& [u, w] : delta.added) {
    const bool fresh = adjacency_.add_edge(u, w);
    MANET_ASSERT(fresh, "delta add replayed onto an existing edge");
    (void)fresh;
  }
  for (const auto& [u, w] : delta.removed) {
    const bool gone = adjacency_.remove_edge(u, w);
    MANET_ASSERT(gone, "delta removed a missing edge");
    (void)gone;
  }
}

void DeltaTracker::paint_reset(std::size_t expected) {
  const std::size_t cap = pow2_at_least(2 * expected);
  if (paint_keys_.size() < cap) {
    paint_keys_.assign(cap, ~std::uint64_t{0});
    paint_labels_.resize(cap);
  } else {
    std::fill(paint_keys_.begin(), paint_keys_.end(), ~std::uint64_t{0});
  }
  paint_count_ = 0;
}

std::uint32_t DeltaTracker::paint_insert(std::uint64_t key,
                                         std::uint32_t label) {
  if (2 * paint_count_ >= paint_keys_.size()) {
    // Rehash in place to 2x: stash live pairs, reset, reinsert.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> live;
    live.reserve(paint_count_);
    for (std::size_t h = 0; h < paint_keys_.size(); ++h)
      if (paint_keys_[h] != ~std::uint64_t{0})
        live.emplace_back(paint_keys_[h], paint_labels_[h]);
    const std::size_t cap = paint_keys_.size() * 2;
    paint_keys_.assign(cap, ~std::uint64_t{0});
    paint_labels_.resize(cap);
    paint_count_ = 0;
    for (const auto& [k, l] : live) paint_insert(k, l);
  }
  const std::size_t mask = paint_keys_.size() - 1;
  for (std::size_t h = mix64(key) & mask;; h = (h + 1) & mask) {
    if (paint_keys_[h] == key) return paint_labels_[h];
    if (paint_keys_[h] != ~std::uint64_t{0}) continue;
    paint_keys_[h] = key;
    paint_labels_[h] = label;
    ++paint_count_;
    return kNoSlot;
  }
}

std::uint32_t DeltaTracker::paint_get(std::uint64_t key) const {
  const std::size_t mask = paint_keys_.size() - 1;
  for (std::size_t h = mix64(key) & mask;; h = (h + 1) & mask) {
    if (paint_keys_[h] == key) return paint_labels_[h];
    MANET_ASSERT(paint_keys_[h] != ~std::uint64_t{0},
                 "delta endpoint outside the painted dirty region");
  }
}

void DeltaTracker::build_regions(const EdgeDelta& delta,
                                 const std::vector<std::uint32_t>& old_slots,
                                 const CommitOptions& opts,
                                 RegionPartition& out) {
  // Union-find over staged indices. One label covers BOTH of a mover's
  // blocks (old and new cell), so a teleporting node can never straddle
  // two regions — its removed and added edges repair together.
  union_parent_.resize(staged_.size());
  for (std::uint32_t i = 0; i < staged_.size(); ++i) union_parent_[i] = i;
  const auto find = [&](std::uint32_t x) {
    while (union_parent_[x] != x) {
      union_parent_[x] = union_parent_[union_parent_[x]];  // halve path
      x = union_parent_[x];
    }
    return x;
  };
  const auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) union_parent_[std::max(a, b)] = std::min(a, b);
  };

  // Per-mover paint growth. Without tiering (head_of empty) every mover
  // paints growth_cells, the historical behavior. With tiering, a mover
  // paints for the repair wave its OWN changed edges can launch: the
  // full chain only when one of its edges touches a tick-start
  // clusterhead, the member tier when its edges connect only members,
  // and the quiet tier when it kept every link. Waves launched by other
  // movers are contained by those movers' paint, so the per-mover bound
  // is sound region-wide; any paint overlap merges the regions.
  const bool tiered = !opts.head_of.empty();
  std::vector<std::size_t> growth_of;
  if (tiered) {
    growth_of.assign(staged_.size(), opts.quiet_growth_cells);
    // Staged indices sorted by node id, so delta endpoints (node ids)
    // can be mapped back to their staged slot by binary search.
    std::vector<std::uint32_t> by_id(staged_.size());
    for (std::uint32_t i = 0; i < by_id.size(); ++i) by_id[i] = i;
    std::sort(by_id.begin(), by_id.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return staged_[a] < staged_[b];
              });
    const auto bump = [&](NodeId x, std::size_t g) {
      const auto it = std::lower_bound(
          by_id.begin(), by_id.end(), x,
          [&](std::uint32_t a, NodeId b) { return staged_[a] < b; });
      if (it != by_id.end() && staged_[*it] == x)
        growth_of[*it] = std::max(growth_of[*it], g);
    };
    const auto classify = [&](const std::pair<NodeId, NodeId>& e) {
      const bool head = opts.head_of[e.first] == e.first ||
                        opts.head_of[e.second] == e.second;
      const std::size_t g =
          head ? opts.growth_cells : opts.member_growth_cells;
      bump(e.first, g);
      bump(e.second, g);
    };
    for (const auto& e : delta.added) classify(e);
    for (const auto& e : delta.removed) classify(e);
  }

  // Paint each staged node's two 3x3 blocks grown by its growth tier;
  // blocks that land on an already-painted cell merge with its label.
  // Non-overlap of grown blocks then guarantees core cells of distinct
  // regions are >= g_a + g_b + 1 apart (Chebyshev) for the two movers'
  // tiers. The paint map is keyed by cell key, so unoccupied cells
  // paint (and merge) the same way they did on the dense per-cell
  // arrays.
  //
  // Sized for the common heavily-overlapping case (a few cells per
  // mover); paint_insert doubles on demand up to the true worst case of
  // 2 * (2*reach+1)^2 distinct cells per mover.
  paint_reset(4 * staged_.size() + 64);
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::size_t kReach =
        1 + (tiered ? growth_of[i] : opts.growth_cells);
    const std::uint64_t centers[2] = {key_of_slot(old_slots[i]),
                                      key_of_slot(cell_of_node_[staged_[i]])};
    for (int which = 0; which < (centers[0] == centers[1] ? 1 : 2);
         ++which) {
      const auto col = static_cast<std::size_t>(centers[which] % cols_);
      const auto row = static_cast<std::size_t>(centers[which] / cols_);
      const std::size_t c0 = col > kReach ? col - kReach : 0;
      const std::size_t c1 = std::min(col + kReach, cols_ - 1);
      const std::size_t r0 = row > kReach ? row - kReach : 0;
      const std::size_t r1 = std::min(row + kReach, rows_ - 1);
      for (std::size_t r = r0; r <= r1; ++r)
        for (std::size_t c = c0; c <= c1; ++c) {
          const std::uint64_t k = static_cast<std::uint64_t>(r) * cols_ + c;
          const std::uint32_t prev =
              paint_insert(k, static_cast<std::uint32_t>(i));
          if (prev != kNoSlot) unite(static_cast<std::uint32_t>(i), prev);
        }
    }
  }

  // Dense region ids in first-seen staged order (deterministic).
  std::vector<std::uint32_t> region_of_root(staged_.size(), kInvalidNode);
  std::vector<std::uint32_t> region_of_staged(staged_.size());
  for (std::uint32_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t root = find(i);
    if (region_of_root[root] == kInvalidNode) {
      region_of_root[root] = static_cast<std::uint32_t>(out.count++);
    }
    region_of_staged[i] = region_of_root[root];
  }
  out.deltas.resize(out.count);
  out.core_cells.resize(out.count);

  // Core cells (the ungrown 3x3 blocks), attributed to their final
  // region and deduped per region at the end. Movers sharing a core cell
  // always share a region (their grown blocks overlap), so per-region
  // dedup equals the global dedup the dense stamps used to do.
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::uint64_t centers[2] = {key_of_slot(old_slots[i]),
                                      key_of_slot(cell_of_node_[staged_[i]])};
    for (int which = 0; which < (centers[0] == centers[1] ? 1 : 2);
         ++which) {
      const auto col = static_cast<std::size_t>(centers[which] % cols_);
      const auto row = static_cast<std::size_t>(centers[which] / cols_);
      const std::size_t c0 = col > 0 ? col - 1 : 0;
      const std::size_t c1 = std::min(col + 1, cols_ - 1);
      const std::size_t r0 = row > 0 ? row - 1 : 0;
      const std::size_t r1 = std::min(row + 1, rows_ - 1);
      for (std::size_t r = r0; r <= r1; ++r)
        for (std::size_t c = c0; c <= c1; ++c)
          out.core_cells[region_of_staged[i]].push_back(
              static_cast<std::uint64_t>(r) * cols_ + c);
    }
  }
  for (auto& cells : out.core_cells) {
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  }

  // Per-region node scopes: the occupants of every painted (grown) cell,
  // attributed to the cell's final region. With each mover's growth
  // sized one cell past its wave's receiver bound, every node a
  // region's repair wave can touch this tick — senders AND receivers —
  // lives strictly inside the paint, so messages never cross region
  // boundaries and the outermost painted ring stays quiescent (the
  // message-level independence the sharded protocol engine runs on).
  if (opts.region_scopes) {
    out.scopes.resize(out.count);
    for (std::size_t h = 0; h < paint_keys_.size(); ++h) {
      if (paint_keys_[h] == ~std::uint64_t{0}) continue;
      const std::uint32_t slot = slot_of(paint_keys_[h]);
      if (slot == kNoSlot || cells_[slot].empty()) continue;
      auto& scope = out.scopes[region_of_root[find(paint_labels_[h])]];
      scope.insert(scope.end(), cells_[slot].begin(), cells_[slot].end());
    }
    for (auto& scope : out.scopes) std::sort(scope.begin(), scope.end());
  }

  // Distribute the delta. Both endpoints of a changed edge sit in cells
  // of the same region (painting covers every endpoint's cell and the
  // blocks overlap), so any endpoint names the edge's region; iterating
  // the globally sorted lists keeps every per-region slice sorted.
  const auto region_of_cell = [&](std::uint32_t slot) {
    return region_of_root[find(paint_get(key_of_slot(slot)))];
  };
  for (const auto& e : delta.added) {
    const std::uint32_t r0 = region_of_cell(cell_of_node_[e.first]);
    MANET_ASSERT(r0 == region_of_cell(cell_of_node_[e.second]),
                 "changed edge straddles two repair regions");
    out.deltas[r0].added.push_back(e);
  }
  for (const auto& e : delta.removed) {
    const std::uint32_t r0 = region_of_cell(cell_of_node_[e.first]);
    MANET_ASSERT(r0 == region_of_cell(cell_of_node_[e.second]),
                 "changed edge straddles two repair regions");
    out.deltas[r0].removed.push_back(e);
  }
  for (auto& slice : out.deltas) {
    for (const auto& [u, w] : slice.added) {
      slice.touched.push_back(u);
      slice.touched.push_back(w);
    }
    for (const auto& [u, w] : slice.removed) {
      slice.touched.push_back(u);
      slice.touched.push_back(w);
    }
    normalize(slice.touched);
  }
}

}  // namespace manet::incr
