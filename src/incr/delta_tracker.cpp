#include "incr/delta_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "geom/unit_disk.hpp"

namespace manet::incr {

DeltaTracker::DeltaTracker(std::vector<geom::Point> positions, double range,
                           double width, double height)
    : positions_(std::move(positions)),
      adjacency_(geom::unit_disk_graph(positions_, range)),
      range_(range),
      range_sq_(range * range),
      width_(width),
      height_(height) {
  MANET_REQUIRE(!positions_.empty(), "tracker needs at least one node");
  MANET_REQUIRE(range_ > 0.0, "transmission range must be positive");
  MANET_REQUIRE(width_ > 0.0 && height_ > 0.0, "area must be positive");

  // Square cells of side >= range (so any in-range pair sits in the same
  // or an adjacent cell), with the per-dimension cell count clamped to
  // keep the cell array O(n) even for a tiny range over a huge area.
  const auto cap = static_cast<std::size_t>(
      std::ceil(std::sqrt(4.0 * static_cast<double>(positions_.size())))) +
      1;
  const auto fit_x = static_cast<std::size_t>(width_ / range_);
  const auto fit_y = static_cast<std::size_t>(height_ / range_);
  cols_ = std::clamp<std::size_t>(fit_x, 1, cap);
  rows_ = std::clamp<std::size_t>(fit_y, 1, cap);
  inv_cell_x_ = static_cast<double>(cols_) / width_;
  inv_cell_y_ = static_cast<double>(rows_) / height_;

  cells_.resize(cols_ * rows_);
  scan_stamp_.assign(cols_ * rows_, 0);
  core_stamp_.assign(cols_ * rows_, 0);
  paint_stamp_.assign(cols_ * rows_, 0);
  paint_label_.assign(cols_ * rows_, 0);
  cell_of_node_.resize(positions_.size());
  is_staged_.assign(positions_.size(), 0);
  for (NodeId v = 0; v < positions_.size(); ++v) {
    const std::size_t cell = cell_index(positions_[v]);
    cell_of_node_[v] = static_cast<std::uint32_t>(cell);
    cells_[cell].push_back(v);
  }
}

std::size_t DeltaTracker::cell_index(const geom::Point& p) const {
  // Out-of-box positions clamp onto the border cells, like SpatialGrid.
  const std::size_t col =
      p.x <= 0.0 ? 0
                 : std::min(cols_ - 1,
                            static_cast<std::size_t>(p.x * inv_cell_x_));
  const std::size_t row =
      p.y <= 0.0 ? 0
                 : std::min(rows_ - 1,
                            static_cast<std::size_t>(p.y * inv_cell_y_));
  return row * cols_ + col;
}

void DeltaTracker::stage_move(NodeId v, geom::Point p) {
  MANET_REQUIRE(v < positions_.size(), "node id out of range");
  positions_[v] = p;  // last staged position wins
  if (!is_staged_[v]) {
    is_staged_[v] = 1;
    staged_.push_back(v);
  }
}

void DeltaTracker::bump_epoch() {
  if (++epoch_ != 0) return;
  // uint32 wrap: invalidate all stale stamps once, then restart at 1.
  std::fill(scan_stamp_.begin(), scan_stamp_.end(), 0u);
  std::fill(core_stamp_.begin(), core_stamp_.end(), 0u);
  std::fill(paint_stamp_.begin(), paint_stamp_.end(), 0u);
  epoch_ = 1;
}

EdgeDelta DeltaTracker::commit(RegionPartition* regions) {
  EdgeDelta delta;
  last_cells_scanned_ = 0;
  if (regions) {
    regions->count = 0;
    regions->deltas.clear();
    regions->core_cells.clear();
    regions->cols = cols_;
    regions->rows = rows_;
  }
  if (staged_.empty()) return delta;
  bump_epoch();

  // Phase 1: migrate every dirty node to its (possibly new) cell, so all
  // neighborhood scans below see final positions. The pre-move cells are
  // kept: removed edges live near the *old* positions, so the region
  // partition must treat both blocks of a mover as dirty.
  std::vector<std::uint32_t> old_cells(staged_.size());
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const NodeId v = staged_[i];
    const std::size_t cell = cell_index(positions_[v]);
    const std::size_t old_cell = cell_of_node_[v];
    old_cells[i] = static_cast<std::uint32_t>(old_cell);
    if (cell == old_cell) continue;
    auto& bucket = cells_[old_cell];
    const auto it = std::find(bucket.begin(), bucket.end(), v);
    MANET_ASSERT(it != bucket.end(), "node missing from its grid cell");
    *it = bucket.back();
    bucket.pop_back();
    cells_[cell].push_back(v);
    cell_of_node_[v] = static_cast<std::uint32_t>(cell);
  }

  // Phase 2: rescan each dirty node's 3x3 block and diff against the
  // adjacency overlay. Edits are applied immediately, so when a later
  // dirty node is diffed the already-repaired pairs are no longer in its
  // symmetric difference — every changed edge is recorded exactly once.
  std::vector<NodeId> now;
  std::vector<NodeId> old;
  for (const NodeId v : staged_) {
    const geom::Point p = positions_[v];
    const std::size_t cell = cell_of_node_[v];
    const std::size_t col = cell % cols_;
    const std::size_t row = cell / cols_;
    const std::size_t c0 = col > 0 ? col - 1 : 0;
    const std::size_t c1 = col + 1 < cols_ ? col + 1 : cols_ - 1;
    const std::size_t r0 = row > 0 ? row - 1 : 0;
    const std::size_t r1 = row + 1 < rows_ ? row + 1 : rows_ - 1;
    now.clear();
    for (std::size_t r = r0; r <= r1; ++r)
      for (std::size_t c = c0; c <= c1; ++c) {
        const std::size_t idx = r * cols_ + c;
        if (scan_stamp_[idx] != epoch_) {
          scan_stamp_[idx] = epoch_;  // count overlapping blocks once
          ++last_cells_scanned_;
        }
        for (const NodeId w : cells_[idx])
          if (w != v && geom::distance_sq(p, positions_[w]) < range_sq_)
            now.push_back(w);
      }
    std::sort(now.begin(), now.end());

    const auto nb = adjacency_.neighbors(v);
    old.assign(nb.begin(), nb.end());
    // Sorted two-pointer diff; mutations are deferred past the spans.
    std::vector<NodeId> to_add;
    std::vector<NodeId> to_remove;
    std::set_difference(now.begin(), now.end(), old.begin(), old.end(),
                        std::back_inserter(to_add));
    std::set_difference(old.begin(), old.end(), now.begin(), now.end(),
                        std::back_inserter(to_remove));
    for (const NodeId w : to_add) {
      adjacency_.add_edge(v, w);
      delta.added.emplace_back(std::min(v, w), std::max(v, w));
    }
    for (const NodeId w : to_remove) {
      adjacency_.remove_edge(v, w);
      delta.removed.emplace_back(std::min(v, w), std::max(v, w));
    }
  }

  for (const NodeId v : staged_) is_staged_[v] = 0;

  std::sort(delta.added.begin(), delta.added.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  for (const auto& [u, w] : delta.added) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  for (const auto& [u, w] : delta.removed) {
    delta.touched.push_back(u);
    delta.touched.push_back(w);
  }
  normalize(delta.touched);

  if (regions) build_regions(delta, old_cells, *regions);
  staged_.clear();
  return delta;
}

void DeltaTracker::build_regions(const EdgeDelta& delta,
                                 const std::vector<std::uint32_t>& old_cells,
                                 RegionPartition& out) {
  // Union-find over staged indices. One label covers BOTH of a mover's
  // blocks (old and new cell), so a teleporting node can never straddle
  // two regions — its removed and added edges repair together.
  union_parent_.resize(staged_.size());
  for (std::uint32_t i = 0; i < staged_.size(); ++i) union_parent_[i] = i;
  const auto find = [&](std::uint32_t x) {
    while (union_parent_[x] != x) {
      union_parent_[x] = union_parent_[union_parent_[x]];  // halve path
      x = union_parent_[x];
    }
    return x;
  };
  const auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) union_parent_[std::max(a, b)] = std::min(a, b);
  };

  // Paint each staged node's two 3x3 blocks grown by kRegionGrowthCells;
  // blocks that land on an already-painted cell merge with its label.
  // Non-overlap of grown blocks then guarantees core cells of distinct
  // regions are >= 2*kRegionGrowthCells+1 apart (Chebyshev).
  constexpr std::size_t kReach = 1 + kRegionGrowthCells;
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t centers[2] = {old_cells[i],
                                      cell_of_node_[staged_[i]]};
    for (int which = 0; which < (centers[0] == centers[1] ? 1 : 2);
         ++which) {
      const std::size_t col = centers[which] % cols_;
      const std::size_t row = centers[which] / cols_;
      const std::size_t c0 = col > kReach ? col - kReach : 0;
      const std::size_t c1 = std::min(col + kReach, cols_ - 1);
      const std::size_t r0 = row > kReach ? row - kReach : 0;
      const std::size_t r1 = std::min(row + kReach, rows_ - 1);
      for (std::size_t r = r0; r <= r1; ++r)
        for (std::size_t c = c0; c <= c1; ++c) {
          const std::size_t idx = r * cols_ + c;
          if (paint_stamp_[idx] == epoch_) {
            unite(static_cast<std::uint32_t>(i), paint_label_[idx]);
          } else {
            paint_stamp_[idx] = epoch_;
            paint_label_[idx] = static_cast<std::uint32_t>(i);
          }
        }
    }
  }

  // Dense region ids in first-seen staged order (deterministic).
  std::vector<std::uint32_t> region_of_root(staged_.size(), kInvalidNode);
  std::vector<std::uint32_t> region_of_staged(staged_.size());
  for (std::uint32_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t root = find(i);
    if (region_of_root[root] == kInvalidNode) {
      region_of_root[root] = static_cast<std::uint32_t>(out.count++);
    }
    region_of_staged[i] = region_of_root[root];
  }
  out.deltas.resize(out.count);
  out.core_cells.resize(out.count);

  // Core cells (the ungrown 3x3 blocks), deduped across movers and
  // attributed to their final region.
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const std::uint32_t centers[2] = {old_cells[i],
                                      cell_of_node_[staged_[i]]};
    for (int which = 0; which < (centers[0] == centers[1] ? 1 : 2);
         ++which) {
      const std::size_t col = centers[which] % cols_;
      const std::size_t row = centers[which] / cols_;
      const std::size_t c0 = col > 0 ? col - 1 : 0;
      const std::size_t c1 = std::min(col + 1, cols_ - 1);
      const std::size_t r0 = row > 0 ? row - 1 : 0;
      const std::size_t r1 = std::min(row + 1, rows_ - 1);
      for (std::size_t r = r0; r <= r1; ++r)
        for (std::size_t c = c0; c <= c1; ++c) {
          const std::size_t idx = r * cols_ + c;
          if (core_stamp_[idx] == epoch_) continue;
          core_stamp_[idx] = epoch_;
          out.core_cells[region_of_staged[i]].push_back(
              static_cast<std::uint32_t>(idx));
        }
    }
  }
  for (auto& cells : out.core_cells) std::sort(cells.begin(), cells.end());

  // Distribute the delta. Both endpoints of a changed edge sit in cells
  // of the same region (painting covers every endpoint's cell and the
  // blocks overlap), so any endpoint names the edge's region; iterating
  // the globally sorted lists keeps every per-region slice sorted.
  const auto region_of_cell = [&](std::uint32_t cell) {
    MANET_ASSERT(paint_stamp_[cell] == epoch_,
                 "delta endpoint outside the painted dirty region");
    return region_of_root[find(paint_label_[cell])];
  };
  for (const auto& e : delta.added) {
    const std::uint32_t r0 = region_of_cell(cell_of_node_[e.first]);
    MANET_ASSERT(r0 == region_of_cell(cell_of_node_[e.second]),
                 "changed edge straddles two repair regions");
    out.deltas[r0].added.push_back(e);
  }
  for (const auto& e : delta.removed) {
    const std::uint32_t r0 = region_of_cell(cell_of_node_[e.first]);
    MANET_ASSERT(r0 == region_of_cell(cell_of_node_[e.second]),
                 "changed edge straddles two repair regions");
    out.deltas[r0].removed.push_back(e);
  }
  for (auto& slice : out.deltas) {
    for (const auto& [u, w] : slice.added) {
      slice.touched.push_back(u);
      slice.touched.push_back(w);
    }
    for (const auto& [u, w] : slice.removed) {
      slice.touched.push_back(u);
      slice.touched.push_back(w);
    }
    normalize(slice.touched);
  }
}

}  // namespace manet::incr
