// Layer 2 of the incremental maintenance engine: LCC cluster repair
// bounded to the dirty region of an edge delta.
//
// cluster::lcc_update scans the whole node population per snapshot. Its
// rules are local, though, and the dirty region is computable from the
// delta alone:
//
//  * Rule 1 (adjacent heads -> larger id resigns) can only fire where a
//    *new* edge joined two previous heads — previous heads were
//    independent, so every head-head adjacency in the new topology runs
//    over an added edge. The resignation cascade stays inside that set.
//  * Rule 2 (re-affiliate or self-declare) only touches nodes whose old
//    affiliation broke: resigned heads, members whose head resigned,
//    and members whose link to their head disappeared. Everyone else
//    keeps its head verbatim ("members do not chase smaller-id heads"),
//    and freshly declared heads are only ever joined by nodes already in
//    that dirty set.
//  * Role flags (gateway/ordinary) are then refreshed for nodes whose
//    head changed, their current neighbors, and the changed-edge
//    endpoints — the exact support of the role predicate.
//
// Processing both rules in ascending id order inside the dirty sets
// replays cluster::lcc_update's global ascending scans exactly, so the
// repaired clustering is bit-identical to a full lcc_update against the
// new topology (pinned by tests and the pipeline's oracle mode).
//
// The rules are also exposed region-at-a-time (repair_clustering_region)
// for the sharded parallel engine: a region's rules read head status
// within two unit-disk hops of its changed edges and write it within
// one, so on the DeltaTracker's independent-region partition (core cells
// >= 5 grid cells apart, DESIGN S30) concurrent per-region scans can
// never observe each other and compose to exactly the sequential global
// scan. Region calls buffer head-status writes in a HeadStatusOverlay
// (the shared head bitset stays read-only) and leave the sorted heads
// list, role refresh, and dirty-set assembly to the caller's merge.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "cluster/lcc.hpp"
#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "graph/bitset.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/edge_delta.hpp"

namespace manet::incr {

/// What one bounded repair changed (all sets sorted-unique).
struct ClusterRepair {
  cluster::LccDelta churn;   ///< LCC rule counters, lcc_update-compatible
  NodeSet head_changed;      ///< nodes whose head_of changed
  NodeSet role_changed;      ///< nodes whose role changed
  NodeSet declared;          ///< members that became heads this tick
  NodeSet resigned;          ///< heads that stepped down this tick
  NodeSet dirty;             ///< head_changed ∪ changed-edge endpoints
};

/// Read-through view of a head bitset whose writes buffer locally
/// instead of mutating the base. test() sees the region's own flips
/// (latest wins) layered over the frozen base — which is exactly the
/// sequential engine's visibility inside one region, because no other
/// region's flips are within this region's read radius (DESIGN S30).
/// Flip lists stay tiny (a handful of resignations/declarations), so
/// the read-back scan is cheaper than any hashed structure.
class HeadStatusOverlay {
 public:
  explicit HeadStatusOverlay(const graph::NodeBitset& base) : base_(&base) {}

  bool test(NodeId v) const {
    for (auto it = flips_.rbegin(); it != flips_.rend(); ++it)
      if (it->first == v) return it->second;
    return base_->test(v);
  }
  void set(NodeId v) { flips_.emplace_back(v, true); }
  void reset(NodeId v) { flips_.emplace_back(v, false); }

  /// Replays the buffered flips onto a real bitset (merge stage).
  void apply(graph::NodeBitset& bits) const {
    for (const auto& [v, on] : flips_) {
      if (on) {
        bits.set(v);
      } else {
        bits.reset(v);
      }
    }
  }

 private:
  const graph::NodeBitset* base_;
  std::vector<std::pair<NodeId, bool>> flips_;
};

/// Repairs `c` (valid for the topology before `delta`) in place against
/// the post-delta adjacency `g`. `head_bits` must mirror c.heads on
/// entry and is kept in sync. Expected O(dirty * d) work.
ClusterRepair repair_clustering(const graph::DynamicAdjacency& g,
                                const EdgeDelta& delta,
                                cluster::Clustering& c,
                                graph::NodeBitset& head_bits);

/// Rules 1+2 for one independent region's slice of the tick delta.
/// Writes c.head_of entries inside the region only (disjoint across
/// regions) and buffers head-status changes in `overlay`; does NOT
/// touch c.heads, c.roles, or the overlay's base bitset, so concurrent
/// calls on distinct regions of one RegionPartition are race-free.
/// The caller merges: overlay flips onto the real bitset, resigned /
/// declared into the sorted heads list, then a role refresh over the
/// combined support (see role_support / refresh_roles).
ClusterRepair repair_clustering_region(const graph::DynamicAdjacency& g,
                                       const EdgeDelta& region_delta,
                                       cluster::Clustering& c,
                                       HeadStatusOverlay& overlay);

/// The support of the role predicate after a repair: head_changed ∪
/// N(head_changed) ∪ touched, sorted-unique.
NodeSet role_support(const graph::DynamicAdjacency& g,
                     const NodeSet& head_changed, const NodeSet& touched);

/// Recomputes roles for `nodes` (must be sorted ascending) against the
/// final post-repair head_of, appending nodes whose role flipped to
/// `changed` in order. Writes only c.roles[v] for v in `nodes`, so
/// disjoint chunks of one sorted support set can run concurrently and
/// their `changed` outputs concatenate (in chunk order) to the exact
/// sequential result.
void refresh_roles(const graph::DynamicAdjacency& g, cluster::Clustering& c,
                   std::span<const NodeId> nodes, NodeSet& changed);

}  // namespace manet::incr
