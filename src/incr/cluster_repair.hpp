// Layer 2 of the incremental maintenance engine: LCC cluster repair
// bounded to the dirty region of an edge delta.
//
// cluster::lcc_update scans the whole node population per snapshot. Its
// rules are local, though, and the dirty region is computable from the
// delta alone:
//
//  * Rule 1 (adjacent heads -> larger id resigns) can only fire where a
//    *new* edge joined two previous heads — previous heads were
//    independent, so every head-head adjacency in the new topology runs
//    over an added edge. The resignation cascade stays inside that set.
//  * Rule 2 (re-affiliate or self-declare) only touches nodes whose old
//    affiliation broke: resigned heads, members whose head resigned,
//    and members whose link to their head disappeared. Everyone else
//    keeps its head verbatim ("members do not chase smaller-id heads"),
//    and freshly declared heads are only ever joined by nodes already in
//    that dirty set.
//  * Role flags (gateway/ordinary) are then refreshed for nodes whose
//    head changed, their current neighbors, and the changed-edge
//    endpoints — the exact support of the role predicate.
//
// Processing both rules in ascending id order inside the dirty sets
// replays cluster::lcc_update's global ascending scans exactly, so the
// repaired clustering is bit-identical to a full lcc_update against the
// new topology (pinned by tests and the pipeline's oracle mode).
#pragma once

#include "cluster/lcc.hpp"
#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "graph/bitset.hpp"
#include "graph/dynamic_adjacency.hpp"
#include "incr/edge_delta.hpp"

namespace manet::incr {

/// What one bounded repair changed (all sets sorted-unique).
struct ClusterRepair {
  cluster::LccDelta churn;   ///< LCC rule counters, lcc_update-compatible
  NodeSet head_changed;      ///< nodes whose head_of changed
  NodeSet role_changed;      ///< nodes whose role changed
  NodeSet declared;          ///< members that became heads this tick
  NodeSet resigned;          ///< heads that stepped down this tick
  NodeSet dirty;             ///< head_changed ∪ changed-edge endpoints
};

/// Repairs `c` (valid for the topology before `delta`) in place against
/// the post-delta adjacency `g`. `head_bits` must mirror c.heads on
/// entry and is kept in sync. Expected O(dirty * d) work.
ClusterRepair repair_clustering(const graph::DynamicAdjacency& g,
                                const EdgeDelta& delta,
                                cluster::Clustering& c,
                                graph::NodeBitset& head_bits);

}  // namespace manet::incr
