// Layer 4 of the incremental maintenance engine: the facade gluing the
// DeltaTracker (positions -> link deltas) to the IncrementalBackbone
// (link deltas -> repaired clustering/tables/coverage/selections/CDS),
// plus an oracle cross-check mode that rebuilds everything from scratch
// after every tick and asserts bitwise equality — the safety net that
// lets the delta path be trusted in production and benchmarked honestly.
//
// With threads > 1 each tick's delta is partitioned into independent
// dirty regions (DeltaTracker) and repaired via the sharded
// IncrementalBackbone::apply_parallel on a persistent WorkerPool. The
// maintained state — and therefore materialize(), metric snapshots and
// every downstream artifact — is bitwise identical at any thread count
// (the determinism soaks and the oracle pin this).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/neighbor_tables.hpp"
#include "core/static_backbone.hpp"
#include "geom/point.hpp"
#include "incr/backbone.hpp"
#include "incr/delta_tracker.hpp"
#include "incr/worker_pool.hpp"
#include "obs/metrics.hpp"

namespace manet::incr {

/// Engine configuration.
struct PipelineOptions {
  core::CoverageMode mode = core::CoverageMode::kTwoPointFiveHop;
  /// After every tick, rebuild the full static backbone from scratch
  /// (plus a from-scratch unit-disk graph) and require bitwise equality
  /// with the maintained state. Orders of magnitude slower — for tests
  /// and the equivalence bench column only.
  bool oracle_check = false;
  /// Observability session: per-phase flight-recorder spans and `incr.*`
  /// metrics. nullptr = not observed. Must outlive the pipeline. On an
  /// oracle mismatch the recorder tail and the offending tick's dirty
  /// set are dumped to stderr before the throw.
  obs::Session* obs = nullptr;
  /// Execution lanes for the sharded repair path (1 = fully sequential,
  /// no pool, byte-for-byte the pre-sharding engine). With k > 1 a
  /// persistent pool of k-1 workers plus the calling thread fans out
  /// each tick's independent regions, row chunks, and the delta-commit
  /// cell scans.
  std::size_t threads = 1;
  /// Tick pipelining. 1 = classic synchronous ticks. 2 = tick t's
  /// repair runs as an async pool batch while the caller stages and
  /// commits tick t+1 (the commit diffs the frozen overlay read-only
  /// and defers its edge edits, so the two overlap safely — DESIGN
  /// S31). tick() then returns the *previous* tick's stats; call
  /// drain() to join the last repair. The maintained state after drain
  /// is bitwise identical to depth 1 at any thread count. Depth > 2 is
  /// impossible: tick t+1's repair needs tick t's repaired state.
  /// Incompatible with oracle_check (which must observe every tick
  /// synchronously).
  std::size_t pipeline_depth = 1;
  /// Cell storage of the DeltaTracker grid (and of the SpatialGrid used
  /// for the initial topology build): kAuto = dense until the lattice
  /// outgrows the dense clamp, kSparse = O(n) interned occupied cells at
  /// full lattice resolution. The maintained state is identical in every
  /// mode.
  geom::GridIndex grid = geom::GridIndex::kAuto;
  /// Build the initial unit-disk CSR with the streaming two-pass counting
  /// sweep instead of the edge-list GraphBuilder — same graph, roughly
  /// half the cold-build peak RSS.
  bool streaming_build = false;
};

/// Delta-driven replacement for the per-tick full rebuild: feed it the
/// positions that moved, get back the repaired backbone and the tick's
/// churn accounting.
class IncrementalPipeline {
 public:
  IncrementalPipeline(std::vector<geom::Point> positions, double range,
                      double width, double height, PipelineOptions options);
  /// Joins any in-flight repair before tearing the pool down.
  ~IncrementalPipeline();

  std::size_t size() const { return tracker_.size(); }
  const std::vector<geom::Point>& positions() const {
    return tracker_.positions();
  }
  const graph::DynamicAdjacency& adjacency() const {
    return tracker_.adjacency();
  }
  const IncrementalBackbone& backbone() const { return backbone_; }
  const cluster::Clustering& clustering() const {
    return backbone_.clustering();
  }

  /// Stages a position update (applied at the next tick()).
  void stage_move(NodeId v, geom::Point p) { tracker_.stage_move(v, p); }

  /// Attaches (or detaches, with nullptr) an observability session after
  /// construction; equivalent to having passed it in PipelineOptions.
  /// Call between ticks, not during one.
  void set_obs(obs::Session* session);

  /// Commits all staged moves and repairs every maintained structure.
  /// With oracle_check on, throws std::invalid_argument describing the
  /// first mismatch against the full rebuild (i.e. an engine bug).
  /// With pipeline_depth 2 the repair is launched asynchronously and
  /// the stats of the *previous* tick are returned (zeros on the first
  /// call); the maintained backbone lags the topology by the in-flight
  /// tick until drain().
  TickStats tick();

  /// Joins the in-flight repair (pipeline_depth 2) and returns its
  /// tick's stats; zeros when nothing is pending. Synchronous engines
  /// return zeros immediately. After drain() the maintained state
  /// equals what the synchronous engine would hold after the same
  /// moves, bit for bit.
  TickStats drain();

  /// CSR snapshot of the maintained topology.
  graph::Graph freeze_graph() const { return tracker_.adjacency().freeze(); }

  /// Copies the maintained state into the batch StaticBackbone shape.
  core::StaticBackbone materialize() const { return backbone_.materialize(); }

 private:
  /// Double-buffered per-tick state for pipelined mode: while tick t's
  /// repair reads its slot, tick t+1's commit fills the other. Depth 2
  /// never has more than one repair in flight, so two slots suffice.
  struct InFlight {
    EdgeDelta delta;
    RegionPartition partition;
    TickStats stats;
    WorkerPool::Ticket ticket;
  };

  TickStats tick_sync();
  TickStats tick_pipelined();
  /// The repair half of a tick: sharded when a pool and >= 2 regions
  /// are available, sequential otherwise (identical state either way).
  TickStats run_repair(const EdgeDelta& delta,
                       const RegionPartition& partition);
  /// Joins the pending repair slot, flushes its buffered trace spans,
  /// and returns its stats; zeros when nothing is pending.
  TickStats join_pending();

  DeltaTracker tracker_;
  IncrementalBackbone backbone_;
  PipelineOptions options_;
  std::uint64_t tick_index_ = 0;
  /// Reused per tick; filled by DeltaTracker::commit when threads > 1.
  RegionPartition partition_;
  std::unique_ptr<WorkerPool> pool_;  ///< null when threads == 1, depth 1
  InFlight slots_[2];
  InFlight* pending_ = nullptr;  ///< slot whose repair is in flight
  obs::Counter ticks_counter_;
  obs::Counter staged_counter_;
  obs::Counter dirty_cells_counter_;
  obs::Counter regions_counter_;
  obs::Histogram region_size_hist_;
  /// Sparse intern-table compactions so far — a pure function of the
  /// commit history, so it stays in the deterministic snapshot.
  obs::Gauge compactions_gauge_;
  /// Previous oracle clustering (oracle mode): the full-rebuild path is
  /// lcc_update from the previous tick's structure, exactly what the
  /// engine repairs incrementally.
  cluster::Clustering oracle_previous_;
};

}  // namespace manet::incr
