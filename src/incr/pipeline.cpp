#include "incr/pipeline.hpp"

#include <utility>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"

namespace manet::incr {

IncrementalPipeline::IncrementalPipeline(std::vector<geom::Point> positions,
                                         double range, double width,
                                         double height,
                                         PipelineOptions options)
    : tracker_(std::move(positions), range, width, height),
      backbone_(tracker_.adjacency(), options.mode),
      options_(options) {
  if (options_.oracle_check) oracle_previous_ = backbone_.clustering();
}

TickStats IncrementalPipeline::tick() {
  const EdgeDelta delta = tracker_.commit();
  const TickStats stats = backbone_.apply(tracker_.adjacency(), delta);

  if (options_.oracle_check) {
    // Full rebuild from first principles: re-derive the topology from the
    // raw positions and repair the previous tick's clustering with the
    // batch LCC pass, then compare every maintained structure bit for bit.
    const graph::Graph frozen = tracker_.adjacency().freeze();
    const graph::Graph reference =
        geom::unit_disk_graph(tracker_.positions(), tracker_.range());
    MANET_REQUIRE(frozen.edges() == reference.edges(),
                  "incr oracle: maintained adjacency diverged from "
                  "unit_disk_graph over the current positions");
    cluster::Clustering oracle_clustering =
        cluster::lcc_update(frozen, oracle_previous_);
    const core::StaticBackbone oracle = core::build_static_backbone(
        frozen, oracle_clustering, options_.mode);
    const std::string mismatch = backbone_.diff_against(oracle);
    MANET_REQUIRE(mismatch.empty(), "incr oracle: " + mismatch);
    oracle_previous_ = std::move(oracle_clustering);
  }
  return stats;
}

}  // namespace manet::incr
