#include "incr/pipeline.hpp"

#include <iostream>
#include <utility>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "obs/session.hpp"

namespace manet::incr {
namespace {

void print_capped(std::ostream& out, const char* label, const NodeSet& nodes,
                  std::size_t cap = 48) {
  out << label << " (" << nodes.size() << "):";
  for (std::size_t i = 0; i < std::min(nodes.size(), cap); ++i)
    out << ' ' << nodes[i];
  if (nodes.size() > cap) out << " ...";
  out << '\n';
}

/// Satellite of the oracle mode: when the cross-check trips, the
/// exception alone says *what* diverged but not *which* tick or *which*
/// dirty region. Dump the flight recorder and the offending tick's
/// delta to stderr so the failure is diagnosable post-mortem.
void dump_flight_recorder(const obs::Session* obs, std::uint64_t tick,
                          const EdgeDelta& delta, const std::string& why) {
  std::ostream& err = std::cerr;
  err << "\n=== incr oracle mismatch — flight-recorder dump ===\n"
      << "tick " << tick << ": " << why << '\n'
      << "delta: +" << delta.added.size() << " links, -"
      << delta.removed.size() << " links\n";
  print_capped(err, "dirty set", delta.touched);
  if (obs) {
    err << "--- metrics ---\n" << obs->registry.snapshot().to_text();
    err << "--- flight recorder ---\n";
    obs->trace.dump_tail(err, 120);
  }
  err << "=== end flight-recorder dump ===" << std::endl;
}

}  // namespace

IncrementalPipeline::IncrementalPipeline(std::vector<geom::Point> positions,
                                         double range, double width,
                                         double height,
                                         PipelineOptions options)
    : tracker_(std::move(positions), range, width, height, options.grid,
               options.streaming_build),
      backbone_(tracker_.adjacency(), options.mode),
      options_(options) {
  MANET_REQUIRE(options_.pipeline_depth >= 1 && options_.pipeline_depth <= 2,
                "pipeline_depth must be 1 or 2: consecutive repairs are "
                "sequentially dependent, so deeper pipelines cannot exist");
  MANET_REQUIRE(!(options_.oracle_check && options_.pipeline_depth > 1),
                "oracle mode must observe every tick synchronously; use "
                "pipeline_depth 1");
  if (options_.threads > 1 || options_.pipeline_depth > 1)
    pool_ = std::make_unique<WorkerPool>(options_.threads);
  backbone_.set_defer_trace(options_.pipeline_depth > 1);
  if (options_.oracle_check) oracle_previous_ = backbone_.clustering();
  set_obs(options_.obs);
}

IncrementalPipeline::~IncrementalPipeline() {
  try {
    join_pending();
  } catch (...) {
    // A repair that threw has already poisoned the maintained state;
    // destruction is not the place to escalate.
  }
}

void IncrementalPipeline::set_obs(obs::Session* session) {
  options_.obs = session;
  backbone_.set_obs(session);
  if (pool_) pool_->set_obs(session);
  if (session) {
    auto& r = session->registry;
    ticks_counter_ = r.counter("incr.ticks");
    staged_counter_ = r.counter("incr.staged_moves");
    dirty_cells_counter_ = r.counter("incr.dirty_cells");
    regions_counter_ = r.counter("incr.regions");
    region_size_hist_ = r.histogram("incr.region_size",
                                    {1, 2, 4, 8, 16, 32, 64, 128, 256});
    compactions_gauge_ = r.gauge("incr.slot_compactions");
    // Configuration record, not a measurement — but it differs between
    // runs that must otherwise snapshot identically (depth 1 vs 2), so
    // it lives under the .pool. prefix that deterministic() drops.
    r.gauge("incr.pool.pipeline_depth")
        .set(static_cast<std::int64_t>(options_.pipeline_depth));
  } else {
    ticks_counter_ = obs::Counter();
    staged_counter_ = obs::Counter();
    dirty_cells_counter_ = obs::Counter();
    regions_counter_ = obs::Counter();
    region_size_hist_ = obs::Histogram();
    compactions_gauge_ = obs::Gauge();
  }
}

TickStats IncrementalPipeline::run_repair(const EdgeDelta& delta,
                                          const RegionPartition& partition) {
  TickStats stats;
  if (pool_ && partition.count >= 2 && !delta.empty()) {
    stats = backbone_.apply_parallel(tracker_.adjacency(), delta, partition,
                                     *pool_);
  } else {
    stats = backbone_.apply(tracker_.adjacency(), delta);
    stats.regions = partition.count;
  }
  return stats;
}

TickStats IncrementalPipeline::join_pending() {
  if (!pending_) return {};
  InFlight& p = *pending_;
  pending_ = nullptr;
  pool_->wait(p.ticket);
  backbone_.flush_trace();
  return p.stats;
}

TickStats IncrementalPipeline::drain() { return join_pending(); }

TickStats IncrementalPipeline::tick() {
  return options_.pipeline_depth > 1 ? tick_pipelined() : tick_sync();
}

TickStats IncrementalPipeline::tick_pipelined() {
  ++tick_index_;
  obs::TraceRecorder* tr = options_.obs ? &options_.obs->trace : nullptr;
  obs::Span tick_span(tr, "incr", "tick", tick_index_, "links");
  ticks_counter_.add();
  staged_counter_.add(tracker_.staged_count());

  // Commit this tick against the frozen overlay while the previous
  // tick's repair is still reading it (both read-only — S31). The other
  // slot belongs to that repair; this one finished two ticks ago.
  InFlight& cur = slots_[tick_index_ % 2];
  MANET_ASSERT(&cur != pending_, "commit slot still owned by a repair");
  {
    obs::Span span(tr, "incr", "delta_commit", tick_index_, "links");
    CommitOptions copts;
    copts.regions = &cur.partition;
    copts.pool = pool_.get();
    copts.defer_adjacency = true;
    cur.delta = tracker_.commit(copts);
    span.set_arg(cur.delta.link_changes());
  }
  dirty_cells_counter_.add(tracker_.last_cells_scanned());
  compactions_gauge_.set(static_cast<std::int64_t>(tracker_.compactions()));
  regions_counter_.add(cur.partition.count);
  for (const auto& cells : cur.partition.core_cells)
    region_size_hist_.record(cells.size());
  tick_span.set_arg(cur.delta.link_changes());

  // Join the previous repair; its stats become this call's return
  // value. Only now is the overlay safe to advance.
  TickStats out = join_pending();
  {
    obs::Span span(tr, "incr", "delta_apply", tick_index_, "links");
    tracker_.apply_delta(cur.delta);
  }
  cur.ticket = pool_->submit(1, [this, &cur](std::size_t, std::size_t) {
    cur.stats = run_repair(cur.delta, cur.partition);
  });
  pending_ = &cur;
  return out;
}

TickStats IncrementalPipeline::tick_sync() {
  ++tick_index_;
  obs::TraceRecorder* tr = options_.obs ? &options_.obs->trace : nullptr;
  obs::Span tick_span(tr, "incr", "tick", tick_index_, "links");
  ticks_counter_.add();
  staged_counter_.add(tracker_.staged_count());

  EdgeDelta delta;
  {
    obs::Span span(tr, "incr", "delta_commit", tick_index_, "links");
    // The partition is always built (O(dirty)), not just when a pool is
    // attached: the incr.regions metrics must come out identical at any
    // thread count for the determinism soaks to hold byte-for-byte.
    CommitOptions copts;
    copts.regions = &partition_;
    copts.pool = pool_.get();
    delta = tracker_.commit(copts);
    span.set_arg(delta.link_changes());
  }
  dirty_cells_counter_.add(tracker_.last_cells_scanned());
  compactions_gauge_.set(static_cast<std::int64_t>(tracker_.compactions()));
  regions_counter_.add(partition_.count);
  for (const auto& cells : partition_.core_cells)
    region_size_hist_.record(cells.size());
  tick_span.set_arg(delta.link_changes());

  TickStats stats = run_repair(delta, partition_);

  if (options_.oracle_check) {
    // Full rebuild from first principles: re-derive the topology from the
    // raw positions and repair the previous tick's clustering with the
    // batch LCC pass, then compare every maintained structure bit for bit.
    obs::Span span(tr, "incr", "oracle_check", tick_index_);
    const graph::Graph frozen = tracker_.adjacency().freeze();
    const graph::Graph reference =
        geom::unit_disk_graph(tracker_.positions(), tracker_.range());
    const bool adjacency_ok = frozen.edges() == reference.edges();
    if (!adjacency_ok)
      dump_flight_recorder(options_.obs, tick_index_, delta,
                           "maintained adjacency diverged from "
                           "unit_disk_graph over the current positions");
    MANET_REQUIRE(adjacency_ok,
                  "incr oracle: maintained adjacency diverged from "
                  "unit_disk_graph over the current positions");
    cluster::Clustering oracle_clustering =
        cluster::lcc_update(frozen, oracle_previous_);
    const core::StaticBackbone oracle = core::build_static_backbone(
        frozen, oracle_clustering, options_.mode);
    const std::string mismatch = backbone_.diff_against(oracle);
    if (!mismatch.empty())
      dump_flight_recorder(options_.obs, tick_index_, delta, mismatch);
    MANET_REQUIRE(mismatch.empty(), "incr oracle: " + mismatch);
    oracle_previous_ = std::move(oracle_clustering);
  }
  return stats;
}

}  // namespace manet::incr
