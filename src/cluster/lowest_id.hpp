// Lowest-ID clustering (Ephremides, Wieselthier & Baker).
//
// The distributed protocol: every node starts as a candidate; a candidate
// that holds the locally smallest ID among its *candidate* neighbors
// declares itself clusterhead; a candidate that hears a clusterhead
// declaration joins the announcing cluster (the smallest-ID clusterhead if
// it hears several). The fixed point of that protocol is exactly the
// sequential greedy below — process nodes in ascending ID; a node becomes
// a clusterhead iff none of its smaller-ID neighbors already is one — so
// this module is the centralized reference implementation; the `net`
// module replays the real message protocol and must agree with it
// (asserted in the integration tests).
//
// Resulting structure:
//  * clusterheads form a maximal independent set (hence a dominating set);
//  * every non-clusterhead joins its smallest-ID neighboring clusterhead;
//  * non-clusterheads adjacent to a member of *another* cluster (or to
//    another cluster's head) are gateways in the classical sense.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::cluster {

/// Role a node ends up with after clustering.
enum class Role : std::uint8_t {
  kClusterhead,
  kGateway,   ///< non-clusterhead with a neighbor in a different cluster
  kOrdinary,  ///< non-clusterhead entirely inside its own cluster
};

/// Output of the clustering pass.
struct Clustering {
  /// head_of[v] = clusterhead of v's cluster (head_of[h] == h for heads).
  std::vector<NodeId> head_of;
  /// Sorted list of clusterheads.
  NodeSet heads;
  /// Role per node.
  std::vector<Role> roles;

  bool is_head(NodeId v) const { return head_of[v] == v; }

  /// Sorted members of head `h`'s cluster, including `h` itself.
  NodeSet members_of(NodeId h) const;

  /// Number of clusters.
  std::size_t cluster_count() const { return heads.size(); }

  friend bool operator==(const Clustering&, const Clustering&) = default;
};

/// Runs lowest-ID clustering on a (not necessarily connected) graph.
Clustering lowest_id_clustering(const graph::Graph& g);

/// Validates the lowest-ID invariants against `g`; returns a human-readable
/// violation description, or an empty string when valid. Used by tests and
/// by debug assertions in higher layers.
std::string validate_clustering(const graph::Graph& g, const Clustering& c);

}  // namespace manet::cluster
