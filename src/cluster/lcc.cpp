#include "cluster/lcc.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::cluster {

Clustering lcc_update(const graph::Graph& g, const Clustering& previous,
                      LccDelta* delta) {
  const std::size_t n = g.order();
  MANET_REQUIRE(previous.head_of.size() == n,
                "snapshot does not match the previous clustering");
  LccDelta local;

  // Rule 1: adjacent heads -> the larger id resigns. Ascending scan keeps
  // the decision deterministic and conflict-free (a head survives iff no
  // *surviving* smaller head is adjacent).
  std::vector<char> is_head(n, 0);
  for (NodeId h : previous.heads) {
    bool blocked = false;
    for (NodeId w : g.neighbors(h)) {
      if (w < h && is_head[w]) {
        blocked = true;
        break;
      }
    }
    if (blocked) {
      ++local.heads_resigned;
    } else {
      is_head[h] = 1;
    }
  }

  // Rule 2: re-affiliate or declare, ascending so freshly declared heads
  // are visible to later nodes.
  Clustering c;
  c.head_of.assign(n, kInvalidNode);
  c.roles.assign(n, Role::kOrdinary);
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) {
      c.head_of[v] = v;
      continue;
    }
    const NodeId old_head = previous.head_of[v];
    const bool old_head_ok = old_head != kInvalidNode && old_head != v &&
                             old_head < n && is_head[old_head] &&
                             g.has_edge(v, old_head);
    if (old_head_ok) {
      c.head_of[v] = old_head;
      continue;
    }
    // Smallest neighboring head, if any (sorted adjacency -> first hit).
    NodeId joined = kInvalidNode;
    for (NodeId w : g.neighbors(v)) {
      if (is_head[w]) {
        joined = w;
        break;
      }
    }
    if (joined != kInvalidNode) {
      c.head_of[v] = joined;
      ++local.reaffiliations;
    } else {
      is_head[v] = 1;
      c.head_of[v] = v;
      ++local.heads_declared;
    }
  }

  // Rebuild the derived fields.
  for (NodeId v = 0; v < n; ++v) {
    if (c.head_of[v] == v) {
      c.heads.push_back(v);
      c.roles[v] = Role::kClusterhead;
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (c.head_of[v] == v) continue;
    for (NodeId w : g.neighbors(v)) {
      if (c.head_of[w] != c.head_of[v]) {
        c.roles[v] = Role::kGateway;
        break;
      }
    }
  }
  if (delta != nullptr) *delta = local;
  return c;
}

std::string validate_cluster_structure(const graph::Graph& g,
                                       const Clustering& c) {
  std::ostringstream err;
  const std::size_t n = g.order();
  if (c.head_of.size() != n || c.roles.size() != n) {
    err << "size mismatch: head_of/roles vs graph order";
    return err.str();
  }
  if (!graph::is_independent_set(g, c.heads)) {
    err << "clusterheads are not an independent set";
    return err.str();
  }
  if (n > 0 && !graph::is_dominating_set(g, c.heads)) {
    err << "clusterheads are not a dominating set";
    return err.str();
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeId h = c.head_of[v];
    if (h >= n || c.head_of[h] != h) {
      err << "node " << v << " points to non-head " << h;
      return err.str();
    }
    if (v != h && !g.has_edge(v, h)) {
      err << "node " << v << " is not adjacent to its head " << h;
      return err.str();
    }
    const bool is_head = (v == h);
    if (is_head != (c.roles[v] == Role::kClusterhead)) {
      err << "role of node " << v << " disagrees with head_of";
      return err.str();
    }
    if (!is_head) {
      bool crosses = false;
      for (NodeId w : g.neighbors(v))
        if (c.head_of[w] != c.head_of[v]) crosses = true;
      if (crosses != (c.roles[v] == Role::kGateway)) {
        err << "gateway flag of node " << v << " is wrong";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace manet::cluster
