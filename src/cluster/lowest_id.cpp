#include "cluster/lowest_id.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::cluster {

NodeSet Clustering::members_of(NodeId h) const {
  MANET_REQUIRE(h < head_of.size() && head_of[h] == h,
                "members_of expects a clusterhead");
  NodeSet out;
  for (NodeId v = 0; v < head_of.size(); ++v)
    if (head_of[v] == h) out.push_back(v);
  return out;
}

Clustering lowest_id_clustering(const graph::Graph& g) {
  const std::size_t n = g.order();
  Clustering c;
  c.head_of.assign(n, kInvalidNode);
  c.roles.assign(n, Role::kOrdinary);

  // Sequential fixed point of the distributed protocol: ascending-ID scan;
  // v declares itself head iff no smaller-ID neighbor already did.
  for (NodeId v = 0; v < n; ++v) {
    bool dominated_by_smaller_head = false;
    for (NodeId w : g.neighbors(v)) {
      if (w < v && c.head_of[w] == w) {
        dominated_by_smaller_head = true;
        break;
      }
    }
    if (!dominated_by_smaller_head) {
      c.head_of[v] = v;
      c.heads.push_back(v);  // ascending scan keeps `heads` sorted
      c.roles[v] = Role::kClusterhead;
    }
  }

  // Non-heads join the smallest-ID neighboring head (sorted adjacency
  // makes the first head neighbor the smallest).
  for (NodeId v = 0; v < n; ++v) {
    if (c.head_of[v] == v) continue;
    for (NodeId w : g.neighbors(v)) {
      if (c.head_of[w] == w) {
        c.head_of[v] = w;
        break;
      }
    }
    MANET_ASSERT(c.head_of[v] != kInvalidNode,
                 "maximal independence guarantees every node a head");
  }

  // Gateways: non-heads with a neighbor belonging to a different cluster.
  for (NodeId v = 0; v < n; ++v) {
    if (c.is_head(v)) continue;
    for (NodeId w : g.neighbors(v)) {
      if (c.head_of[w] != c.head_of[v]) {
        c.roles[v] = Role::kGateway;
        break;
      }
    }
  }
  return c;
}

std::string validate_clustering(const graph::Graph& g, const Clustering& c) {
  std::ostringstream err;
  const std::size_t n = g.order();
  if (c.head_of.size() != n || c.roles.size() != n) {
    err << "size mismatch: head_of/roles vs graph order";
    return err.str();
  }
  if (!graph::is_independent_set(g, c.heads)) {
    err << "clusterheads are not an independent set";
    return err.str();
  }
  if (n > 0 && !graph::is_dominating_set(g, c.heads)) {
    err << "clusterheads are not a dominating set";
    return err.str();
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeId h = c.head_of[v];
    if (h >= n || c.head_of[h] != h) {
      err << "node " << v << " points to non-head " << h;
      return err.str();
    }
    if (v != h && !g.has_edge(v, h)) {
      err << "node " << v << " is not adjacent to its head " << h;
      return err.str();
    }
    // Lowest-ID rule: v's head is the smallest-ID head among v's
    // neighbors.
    if (v != h) {
      for (NodeId w : g.neighbors(v)) {
        if (c.head_of[w] == w && w < h) {
          err << "node " << v << " joined head " << h
              << " but has smaller head neighbor " << w;
          return err.str();
        }
      }
    }
    // Role consistency.
    const bool is_head = (v == h);
    if (is_head != (c.roles[v] == Role::kClusterhead)) {
      err << "role of node " << v << " disagrees with head_of";
      return err.str();
    }
    if (!is_head) {
      bool crosses = false;
      for (NodeId w : g.neighbors(v))
        if (c.head_of[w] != c.head_of[v]) crosses = true;
      const bool marked_gateway = c.roles[v] == Role::kGateway;
      if (crosses != marked_gateway) {
        err << "gateway flag of node " << v << " is wrong";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace manet::cluster
