// Least Cluster Change (LCC) maintenance (Chiang et al., also used by
// CBRP) — the incremental repair scheme that keeps a cluster structure
// alive under mobility without the ripple effect of re-running lowest-ID
// from scratch.
//
// Rules applied per topology snapshot:
//  1. A clusterhead resigns only when another clusterhead moves into its
//     range; the larger-id head of an adjacent pair steps down.
//  2. A member whose head left its range re-affiliates with the smallest
//     neighboring head, or declares itself a head when it has none.
//  3. Nothing else changes (members do not chase smaller-id heads, heads
//     do not resign for newly arrived smaller-id candidates).
//
// The result keeps the structural invariants the backbone machinery
// needs — heads form an independent dominating set and every member is
// adjacent to its head — but deliberately abandons the lowest-ID
// invariant in exchange for fewer role changes. The mobility bench
// quantifies that trade against full re-clustering.
#pragma once

#include <string>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::cluster {

/// Churn produced by one LCC update.
struct LccDelta {
  std::size_t heads_resigned = 0;    ///< rule 1 resignations
  std::size_t heads_declared = 0;    ///< rule 2 self-declarations
  std::size_t reaffiliations = 0;    ///< members that switched heads

  std::size_t total() const {
    return heads_resigned + heads_declared + reaffiliations;
  }
};

/// Repairs `previous` (valid for an older snapshot) against the new
/// topology `g`. Returns the repaired clustering and, via `delta`, the
/// churn it cost. `previous` and `g` must agree on the node count.
Clustering lcc_update(const graph::Graph& g, const Clustering& previous,
                      LccDelta* delta = nullptr);

/// Structural validity for *any* cluster structure (weaker than
/// validate_clustering, which additionally pins the lowest-ID
/// invariants): heads independent and dominating, members adjacent to
/// their heads, roles consistent. Empty string when valid.
std::string validate_cluster_structure(const graph::Graph& g,
                                       const Clustering& c);

}  // namespace manet::cluster
