// Tiny --key=value command-line parser for the example programs.
// (Benches use google-benchmark's own flags; examples use this.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace manet {

/// Parses `--key=value` / `--flag` arguments; anything else is positional.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// String value or `fallback` when the key is absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Integer value or `fallback`; throws std::invalid_argument on non-ints.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;

  /// Real value or `fallback`; throws std::invalid_argument on non-numbers.
  double get_double(const std::string& key, double fallback) const;

  /// True if `--key` or `--key=anything-but-false/0` was given.
  bool get_bool(const std::string& key, bool fallback = false) const;

  bool has(const std::string& key) const;

  const std::string& positional(std::size_t i) const;
  std::size_t positional_count() const { return positional_.size(); }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace manet
