// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across runs and platforms,
// so the library carries its own xoshiro256** generator (public-domain
// algorithm by Blackman & Vigna) seeded through SplitMix64, instead of
// relying on implementation-defined std::default_random_engine behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace manet {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// A uniformly random element index for a container of size n (n > 0).
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel replications).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Stable 64-bit mix of (base seed, replication index, stream tag) used to
/// give every experiment replication an independent, reproducible stream.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t replication,
                          std::uint64_t stream);

}  // namespace manet
