#include "common/artifacts.hpp"

#include <filesystem>

namespace manet {

std::string artifact_path(const Flags& flags, const std::string& filename) {
  namespace fs = std::filesystem;
  if (filename.find('/') != std::string::npos) {
    const fs::path parent = fs::path(filename).parent_path();
    if (!parent.empty()) fs::create_directories(parent);
    return filename;
  }
  const fs::path dir = flags.get("out-dir", "results");
  fs::create_directories(dir);
  return (dir / filename).string();
}

}  // namespace manet
