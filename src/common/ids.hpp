// Node identifiers and small id-set helpers shared across all modules.
//
// The paper's algorithms are id-driven (lowest-ID clustering, ID tie-breaks
// in gateway selection), so ids are plain dense integers: node i of an
// n-node network has id i. kInvalidNode marks "no node" (e.g. a
// non-clusterhead source with no upstream relay yet).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace manet {

/// Dense node identifier; nodes of an n-node network are [0, n).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A set of node ids kept sorted and unique (the representation used for
/// coverage sets, forward sets and backbones throughout the library).
using NodeSet = std::vector<NodeId>;

/// Inserts `v` into the sorted-unique set `s`; returns true if inserted.
bool insert_sorted(NodeSet& s, NodeId v);

/// True if the sorted-unique set `s` contains `v`.
bool contains_sorted(const NodeSet& s, NodeId v);

/// Removes `v` from the sorted-unique set `s`; returns true if removed.
bool erase_sorted(NodeSet& s, NodeId v);

/// Sorts and deduplicates `s` in place (turns any vector into a NodeSet).
void normalize(NodeSet& s);

/// Sorted-set difference a \ b (both inputs must be sorted-unique).
NodeSet set_difference(const NodeSet& a, const NodeSet& b);

/// Sorted-set intersection (both inputs must be sorted-unique).
NodeSet set_intersection(const NodeSet& a, const NodeSet& b);

/// Sorted-set union (both inputs must be sorted-unique).
NodeSet set_union(const NodeSet& a, const NodeSet& b);

/// Number of elements in a ∩ b without materializing it.
std::size_t intersection_size(const NodeSet& a, const NodeSet& b);

/// True if every element of `a` is in `b` (both sorted-unique).
bool is_subset(const NodeSet& a, const NodeSet& b);

}  // namespace manet
