#include "common/csv.hpp"

#include <cstdio>
#include <stdexcept>

#include "common/assert.hpp"

namespace manet {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_format(const CsvCell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return csv_escape(*s);
  if (const auto* i = std::get_if<long long>(&cell))
    return std::to_string(*i);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(cell));
  return buf;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  MANET_REQUIRE(!header.empty(), "CSV header must be non-empty");
  std::vector<CsvCell> cells;
  cells.reserve(header.size());
  for (const auto& h : header) cells.emplace_back(h);
  write_raw(cells);
}

void CsvWriter::row(const std::vector<CsvCell>& cells) {
  MANET_REQUIRE(cells.size() == arity_, "CSV row arity mismatch");
  write_raw(cells);
  ++rows_;
}

void CsvWriter::write_raw(const std::vector<CsvCell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_format(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace manet
