#include "common/flags.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace manet {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  return v;
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  return v;
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

const std::string& Flags::positional(std::size_t i) const {
  MANET_REQUIRE(i < positional_.size(), "positional index out of range");
  return positional_[i];
}

}  // namespace manet
