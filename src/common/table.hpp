// Fixed-width console tables, used by every bench to print the
// paper-figure series in a shape directly comparable to the paper.
#pragma once

#include <string>
#include <vector>

namespace manet {

/// Collects rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row (arity must match the header).
  void row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  /// Renders the table, header first, separated by a rule.
  std::string render() const;

  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manet
