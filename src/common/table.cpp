#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace manet {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MANET_REQUIRE(!header_.empty(), "table header must be non-empty");
}

void TextTable::row(std::vector<std::string> cells) {
  MANET_REQUIRE(cells.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      os << r[c];
      for (std::size_t pad = r[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace manet
