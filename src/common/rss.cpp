#include "common/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include <cstdio>

namespace manet {

std::size_t peak_rss_bytes() {
#if defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long total = 0;
  long resident = 0;
  const int got = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (got != 2 || resident < 0) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace manet
