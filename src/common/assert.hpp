// Contract-checking macros.
//
// MANET_REQUIRE validates preconditions on public API boundaries and is
// always on; it throws std::invalid_argument so tests can assert on misuse.
// MANET_ASSERT checks internal invariants; it throws std::logic_error and
// is compiled out in NDEBUG-with-MANETCAST_NO_ASSERT builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace manet::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace manet::detail

#define MANET_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr))                                                        \
      ::manet::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#if defined(MANETCAST_NO_ASSERT)
#define MANET_ASSERT(expr, msg) ((void)0)
#else
#define MANET_ASSERT(expr, msg)                                        \
  do {                                                                 \
    if (!(expr))                                                       \
      ::manet::detail::throw_assert(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
#endif
