// Process memory accounting for the scaling benches.
//
// The 10k-100k churn sweep must demonstrate O(n) memory, which needs a
// number the bench can actually record. Peak RSS is monotone over the
// process lifetime, so sweeps that care about per-size peaks run their
// sizes in ascending order and read the counter after each row.
#pragma once

#include <cstddef>

namespace manet {

/// Peak resident set size of this process in bytes (getrusage on
/// POSIX); 0 where the platform doesn't expose it.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm on Linux); 0
/// where the platform doesn't expose it.
std::size_t current_rss_bytes();

}  // namespace manet
