#include "common/rng.hpp"

#include "common/assert.hpp"

namespace manet {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  MANET_REQUIRE(bound > 0, "below() needs a positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  MANET_REQUIRE(lo <= hi, "between() needs lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MANET_REQUIRE(lo <= hi, "uniform() needs lo <= hi");
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::index(std::size_t n) {
  MANET_REQUIRE(n > 0, "index() needs a non-empty container");
  return static_cast<std::size_t>(below(n));
}

Rng Rng::split() {
  Rng child(0);
  // Jump by drawing fresh state; child streams derived this way are
  // statistically independent for simulation purposes.
  for (auto& s : child.s_) s = (*this)();
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t replication,
                          std::uint64_t stream) {
  std::uint64_t x = base ^ (replication * 0xd1342543de82ef95ULL) ^
                    (stream * 0xaf251af3b0f025b5ULL);
  // Final SplitMix64-style avalanche so adjacent replications differ in
  // every bit.
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace manet
