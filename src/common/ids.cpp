#include "common/ids.hpp"

#include <algorithm>

namespace manet {

bool insert_sorted(NodeSet& s, NodeId v) {
  auto it = std::lower_bound(s.begin(), s.end(), v);
  if (it != s.end() && *it == v) return false;
  s.insert(it, v);
  return true;
}

bool contains_sorted(const NodeSet& s, NodeId v) {
  return std::binary_search(s.begin(), s.end(), v);
}

bool erase_sorted(NodeSet& s, NodeId v) {
  auto it = std::lower_bound(s.begin(), s.end(), v);
  if (it == s.end() || *it != v) return false;
  s.erase(it);
  return true;
}

void normalize(NodeSet& s) {
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
}

NodeSet set_difference(const NodeSet& a, const NodeSet& b) {
  NodeSet out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

NodeSet set_intersection(const NodeSet& a, const NodeSet& b) {
  NodeSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

NodeSet set_union(const NodeSet& a, const NodeSet& b) {
  NodeSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::size_t intersection_size(const NodeSet& a, const NodeSet& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

bool is_subset(const NodeSet& a, const NodeSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace manet
