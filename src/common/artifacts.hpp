// Where bench/figure binaries put their generated outputs.
//
// Generated CSVs and JSON records are build artifacts, not sources: they
// land in a gitignored results/ directory (override with --out-dir) so a
// bench run never dirties the working tree. CI uploads them from there.
#pragma once

#include <string>

#include "common/flags.hpp"

namespace manet {

/// Resolves `filename` against the artifact directory and ensures that
/// directory exists. The directory comes from --out-dir (default
/// "results"). A `filename` that already carries a directory component
/// (contains '/') is treated as an explicit path: its parent directory
/// is created and it is returned unchanged, so --csv=/tmp/x.csv style
/// overrides keep working.
std::string artifact_path(const Flags& flags, const std::string& filename);

}  // namespace manet
