// Minimal CSV emission for experiment results.
//
// Benches print human-readable tables to stdout and, when asked, mirror the
// same rows into a CSV file so figures can be re-plotted offline.
#pragma once

#include <fstream>
#include <string>
#include <variant>
#include <vector>

namespace manet {

/// One CSV cell: text, integer or real.
using CsvCell = std::variant<std::string, long long, double>;

/// Streams rows into a CSV file with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must have the same arity as the header.
  void row(const std::vector<CsvCell>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

  /// Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_raw(const std::vector<CsvCell>& cells);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Escapes one cell per RFC 4180 (quotes fields containing , " or newline).
std::string csv_escape(const std::string& field);

/// Formats a CsvCell as its CSV text (doubles use %.6g).
std::string csv_format(const CsvCell& cell);

}  // namespace manet
