#include "core/coverage.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "core/table_kernels.hpp"
#include "graph/algorithms.hpp"
#include "graph/bitset.hpp"

namespace manet::core {

Coverage build_coverage(const graph::Graph& g, const cluster::Clustering& c,
                        const NeighborTables& tables, NodeId head) {
  MANET_REQUIRE(head < g.order(), "node id out of range");
  MANET_REQUIRE(c.is_head(head), "coverage is defined for clusterheads");
  // Row kernel shared with the incremental engine (table_kernels.hpp).
  return coverage_row(g, tables, head, g.order());
}

std::vector<Coverage> build_all_coverage(const graph::Graph& g,
                                         const cluster::Clustering& c,
                                         const NeighborTables& tables) {
  std::vector<Coverage> out(g.order());
  // One scratch across all heads: per-head bitset allocation/zeroing is
  // O(n) each, O(n·heads) over a full build (see CoverageScratch).
  CoverageScratch scratch;
  for (NodeId h : c.heads) out[h] = coverage_row(g, tables, h, g.order(), scratch);
  return out;
}

std::string validate_coverage(const graph::Graph& g,
                              const cluster::Clustering& c,
                              const NeighborTables& tables, NodeId head,
                              const Coverage& coverage) {
  std::ostringstream err;
  const auto dist = graph::bfs_distances_bounded(g, head, 3);

  // Ground truth C²: heads at distance exactly 2.
  NodeSet true_two;
  for (NodeId w : c.heads)
    if (dist[w] == 2) true_two.push_back(w);
  if (coverage.two_hop != true_two) {
    err << "C2 of head " << head << " mismatches the distance-2 heads";
    return err.str();
  }

  // Ground truth C³ depends on the mode.
  NodeSet true_three;
  for (NodeId w : c.heads) {
    if (w == head || dist[w] != 3) continue;
    if (tables.mode == CoverageMode::kThreeHop) {
      true_three.push_back(w);
      continue;
    }
    // 2.5-hop: w qualifies iff one of its members sits in N²(head).
    for (NodeId m : g.neighbors(w)) {
      if (c.head_of[m] == w && dist[m] != graph::kUnreachable &&
          dist[m] <= 2) {
        true_three.push_back(w);
        break;
      }
    }
  }
  if (coverage.three_hop != true_three) {
    err << "C3 of head " << head << " mismatches the "
        << to_string(tables.mode) << " definition";
    return err.str();
  }
  return {};
}

}  // namespace manet::core
