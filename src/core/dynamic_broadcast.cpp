#include "core/dynamic_broadcast.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/assert.hpp"

namespace manet::core {
namespace {

/// Per-broadcast mutable state.
struct Session {
  const graph::Graph& g;
  const DynamicBackbone& bb;
  const DynamicBroadcastOptions& options;
  BroadcastResult result;
  /// Origins each non-head has already relayed for. A node relays at most
  /// once per origin: refusing the second origin outright could strand
  /// that origin's second-hop relays (they learn their forward-node role
  /// only from the first hop's relay), while relaying per-origin keeps
  /// the total transmission count linear and delivery airtight. The
  /// forward-node *set* — the paper's metric — still counts a node once.
  std::vector<NodeSet> relayed_origins;
  std::vector<char> head_processed;
  std::deque<Transmission> queue;

  Session(const graph::Graph& graph, const DynamicBackbone& backbone,
          const DynamicBroadcastOptions& opts)
      : g(graph), bb(backbone), options(opts) {
    result.received.assign(g.order(), 0);
    result.first_copy_hops.assign(g.order(),
                                  std::numeric_limits<std::uint32_t>::max());
    relayed_origins.assign(g.order(), {});
    head_processed.assign(g.order(), 0);
  }

  void transmit(NodeId sender, NodeId origin_head, NodeSet forward_set) {
    const NodeId origin_key =
        origin_head == kInvalidNode ? sender : origin_head;
    if (!insert_sorted(relayed_origins[sender], origin_key)) return;
    result.received[sender] = 1;  // the sender trivially holds the packet
    insert_sorted(result.forward_nodes, sender);
    queue.push_back({sender, origin_head, std::move(forward_set)});
  }

  /// Clusterhead `h` processes its first copy; `relay` is the node it
  /// heard it from, `upstream` / `upstream_coverage` ride on the packet.
  void head_process(NodeId h, NodeId relay, NodeId upstream,
                    const NodeSet& upstream_coverage) {
    if (head_processed[h]) return;
    head_processed[h] = 1;

    Coverage remaining = bb.coverage[h];
    if (options.piggyback_pruning && upstream != kInvalidNode) {
      remaining.two_hop = set_difference(remaining.two_hop,
                                         upstream_coverage);
      remaining.three_hop = set_difference(remaining.three_hop,
                                           upstream_coverage);
      erase_sorted(remaining.two_hop, upstream);
      erase_sorted(remaining.three_hop, upstream);
    }
    if (options.relay_exclusion && relay != kInvalidNode &&
        !bb.clustering.is_head(relay)) {
      // Heads adjacent to the relay heard its transmission too.
      const NodeSet& heard = bb.tables.ch_hop1[relay];
      remaining.two_hop = set_difference(remaining.two_hop, heard);
      remaining.three_hop = set_difference(remaining.three_hop, heard);
    }

    const auto sel =
        select_gateways(g, bb.clustering, bb.tables, h, remaining);
    // Every head locally broadcasts once, even with an empty forward set,
    // to reach its own cluster members.
    transmit(h, h, sel.gateways);
  }

  void deliver(const Transmission& t, NodeId receiver) {
    if (!result.received[receiver])
      result.first_copy_hops[receiver] =
          result.first_copy_hops[t.sender] + 1;
    result.received[receiver] = 1;
    if (bb.clustering.is_head(receiver)) {
      head_process(receiver, t.sender, t.origin_head,
                   t.origin_head == kInvalidNode
                       ? NodeSet{}
                       : bb.coverage[t.origin_head].all());
      return;
    }
    // Forward nodes relay onward; the forward set and origin metadata
    // are carried unchanged by relays (transmit dedups per origin).
    if (contains_sorted(t.forward_set, receiver))
      transmit(receiver, t.origin_head, t.forward_set);
  }

  void run(NodeId source) {
    result.first_copy_hops[source] = 0;
    if (bb.clustering.is_head(source)) {
      head_process(source, kInvalidNode, kInvalidNode, {});
    } else {
      // Step 1: the source hands the packet to its clusterhead. The
      // transmission physically reaches every neighbor.
      transmit(source, kInvalidNode, {});
    }
    while (!queue.empty()) {
      const Transmission t = std::move(queue.front());
      queue.pop_front();
      result.trace.push_back(t);
      for (NodeId nb : g.neighbors(t.sender)) deliver(t, nb);
    }
    result.delivered_all =
        std::all_of(result.received.begin(), result.received.end(),
                    [](char c) { return c != 0; });
  }
};

}  // namespace

std::uint32_t BroadcastResult::latency_hops() const {
  std::uint32_t worst = 0;
  for (std::uint32_t h : first_copy_hops)
    if (h != std::numeric_limits<std::uint32_t>::max())
      worst = std::max(worst, h);
  return worst;
}

DynamicBackbone build_dynamic_backbone(const graph::Graph& g,
                                       CoverageMode mode) {
  return build_dynamic_backbone(g, cluster::lowest_id_clustering(g), mode);
}

DynamicBackbone build_dynamic_backbone(const graph::Graph& g,
                                       const cluster::Clustering& c,
                                       CoverageMode mode) {
  DynamicBackbone bb;
  bb.mode = mode;
  bb.clustering = c;
  bb.tables = build_neighbor_tables(g, bb.clustering, mode);
  bb.coverage = build_all_coverage(g, bb.clustering, bb.tables);
  return bb;
}

BroadcastResult dynamic_broadcast(const graph::Graph& g,
                                  const DynamicBackbone& backbone,
                                  NodeId source,
                                  const DynamicBroadcastOptions& options) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  MANET_REQUIRE(backbone.clustering.head_of.size() == g.order(),
                "backbone does not match graph");
  Session session(g, backbone, options);
  session.run(source);
  return session.result;
}

}  // namespace manet::core
