// The static backbone: cluster-based source-independent CDS (paper §3,
// Theorem 1).
//
// Pipeline: lowest-ID clustering -> CH_HOP1/CH_HOP2 tables -> coverage
// sets -> per-head gateway selection. Clusterheads plus all selected
// gateways form a source-independent CDS; every broadcast floods over
// exactly this set (see broadcast/si_cds_broadcast).
#pragma once

#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// The fully-materialized static backbone of one topology.
struct StaticBackbone {
  CoverageMode mode;
  cluster::Clustering clustering;
  NeighborTables tables;
  std::vector<Coverage> coverage;            ///< indexed by node id
  std::vector<GatewaySelection> selection;   ///< indexed by node id (heads)
  NodeSet gateways;   ///< union of all selected gateways
  NodeSet cds;        ///< clusterheads ∪ gateways — the SI-CDS

  bool in_backbone(NodeId v) const { return contains_sorted(cds, v); }
};

/// Builds the complete static backbone for `g`.
StaticBackbone build_static_backbone(const graph::Graph& g,
                                     CoverageMode mode);

/// Builds a static backbone on top of an existing clustering (used when
/// comparing algorithms on identical clusters).
StaticBackbone build_static_backbone(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode);

/// Verifies Theorem 1 obligations on a concrete instance: the CDS is a
/// connected dominating set of g (for connected g) and every head's
/// selection covers its whole coverage set. Empty string when valid.
std::string validate_static_backbone(const graph::Graph& g,
                                     const StaticBackbone& backbone);

}  // namespace manet::core
