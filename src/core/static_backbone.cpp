#include "core/static_backbone.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"
#include "graph/bitset.hpp"

namespace manet::core {

StaticBackbone build_static_backbone(const graph::Graph& g,
                                     CoverageMode mode) {
  return build_static_backbone(g, cluster::lowest_id_clustering(g), mode);
}

StaticBackbone build_static_backbone(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode) {
  StaticBackbone b;
  b.mode = mode;
  b.clustering = c;
  b.tables = build_neighbor_tables(g, b.clustering, mode);
  b.coverage = build_all_coverage(g, b.clustering, b.tables);
  b.selection.resize(g.order());
  // Gateways collect in a bitset, materialized once: insert_sorted per
  // gateway is O(k) each, O(k²) over the build — measurable well before
  // the 100k-node sweep this path baselines.
  graph::NodeBitset gateway_bits(g.order());
  SelectionScratch scratch;  // reused across heads (allocated/zeroed once)
  for (NodeId h : b.clustering.heads) {
    b.selection[h] = select_gateways(g, b.clustering, b.tables, h,
                                     b.coverage[h], scratch);
    for (NodeId v : b.selection[h].gateways) gateway_bits.set(v);
  }
  b.gateways = gateway_bits.to_node_set();
  // Heads form an independent set, so no gateway (a neighbor or 2-hop
  // connector of a head) is itself a head; the union is disjoint.
  b.cds = set_union(b.clustering.heads, b.gateways);
  return b;
}

std::string validate_static_backbone(const graph::Graph& g,
                                     const StaticBackbone& backbone) {
  std::ostringstream err;
  for (NodeId h : backbone.clustering.heads) {
    const auto msg = validate_selection(g, backbone.clustering, h,
                                        backbone.coverage[h],
                                        backbone.selection[h]);
    if (!msg.empty()) return msg;
  }
  if (graph::is_connected(g) &&
      !graph::is_connected_dominating_set(g, backbone.cds)) {
    err << "static backbone is not a CDS";
    return err.str();
  }
  return {};
}

}  // namespace manet::core
