#include "core/static_backbone.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::core {

StaticBackbone build_static_backbone(const graph::Graph& g,
                                     CoverageMode mode) {
  return build_static_backbone(g, cluster::lowest_id_clustering(g), mode);
}

StaticBackbone build_static_backbone(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode) {
  StaticBackbone b;
  b.mode = mode;
  b.clustering = c;
  b.tables = build_neighbor_tables(g, b.clustering, mode);
  b.coverage = build_all_coverage(g, b.clustering, b.tables);
  b.selection.resize(g.order());
  b.cds = b.clustering.heads;
  for (NodeId h : b.clustering.heads) {
    b.selection[h] = select_gateways(g, b.clustering, b.tables, h,
                                     b.coverage[h]);
    for (NodeId v : b.selection[h].gateways) {
      insert_sorted(b.gateways, v);
      insert_sorted(b.cds, v);
    }
  }
  return b;
}

std::string validate_static_backbone(const graph::Graph& g,
                                     const StaticBackbone& backbone) {
  std::ostringstream err;
  for (NodeId h : backbone.clustering.heads) {
    const auto msg = validate_selection(g, backbone.clustering, h,
                                        backbone.coverage[h],
                                        backbone.selection[h]);
    if (!msg.empty()) return msg;
  }
  if (graph::is_connected(g) &&
      !graph::is_connected_dominating_set(g, backbone.cds)) {
    err << "static backbone is not a CDS";
    return err.str();
  }
  return {};
}

}  // namespace manet::core
