// Coverage sets C(u) = C²(u) ∪ C³(u) (paper §1 and §3).
//
// A clusterhead u's coverage set lists the clusterheads it is responsible
// for connecting to. C²(u) collects every head reported in a neighbor's
// CH_HOP1 (heads exactly 2 hops away — heads are never adjacent); C³(u)
// collects heads reported in CH_HOP2 entries that are not already in
// C²(u) ("If a clusterhead appears in both C²(u) and C³(u), the one in
// C³(u) is removed"). With 2.5-hop tables this yields the heads owning
// members inside N²(u); with 3-hop tables it yields all heads within 3
// hops.
#pragma once

#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// Coverage targets of one clusterhead.
struct Coverage {
  NodeSet two_hop;    ///< C²(u): heads at distance exactly 2
  NodeSet three_hop;  ///< C³(u): remaining heads at distance 3

  /// C(u) = C²(u) ∪ C³(u).
  NodeSet all() const { return set_union(two_hop, three_hop); }

  bool empty() const { return two_hop.empty() && three_hop.empty(); }
  std::size_t size() const { return two_hop.size() + three_hop.size(); }

  friend bool operator==(const Coverage&, const Coverage&) = default;
};

/// Builds C(head) from the neighbor tables.
Coverage build_coverage(const graph::Graph& g, const cluster::Clustering& c,
                        const NeighborTables& tables, NodeId head);

/// Coverage for every clusterhead, indexed by node id (rows of non-heads
/// stay empty).
std::vector<Coverage> build_all_coverage(const graph::Graph& g,
                                         const cluster::Clustering& c,
                                         const NeighborTables& tables);

/// Validates a coverage set against ground-truth BFS distances: C² must be
/// exactly the heads at distance 2; C³ must be heads at distance 3 that
/// match the mode's reachability rule. Returns an empty string when valid.
std::string validate_coverage(const graph::Graph& g,
                              const cluster::Clustering& c,
                              const NeighborTables& tables, NodeId head,
                              const Coverage& coverage);

}  // namespace manet::core
