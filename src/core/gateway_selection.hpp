// The clusterhead's gateway-selection process (paper §3).
//
// Given a clusterhead u and a set of target heads (its coverage set, or —
// for the dynamic backbone — whatever remains of it after pruning), pick
// gateways that connect u to every target:
//
//  1. While 2-hop targets remain, select the neighbor that *directly
//     covers* (is adjacent to) the most remaining 2-hop targets; break
//     ties by the number of remaining 3-hop targets it *indirectly
//     covers* (via a CH_HOP2 entry), then by smallest node id. Selecting
//     v also resolves the 3-hop targets v covers indirectly, selecting
//     the corresponding via-nodes as second-hop gateways.
//  2. Any 3-hop targets left are connected with an explicit pair of
//     non-clusterheads. The paper does not fix the pair choice; we prefer
//     pairs that reuse already-selected gateways, then the
//     lexicographically smallest (first-hop, second-hop) pair — see
//     DESIGN.md "unspecified details".
#pragma once

#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/bitset.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// Why a node ended up in the gateway set (selection trace for tests,
/// examples and the distributed-protocol cross-check).
struct SelectionStep {
  NodeId gateway;            ///< first-hop neighbor picked by the greedy
  NodeSet direct_covered;    ///< 2-hop targets v was adjacent to
  std::vector<Hop2Entry> indirect_covered;  ///< 3-hop targets + via nodes

  friend bool operator==(const SelectionStep&, const SelectionStep&) =
      default;
};

/// A phase-2 connector pair: head -> first_hop -> second_hop -> target.
struct ConnectorPair {
  NodeId target;      ///< the 3-hop head being connected
  NodeId first_hop;   ///< neighbor of the selecting head
  NodeId second_hop;  ///< neighbor of the target

  friend bool operator==(const ConnectorPair&, const ConnectorPair&) =
      default;
};

/// Result of one clusterhead's selection process.
struct GatewaySelection {
  /// All selected nodes: first-hop gateways plus second-hop via-nodes.
  /// Sorted-unique. This is the GATEWAY message payload (static backbone)
  /// or the forward-node set F(u) (dynamic backbone).
  NodeSet gateways;
  /// Greedy trace, in pick order.
  std::vector<SelectionStep> steps;
  /// Pairs appended by phase 2 for leftover 3-hop targets.
  std::vector<ConnectorPair> leftover_pairs;

  friend bool operator==(const GatewaySelection&, const GatewaySelection&) =
      default;
};

/// Reusable bitset scratch for the selection greedy, mirroring
/// CoverageScratch: remaining-target membership and the accumulating
/// gateway set live in bitsets sized to the widest id ever targeted.
/// Hot loops (the batch build over all heads, the incremental reselect
/// lanes, the protocol engine's per-lane dispatch) keep one per thread so
/// the O(universe/64)-word allocation + zero-fill happens once, not per
/// head. Every select_gateways_local call requires the scratch clean (all
/// bits reset) and returns it clean, erasing bits through the result
/// lists in O(result).
struct SelectionScratch {
  graph::NodeBitset remaining2, remaining3, gateways;
};

/// Runs the selection process for clusterhead `head` against `targets`.
/// `targets.two_hop`/`targets.three_hop` must be subsets of the head's
/// coverage set (callers pass the full coverage for the static backbone,
/// a pruned copy for the dynamic one).
GatewaySelection select_gateways(const graph::Graph& g,
                                 const cluster::Clustering& c,
                                 const NeighborTables& tables, NodeId head,
                                 const Coverage& targets);

/// Same, reusing the caller's scratch across a loop over heads.
GatewaySelection select_gateways(const graph::Graph& g,
                                 const cluster::Clustering& c,
                                 const NeighborTables& tables, NodeId head,
                                 const Coverage& targets,
                                 SelectionScratch& scratch);

/// Read-only view of the information a clusterhead actually possesses
/// when it selects: its neighbor list and the CH_HOP1/CH_HOP2 messages
/// those neighbors sent. The distributed protocol (net module) runs the
/// greedy through this interface so the selection logic exists exactly
/// once.
class LocalSelectionView {
 public:
  virtual ~LocalSelectionView() = default;
  /// Sorted neighbor ids of the selecting head.
  virtual const NodeSet& neighbors() const = 0;
  /// CH_HOP1 payload received from neighbor `v`.
  virtual const NodeSet& hop1(NodeId v) const = 0;
  /// CH_HOP2 payload received from neighbor `v` (sorted by (head, via)).
  virtual const std::vector<Hop2Entry>& hop2(NodeId v) const = 0;
};

/// The greedy selection on a local view (shared by centralized and
/// distributed code paths).
GatewaySelection select_gateways_local(const LocalSelectionView& view,
                                       const Coverage& targets);

/// Same, reusing the caller's scratch (must be clean; returned clean).
GatewaySelection select_gateways_local(const LocalSelectionView& view,
                                       const Coverage& targets,
                                       SelectionScratch& scratch);

/// Checks that `selection` actually connects `head` to every target (each
/// 2-hop target adjacent to a selected neighbor of head; each 3-hop target
/// reached by a selected pair). Empty string when valid.
std::string validate_selection(const graph::Graph& g,
                               const cluster::Clustering& c, NodeId head,
                               const Coverage& targets,
                               const GatewaySelection& selection);

}  // namespace manet::core
