// MO_CDS — the message-optimal CDS of Alzoubi, Wan & Frieder
// (MobiHoc 2002), the baseline the paper compares against.
//
// Construction (paper §2, last paragraph): clusterheads come from
// lowest-ID clustering; then every clusterhead selects *one* node to
// connect each 2-hop clusterhead and *a pair* of nodes to connect each
// 3-hop clusterhead (3-hop coverage set, per-target — no greedy sharing
// across targets; the paper calls MO_CDS "a modified version of the
// static backbone with the 3-hop coverage set"). Connector choices are
// not fixed by the paper; we take the smallest-id common neighbor /
// lexicographically smallest pair, mirroring DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// The materialized MO_CDS baseline.
struct MoCds {
  cluster::Clustering clustering;
  std::vector<Coverage> coverage;  ///< 3-hop coverage, indexed by node id
  NodeSet connectors;              ///< all selected connector nodes
  NodeSet cds;                     ///< clusterheads ∪ connectors

  bool in_backbone(NodeId v) const { return contains_sorted(cds, v); }
};

/// Builds the MO_CDS for `g` (clusters computed internally).
MoCds build_mo_cds(const graph::Graph& g);

/// Builds the MO_CDS on an existing clustering (for like-for-like
/// comparisons against the static/dynamic backbones).
MoCds build_mo_cds(const graph::Graph& g, const cluster::Clustering& c);

/// Verifies the result is a CDS on connected graphs; empty string if ok.
std::string validate_mo_cds(const graph::Graph& g, const MoCds& mo);

}  // namespace manet::core
