// Broadcasting in the cluster-based SD-CDS backbone (paper §3,
// Theorem 2).
//
// The dynamic backbone keeps the fixed clusterheads but selects gateways
// *per broadcast*, while the packet traverses the network:
//
//  1. A non-clusterhead source hands the packet to its clusterhead (its
//     transmission reaches all neighbors and counts as a forward).
//  2. A clusterhead processing the packet for the first time prunes its
//     coverage set with the information riding on the packet — the
//     upstream head's coverage set C(u) and the upstream head u itself,
//     plus (relay exclusion) the clusterhead neighbors of the relay it
//     heard the packet from, which provably also received that
//     transmission (the paper's "C(v) - C(u) - {u} - N(r)" rule) — then
//     runs the greedy selection on what remains and locally broadcasts
//     the packet carrying its own coverage set and forward-node set.
//     Every clusterhead transmits exactly once (it must reach its own
//     members even when nothing remains to cover).
//  3. A non-clusterhead relays (once) when a packet it receives names it
//     in the forward-node set.
//
// The forward-node set of the broadcast — the paper's Figure 7/8 metric —
// is the set of nodes that transmitted.
#pragma once

#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// Pruning knobs (both on = the paper's algorithm; ablations switch them
/// off to measure what each rule buys).
struct DynamicBroadcastOptions {
  /// Exclude the upstream head and its piggybacked coverage set.
  bool piggyback_pruning = true;
  /// Exclude clusterhead neighbors of the delivering relay (the paper's
  /// N(r) term; generalized to every relay hop, see DESIGN.md).
  bool relay_exclusion = true;
};

/// One transmission in the broadcast trace.
struct Transmission {
  NodeId sender;
  NodeId origin_head;   ///< head whose selection this packet carries
                        ///< (kInvalidNode for a non-head source's handoff)
  NodeSet forward_set;  ///< F(origin) riding on the packet
};

/// Result of one dynamic broadcast.
struct BroadcastResult {
  NodeSet forward_nodes;           ///< nodes that transmitted
  std::vector<char> received;      ///< per-node delivery flag
  std::vector<Transmission> trace; ///< transmissions in simulation order
  bool delivered_all = false;
  /// Relay hops at which each node received its first copy (0 for the
  /// source; max value = never reached).
  std::vector<std::uint32_t> first_copy_hops;

  std::size_t forward_count() const { return forward_nodes.size(); }
  /// Largest first-copy hop count among reached nodes.
  std::uint32_t latency_hops() const;
};

/// Precomputed per-topology state shared by all broadcasts (the backbone
/// infrastructure a deployment would maintain: clusters + tables +
/// coverage sets — but no gateways, which are chosen per broadcast).
struct DynamicBackbone {
  CoverageMode mode;
  cluster::Clustering clustering;
  NeighborTables tables;
  std::vector<Coverage> coverage;  ///< indexed by node id
};

/// Builds the shared state.
DynamicBackbone build_dynamic_backbone(const graph::Graph& g,
                                       CoverageMode mode);

/// Builds the shared state on an existing clustering.
DynamicBackbone build_dynamic_backbone(const graph::Graph& g,
                                       const cluster::Clustering& c,
                                       CoverageMode mode);

/// Simulates one broadcast from `source`.
BroadcastResult dynamic_broadcast(const graph::Graph& g,
                                  const DynamicBackbone& backbone,
                                  NodeId source,
                                  const DynamicBroadcastOptions& options = {});

}  // namespace manet::core
