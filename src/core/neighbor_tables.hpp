// CH_HOP1 / CH_HOP2 neighbor tables (paper §3).
//
// After clustering, every non-clusterhead u broadcasts
//   CH_HOP1(u): the clusterheads adjacent to u, and
//   CH_HOP2(u): "2-hop clusterhead entries" (head, via) learned from its
//               neighbors' CH_HOP1 messages,
// and clusterheads assemble their coverage sets from what their neighbors
// report. The CH_HOP2 content is where the two coverage variants differ:
//
//  * 2.5-hop mode — when u hears CH_HOP1(x) from neighbor x, it records
//    only x's *own* clusterhead (paper: "only the clusterheads of those
//    1-hop neighbors will be included"), provided that head is not already
//    one of u's neighbors.
//  * 3-hop mode — u records *every* clusterhead in CH_HOP1(x) that is not
//    one of u's neighbors, which lets heads build the full 3-hop coverage
//    set N^3 ∩ heads.
//
// This module is the centralized computation of those tables; the `net`
// module reproduces them with real messages and the integration tests
// assert both agree.
#pragma once

#include <compare>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::core {

/// Which coverage-set definition drives CH_HOP2 (and everything above it).
enum class CoverageMode : std::uint8_t {
  kTwoPointFiveHop,  ///< heads with members in N^2(u) (cheaper upkeep)
  kThreeHop,         ///< all heads within 3 hops
};

const char* to_string(CoverageMode mode);

/// One CH_HOP2 entry: clusterhead `head` reachable via 1-hop neighbor
/// `via` (paper notation "head[via]").
struct Hop2Entry {
  NodeId head;
  NodeId via;

  friend auto operator<=>(const Hop2Entry&, const Hop2Entry&) = default;
};

/// The per-node tables a clusterhead's selection process consumes.
struct NeighborTables {
  CoverageMode mode;
  /// ch_hop1[v]: sorted clusterheads adjacent to v. Populated for every
  /// node (a head's row lists nothing — heads do not send CH_HOP1 — and
  /// is kept empty).
  std::vector<NodeSet> ch_hop1;
  /// ch_hop2[v]: entries sorted by (head, via); empty for clusterheads.
  std::vector<std::vector<Hop2Entry>> ch_hop2;

  /// Heads reported by `v`'s CH_HOP2 entries, deduplicated.
  NodeSet hop2_heads(NodeId v) const;
};

/// Computes CH_HOP1/CH_HOP2 for every node.
NeighborTables build_neighbor_tables(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode);

}  // namespace manet::core
