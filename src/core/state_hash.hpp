// One digest for "the maintained backbone state", shared by every engine
// that claims to hold the same structure.
//
// exp::run_churn introduced this FNV-1a fold over the incremental
// engine's accessors; the message-driven maintenance engine (src/proto)
// must land on the bitwise-identical digest every tick, so the fold
// lives here — field order and length prefixes are part of the contract.
// Hash the components straight off an engine's accessors (no
// materialize() copy) or hash a StaticBackbone; same fields, same
// digest.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "core/static_backbone.hpp"

namespace manet::core {

/// FNV-1a folded over the 8 bytes of `v` (little-endian order).
inline std::uint64_t state_hash_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Length-prefixed fold of a sorted node set (distinct shapes cannot
/// collide by concatenation).
inline std::uint64_t state_hash_nodes(std::uint64_t h, const NodeSet& nodes) {
  h = state_hash_mix(h, nodes.size());
  for (const NodeId v : nodes) h = state_hash_mix(h, v);
  return h;
}

/// Digest of one maintained backbone: clustering (heads, head_of,
/// roles), both table rows per node, coverage and selection per node,
/// the gateway union and the CDS — in exactly that order.
inline std::uint64_t backbone_state_hash(
    const cluster::Clustering& clustering, const NeighborTables& tables,
    const std::vector<Coverage>& coverage,
    const std::vector<GatewaySelection>& selection, const NodeSet& gateways,
    const NodeSet& cds) {
  std::uint64_t h = 14695981039346656037ULL;
  h = state_hash_nodes(h, clustering.heads);
  h = state_hash_mix(h, clustering.head_of.size());
  for (const NodeId v : clustering.head_of) h = state_hash_mix(h, v);
  for (const auto role : clustering.roles)
    h = state_hash_mix(h, static_cast<std::uint64_t>(role));
  for (const NodeSet& row : tables.ch_hop1) h = state_hash_nodes(h, row);
  for (const auto& row : tables.ch_hop2) {
    h = state_hash_mix(h, row.size());
    for (const auto& e : row)
      h = state_hash_mix(h, (std::uint64_t{e.head} << 32) | e.via);
  }
  for (const auto& cov : coverage) {
    h = state_hash_nodes(h, cov.two_hop);
    h = state_hash_nodes(h, cov.three_hop);
  }
  for (const auto& sel : selection) h = state_hash_nodes(h, sel.gateways);
  h = state_hash_nodes(h, gateways);
  h = state_hash_nodes(h, cds);
  return h;
}

/// Digest of a materialized StaticBackbone (same fields, same digest).
inline std::uint64_t backbone_state_hash(const StaticBackbone& b) {
  return backbone_state_hash(b.clustering, b.tables, b.coverage, b.selection,
                             b.gateways, b.cds);
}

}  // namespace manet::core
