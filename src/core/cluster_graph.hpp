// The cluster graph G' (paper §3, Figure 4).
//
// Vertices are clusterheads; a directed arc (v, w) exists when w is in
// v's coverage set. Wu & Lou proved G' is strongly connected for a
// connected network under both coverage modes — that is the connectivity
// half of Theorem 1, and the property tests exercise it directly. With
// the 3-hop coverage set G' is symmetric; with the 2.5-hop set one-way
// arcs can appear (Figure 4a: arc 4->1 without 1->4).
#pragma once

#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "graph/digraph.hpp"

namespace manet::core {

/// G' plus the head-id <-> vertex-index mapping.
struct ClusterGraph {
  NodeSet heads;            ///< sorted head ids; vertex i of `digraph` = heads[i]
  graph::Digraph digraph;   ///< arcs between head indices

  /// Index of head `h` in `heads` (requires membership).
  std::size_t index_of(NodeId h) const;

  /// True if arc head v -> head w exists (by node ids).
  bool has_arc_between_heads(NodeId v, NodeId w) const;
};

/// Builds G' from per-head coverage sets (as returned by
/// build_all_coverage).
ClusterGraph build_cluster_graph(const cluster::Clustering& c,
                                 const std::vector<Coverage>& coverage);

}  // namespace manet::core
