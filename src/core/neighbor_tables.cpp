#include "core/neighbor_tables.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::core {

const char* to_string(CoverageMode mode) {
  switch (mode) {
    case CoverageMode::kTwoPointFiveHop:
      return "2.5-hop";
    case CoverageMode::kThreeHop:
      return "3-hop";
  }
  return "?";
}

NodeSet NeighborTables::hop2_heads(NodeId v) const {
  MANET_REQUIRE(v < ch_hop2.size(), "node id out of range");
  NodeSet out;
  for (const auto& e : ch_hop2[v]) out.push_back(e.head);
  normalize(out);
  return out;
}

NeighborTables build_neighbor_tables(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode) {
  const std::size_t n = g.order();
  MANET_REQUIRE(c.head_of.size() == n, "clustering does not match graph");

  NeighborTables t;
  t.mode = mode;
  t.ch_hop1.resize(n);
  t.ch_hop2.resize(n);

  // CH_HOP1(v): clusterheads adjacent to v. Heads do not broadcast
  // CH_HOP1 (and by independence have no head neighbors anyway).
  for (NodeId v = 0; v < n; ++v) {
    if (c.is_head(v)) continue;
    for (NodeId w : g.neighbors(v))
      if (c.is_head(w)) t.ch_hop1[v].push_back(w);  // sorted adjacency
  }

  // CH_HOP2(v): built from the CH_HOP1 messages of v's non-clusterhead
  // neighbors x. A head reported by x is recorded unless it is already
  // v's own neighbor ("If the clusterhead of x is a neighbor of v, v
  // ignores the message").
  for (NodeId v = 0; v < n; ++v) {
    if (c.is_head(v)) continue;
    auto& entries = t.ch_hop2[v];
    for (NodeId x : g.neighbors(v)) {
      if (c.is_head(x)) continue;  // heads send no CH_HOP1
      if (mode == CoverageMode::kTwoPointFiveHop) {
        const NodeId head = c.head_of[x];
        if (!g.has_edge(v, head)) entries.push_back({head, x});
      } else {
        for (NodeId head : t.ch_hop1[x])
          if (!g.has_edge(v, head)) entries.push_back({head, x});
      }
    }
    std::sort(entries.begin(), entries.end());
    entries.erase(std::unique(entries.begin(), entries.end()),
                  entries.end());
  }
  return t;
}

}  // namespace manet::core
