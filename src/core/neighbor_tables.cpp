#include "core/neighbor_tables.hpp"

#include "common/assert.hpp"
#include "core/table_kernels.hpp"

namespace manet::core {

const char* to_string(CoverageMode mode) {
  switch (mode) {
    case CoverageMode::kTwoPointFiveHop:
      return "2.5-hop";
    case CoverageMode::kThreeHop:
      return "3-hop";
  }
  return "?";
}

NodeSet NeighborTables::hop2_heads(NodeId v) const {
  MANET_REQUIRE(v < ch_hop2.size(), "node id out of range");
  NodeSet out;
  for (const auto& e : ch_hop2[v]) out.push_back(e.head);
  normalize(out);
  return out;
}

NeighborTables build_neighbor_tables(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     CoverageMode mode) {
  const std::size_t n = g.order();
  MANET_REQUIRE(c.head_of.size() == n, "clustering does not match graph");

  NeighborTables t;
  t.mode = mode;
  t.ch_hop1.resize(n);
  t.ch_hop2.resize(n);

  // Row kernels shared with the incremental engine (table_kernels.hpp):
  // CH_HOP1 first (CH_HOP2 rows read the neighbors' CH_HOP1 rows).
  for (NodeId v = 0; v < n; ++v) t.ch_hop1[v] = hop1_row(g, c, v);
  for (NodeId v = 0; v < n; ++v)
    t.ch_hop2[v] = hop2_row(g, c, mode, t.ch_hop1, v);
  return t;
}

}  // namespace manet::core
