// Per-row kernels behind the CH_HOP1/CH_HOP2 tables and coverage sets.
//
// build_neighbor_tables / build_all_coverage compute every row of these
// structures for an immutable Graph; the incremental maintenance engine
// (src/incr) recomputes single dirty rows against its mutable adjacency
// overlay. Both paths call the templates below, so a recomputed row is
// bit-identical to the batch row by construction — the equality the
// engine's oracle cross-check asserts after every tick.
//
// `Adj` requirements (satisfied by graph::Graph and
// graph::DynamicAdjacency): `neighbors(v)` returning a sorted forward
// range of NodeId, and `has_edge(u, v)`.
//
// The clustering / row-store parameters are templates too: besides the
// canonical cluster::Clustering and NeighborTables, the message-driven
// maintenance node (src/proto) runs the same kernels over its
// per-neighbor message caches through thin view adapters (`Clust` needs
// `is_head(v)` and `head_of[v]`; `Hop1Rows` / `Tables` need the row
// lookups used below). One kernel, every engine — that is what makes
// the recomputed rows bit-identical across the batch, incremental and
// protocol paths.
#pragma once

#include <algorithm>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/bitset.hpp"

namespace manet::core {

/// CH_HOP1 row of `v`: sorted clusterheads adjacent to v. Heads do not
/// broadcast CH_HOP1, so their rows stay empty.
template <typename Adj, typename Clust = cluster::Clustering>
NodeSet hop1_row(const Adj& g, const Clust& c, NodeId v) {
  NodeSet out;
  if (c.is_head(v)) return out;
  for (NodeId w : g.neighbors(v))
    if (c.is_head(w)) out.push_back(w);  // sorted adjacency -> sorted row
  return out;
}

/// CH_HOP2 row of `v`, built from the CH_HOP1 rows of v's
/// non-clusterhead neighbors (`hop1` must be current for all of them).
/// A head reported by neighbor x is recorded unless it is already v's
/// own neighbor ("If the clusterhead of x is a neighbor of v, v ignores
/// the message").
template <typename Adj, typename Clust = cluster::Clustering,
          typename Hop1Rows = std::vector<NodeSet>>
std::vector<Hop2Entry> hop2_row(const Adj& g, const Clust& c,
                                CoverageMode mode, const Hop1Rows& hop1,
                                NodeId v) {
  std::vector<Hop2Entry> entries;
  if (c.is_head(v)) return entries;
  for (NodeId x : g.neighbors(v)) {
    if (c.is_head(x)) continue;  // heads send no CH_HOP1
    if (mode == CoverageMode::kTwoPointFiveHop) {
      const NodeId head = c.head_of[x];
      if (!g.has_edge(v, head)) entries.push_back({head, x});
    } else {
      for (NodeId head : hop1[x])
        if (!g.has_edge(v, head)) entries.push_back({head, x});
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  return entries;
}

/// Reusable bitset scratch for coverage_row. Hot loops (the batch build
/// over all heads, the incremental reselect stage) keep one per thread:
/// the O(universe) bitset allocation then happens once instead of per
/// head — at 100k nodes the per-head zeroing alone was the dominant
/// rebuild cost. The kernel returns it clean, erasing bits through the
/// materialized result sets (O(result), not O(universe)).
struct CoverageScratch {
  graph::NodeBitset two, three;
};

/// Coverage set C(head) = C²(head) ∪ C³(head) assembled from the table
/// rows of head's neighbors (which must be current). `universe` sizes the
/// scratch bitsets (pass the node count).
template <typename Adj, typename Tables = NeighborTables>
Coverage coverage_row(const Adj& g, const Tables& tables, NodeId head,
                      std::size_t universe, CoverageScratch& scratch) {
  if (scratch.two.capacity() < universe) {
    scratch.two = graph::NodeBitset(universe);
    scratch.three = graph::NodeBitset(universe);
  }
  Coverage cov;
  // Collect membership in bitsets (O(1) insert, duplicates dropped by the
  // fresh-bit return of set()) and sort the harvested lists once, instead
  // of insert_sorted per report (O(k^2)). Harvesting on first insertion —
  // rather than to_node_set() at the end — keeps the whole kernel
  // O(row + result log result): to_node_set scans every word of the
  // universe-sized scratch, which at 10M nodes is 156k words *per head*
  // and dominated the cold start.
  // C²: union of the neighbors' CH_HOP1 reports, minus u itself.
  for (NodeId v : g.neighbors(head))
    for (NodeId w : tables.ch_hop1[v])
      if (w != head && scratch.two.set(w)) cov.two_hop.push_back(w);
  std::sort(cov.two_hop.begin(), cov.two_hop.end());

  // C³: union of the neighbors' CH_HOP2 heads, minus C² duplicates and u.
  for (NodeId v : g.neighbors(head))
    for (const auto& e : tables.ch_hop2[v])
      if (e.head != head && !scratch.two.test(e.head) &&
          scratch.three.set(e.head))
        cov.three_hop.push_back(e.head);
  std::sort(cov.three_hop.begin(), cov.three_hop.end());

  // Hand the scratch back clean in O(result), not O(universe): the
  // materialized sets list exactly the bits that were set.
  for (NodeId v : cov.two_hop) scratch.two.reset(v);
  for (NodeId v : cov.three_hop) scratch.three.reset(v);
  return cov;
}

/// Scratch-less convenience overload (cold paths, tests).
template <typename Adj, typename Tables = NeighborTables>
Coverage coverage_row(const Adj& g, const Tables& tables, NodeId head,
                      std::size_t universe) {
  CoverageScratch scratch;
  return coverage_row(g, tables, head, universe, scratch);
}

}  // namespace manet::core
