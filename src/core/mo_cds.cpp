#include "core/mo_cds.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "graph/algorithms.hpp"

namespace manet::core {

MoCds build_mo_cds(const graph::Graph& g) {
  return build_mo_cds(g, cluster::lowest_id_clustering(g));
}

MoCds build_mo_cds(const graph::Graph& g, const cluster::Clustering& c) {
  MoCds mo;
  mo.clustering = c;
  const auto tables =
      build_neighbor_tables(g, mo.clustering, CoverageMode::kThreeHop);
  mo.coverage = build_all_coverage(g, mo.clustering, tables);
  mo.cds = mo.clustering.heads;

  for (NodeId h : mo.clustering.heads) {
    const auto neighbors = g.neighbors(h);
    // One connector per 2-hop head: the smallest-id neighbor adjacent to
    // the target.
    for (NodeId w : mo.coverage[h].two_hop) {
      NodeId pick = kInvalidNode;
      for (NodeId v : neighbors) {
        if (g.has_edge(v, w)) {
          pick = v;  // ascending neighbor order -> smallest id
          break;
        }
      }
      MANET_ASSERT(pick != kInvalidNode, "2-hop head without a connector");
      insert_sorted(mo.connectors, pick);
      insert_sorted(mo.cds, pick);
    }
    // One connector pair per 3-hop head: lexicographically smallest
    // (first-hop, second-hop) among the CH_HOP2 witnesses.
    for (NodeId w : mo.coverage[h].three_hop) {
      NodeId pick_v = kInvalidNode;
      NodeId pick_x = kInvalidNode;
      for (NodeId v : neighbors) {
        for (const auto& e : tables.ch_hop2[v]) {
          if (e.head != w) continue;
          if (pick_v == kInvalidNode || v < pick_v ||
              (v == pick_v && e.via < pick_x)) {
            pick_v = v;
            pick_x = e.via;
          }
        }
      }
      MANET_ASSERT(pick_v != kInvalidNode, "3-hop head without a pair");
      insert_sorted(mo.connectors, pick_v);
      insert_sorted(mo.connectors, pick_x);
      insert_sorted(mo.cds, pick_v);
      insert_sorted(mo.cds, pick_x);
    }
  }
  return mo;
}

std::string validate_mo_cds(const graph::Graph& g, const MoCds& mo) {
  std::ostringstream err;
  if (graph::is_connected(g) &&
      !graph::is_connected_dominating_set(g, mo.cds)) {
    err << "MO_CDS is not a connected dominating set";
    return err.str();
  }
  for (NodeId v : mo.connectors) {
    if (mo.clustering.is_head(v)) {
      err << "connector " << v << " is a clusterhead";
      return err.str();
    }
  }
  return {};
}

}  // namespace manet::core
