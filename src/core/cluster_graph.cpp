#include "core/cluster_graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::core {

std::size_t ClusterGraph::index_of(NodeId h) const {
  const auto it = std::lower_bound(heads.begin(), heads.end(), h);
  MANET_REQUIRE(it != heads.end() && *it == h, "not a clusterhead");
  return static_cast<std::size_t>(it - heads.begin());
}

bool ClusterGraph::has_arc_between_heads(NodeId v, NodeId w) const {
  return digraph.has_arc(static_cast<NodeId>(index_of(v)),
                         static_cast<NodeId>(index_of(w)));
}

ClusterGraph build_cluster_graph(const cluster::Clustering& c,
                                 const std::vector<Coverage>& coverage) {
  ClusterGraph cg;
  cg.heads = c.heads;
  cg.digraph = graph::Digraph(cg.heads.size());
  for (NodeId h : cg.heads) {
    const auto from = static_cast<NodeId>(cg.index_of(h));
    for (NodeId w : coverage[h].all())
      cg.digraph.add_arc(from, static_cast<NodeId>(cg.index_of(w)));
  }
  return cg;
}

}  // namespace manet::core
