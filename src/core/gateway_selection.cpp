#include "core/gateway_selection.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "common/assert.hpp"
#include "graph/bitset.hpp"

namespace manet::core {
namespace {

using graph::NodeBitset;

/// Distinct heads among `entries` that appear in `remaining`.
std::size_t distinct_covered_heads(const std::vector<Hop2Entry>& entries,
                                   const NodeBitset& remaining) {
  std::size_t count = 0;
  NodeId last = kInvalidNode;
  for (const auto& e : entries) {  // entries sorted by (head, via)
    if (e.head != last && remaining.test(e.head)) {
      ++count;
      last = e.head;
    }
  }
  return count;
}

/// |s ∩ remaining| for a sorted NodeSet against a bitset.
std::size_t covered_count(const NodeSet& s, const NodeBitset& remaining) {
  std::size_t count = 0;
  for (NodeId v : s)
    if (remaining.test(v)) ++count;
  return count;
}

/// Adapts the centralized graph + tables to the local-view interface.
class TablesView final : public LocalSelectionView {
 public:
  TablesView(const graph::Graph& g, const NeighborTables& tables,
             NodeId head)
      : tables_(tables) {
    const auto nb = g.neighbors(head);
    neighbors_.assign(nb.begin(), nb.end());
  }
  const NodeSet& neighbors() const override { return neighbors_; }
  const NodeSet& hop1(NodeId v) const override { return tables_.ch_hop1[v]; }
  const std::vector<Hop2Entry>& hop2(NodeId v) const override {
    return tables_.ch_hop2[v];
  }

 private:
  const NeighborTables& tables_;
  NodeSet neighbors_;
};

}  // namespace

GatewaySelection select_gateways_local(const LocalSelectionView& view,
                                       const Coverage& targets) {
  SelectionScratch scratch;
  return select_gateways_local(view, targets, scratch);
}

GatewaySelection select_gateways_local(const LocalSelectionView& view,
                                       const Coverage& targets,
                                       SelectionScratch& scratch) {
  GatewaySelection sel;
  // Remaining-target membership and the accumulating gateway set live in
  // bitsets during the greedy loops (O(1) test/insert/erase). Everything
  // whose natural cost is O(universe/64) words is avoided: loop progress
  // is tracked by counters instead of any()/none() scans, selected
  // gateways are harvested on first insertion and sorted once instead of
  // to_node_set(), and phase 2 walks the (sorted) target list filtered by
  // the bitset instead of materializing it. With a reused scratch the
  // whole call is O(targets + neighbor rows) — at 10M nodes the per-head
  // word scans this replaces dominated the bootstrap by orders of
  // magnitude.
  NodeBitset& remaining2 = scratch.remaining2;
  NodeBitset& remaining3 = scratch.remaining3;
  NodeBitset& gateways = scratch.gateways;
  for (NodeId w : targets.two_hop) remaining2.set(w);
  for (NodeId w : targets.three_hop) remaining3.set(w);
  // Coverage sets are sorted-unique, so with a clean scratch the live
  // counts start as the list sizes and decrement on each reset below.
  std::size_t left2 = targets.two_hop.size();
  std::size_t left3 = targets.three_hop.size();
  const NodeSet& neighbors = view.neighbors();

  // Phase 1: greedy max-direct-cover over the 2-hop targets.
  while (left2 > 0) {
    NodeId best = kInvalidNode;
    std::size_t best_direct = 0;
    std::size_t best_indirect = 0;
    for (NodeId v : neighbors) {  // ascending ids: first win = smallest id
      const std::size_t direct = covered_count(view.hop1(v), remaining2);
      if (direct == 0) continue;
      const std::size_t indirect =
          distinct_covered_heads(view.hop2(v), remaining3);
      if (best == kInvalidNode || direct > best_direct ||
          (direct == best_direct && indirect > best_indirect)) {
        best = v;
        best_direct = direct;
        best_indirect = indirect;
      }
    }
    MANET_ASSERT(best != kInvalidNode,
                 "every 2-hop coverage target has a witness neighbor");

    SelectionStep step;
    step.gateway = best;
    for (NodeId w : view.hop1(best))  // sorted input -> sorted output
      if (remaining2.test(w)) {
        step.direct_covered.push_back(w);
        remaining2.reset(w);
        --left2;
      }
    if (gateways.set(best)) sel.gateways.push_back(best);

    // Indirectly covered 3-hop targets come along for free; their
    // via-nodes become second-hop gateways. For a head reachable through
    // several via-nodes of `best`, take the smallest via (entries are
    // sorted by (head, via), so the first hit wins).
    NodeId last_head = kInvalidNode;
    for (const auto& e : view.hop2(best)) {
      if (e.head == last_head) continue;
      if (!remaining3.test(e.head)) continue;
      last_head = e.head;
      step.indirect_covered.push_back(e);
      remaining3.reset(e.head);
      --left3;
      if (gateways.set(e.via)) sel.gateways.push_back(e.via);
    }
    sel.steps.push_back(std::move(step));
  }

  // Phase 2: leftover 3-hop targets get an explicit connector pair
  // (first-hop neighbor v of head, second-hop via x). Prefer pairs that
  // reuse already-selected gateways, then the smallest (v, x). Iterating
  // the sorted target list filtered by the bitset visits exactly the
  // leftover heads in the same ascending order the materialized set did.
  for (NodeId w : targets.three_hop) {
    if (left3 == 0) break;
    if (!remaining3.test(w)) continue;
    ConnectorPair best_pair{w, kInvalidNode, kInvalidNode};
    int best_score = -1;
    for (NodeId v : neighbors) {
      for (const auto& e : view.hop2(v)) {
        if (e.head != w) continue;
        const int score = (gateways.test(v) ? 1 : 0) +
                          (gateways.test(e.via) ? 1 : 0);
        if (score > best_score ||
            (score == best_score &&
             std::tie(v, e.via) <
                 std::tie(best_pair.first_hop, best_pair.second_hop))) {
          best_score = score;
          best_pair.first_hop = v;
          best_pair.second_hop = e.via;
        }
      }
    }
    MANET_ASSERT(best_score >= 0,
                 "every 3-hop coverage target has a witness pair");
    sel.leftover_pairs.push_back(best_pair);
    if (gateways.set(best_pair.first_hop))
      sel.gateways.push_back(best_pair.first_hop);
    if (gateways.set(best_pair.second_hop))
      sel.gateways.push_back(best_pair.second_hop);
    remaining3.reset(w);
    --left3;
  }
  MANET_ASSERT(left3 == 0, "all 3-hop targets resolved");
  // remaining2/remaining3 were drained bit-by-bit above; hand the gateway
  // bits back clean through the harvested list (O(result)).
  std::sort(sel.gateways.begin(), sel.gateways.end());
  for (NodeId v : sel.gateways) gateways.reset(v);
  return sel;
}

GatewaySelection select_gateways(const graph::Graph& g,
                                 const cluster::Clustering& c,
                                 const NeighborTables& tables, NodeId head,
                                 const Coverage& targets) {
  SelectionScratch scratch;
  return select_gateways(g, c, tables, head, targets, scratch);
}

GatewaySelection select_gateways(const graph::Graph& g,
                                 const cluster::Clustering& c,
                                 const NeighborTables& tables, NodeId head,
                                 const Coverage& targets,
                                 SelectionScratch& scratch) {
  MANET_REQUIRE(head < g.order(), "node id out of range");
  MANET_REQUIRE(c.is_head(head), "selection runs on clusterheads");
  return select_gateways_local(TablesView(g, tables, head), targets,
                               scratch);
}

std::string validate_selection(const graph::Graph& g,
                               const cluster::Clustering& c, NodeId head,
                               const Coverage& targets,
                               const GatewaySelection& selection) {
  std::ostringstream err;
  // No clusterheads among gateways, and all gateways within 2 hops.
  for (NodeId v : selection.gateways) {
    if (c.is_head(v)) {
      err << "selected gateway " << v << " is a clusterhead";
      return err.str();
    }
  }
  // Every 2-hop target must be adjacent to a selected neighbor of head.
  for (NodeId w : targets.two_hop) {
    bool covered = false;
    for (NodeId v : selection.gateways)
      if (g.has_edge(head, v) && g.has_edge(v, w)) covered = true;
    if (!covered) {
      err << "2-hop target " << w << " of head " << head << " uncovered";
      return err.str();
    }
  }
  // Every 3-hop target must be reached by a selected (v, x) chain.
  for (NodeId w : targets.three_hop) {
    bool covered = false;
    for (NodeId v : selection.gateways) {
      if (!g.has_edge(head, v)) continue;
      for (NodeId x : selection.gateways)
        if (g.has_edge(v, x) && g.has_edge(x, w)) covered = true;
    }
    if (!covered) {
      err << "3-hop target " << w << " of head " << head << " uncovered";
      return err.str();
    }
  }
  return {};
}

}  // namespace manet::core
