// Numerically stable running statistics (Welford) with Student-t
// confidence intervals — the paper's stopping rule is "repeat the
// simulation until the 99% confidence interval of the result is within
// +-5%", which maps to RunningStats::relative_halfwidth().
#pragma once

#include <cstddef>

namespace manet::stats {

/// Accumulates samples with Welford's algorithm.
class RunningStats {
 public:
  void add(double sample);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;

  double min() const { return min_; }
  double max() const { return max_; }

  /// Half-width of the `confidence` CI around the mean (Student-t).
  /// Returns +inf with fewer than 2 samples.
  double ci_halfwidth(double confidence) const;

  /// ci_halfwidth / |mean| (inf when mean == 0 and halfwidth > 0; 0 when
  /// both are 0, e.g. a degenerate all-equal sample stream).
  double relative_halfwidth(double confidence) const;

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace manet::stats
