// Replication controller implementing the paper's stopping rule:
// "We repeat the simulation until the 99% confidence interval of the
//  result is within +-5%."
//
// A Replicator runs a sample-producing callback until every tracked metric
// meets the CI target (or the replication cap is hit, so a pathological
// scenario cannot hang a bench).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/running.hpp"

namespace manet::stats {

/// Stopping-rule settings. Defaults mirror the paper.
struct ReplicationPolicy {
  double confidence = 0.99;       ///< CI confidence level
  double relative_halfwidth = 0.05;  ///< target CI half-width / mean
  std::size_t min_replications = 25;
  std::size_t max_replications = 4000;
  /// Worker threads evaluating sample callbacks. 1 (or 0) = run
  /// sequentially on the caller's thread. With threads > 1 the callback
  /// must be safe to invoke concurrently for distinct replication indices
  /// (each replication deriving its own Rng stream from the index, as the
  /// exp module does); samples are still reduced in replication order, so
  /// results are bitwise identical to the sequential path.
  std::size_t threads = 1;
};

/// Result of one replicated experiment: per-metric statistics.
struct ReplicationResult {
  std::vector<RunningStats> metrics;
  std::size_t replications = 0;
  bool converged = false;  ///< all metrics met the CI target before the cap
};

/// Runs `sample` (which appends one value per metric to its output
/// argument, in a fixed order) until the policy is satisfied for every
/// metric. The callback receives the replication index so it can derive
/// per-replication seeds.
///
/// Determinism contract: for a callback that is a pure function of the
/// replication index, the returned ReplicationResult is bitwise identical
/// for every policy.threads value. Parallel workers only *evaluate*
/// callbacks (in batches of `threads` consecutive indices); accumulation
/// and the stopping-rule check happen on the caller's thread in strict
/// replication order, and batch samples beyond the stopping point are
/// discarded exactly as if they had never run.
ReplicationResult replicate(
    const ReplicationPolicy& policy, std::size_t metric_count,
    const std::function<void(std::size_t replication,
                             std::vector<double>& out)>& sample);

}  // namespace manet::stats
