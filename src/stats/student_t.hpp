// Student-t critical values for two-sided confidence intervals.
//
// Self-contained (no external math library): exact-enough tables for small
// degrees of freedom at the confidence levels experiments actually use
// (90/95/99%), with the normal quantile as the asymptotic fallback and a
// Cornish–Fisher style df correction in between.
#pragma once

#include <cstddef>

namespace manet::stats {

/// Two-sided critical value t*(confidence, df): P(|T_df| <= t*) =
/// confidence. Supports confidence in (0, 1); accuracy is ~1e-3 for the
/// tabulated levels {0.90, 0.95, 0.99} and ~1e-2 elsewhere, which is ample
/// for a CI stopping rule.
double student_t_critical(double confidence, std::size_t df);

/// Standard normal two-sided critical value z*: P(|Z| <= z*) = confidence.
/// (Acklam's inverse-CDF approximation, |error| < 1.15e-9.)
double normal_critical(double confidence);

}  // namespace manet::stats
