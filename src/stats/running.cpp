#include "stats/running.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/student_t.hpp"

namespace manet::stats {

void RunningStats::add(double sample) {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci_halfwidth(double confidence) const {
  if (count_ < 2) return std::numeric_limits<double>::infinity();
  const double t = student_t_critical(confidence, count_ - 1);
  return t * stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::relative_halfwidth(double confidence) const {
  const double hw = ci_halfwidth(confidence);
  if (hw == 0.0) return 0.0;
  if (mean_ == 0.0) return std::numeric_limits<double>::infinity();
  return hw / std::fabs(mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace manet::stats
