// Exact sample-set statistics (quantiles, median, trimmed mean) for
// metrics whose distribution matters — e.g. broadcast latency, where the
// tail (p95) tells a different story than the mean. Keeps all samples;
// fine for the experiment sizes this library runs at.
#pragma once

#include <cstddef>
#include <vector>

namespace manet::stats {

/// Accumulates samples and answers exact order statistics.
class SampleSet {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;

  /// Exact q-quantile (linear interpolation between order statistics),
  /// q in [0, 1]. Requires at least one sample.
  double quantile(double q) const;

  double median() const { return quantile(0.5); }
  double min() const { return quantile(0.0); }
  double max() const { return quantile(1.0); }

  /// Mean after dropping the `trim` fraction from each tail (trim in
  /// [0, 0.5)). trimmed_mean(0) == mean().
  double trimmed_mean(double trim) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace manet::stats
