#include "stats/samples.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace manet::stats {

void SampleSet::add(double sample) {
  samples_.push_back(sample);
  sorted_ = samples_.size() <= 1;
}

double SampleSet::mean() const {
  MANET_REQUIRE(!samples_.empty(), "mean of an empty sample set");
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  MANET_REQUIRE(!samples_.empty(), "quantile of an empty sample set");
  MANET_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double SampleSet::trimmed_mean(double trim) const {
  MANET_REQUIRE(!samples_.empty(), "trimmed mean of an empty sample set");
  MANET_REQUIRE(trim >= 0.0 && trim < 0.5, "trim must be in [0, 0.5)");
  ensure_sorted();
  const auto n = samples_.size();
  const auto drop = static_cast<std::size_t>(
      std::floor(trim * static_cast<double>(n)));
  double sum = 0;
  std::size_t kept = 0;
  for (std::size_t i = drop; i < n - drop; ++i) {
    sum += samples_[i];
    ++kept;
  }
  MANET_ASSERT(kept > 0, "trim always keeps the middle");
  return sum / static_cast<double>(kept);
}

}  // namespace manet::stats
