#include "stats/student_t.hpp"

#include <array>
#include <cmath>

#include "common/assert.hpp"

namespace manet::stats {
namespace {

// Acklam's rational approximation to the standard normal inverse CDF.
double normal_quantile(double p) {
  MANET_REQUIRE(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

struct TTable {
  double confidence;
  // Critical values for df = 1..30.
  std::array<double, 30> values;
};

// Standard two-sided t tables.
constexpr TTable kTables[] = {
    {0.90,
     {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697}},
    {0.95,
     {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042}},
    {0.99,
     {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750}},
};

// Hill's asymptotic expansion of the t quantile in terms of the normal
// quantile z and df; accurate to ~1e-3 for df >= 3 and excellent df > 30.
double t_from_normal_expansion(double z, double df) {
  const double g1 = (z * z * z + z) / 4.0;
  const double g2 = (5 * std::pow(z, 5) + 16 * z * z * z + 3 * z) / 96.0;
  const double g3 =
      (3 * std::pow(z, 7) + 19 * std::pow(z, 5) + 17 * z * z * z - 15 * z) /
      384.0;
  const double g4 = (79 * std::pow(z, 9) + 776 * std::pow(z, 7) +
                     1482 * std::pow(z, 5) - 1920 * z * z * z - 945 * z) /
                    92160.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df) +
         g4 / (df * df * df * df);
}

}  // namespace

double normal_critical(double confidence) {
  MANET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  return normal_quantile(0.5 + confidence / 2.0);
}

double student_t_critical(double confidence, std::size_t df) {
  MANET_REQUIRE(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  MANET_REQUIRE(df >= 1, "degrees of freedom must be >= 1");
  for (const auto& table : kTables) {
    if (std::fabs(confidence - table.confidence) < 1e-9 && df <= 30)
      return table.values[df - 1];
  }
  const double z = normal_critical(confidence);
  if (df > 30) return t_from_normal_expansion(z, static_cast<double>(df));
  // Untabulated level with small df: the expansion is the best available
  // estimate; conservative enough for a stopping rule.
  return t_from_normal_expansion(z, static_cast<double>(df));
}

}  // namespace manet::stats
