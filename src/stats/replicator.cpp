#include "stats/replicator.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace manet::stats {
namespace {

/// One evaluated replication: the sample vector or the exception the
/// callback threw (rethrown on the caller's thread in replication order,
/// so parallel error behavior matches sequential).
struct Slot {
  std::vector<double> values;
  std::exception_ptr error;
};

/// Adds one replication's samples and evaluates the stopping rule.
/// Returns true when the experiment has converged.
bool reduce_one(const ReplicationPolicy& policy, std::size_t metric_count,
                std::size_t rep, const std::vector<double>& values,
                ReplicationResult& result) {
  MANET_REQUIRE(values.size() == metric_count,
                "sample callback produced wrong metric arity");
  for (std::size_t m = 0; m < metric_count; ++m)
    result.metrics[m].add(values[m]);
  result.replications = rep + 1;

  if (result.replications < policy.min_replications) return false;
  for (const auto& stat : result.metrics)
    if (stat.relative_halfwidth(policy.confidence) >
        policy.relative_halfwidth)
      return false;
  result.converged = true;
  return true;
}

/// Parallel path: workers evaluate one batch of `threads` consecutive
/// replication indices; the caller's thread then reduces the batch in
/// index order and applies the stopping rule exactly as the sequential
/// path would, discarding any slack samples past the stopping point. The
/// per-batch thread spawn is noise next to a sample callback that
/// generates a topology and builds a backbone.
ReplicationResult replicate_parallel(
    const ReplicationPolicy& policy, std::size_t metric_count,
    const std::function<void(std::size_t, std::vector<double>&)>& sample) {
  ReplicationResult result;
  result.metrics.resize(metric_count);

  std::vector<Slot> slots;
  for (std::size_t base = 0;
       base < policy.max_replications && !result.converged;
       base += slots.size()) {
    slots.assign(std::min(policy.threads, policy.max_replications - base),
                 Slot{});
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(slots.size());
    for (std::size_t t = 0; t < slots.size(); ++t)
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= slots.size()) return;
          try {
            sample(base + i, slots[i].values);
          } catch (...) {
            slots[i].error = std::current_exception();
          }
        }
      });
    for (auto& w : workers) w.join();

    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].error) std::rethrow_exception(slots[i].error);
      if (reduce_one(policy, metric_count, base + i, slots[i].values,
                     result))
        break;  // later slots in the batch are discarded
    }
  }
  return result;
}

}  // namespace

ReplicationResult replicate(
    const ReplicationPolicy& policy, std::size_t metric_count,
    const std::function<void(std::size_t, std::vector<double>&)>& sample) {
  MANET_REQUIRE(metric_count > 0, "at least one metric is required");
  MANET_REQUIRE(policy.min_replications >= 2,
                "need >= 2 replications for a confidence interval");
  MANET_REQUIRE(policy.min_replications <= policy.max_replications,
                "min_replications must not exceed max_replications");

  if (policy.threads > 1)
    return replicate_parallel(policy, metric_count, sample);

  ReplicationResult result;
  result.metrics.resize(metric_count);
  std::vector<double> values;
  values.reserve(metric_count);

  for (std::size_t rep = 0; rep < policy.max_replications; ++rep) {
    values.clear();
    sample(rep, values);
    if (reduce_one(policy, metric_count, rep, values, result)) break;
  }
  return result;
}

}  // namespace manet::stats
