#include "stats/replicator.hpp"

#include "common/assert.hpp"

namespace manet::stats {

ReplicationResult replicate(
    const ReplicationPolicy& policy, std::size_t metric_count,
    const std::function<void(std::size_t, std::vector<double>&)>& sample) {
  MANET_REQUIRE(metric_count > 0, "at least one metric is required");
  MANET_REQUIRE(policy.min_replications >= 2,
                "need >= 2 replications for a confidence interval");
  MANET_REQUIRE(policy.min_replications <= policy.max_replications,
                "min_replications must not exceed max_replications");

  ReplicationResult result;
  result.metrics.resize(metric_count);
  std::vector<double> values;
  values.reserve(metric_count);

  for (std::size_t rep = 0; rep < policy.max_replications; ++rep) {
    values.clear();
    sample(rep, values);
    MANET_REQUIRE(values.size() == metric_count,
                  "sample callback produced wrong metric arity");
    for (std::size_t m = 0; m < metric_count; ++m)
      result.metrics[m].add(values[m]);
    result.replications = rep + 1;

    if (result.replications < policy.min_replications) continue;
    bool all_tight = true;
    for (const auto& stat : result.metrics) {
      if (stat.relative_halfwidth(policy.confidence) >
          policy.relative_halfwidth) {
        all_tight = false;
        break;
      }
    }
    if (all_tight) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace manet::stats
