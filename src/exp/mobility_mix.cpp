#include "exp/mobility_mix.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "geom/unit_disk.hpp"

namespace manet::exp {

MobilityMix::MobilityMix(const ChurnConfig& config) : dt_(config.dt) {
  MANET_REQUIRE(config.nodes >= 2, "churn run needs at least two nodes");
  MANET_REQUIRE(config.move_fraction > 0.0 && config.move_fraction <= 1.0,
                "move fraction must be in (0, 1]");

  const std::size_t n = config.nodes;
  geom::UnitDiskConfig net;
  net.width = config.width;
  net.height = config.height;
  net.nodes = n;
  net.range = geom::range_for_average_degree(config.degree, n, config.width,
                                             config.height);
  range_ = net.range;
  Rng topo_rng(derive_seed(config.seed, 0, 0));
  // Prefer a connected start (the paper's filter), but don't insist
  // unless asked: at large sparse settings full connectivity is
  // vanishingly rare, and both engines maintain disconnected topologies
  // just as well (clusters and coverage are per-component anyway).
  const std::size_t attempt_budget =
      std::max<std::size_t>(1, config.connect_attempts);
  const auto reject_connectivity = [&] {
    MANET_REQUIRE(!config.require_connected,
                  "churn: no connected topology in " +
                      std::to_string(attempt_budget) + " attempts (n=" +
                      std::to_string(n) + ", degree=" +
                      std::to_string(config.degree) +
                      ") — raise connect_attempts, raise the degree, or "
                      "drop require_connected");
  };
  std::vector<geom::Point> layout;
  if (config.streaming_placement) {
    // Streaming cold start: placement lands cell-major straight out of
    // the rng, and each rejection-sampling attempt checks connectivity
    // with a union-find sweep instead of a throwaway graph build. On an
    // exhausted budget the last attempt's layout is kept (one draw
    // fewer than the non-streaming path — a different stream anyway).
    for (attempts_used_ = 0; attempts_used_ < attempt_budget && !connected_;) {
      layout = geom::generate_unit_disk_cell_order(net, topo_rng);
      ++attempts_used_;
      connected_ = geom::unit_disk_connected(layout, net.range, config.grid);
    }
    if (!connected_) reject_connectivity();
  } else {
    auto network = geom::generate_connected_unit_disk(net, topo_rng,
                                                      attempt_budget,
                                                      &attempts_used_);
    connected_ = network.has_value();
    if (!network) {
      reject_connectivity();
      network = geom::generate_unit_disk(net, topo_rng);
    }
    layout = std::move(network->positions);
    if (config.cell_order)
      layout = geom::cell_order_layout(layout, net.range, config.grid);
  }

  Rng mover_rng(derive_seed(config.seed, 0, 1));
  if (config.model == ChurnConfig::Model::kWaypoint) {
    mobility::WaypointConfig mc;
    mc.width = config.width;
    mc.height = config.height;
    mover_.emplace(std::in_place_type<mobility::WaypointModel>,
                   std::move(layout), mc, mover_rng);
  } else {
    mobility::RandomDirectionConfig mc;
    mc.width = config.width;
    mc.height = config.height;
    mover_.emplace(std::in_place_type<mobility::RandomDirectionModel>,
                   std::move(layout), mc, mover_rng);
  }
  sample_rng_ = Rng(derive_seed(config.seed, 0, 2));

  movers_per_tick_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.move_fraction * static_cast<double>(n))));
  ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) ids_[i] = static_cast<NodeId>(i);
}

const std::vector<geom::Point>& MobilityMix::positions() const {
  return std::visit(
      [](const auto& m) -> const std::vector<geom::Point>& {
        return m.positions();
      },
      *mover_);
}

std::span<const NodeId> MobilityMix::advance(std::size_t movers) {
  const std::size_t n = ids_.size();
  movers = std::min(movers, n);
  for (std::size_t j = 0; j < movers; ++j) {
    const std::size_t k =
        j + static_cast<std::size_t>(sample_rng_.below(n - j));
    std::swap(ids_[j], ids_[k]);
  }
  const std::span<const NodeId> moved(ids_.data(), movers);
  std::visit([&](auto& m) { m.step_nodes(moved, dt_); }, *mover_);
  return moved;
}

}  // namespace manet::exp
