// Churn maintenance experiment: what does it cost to keep the static
// backbone current while the network moves?
//
// The paper's closing argument says maintaining a static backbone at all
// times is costly; PR sequences so far quantified the *churn* (how much
// structure changes per snapshot). This experiment quantifies the
// *compute*: per mobility tick, a small fraction of nodes moves, and we
// time (a) the incremental engine (src/incr) repairing the maintained
// state from the link delta against (b) the batch baseline rebuilding
// the unit-disk graph, repairing the clustering with a full LCC pass and
// rebuilding tables/coverage/selections from scratch. Both paths produce
// bit-identical structures (the engine's oracle mode asserts it), so the
// ratio is a pure algorithmic speedup.
#pragma once

#include <cstdint>
#include <string>

#include "core/neighbor_tables.hpp"
#include "geom/spatial_grid.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::exp {

/// One churn-maintenance configuration.
struct ChurnConfig {
  enum class Model { kWaypoint, kRandomDirection };

  std::size_t nodes = 500;
  double degree = 6.0;          ///< target average degree (paper: 6 / 18)
  std::size_t ticks = 100;      ///< mobility ticks to simulate
  double move_fraction = 0.01;  ///< fraction of nodes moving per tick
  double dt = 1.0;              ///< time units per tick
  Model model = Model::kWaypoint;
  core::CoverageMode mode = core::CoverageMode::kTwoPointFiveHop;
  std::uint64_t seed = 0;
  double width = 100.0;
  double height = 100.0;
  /// Cross-check the engine against the full rebuild every tick (slow;
  /// for tests — the bench keeps it off so timings stay honest).
  bool oracle_check = false;
  /// Also time the batch rebuild baseline each tick. Off lets overhead
  /// measurements isolate the incremental path.
  bool rebuild_baseline = true;
  /// Observability session threaded into the incremental pipeline
  /// (per-phase spans, `incr.*` metrics) and the run loop itself.
  /// nullptr = unobserved. Must outlive run_churn().
  obs::Session* obs = nullptr;
  /// Execution lanes for the engine's sharded repair path
  /// (incr::PipelineOptions::threads). 1 = the sequential engine.
  std::size_t threads = 1;
  /// Tick pipelining (incr::PipelineOptions::pipeline_depth): 2 =
  /// overlap each tick's repair with the next tick's ingest + commit.
  /// Incompatible with oracle_check; the final state and hash are
  /// identical to depth 1.
  std::size_t pipeline_depth = 1;
  /// Run the rebuild baseline every k-th tick (1 = every tick). The
  /// 10k–100k scaling rows keep this coarse so the O(n) rebuild doesn't
  /// dominate wall-clock; reported means stay per-executed-tick.
  std::size_t rebuild_every = 1;
  /// Attempts at a connected initial topology before settling for a
  /// disconnected one (the paper's filter). Large sparse configs are
  /// essentially never connected — pass 1 to skip the wasted retries.
  std::size_t connect_attempts = 100;
  /// Fail the run (std::invalid_argument naming the exhausted budget)
  /// instead of silently continuing on a disconnected layout when every
  /// connect attempt is rejected.
  bool require_connected = false;
  /// Cell storage for the engine's grids (incr::PipelineOptions::grid):
  /// kSparse exercises the O(n) interned index regardless of lattice
  /// size. State hashes are identical in every mode.
  geom::GridIndex grid = geom::GridIndex::kAuto;
  /// Build the initial topology CSR with the streaming counting sweep
  /// (incr::PipelineOptions::streaming_build) — same graph, lower
  /// cold-build peak RSS.
  bool streaming_build = false;
  /// Relabel the initial layout into spatial-grid slot order
  /// (geom::cell_order_layout) before simulating: node ids become
  /// cell-major, which keeps the engine's sweeps cache-friendly at large
  /// n. Changes node labels (a different but equally distributed run),
  /// so head-to-head hash comparisons must use it on both sides.
  bool cell_order = false;
  /// Generate the initial placement cell-by-cell
  /// (geom::generate_unit_disk_cell_order) and check connectivity with
  /// a union-find sweep instead of building a throwaway graph per
  /// rejection-sampling attempt: the cold start's working memory is
  /// O(occupied cells) beyond the positions themselves. The layout
  /// comes out cell-major already, so this subsumes `cell_order`
  /// (a different but equally distributed run than the non-streaming
  /// path — hash comparisons must use it on both sides).
  bool streaming_placement = false;
};

/// Aggregated outcome of one churn run.
struct ChurnResult {
  std::size_t ticks = 0;
  double incremental_ms_per_tick = 0.0;  ///< delta-driven engine
  /// End-to-end wall clock of the incremental side (per-tick loop cost
  /// plus the final drain), per tick. Equals incremental_ms_per_tick
  /// for synchronous runs; under pipelining it is the honest multi-core
  /// number — repair time hidden behind ingest does not show up here.
  double wall_ms_per_tick = 0.0;
  double rebuild_ms_per_tick = 0.0;      ///< graph + LCC + backbone rebuild
  double speedup = 0.0;                  ///< rebuild / incremental
  // Mean per-tick churn (MaintenanceDelta definitions).
  double mean_link_changes = 0.0;
  double mean_head_changes = 0.0;
  double mean_role_changes = 0.0;
  double mean_backbone_changes = 0.0;
  double mean_coverage_changes = 0.0;
  // Mean per-tick dirty-region size (engine work actually done).
  double mean_rows_recomputed = 0.0;
  double mean_heads_reselected = 0.0;
  double mean_regions = 0.0;  ///< independent repair regions per tick
  /// FNV-1a digest of the final maintained state (clustering, tables,
  /// coverage, selections, CDS). Runs differing only in `threads` must
  /// produce the same digest — the determinism soaks compare it.
  std::uint64_t state_hash = 0;
  /// Process peak RSS in bytes after the run (0 where unsupported).
  /// Monotone per process: run ascending sizes to read per-size peaks.
  std::size_t peak_rss_bytes = 0;
  /// Whether the initial topology was connected, and how many layouts
  /// the rejection sampler generated to get it (== connect_attempts on
  /// exhaustion).
  bool connected = false;
  std::size_t connect_attempts_used = 0;
};

/// Human-readable tag ("waypoint" / "direction") for reports.
std::string model_name(ChurnConfig::Model model);

/// Runs one churn-maintenance simulation. Deterministic in config.seed.
ChurnResult run_churn(const ChurnConfig& config);

}  // namespace manet::exp
