#include "exp/report.hpp"

#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace manet::exp {
namespace {

std::string fmt(const Measurement& m) {
  std::ostringstream os;
  os << TextTable::num(m.mean, 2) << " ±" << TextTable::num(m.ci_halfwidth, 2);
  return os.str();
}

std::set<double> degrees_of(const auto& rows) {
  std::set<double> ds;
  for (const auto& r : rows) ds.insert(r.degree);
  return ds;
}

}  // namespace

std::string render_fig6(const std::vector<Fig6Row>& rows) {
  std::ostringstream os;
  for (double d : degrees_of(rows)) {
    os << "Figure 6 — average CDS size (d = " << d << ")\n";
    TextTable t({"n", "static 2.5-hop", "static 3-hop", "MO_CDS", "reps"});
    for (const auto& r : rows) {
      if (r.degree != d) continue;
      t.row({std::to_string(r.nodes), fmt(r.static_25), fmt(r.static_3),
             fmt(r.mo_cds),
             std::to_string(r.replications) + (r.converged ? "" : "*")});
    }
    os << t.render() << '\n';
  }
  return os.str();
}

std::string render_fig7(const std::vector<Fig7Row>& rows) {
  std::ostringstream os;
  for (double d : degrees_of(rows)) {
    os << "Figure 7 — average forward-node-set size (d = " << d << ")\n";
    TextTable t({"n", "dynamic 2.5-hop", "dynamic 3-hop", "MO_CDS", "reps"});
    for (const auto& r : rows) {
      if (r.degree != d) continue;
      t.row({std::to_string(r.nodes), fmt(r.dynamic_25), fmt(r.dynamic_3),
             fmt(r.mo_cds_broadcast),
             std::to_string(r.replications) + (r.converged ? "" : "*")});
    }
    os << t.render() << '\n';
  }
  return os.str();
}

std::string render_fig8(const std::vector<Fig8Row>& rows) {
  std::ostringstream os;
  for (double d : degrees_of(rows)) {
    os << "Figure 8 — static vs dynamic forward-node sets (d = " << d
       << ")\n";
    TextTable t({"n", "static 2.5-hop", "static 3-hop", "dynamic 2.5-hop",
                 "dynamic 3-hop", "reps"});
    for (const auto& r : rows) {
      if (r.degree != d) continue;
      t.row({std::to_string(r.nodes), fmt(r.static_25), fmt(r.static_3),
             fmt(r.dynamic_25), fmt(r.dynamic_3),
             std::to_string(r.replications) + (r.converged ? "" : "*")});
    }
    os << t.render() << '\n';
  }
  return os.str();
}

void write_fig6_csv(const std::vector<Fig6Row>& rows,
                    const std::string& path) {
  CsvWriter csv(path, {"nodes", "degree", "static25_mean", "static25_ci",
                       "static3_mean", "static3_ci", "mocds_mean",
                       "mocds_ci", "replications", "converged"});
  for (const auto& r : rows)
    csv.row({static_cast<long long>(r.nodes), r.degree, r.static_25.mean,
             r.static_25.ci_halfwidth, r.static_3.mean,
             r.static_3.ci_halfwidth, r.mo_cds.mean, r.mo_cds.ci_halfwidth,
             static_cast<long long>(r.replications),
             static_cast<long long>(r.converged)});
}

void write_fig7_csv(const std::vector<Fig7Row>& rows,
                    const std::string& path) {
  CsvWriter csv(path, {"nodes", "degree", "dynamic25_mean", "dynamic25_ci",
                       "dynamic3_mean", "dynamic3_ci", "mocds_mean",
                       "mocds_ci", "replications", "converged"});
  for (const auto& r : rows)
    csv.row({static_cast<long long>(r.nodes), r.degree, r.dynamic_25.mean,
             r.dynamic_25.ci_halfwidth, r.dynamic_3.mean,
             r.dynamic_3.ci_halfwidth, r.mo_cds_broadcast.mean,
             r.mo_cds_broadcast.ci_halfwidth,
             static_cast<long long>(r.replications),
             static_cast<long long>(r.converged)});
}

void write_fig8_csv(const std::vector<Fig8Row>& rows,
                    const std::string& path) {
  CsvWriter csv(path,
                {"nodes", "degree", "static25_mean", "static25_ci",
                 "static3_mean", "static3_ci", "dynamic25_mean",
                 "dynamic25_ci", "dynamic3_mean", "dynamic3_ci",
                 "replications", "converged"});
  for (const auto& r : rows)
    csv.row({static_cast<long long>(r.nodes), r.degree, r.static_25.mean,
             r.static_25.ci_halfwidth, r.static_3.mean,
             r.static_3.ci_halfwidth, r.dynamic_25.mean,
             r.dynamic_25.ci_halfwidth, r.dynamic_3.mean,
             r.dynamic_3.ci_halfwidth,
             static_cast<long long>(r.replications),
             static_cast<long long>(r.converged)});
}

}  // namespace manet::exp
