// The paper's simulation environment (§4):
//   * 100 x 100 confined working space, uniform random placement;
//   * identical transmission ranges, bidirectional links;
//   * fixed average node degree d ∈ {6, 18} (common / highly dense);
//   * n ranging 20..100; disconnected topologies discarded;
//   * replications until the 99% CI is within ±5%.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geom/unit_disk.hpp"
#include "stats/replicator.hpp"

namespace manet::exp {

/// One x-axis point of a paper figure.
struct ScenarioPoint {
  std::size_t nodes;
  double degree;
};

/// The full grid of the paper's evaluation.
struct PaperScenario {
  std::vector<std::size_t> sizes{20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::vector<double> degrees{6.0, 18.0};
  double width = 100.0;
  double height = 100.0;

  std::vector<ScenarioPoint> points() const;
};

/// Generates the topology of one replication, deterministically from
/// (base_seed, replication, point). Throws std::runtime_error if a
/// connected topology cannot be found (pathological configuration).
geom::UnitDiskNetwork make_network(const PaperScenario& scenario,
                                   const ScenarioPoint& point,
                                   std::uint64_t base_seed,
                                   std::size_t replication);

/// Replication policy used by the benches: the paper's stopping rule with
/// a cap that keeps a full figure regeneration in the minutes range.
/// `threads` > 1 evaluates replications on a worker pool (deterministic:
/// results are bitwise identical to threads = 1; see stats::replicate).
/// threads = 0 resolves to the hardware concurrency.
stats::ReplicationPolicy bench_policy(std::size_t threads = 1);

}  // namespace manet::exp
