// The shared mobility front-end of the churn experiments: a connected
// unit-disk layout, a mobility model, and per-tick mover sampling, all
// on fixed rng streams derived from ChurnConfig::seed. Every consumer
// constructed from the same config replays a bit-identical move
// sequence — which is what lets run_msg_churn drive the message-driven
// maintenance engine (src/proto) and the snapshot-driven incremental
// pipeline (src/incr) over the *same* trajectory and demand state-hash
// equality after every tick.
#pragma once

#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "exp/churn.hpp"
#include "geom/point.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/waypoint.hpp"

namespace manet::exp {

class MobilityMix {
 public:
  /// Generates the layout (rejection-sampling for connectivity, with the
  /// config's attempt budget and require_connected policy) and seats the
  /// mobility model. Throws like run_churn on an exhausted budget.
  explicit MobilityMix(const ChurnConfig& config);

  /// Current node positions (updated in place by advance()).
  const std::vector<geom::Point>& positions() const;
  /// Unit-disk communication range of the layout.
  double range() const { return range_; }
  bool connected() const { return connected_; }
  std::size_t connect_attempts_used() const { return attempts_used_; }
  /// Default movers per tick (ceil-ish of move_fraction * n, min 1).
  std::size_t movers_per_tick() const { return movers_per_tick_; }

  /// Samples `movers` distinct nodes (partial Fisher–Yates over all
  /// ids — the same stream run_churn consumes) and steps them dt
  /// forward. The returned span is valid until the next advance().
  std::span<const NodeId> advance(std::size_t movers);
  std::span<const NodeId> advance() { return advance(movers_per_tick_); }

 private:
  using Mover =
      std::variant<mobility::WaypointModel, mobility::RandomDirectionModel>;

  double dt_;
  double range_ = 0.0;
  bool connected_ = false;
  std::size_t attempts_used_ = 0;
  std::size_t movers_per_tick_ = 0;
  std::optional<Mover> mover_;  ///< engaged by the ctor (deferred init)
  Rng sample_rng_;
  std::vector<NodeId> ids_;
};

}  // namespace manet::exp
