// Rendering helpers shared by the bench binaries: paper-style console
// tables plus CSV mirrors of every figure series.
#pragma once

#include <string>
#include <vector>

#include "exp/figures.hpp"

namespace manet::exp {

/// Renders the Figure 6 series, one table per degree.
std::string render_fig6(const std::vector<Fig6Row>& rows);

/// Renders the Figure 7 series.
std::string render_fig7(const std::vector<Fig7Row>& rows);

/// Renders the Figure 8 series.
std::string render_fig8(const std::vector<Fig8Row>& rows);

/// Writes each figure's rows to `path` as CSV.
void write_fig6_csv(const std::vector<Fig6Row>& rows,
                    const std::string& path);
void write_fig7_csv(const std::vector<Fig7Row>& rows,
                    const std::string& path);
void write_fig8_csv(const std::vector<Fig8Row>& rows,
                    const std::string& path);

}  // namespace manet::exp
