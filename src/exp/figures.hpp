// Figure runners: one function per figure of the paper's §4, each
// returning the rows the paper plots. The bench binaries print these and
// mirror them to CSV; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/scenario.hpp"
#include "stats/replicator.hpp"

namespace manet::exp {

/// A measured series value: mean with its achieved CI half-width.
struct Measurement {
  double mean = 0.0;
  double ci_halfwidth = 0.0;  ///< at the policy's confidence level
};

/// Figure 6 — average CDS size of the static backbone (both coverage
/// modes) vs MO_CDS, as a function of n, per degree.
struct Fig6Row {
  std::size_t nodes;
  double degree;
  Measurement static_25;  ///< static backbone, 2.5-hop coverage
  Measurement static_3;   ///< static backbone, 3-hop coverage
  Measurement mo_cds;     ///< MO_CDS baseline
  std::size_t replications;
  bool converged;
};

std::vector<Fig6Row> run_fig6(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed);

/// Figure 7 — average forward-node-set size per broadcast: dynamic
/// backbone (both modes) vs broadcasting over the MO_CDS. One uniformly
/// random source per replication.
struct Fig7Row {
  std::size_t nodes;
  double degree;
  Measurement dynamic_25;
  Measurement dynamic_3;
  Measurement mo_cds_broadcast;
  std::size_t replications;
  bool converged;
};

std::vector<Fig7Row> run_fig7(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed);

/// Figure 8 — forward-node sets of the static vs dynamic backbones.
struct Fig8Row {
  std::size_t nodes;
  double degree;
  Measurement static_25;
  Measurement static_3;
  Measurement dynamic_25;
  Measurement dynamic_3;
  std::size_t replications;
  bool converged;
};

std::vector<Fig8Row> run_fig8(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed);

}  // namespace manet::exp
