#include "exp/msg_churn.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/rss.hpp"
#include "core/state_hash.hpp"
#include "exp/mobility_mix.hpp"
#include "incr/pipeline.hpp"
#include "proto/engine.hpp"

namespace manet::exp {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t hash_backbone(const incr::IncrementalBackbone& b) {
  return core::backbone_state_hash(b.clustering(), b.tables(), b.coverage(),
                                   b.selection(), b.gateways(), b.cds());
}

}  // namespace

MsgChurnResult run_msg_churn(const MsgChurnConfig& config) {
  const ChurnConfig& base = config.base;
  MANET_REQUIRE(base.ticks > 0, "msg churn run needs at least one tick");
  MANET_REQUIRE(config.burst_fraction >= 0.0 && config.burst_fraction <= 1.0,
                "burst fraction must be in [0, 1]");

  MobilityMix mix(base);
  const std::size_t n = base.nodes;

  proto::EngineOptions eopts;
  eopts.mode = base.mode;
  eopts.oracle_check = config.oracle_check;
  eopts.grid = base.grid;
  eopts.streaming_build = base.streaming_build;
  eopts.obs = base.obs;
  eopts.max_rounds_per_tick = config.max_rounds_per_tick;
  eopts.threads = config.engine_threads;
  eopts.inject_stale_gateway_fault = config.inject_stale_gateway_fault;
  proto::MaintenanceEngine engine(mix.positions(), mix.range(), base.width,
                                  base.height, eopts);

  // The lockstep witness: a snapshot-driven engine over the same moves.
  std::optional<incr::IncrementalPipeline> witness;
  if (config.crosscheck) {
    incr::PipelineOptions popts;
    popts.mode = base.mode;
    popts.grid = base.grid;
    popts.streaming_build = base.streaming_build;
    popts.threads = base.threads;
    witness.emplace(mix.positions(), mix.range(), base.width, base.height,
                    popts);
    MANET_ASSERT(engine.state_hash() == hash_backbone(witness->backbone()),
                 "maintenance and incremental engines disagree at tick 0");
  }

  const std::size_t burst_tick =
      config.burst_fraction > 0.0 ? base.ticks / 2 : base.ticks;
  const std::size_t burst_movers = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.burst_fraction * static_cast<double>(n))));

  MsgChurnResult result;
  result.ticks = base.ticks;
  result.nodes = n;
  net::MessageCounts msgs;  // summed per-tick deltas
  std::size_t deliveries = 0;
  std::size_t rounds_sum = 0;
  double wall_ms = 0.0;
  double deliver_ms = 0.0, node_step_ms = 0.0, mirror_ms = 0.0;

  for (std::size_t tick = 0; tick < base.ticks; ++tick) {
    const bool is_burst = tick == burst_tick;
    const std::span<const NodeId> moved = mix.advance(
        is_burst ? std::max(burst_movers, mix.movers_per_tick())
                 : mix.movers_per_tick());
    const std::vector<geom::Point>& positions = mix.positions();

    for (const NodeId v : moved) engine.stage_move(v, positions[v]);
    if (witness)
      for (const NodeId v : moved) witness->stage_move(v, positions[v]);

    const auto tick_start = Clock::now();
    const proto::MaintTickStats stats = engine.tick();
    wall_ms += ms_since(tick_start);

    if (witness) {
      witness->tick();
      const std::uint64_t expect = hash_backbone(witness->backbone());
      const std::uint64_t got = engine.state_hash();
      if (got != expect)
        throw std::logic_error(
            "maintenance protocol state hash diverged from the incremental "
            "engine at tick " +
            std::to_string(tick + 1) + ": protocol " + std::to_string(got) +
            " vs incremental " + std::to_string(expect));
    }

    rounds_sum += stats.rounds;
    deliver_ms += stats.deliver_ms;
    node_step_ms += stats.node_step_ms;
    mirror_ms += stats.mirror_ms;
    result.max_rounds = std::max(result.max_rounds, stats.rounds);
    if (is_burst) result.burst_rounds = stats.rounds;
    msgs.maint_hello += stats.messages.maint_hello;
    msgs.r1_status += stats.messages.r1_status;
    msgs.r2_status += stats.messages.r2_status;
    msgs.ch_hop1 += stats.messages.ch_hop1;
    msgs.ch_hop2 += stats.messages.ch_hop2;
    msgs.gateway += stats.messages.gateway;
    deliveries += stats.delivery.deliveries;
    result.mean_link_changes += static_cast<double>(stats.link_changes);
    result.mean_head_changes += static_cast<double>(stats.head_changes);
    result.mean_role_changes += static_cast<double>(stats.role_changes);
    result.mean_rows_changed += static_cast<double>(stats.rows_changed);
    result.mean_heads_refreshed +=
        static_cast<double>(stats.heads_refreshed);
  }

  const double ticks = static_cast<double>(base.ticks);
  const double node_ticks = ticks * static_cast<double>(n);
  result.mean_rounds = static_cast<double>(rounds_sum) / ticks;
  result.hello_rate = static_cast<double>(msgs.maint_hello) / node_ticks;
  result.repair_rate =
      static_cast<double>(msgs.r1_status + msgs.r2_status) / node_ticks;
  result.rows_rate =
      static_cast<double>(msgs.ch_hop1 + msgs.ch_hop2) / node_ticks;
  result.gateway_rate = static_cast<double>(msgs.gateway) / node_ticks;
  result.total_rate =
      static_cast<double>(msgs.maintenance_total()) / node_ticks;
  result.deliveries_rate = static_cast<double>(deliveries) / node_ticks;
  result.mean_link_changes /= ticks;
  result.mean_head_changes /= ticks;
  result.mean_role_changes /= ticks;
  result.mean_rows_changed /= ticks;
  result.mean_heads_refreshed /= ticks;
  result.wall_ms_per_tick = wall_ms / ticks;
  result.deliver_ms_per_tick = deliver_ms / ticks;
  result.node_step_ms_per_tick = node_step_ms / ticks;
  result.mirror_ms_per_tick = mirror_ms / ticks;
  result.state_hash = engine.state_hash();
  result.peak_rss_bytes = peak_rss_bytes();
  result.connected = mix.connected();
  result.connect_attempts_used = mix.connect_attempts_used();
  return result;
}

}  // namespace manet::exp
