#include "exp/ablations.hpp"

#include "cluster/lowest_id.hpp"
#include "common/assert.hpp"
#include "core/dynamic_broadcast.hpp"
#include "net/protocol.hpp"
#include "stats/running.hpp"

namespace manet::exp {

std::vector<PruningAblationRow> run_pruning_ablation(
    const std::vector<std::size_t>& sizes,
    const std::vector<double>& degrees, std::size_t replications,
    std::uint64_t seed) {
  MANET_REQUIRE(replications > 0, "need at least one replication");
  const PaperScenario scenario;
  const core::DynamicBroadcastOptions variants[4] = {
      {false, false}, {true, false}, {false, true}, {true, true}};

  std::vector<PruningAblationRow> rows;
  for (double d : degrees) {
    for (std::size_t n : sizes) {
      stats::RunningStats fwd[4];
      bool all_delivered = true;
      for (std::size_t rep = 0; rep < replications; ++rep) {
        const auto net = make_network(scenario, {n, d}, seed, rep);
        const auto bb = core::build_dynamic_backbone(
            net.graph, core::CoverageMode::kTwoPointFiveHop);
        Rng pick(derive_seed(seed, rep, 98));
        const auto source =
            static_cast<NodeId>(pick.index(net.graph.order()));
        for (int i = 0; i < 4; ++i) {
          const auto r =
              core::dynamic_broadcast(net.graph, bb, source, variants[i]);
          all_delivered = all_delivered && r.delivered_all;
          fwd[i].add(static_cast<double>(r.forward_count()));
        }
      }
      rows.push_back({n, d, fwd[0].mean(), fwd[1].mean(), fwd[2].mean(),
                      fwd[3].mean(), all_delivered});
    }
  }
  return rows;
}

std::vector<MsgComplexityRow> run_msg_complexity(
    const std::vector<std::size_t>& sizes,
    const std::vector<double>& degrees, std::size_t replications,
    std::uint64_t seed) {
  MANET_REQUIRE(replications > 0, "need at least one replication");
  const PaperScenario scenario;
  std::vector<MsgComplexityRow> rows;
  for (double d : degrees) {
    for (std::size_t n : sizes) {
      stats::RunningStats hello, roles, hop1, hop2, gateway, total, rounds,
          data, deliveries, resets;
      for (std::size_t rep = 0; rep < replications; ++rep) {
        const auto net = make_network(scenario, {n, d}, seed, rep);
        const auto run = net::run_distributed_backbone(
            net.graph, core::CoverageMode::kTwoPointFiveHop);
        hello.add(static_cast<double>(run.counts.hello));
        roles.add(static_cast<double>(run.counts.cluster_head +
                                      run.counts.non_cluster_head));
        hop1.add(static_cast<double>(run.counts.ch_hop1));
        hop2.add(static_cast<double>(run.counts.ch_hop2));
        gateway.add(static_cast<double>(run.counts.gateway));
        total.add(static_cast<double>(run.counts.total()));
        rounds.add(static_cast<double>(run.rounds));
        deliveries.add(static_cast<double>(run.delivery.deliveries));
        resets.add(static_cast<double>(run.delivery.inbox_resets));
        const auto bcast = net::run_distributed_broadcast(
            net.graph, core::CoverageMode::kTwoPointFiveHop, 0);
        data.add(static_cast<double>(bcast.data_messages));
      }
      rows.push_back({n, d, hello.mean(), roles.mean(), hop1.mean(),
                      hop2.mean(), gateway.mean(), total.mean(),
                      total.mean() / static_cast<double>(n), rounds.mean(),
                      data.mean(), deliveries.mean(), resets.mean()});
    }
  }
  return rows;
}

}  // namespace manet::exp
