#include "exp/churn.hpp"

#include <chrono>
#include <span>
#include <utility>
#include <vector>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "common/rss.hpp"
#include "core/state_hash.hpp"
#include "core/static_backbone.hpp"
#include "exp/mobility_mix.hpp"
#include "geom/unit_disk.hpp"
#include "incr/pipeline.hpp"
#include "obs/session.hpp"

namespace manet::exp {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Hashes the maintained state through the backbone's accessors — field
// for field the same digest as hashing a materialize() copy, without the
// full O(n) duplication of tables and coverage (which would double peak
// RSS right at the end of a memory-audited run). The fold itself lives
// in core/state_hash.hpp so the message-driven engine (src/proto) lands
// on the bitwise-identical digest.
std::uint64_t hash_backbone(const incr::IncrementalBackbone& b) {
  return core::backbone_state_hash(b.clustering(), b.tables(), b.coverage(),
                                   b.selection(), b.gateways(), b.cds());
}

}  // namespace

std::string model_name(ChurnConfig::Model model) {
  return model == ChurnConfig::Model::kWaypoint ? "waypoint" : "direction";
}

ChurnResult run_churn(const ChurnConfig& config) {
  MANET_REQUIRE(config.ticks > 0, "churn run needs at least one tick");
  MANET_REQUIRE(config.rebuild_every > 0, "rebuild stride must be >= 1");

  // Layout + mobility model + mover sampling, on the fixed per-seed rng
  // streams shared with run_msg_churn (identical trajectories).
  MobilityMix mix(config);

  incr::PipelineOptions options;
  options.mode = config.mode;
  options.oracle_check = config.oracle_check;
  options.obs = config.obs;
  options.threads = config.threads;
  options.pipeline_depth = config.pipeline_depth;
  options.grid = config.grid;
  options.streaming_build = config.streaming_build;
  incr::IncrementalPipeline pipeline(mix.positions(), mix.range(),
                                     config.width, config.height, options);
  obs::TraceRecorder* tr = config.obs ? &config.obs->trace : nullptr;

  // Rebuild baseline state: the previous tick's clustering, repaired by a
  // full LCC pass each tick (what a snapshot-based deployment would run).
  cluster::Clustering rebuild_previous = pipeline.clustering();

  ChurnResult result;
  result.ticks = config.ticks;
  double incr_ms = 0.0;
  double rebuild_ms = 0.0;
  std::size_t rebuild_ticks = 0;

  for (std::size_t tick = 0; tick < config.ticks; ++tick) {
    const std::span<const NodeId> moved = mix.advance();
    const std::vector<geom::Point>& positions = mix.positions();

    // Incremental path: stage the moved nodes, repair from the delta.
    const auto incr_start = Clock::now();
    for (const NodeId v : moved) pipeline.stage_move(v, positions[v]);
    const incr::TickStats stats = pipeline.tick();
    incr_ms += ms_since(incr_start);

    // Rebuild baseline: from-scratch graph, full LCC pass, full backbone.
    // With a stride > 1 the skipped ticks leave `rebuild_previous` stale,
    // so the baseline repairs a k-tick-old clustering — still the honest
    // "snapshot deployment" cost, but no longer comparable to the
    // engine's CDS, hence the equality check is stride-1 only.
    if (config.rebuild_baseline && tick % config.rebuild_every == 0) {
      obs::Span span(tr, "churn", "rebuild_baseline",
                     static_cast<std::uint64_t>(tick + 1), "links");
      const auto rebuild_start = Clock::now();
      const graph::Graph g = geom::unit_disk_graph(positions, mix.range());
      cluster::Clustering repaired =
          cluster::lcc_update(g, rebuild_previous);
      const core::StaticBackbone full =
          core::build_static_backbone(g, repaired, config.mode);
      rebuild_ms += ms_since(rebuild_start);
      ++rebuild_ticks;
      span.set_arg(g.edges().size());
      // Pipelined runs lag: the maintained CDS is one in-flight tick
      // behind the positions the baseline just rebuilt from.
      if (config.rebuild_every == 1 && config.pipeline_depth <= 1) {
        MANET_ASSERT(full.cds.size() == pipeline.backbone().cds().size(),
                     "incremental and rebuilt CDS diverged");
      }
      rebuild_previous = std::move(repaired);
    }

    result.mean_link_changes += static_cast<double>(stats.link_changes);
    result.mean_head_changes += static_cast<double>(stats.head_changes);
    result.mean_role_changes += static_cast<double>(stats.role_changes);
    result.mean_backbone_changes +=
        static_cast<double>(stats.backbone_changes);
    result.mean_coverage_changes +=
        static_cast<double>(stats.coverage_changes);
    result.mean_rows_recomputed +=
        static_cast<double>(stats.rows_recomputed);
    result.mean_heads_reselected +=
        static_cast<double>(stats.heads_reselected);
    result.mean_regions += static_cast<double>(stats.regions);
  }

  // Join the in-flight repair (pipelined mode); its tick's stats are
  // the one installment the loop hasn't accumulated yet. The drain time
  // belongs to the wall clock of the incremental side.
  const auto drain_start = Clock::now();
  const incr::TickStats last = pipeline.drain();
  const double wall_ms = incr_ms + ms_since(drain_start);
  result.mean_link_changes += static_cast<double>(last.link_changes);
  result.mean_head_changes += static_cast<double>(last.head_changes);
  result.mean_role_changes += static_cast<double>(last.role_changes);
  result.mean_backbone_changes += static_cast<double>(last.backbone_changes);
  result.mean_coverage_changes += static_cast<double>(last.coverage_changes);
  result.mean_rows_recomputed += static_cast<double>(last.rows_recomputed);
  result.mean_heads_reselected += static_cast<double>(last.heads_reselected);
  result.mean_regions += static_cast<double>(last.regions);

  const double ticks = static_cast<double>(config.ticks);
  result.incremental_ms_per_tick = incr_ms / ticks;
  result.wall_ms_per_tick = wall_ms / ticks;
  result.rebuild_ms_per_tick =
      rebuild_ticks > 0 ? rebuild_ms / static_cast<double>(rebuild_ticks)
                        : 0.0;
  result.speedup =
      result.incremental_ms_per_tick > 0.0
          ? result.rebuild_ms_per_tick / result.incremental_ms_per_tick
          : 0.0;  // degenerate only for sub-microsecond runs
  result.mean_link_changes /= ticks;
  result.mean_head_changes /= ticks;
  result.mean_role_changes /= ticks;
  result.mean_backbone_changes /= ticks;
  result.mean_coverage_changes /= ticks;
  result.mean_rows_recomputed /= ticks;
  result.mean_heads_reselected /= ticks;
  result.mean_regions /= ticks;
  result.state_hash = hash_backbone(pipeline.backbone());
  result.peak_rss_bytes = peak_rss_bytes();
  result.connected = mix.connected();
  result.connect_attempts_used = mix.connect_attempts_used();
  return result;
}

}  // namespace manet::exp
