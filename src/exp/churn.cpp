#include "exp/churn.hpp"

#include <chrono>
#include <cmath>
#include <span>
#include <utility>
#include <variant>
#include <vector>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/rss.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "incr/pipeline.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/waypoint.hpp"
#include "obs/session.hpp"

namespace manet::exp {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Either mobility model behind the two operations the runner needs.
using Mover =
    std::variant<mobility::WaypointModel, mobility::RandomDirectionModel>;

Mover make_mover(const ChurnConfig& config, std::vector<geom::Point> initial,
                 Rng rng) {
  if (config.model == ChurnConfig::Model::kWaypoint) {
    mobility::WaypointConfig mc;
    mc.width = config.width;
    mc.height = config.height;
    return Mover{std::in_place_type<mobility::WaypointModel>,
                 std::move(initial), mc, rng};
  }
  mobility::RandomDirectionConfig mc;
  mc.width = config.width;
  mc.height = config.height;
  return Mover{std::in_place_type<mobility::RandomDirectionModel>,
               std::move(initial), mc, rng};
}

// FNV-1a folded over 64-bit words; every container is length-prefixed
// so distinct shapes can't collide by concatenation.
std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_nodes(std::uint64_t h, const NodeSet& nodes) {
  h = fnv1a(h, nodes.size());
  for (const NodeId v : nodes) h = fnv1a(h, v);
  return h;
}

// Hashes the maintained state through the backbone's accessors — field
// for field the same digest as hashing a materialize() copy, without the
// full O(n) duplication of tables and coverage (which would double peak
// RSS right at the end of a memory-audited run).
std::uint64_t hash_backbone(const incr::IncrementalBackbone& b) {
  std::uint64_t h = 14695981039346656037ULL;
  h = hash_nodes(h, b.clustering().heads);
  h = fnv1a(h, b.clustering().head_of.size());
  for (const NodeId v : b.clustering().head_of) h = fnv1a(h, v);
  for (const auto role : b.clustering().roles)
    h = fnv1a(h, static_cast<std::uint64_t>(role));
  for (const NodeSet& row : b.tables().ch_hop1) h = hash_nodes(h, row);
  for (const auto& row : b.tables().ch_hop2) {
    h = fnv1a(h, row.size());
    for (const auto& e : row) h = fnv1a(h, (std::uint64_t{e.head} << 32) | e.via);
  }
  for (const auto& cov : b.coverage()) {
    h = hash_nodes(h, cov.two_hop);
    h = hash_nodes(h, cov.three_hop);
  }
  for (const auto& sel : b.selection()) h = hash_nodes(h, sel.gateways);
  h = hash_nodes(h, b.gateways());
  h = hash_nodes(h, b.cds());
  return h;
}

}  // namespace

std::string model_name(ChurnConfig::Model model) {
  return model == ChurnConfig::Model::kWaypoint ? "waypoint" : "direction";
}

ChurnResult run_churn(const ChurnConfig& config) {
  MANET_REQUIRE(config.nodes >= 2, "churn run needs at least two nodes");
  MANET_REQUIRE(config.ticks > 0, "churn run needs at least one tick");
  MANET_REQUIRE(config.move_fraction > 0.0 && config.move_fraction <= 1.0,
                "move fraction must be in (0, 1]");
  MANET_REQUIRE(config.rebuild_every > 0, "rebuild stride must be >= 1");

  const std::size_t n = config.nodes;
  geom::UnitDiskConfig net;
  net.width = config.width;
  net.height = config.height;
  net.nodes = n;
  net.range =
      geom::range_for_average_degree(config.degree, n, config.width,
                                     config.height);
  Rng topo_rng(derive_seed(config.seed, 0, 0));
  // Prefer a connected start (the paper's filter), but don't insist
  // unless asked: at the bench's large sparse settings (n=2000, d=6)
  // full connectivity is vanishingly rare, and the engine maintains
  // disconnected topologies just as well (clusters and coverage are
  // per-component anyway). The result reports what happened either way.
  const std::size_t attempt_budget =
      std::max<std::size_t>(1, config.connect_attempts);
  std::size_t attempts_used = 0;
  auto network = geom::generate_connected_unit_disk(net, topo_rng,
                                                    attempt_budget,
                                                    &attempts_used);
  const bool connected = network.has_value();
  if (!network) {
    MANET_REQUIRE(!config.require_connected,
                  "churn: no connected topology in " +
                      std::to_string(attempt_budget) + " attempts (n=" +
                      std::to_string(n) + ", degree=" +
                      std::to_string(config.degree) +
                      ") — raise connect_attempts, raise the degree, or "
                      "drop require_connected");
    network = geom::generate_unit_disk(net, topo_rng);
  }
  if (config.cell_order)
    network->positions =
        geom::cell_order_layout(network->positions, net.range, config.grid);

  Mover mover = make_mover(config, network->positions,
                           Rng(derive_seed(config.seed, 0, 1)));
  Rng sample_rng(derive_seed(config.seed, 0, 2));

  incr::PipelineOptions options;
  options.mode = config.mode;
  options.oracle_check = config.oracle_check;
  options.obs = config.obs;
  options.threads = config.threads;
  options.pipeline_depth = config.pipeline_depth;
  options.grid = config.grid;
  options.streaming_build = config.streaming_build;
  incr::IncrementalPipeline pipeline(network->positions, net.range,
                                     config.width, config.height, options);
  obs::TraceRecorder* tr = config.obs ? &config.obs->trace : nullptr;

  // Rebuild baseline state: the previous tick's clustering, repaired by a
  // full LCC pass each tick (what a snapshot-based deployment would run).
  cluster::Clustering rebuild_previous = pipeline.clustering();

  const std::size_t movers_per_tick = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(config.move_fraction * static_cast<double>(n))));
  std::vector<NodeId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<NodeId>(i);

  ChurnResult result;
  result.ticks = config.ticks;
  double incr_ms = 0.0;
  double rebuild_ms = 0.0;
  std::size_t rebuild_ticks = 0;

  for (std::size_t tick = 0; tick < config.ticks; ++tick) {
    // Sample `movers_per_tick` distinct nodes (partial Fisher–Yates).
    for (std::size_t j = 0; j < movers_per_tick; ++j) {
      const std::size_t k =
          j + static_cast<std::size_t>(sample_rng.below(n - j));
      std::swap(ids[j], ids[k]);
    }
    const std::span<const NodeId> moved(ids.data(), movers_per_tick);
    const std::vector<geom::Point>& positions = std::visit(
        [&](auto& m) -> const std::vector<geom::Point>& {
          m.step_nodes(moved, config.dt);
          return m.positions();
        },
        mover);

    // Incremental path: stage the moved nodes, repair from the delta.
    const auto incr_start = Clock::now();
    for (const NodeId v : moved) pipeline.stage_move(v, positions[v]);
    const incr::TickStats stats = pipeline.tick();
    incr_ms += ms_since(incr_start);

    // Rebuild baseline: from-scratch graph, full LCC pass, full backbone.
    // With a stride > 1 the skipped ticks leave `rebuild_previous` stale,
    // so the baseline repairs a k-tick-old clustering — still the honest
    // "snapshot deployment" cost, but no longer comparable to the
    // engine's CDS, hence the equality check is stride-1 only.
    if (config.rebuild_baseline && tick % config.rebuild_every == 0) {
      obs::Span span(tr, "churn", "rebuild_baseline",
                     static_cast<std::uint64_t>(tick + 1), "links");
      const auto rebuild_start = Clock::now();
      const graph::Graph g = geom::unit_disk_graph(positions, net.range);
      cluster::Clustering repaired =
          cluster::lcc_update(g, rebuild_previous);
      const core::StaticBackbone full =
          core::build_static_backbone(g, repaired, config.mode);
      rebuild_ms += ms_since(rebuild_start);
      ++rebuild_ticks;
      span.set_arg(g.edges().size());
      // Pipelined runs lag: the maintained CDS is one in-flight tick
      // behind the positions the baseline just rebuilt from.
      if (config.rebuild_every == 1 && config.pipeline_depth <= 1) {
        MANET_ASSERT(full.cds.size() == pipeline.backbone().cds().size(),
                     "incremental and rebuilt CDS diverged");
      }
      rebuild_previous = std::move(repaired);
    }

    result.mean_link_changes += static_cast<double>(stats.link_changes);
    result.mean_head_changes += static_cast<double>(stats.head_changes);
    result.mean_role_changes += static_cast<double>(stats.role_changes);
    result.mean_backbone_changes +=
        static_cast<double>(stats.backbone_changes);
    result.mean_coverage_changes +=
        static_cast<double>(stats.coverage_changes);
    result.mean_rows_recomputed +=
        static_cast<double>(stats.rows_recomputed);
    result.mean_heads_reselected +=
        static_cast<double>(stats.heads_reselected);
    result.mean_regions += static_cast<double>(stats.regions);
  }

  // Join the in-flight repair (pipelined mode); its tick's stats are
  // the one installment the loop hasn't accumulated yet. The drain time
  // belongs to the wall clock of the incremental side.
  const auto drain_start = Clock::now();
  const incr::TickStats last = pipeline.drain();
  const double wall_ms = incr_ms + ms_since(drain_start);
  result.mean_link_changes += static_cast<double>(last.link_changes);
  result.mean_head_changes += static_cast<double>(last.head_changes);
  result.mean_role_changes += static_cast<double>(last.role_changes);
  result.mean_backbone_changes += static_cast<double>(last.backbone_changes);
  result.mean_coverage_changes += static_cast<double>(last.coverage_changes);
  result.mean_rows_recomputed += static_cast<double>(last.rows_recomputed);
  result.mean_heads_reselected += static_cast<double>(last.heads_reselected);
  result.mean_regions += static_cast<double>(last.regions);

  const double ticks = static_cast<double>(config.ticks);
  result.incremental_ms_per_tick = incr_ms / ticks;
  result.wall_ms_per_tick = wall_ms / ticks;
  result.rebuild_ms_per_tick =
      rebuild_ticks > 0 ? rebuild_ms / static_cast<double>(rebuild_ticks)
                        : 0.0;
  result.speedup =
      result.incremental_ms_per_tick > 0.0
          ? result.rebuild_ms_per_tick / result.incremental_ms_per_tick
          : 0.0;  // degenerate only for sub-microsecond runs
  result.mean_link_changes /= ticks;
  result.mean_head_changes /= ticks;
  result.mean_role_changes /= ticks;
  result.mean_backbone_changes /= ticks;
  result.mean_coverage_changes /= ticks;
  result.mean_rows_recomputed /= ticks;
  result.mean_heads_reselected /= ticks;
  result.mean_regions /= ticks;
  result.state_hash = hash_backbone(pipeline.backbone());
  result.peak_rss_bytes = peak_rss_bytes();
  result.connected = connected;
  result.connect_attempts_used = attempts_used;
  return result;
}

}  // namespace manet::exp
