// Message-driven maintenance experiment: what does the HELLO-paced
// protocol engine (src/proto) spend on the wire to keep the backbone
// current, and does it land on the exact state the snapshot-driven
// incremental engine (src/incr) maintains?
//
// Each tick the shared mobility front-end (exp/mobility_mix.hpp) moves a
// fraction of the nodes; the maintenance engine commits the link delta,
// beacons, and runs its repair/refresh waves to quiescence. In
// crosscheck mode an incr::IncrementalPipeline consumes the identical
// move sequence and the two state hashes must be bitwise-equal after
// every tick — the strongest form of the PR's equivalence claim, and
// the per-tick traffic counters are the material for the paper's O(n)
// maintenance-communication argument.
#pragma once

#include <cstdint>

#include "exp/churn.hpp"

namespace manet::exp {

/// One message-maintenance run. Embeds ChurnConfig for the shared
/// topology/mobility/mode/seed knobs (pipeline_depth and rebuild_* are
/// ignored: the protocol engine is sequential by nature — one message at
/// a time is the model; `threads` applies to the crosscheck witness
/// pipeline, whose state is bitwise thread-count-invariant).
struct MsgChurnConfig {
  ChurnConfig base;
  /// Drive an incremental pipeline over the identical move sequence and
  /// require state-hash equality after every tick.
  bool crosscheck = true;
  /// Additionally rebuild the expected state from scratch inside the
  /// engine every tick (proto::EngineOptions::oracle_check) — a
  /// field-by-field diff instead of a hash compare. Slow; for tests.
  bool oracle_check = false;
  /// Move burst: at tick ticks/2, this fraction of all nodes moves in a
  /// single tick (0 disables; overrides move_fraction for that tick if
  /// larger). The burst tick's round count measures reconvergence after
  /// a correlated topology shock.
  double burst_fraction = 0.0;
  /// Simulator livelock guard, per tick.
  std::uint32_t max_rounds_per_tick = 100000;
  /// Region-sharded engine execution (proto::EngineOptions::threads):
  /// 0 = the classic sequential simulator loop, k >= 1 = active repair
  /// regions as independent scoped simulations on k lanes. State hash
  /// and deterministic metrics are bitwise-invariant across values.
  std::size_t engine_threads = 0;
  /// Re-introduce the historical stale-gateway-flag bug in every node
  /// (proto::EngineOptions::inject_stale_gateway_fault). Only the
  /// divergence-forensics test sets this.
  bool inject_stale_gateway_fault = false;
};

/// Aggregated outcome. Per-node-per-tick message rates are the O(n)
/// evidence: they must stay flat as n grows.
struct MsgChurnResult {
  std::size_t ticks = 0;
  std::size_t nodes = 0;
  double mean_rounds = 0.0;       ///< simulator rounds per tick
  std::uint32_t max_rounds = 0;
  std::uint32_t burst_rounds = 0;  ///< rounds of the burst tick (0 = none)
  // Transmissions per node per tick, by type.
  double hello_rate = 0.0;        ///< MAINT_HELLO (always 1.0)
  double repair_rate = 0.0;       ///< R1_STATUS + R2_STATUS
  double rows_rate = 0.0;         ///< CH_HOP1 + CH_HOP2 refresh
  double gateway_rate = 0.0;      ///< GATEWAY floods + re-sends
  double total_rate = 0.0;        ///< all maintenance transmissions
  double deliveries_rate = 0.0;   ///< per-node deliveries (wire fan-out)
  // Mean per-tick churn (context for the traffic numbers).
  double mean_link_changes = 0.0;
  double mean_head_changes = 0.0;
  double mean_role_changes = 0.0;
  double mean_rows_changed = 0.0;
  double mean_heads_refreshed = 0.0;
  double wall_ms_per_tick = 0.0;  ///< engine tick cost (protocol side only)
  // Mean per-phase breakdown of wall_ms_per_tick (bench reporting; the
  // remainder is commit/accounting overhead). Summed across lanes under
  // concurrent region execution, so deliver+node_step can exceed wall.
  double deliver_ms_per_tick = 0.0;    ///< message delivery passes
  double node_step_ms_per_tick = 0.0;  ///< node code (timers + rounds)
  double mirror_ms_per_tick = 0.0;     ///< mirror refresh (ledger drain)
  /// Digest of the final maintained state — equal to run_churn's
  /// state_hash for the same ChurnConfig (and asserted equal every tick
  /// when crosscheck is on).
  std::uint64_t state_hash = 0;
  std::size_t peak_rss_bytes = 0;
  bool connected = false;
  std::size_t connect_attempts_used = 0;
};

/// Runs one message-driven maintenance simulation. Deterministic in
/// base.seed; throws std::logic_error on an oracle/crosscheck mismatch.
MsgChurnResult run_msg_churn(const MsgChurnConfig& config);

}  // namespace manet::exp
