#include "exp/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "common/assert.hpp"

namespace manet::exp {

std::vector<ScenarioPoint> PaperScenario::points() const {
  std::vector<ScenarioPoint> out;
  out.reserve(sizes.size() * degrees.size());
  for (double d : degrees)
    for (std::size_t n : sizes) out.push_back({n, d});
  return out;
}

geom::UnitDiskNetwork make_network(const PaperScenario& scenario,
                                   const ScenarioPoint& point,
                                   std::uint64_t base_seed,
                                   std::size_t replication) {
  // Stream tag folds in the scenario point so every (n, d) series draws
  // independent topologies.
  const std::uint64_t stream =
      point.nodes * 1000 + static_cast<std::uint64_t>(point.degree);
  Rng rng(derive_seed(base_seed, replication, stream));
  geom::UnitDiskConfig cfg;
  cfg.width = scenario.width;
  cfg.height = scenario.height;
  cfg.nodes = point.nodes;
  cfg.range = geom::range_for_average_degree(point.degree, point.nodes,
                                             cfg.width, cfg.height);
  auto net = geom::generate_connected_unit_disk(cfg, rng);
  if (!net.has_value())
    throw std::runtime_error("could not generate a connected topology");
  return std::move(*net);
}

stats::ReplicationPolicy bench_policy(std::size_t threads) {
  stats::ReplicationPolicy policy;  // 99% CI within +-5%, as in the paper
  policy.min_replications = 30;
  policy.max_replications = 800;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  policy.threads = std::max<std::size_t>(1, threads);
  return policy;
}

}  // namespace manet::exp
