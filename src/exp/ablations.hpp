// Ablation runners: the row computations behind the ablation benches,
// kept in the library so they are unit-tested (the bench binaries are
// thin printers over these).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "exp/scenario.hpp"

namespace manet::exp {

/// One row of the SD-CDS pruning ablation: mean forward-node counts per
/// pruning-rule combination (2.5-hop coverage).
struct PruningAblationRow {
  std::size_t nodes;
  double degree;
  double forward_none;       ///< no pruning
  double forward_piggyback;  ///< piggyback only
  double forward_relay;      ///< relay exclusion only
  double forward_both;       ///< the paper's algorithm
  bool all_delivered;        ///< every variant reached every node
};

std::vector<PruningAblationRow> run_pruning_ablation(
    const std::vector<std::size_t>& sizes, const std::vector<double>& degrees,
    std::size_t replications, std::uint64_t seed);

/// One row of the message-complexity experiment (distributed
/// construction + one distributed data broadcast).
struct MsgComplexityRow {
  std::size_t nodes;
  double degree;
  double hello;
  double roles;     ///< CLUSTER_HEAD + NON_CLUSTER_HEAD
  double ch_hop1;
  double ch_hop2;
  double gateway;
  double construction_total;
  double per_node;  ///< construction_total / n — flat <=> O(n)
  double rounds;
  double data;      ///< data messages of one SD broadcast from node 0
  /// Delivery-layer cost (net::DeliveryStats): with pointer-based inbox
  /// delivery each transmission costs one pointer push per receiver and
  /// each populated inbox is reset exactly once, so inbox_resets <=
  /// deliveries — the bench asserts it (the copying regression guard).
  double deliveries;
  double inbox_resets;
};

std::vector<MsgComplexityRow> run_msg_complexity(
    const std::vector<std::size_t>& sizes, const std::vector<double>& degrees,
    std::size_t replications, std::uint64_t seed);

}  // namespace manet::exp
