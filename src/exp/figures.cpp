#include "exp/figures.hpp"

#include "broadcast/si_cds.hpp"
#include "cluster/lowest_id.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"

namespace manet::exp {
namespace {

using core::CoverageMode;

Measurement to_measurement(const stats::RunningStats& s, double confidence) {
  return {s.mean(), s.ci_halfwidth(confidence)};
}

/// Per-replication uniform source pick, independent of topology stream.
NodeId pick_source(std::uint64_t seed, std::size_t replication,
                   std::size_t n) {
  Rng rng(derive_seed(seed, replication, 0x50uL));
  return static_cast<NodeId>(rng.index(n));
}

}  // namespace

std::vector<Fig6Row> run_fig6(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed) {
  std::vector<Fig6Row> rows;
  for (const auto& point : scenario.points()) {
    const auto result = stats::replicate(
        policy, 3, [&](std::size_t rep, std::vector<double>& out) {
          const auto net = make_network(scenario, point, seed, rep);
          const auto c = cluster::lowest_id_clustering(net.graph);
          out.push_back(static_cast<double>(
              core::build_static_backbone(net.graph, c,
                                          CoverageMode::kTwoPointFiveHop)
                  .cds.size()));
          out.push_back(static_cast<double>(
              core::build_static_backbone(net.graph, c,
                                          CoverageMode::kThreeHop)
                  .cds.size()));
          out.push_back(static_cast<double>(
              core::build_mo_cds(net.graph, c).cds.size()));
        });
    rows.push_back({point.nodes, point.degree,
                    to_measurement(result.metrics[0], policy.confidence),
                    to_measurement(result.metrics[1], policy.confidence),
                    to_measurement(result.metrics[2], policy.confidence),
                    result.replications, result.converged});
  }
  return rows;
}

std::vector<Fig7Row> run_fig7(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed) {
  std::vector<Fig7Row> rows;
  for (const auto& point : scenario.points()) {
    const auto result = stats::replicate(
        policy, 3, [&](std::size_t rep, std::vector<double>& out) {
          const auto net = make_network(scenario, point, seed, rep);
          const auto c = cluster::lowest_id_clustering(net.graph);
          const auto source =
              pick_source(seed, rep, net.graph.order());
          const auto bb25 = core::build_dynamic_backbone(
              net.graph, c, CoverageMode::kTwoPointFiveHop);
          const auto bb3 = core::build_dynamic_backbone(
              net.graph, c, CoverageMode::kThreeHop);
          const auto mo = core::build_mo_cds(net.graph, c);
          out.push_back(static_cast<double>(
              core::dynamic_broadcast(net.graph, bb25, source)
                  .forward_count()));
          out.push_back(static_cast<double>(
              core::dynamic_broadcast(net.graph, bb3, source)
                  .forward_count()));
          out.push_back(static_cast<double>(
              broadcast::si_cds_broadcast(net.graph, mo.cds, source)
                  .forward_count()));
        });
    rows.push_back({point.nodes, point.degree,
                    to_measurement(result.metrics[0], policy.confidence),
                    to_measurement(result.metrics[1], policy.confidence),
                    to_measurement(result.metrics[2], policy.confidence),
                    result.replications, result.converged});
  }
  return rows;
}

std::vector<Fig8Row> run_fig8(const PaperScenario& scenario,
                              const stats::ReplicationPolicy& policy,
                              std::uint64_t seed) {
  std::vector<Fig8Row> rows;
  for (const auto& point : scenario.points()) {
    const auto result = stats::replicate(
        policy, 4, [&](std::size_t rep, std::vector<double>& out) {
          const auto net = make_network(scenario, point, seed, rep);
          const auto c = cluster::lowest_id_clustering(net.graph);
          const auto source =
              pick_source(seed, rep, net.graph.order());
          for (const auto mode : {CoverageMode::kTwoPointFiveHop,
                                  CoverageMode::kThreeHop}) {
            const auto st = core::build_static_backbone(net.graph, c, mode);
            out.push_back(static_cast<double>(
                broadcast::si_cds_broadcast(net.graph, st.cds, source)
                    .forward_count()));
          }
          for (const auto mode : {CoverageMode::kTwoPointFiveHop,
                                  CoverageMode::kThreeHop}) {
            const auto bb = core::build_dynamic_backbone(net.graph, c, mode);
            out.push_back(static_cast<double>(
                core::dynamic_broadcast(net.graph, bb, source)
                    .forward_count()));
          }
        });
    rows.push_back({point.nodes, point.degree,
                    to_measurement(result.metrics[0], policy.confidence),
                    to_measurement(result.metrics[1], policy.confidence),
                    to_measurement(result.metrics[2], policy.confidence),
                    to_measurement(result.metrics[3], policy.confidence),
                    result.replications, result.converged});
  }
  return rows;
}

}  // namespace manet::exp
