// Umbrella header — the complete public API of manetcast.
//
// Fine-grained includes are preferred in library code; this header exists
// for applications and exploratory use:
//
//   #include "manet.hpp"
//   using namespace manet;
#pragma once

// Foundations.
#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/flags.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

// Topology model.
#include "geom/layout_io.hpp"
#include "geom/point.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

// The paper's contribution: clustering, coverage sets, backbones.
#include "cluster/lowest_id.hpp"
#include "core/cluster_graph.hpp"
#include "core/coverage.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/gateway_selection.hpp"
#include "core/mo_cds.hpp"
#include "core/neighbor_tables.hpp"
#include "core/static_backbone.hpp"

// Broadcast protocol zoo and channel models.
#include "broadcast/dominant_pruning.hpp"
#include "broadcast/flooding.hpp"
#include "broadcast/forwarding_tree.hpp"
#include "broadcast/lossy.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/passive_clustering.hpp"
#include "broadcast/si_cds.hpp"
#include "broadcast/stats.hpp"
#include "broadcast/suppression.hpp"

// Distributed protocol simulator.
#include "net/message.hpp"
#include "net/protocol.hpp"
#include "net/simulator.hpp"

// CDS references and optimal baselines.
#include "mcds/bounds.hpp"
#include "mcds/exact.hpp"
#include "mcds/greedy.hpp"
#include "mcds/wu_li.hpp"

// Cluster maintenance.
#include "cluster/lcc.hpp"

// Mobility and maintenance.
#include "mobility/maintenance.hpp"
#include "mobility/random_direction.hpp"
#include "mobility/waypoint.hpp"

// Incremental maintenance engine and the churn experiment driving it.
#include "exp/churn.hpp"
#include "incr/pipeline.hpp"

// Observability: deterministic metrics + flight-recorder tracing.
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"

// Experiment harness (paper scenario + figure and ablation runners).
#include "exp/ablations.hpp"
#include "exp/figures.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "stats/replicator.hpp"
#include "stats/running.hpp"
#include "stats/samples.hpp"
#include "stats/student_t.hpp"
