#include "broadcast/si_cds.hpp"

#include <deque>

#include "common/assert.hpp"

namespace manet::broadcast {

BroadcastStats si_cds_broadcast(const graph::Graph& g, const NodeSet& cds,
                                NodeId source) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> transmitted(g.order(), 0);
  std::deque<NodeId> queue{source};
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  transmitted[source] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    for (NodeId w : g.neighbors(v)) {
      const bool first_copy = !stats.received[w];
      if (first_copy)
        stats.first_copy_hops[w] = stats.first_copy_hops[v] + 1;
      stats.received[w] = 1;
      if (first_copy && contains_sorted(cds, w) && !transmitted[w]) {
        transmitted[w] = 1;
        queue.push_back(w);
      }
    }
  }
  finalize(stats, "si_cds");
  return stats;
}

}  // namespace manet::broadcast
