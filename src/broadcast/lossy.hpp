// Lossy-channel robustness layer.
//
// The paper (like most CDS work) assumes an ideal MAC; a classic
// criticism of backbone broadcasting is that pruning trades robustness
// for efficiency. This module re-runs flooding / SI-CDS / MPR broadcasts
// on a channel where each (transmission, receiver) delivery independently
// fails with probability `loss`, so the robustness bench can quantify
// that trade-off.
#pragma once

#include <vector>

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Per-delivery loss model: every receiver of every transmission misses
/// it independently with probability `loss`.
struct LossModel {
  double loss = 0.0;
};

/// Blind flooding over the lossy channel.
BroadcastStats flood_lossy(const graph::Graph& g, NodeId source,
                           const LossModel& model, Rng& rng);

/// SI-CDS broadcast over the lossy channel (only `cds` members relay).
BroadcastStats si_cds_broadcast_lossy(const graph::Graph& g,
                                      const NodeSet& cds, NodeId source,
                                      const LossModel& model, Rng& rng);

/// MPR broadcast over the lossy channel.
BroadcastStats mpr_broadcast_lossy(const graph::Graph& g,
                                   const std::vector<NodeSet>& mpr,
                                   NodeId source, const LossModel& model,
                                   Rng& rng);

}  // namespace manet::broadcast
