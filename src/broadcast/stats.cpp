#include "broadcast/stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace manet::broadcast {
namespace {

/// Per-protocol counters in the process-wide registry, resolved once per
/// protocol name and cached (registration takes a lock; recording does
/// not).
struct ProtoCounters {
  obs::Counter runs;
  obs::Counter transmissions;
  obs::Counter forward_nodes;
  obs::Counter delivered_all;
};

ProtoCounters& proto_counters(std::string_view protocol) {
  static std::mutex mu;
  static std::map<std::string, ProtoCounters, std::less<>> cache;
  std::scoped_lock lock(mu);
  auto it = cache.find(protocol);
  if (it == cache.end()) {
    auto& r = obs::global_registry();
    const std::string prefix = "broadcast." + std::string(protocol);
    ProtoCounters handles{r.counter(prefix + ".runs"),
                          r.counter(prefix + ".transmissions"),
                          r.counter(prefix + ".forward_nodes"),
                          r.counter(prefix + ".delivered_all")};
    it = cache.emplace(std::string(protocol), handles).first;
  }
  return it->second;
}

}  // namespace

double BroadcastStats::delivery_ratio() const {
  if (received.empty()) return 1.0;
  const auto got = static_cast<double>(
      std::count(received.begin(), received.end(), char{1}));
  return got / static_cast<double>(received.size());
}

std::uint32_t BroadcastStats::latency_hops() const {
  std::uint32_t worst = 0;
  for (std::uint32_t h : first_copy_hops)
    if (h != kUnreachableHops) worst = std::max(worst, h);
  return worst;
}

void finalize(BroadcastStats& stats) {
  stats.delivered_all =
      std::all_of(stats.received.begin(), stats.received.end(),
                  [](char c) { return c != 0; });
}

void finalize(BroadcastStats& stats, std::string_view protocol) {
  finalize(stats);
  record_run(protocol, stats);
}

void record_run(std::string_view protocol, const BroadcastStats& stats) {
  if (!obs::kEnabled) return;
  auto& r = obs::global_registry();
  // Histograms shared across protocols: distribution of forward-set
  // sizes, delivery ratio in permille (integral, so snapshots stay
  // bitwise deterministic), and broadcast latency in relay hops.
  static obs::Histogram forward_hist = r.histogram(
      "broadcast.forward_set_size", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                     1024});
  static obs::Histogram delivery_hist = r.histogram(
      "broadcast.delivery_permille", {1, 500, 900, 990, 1000, 1001});
  static obs::Histogram latency_hist =
      r.histogram("broadcast.latency_hops", {1, 2, 4, 8, 16, 32, 64});

  ProtoCounters& c = proto_counters(protocol);
  c.runs.add();
  c.transmissions.add(stats.transmissions);
  c.forward_nodes.add(stats.forward_count());
  if (stats.delivered_all) c.delivered_all.add();

  forward_hist.record(stats.forward_count());
  delivery_hist.record(static_cast<std::uint64_t>(
      std::llround(stats.delivery_ratio() * 1000.0)));
  latency_hist.record(stats.latency_hops());
}

}  // namespace manet::broadcast
