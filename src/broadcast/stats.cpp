#include "broadcast/stats.hpp"

#include <algorithm>

namespace manet::broadcast {

double BroadcastStats::delivery_ratio() const {
  if (received.empty()) return 1.0;
  const auto got = static_cast<double>(
      std::count(received.begin(), received.end(), char{1}));
  return got / static_cast<double>(received.size());
}

std::uint32_t BroadcastStats::latency_hops() const {
  std::uint32_t worst = 0;
  for (std::uint32_t h : first_copy_hops)
    if (h != kUnreachableHops) worst = std::max(worst, h);
  return worst;
}

void finalize(BroadcastStats& stats) {
  stats.delivered_all =
      std::all_of(stats.received.begin(), stats.received.end(),
                  [](char c) { return c != 0; });
}

}  // namespace manet::broadcast
