#include "broadcast/lossy.hpp"

#include <deque>

#include "common/assert.hpp"

namespace manet::broadcast {
namespace {

/// Shared lossy relay loop: `relays(v, from_mpr_selector)` decides whether
/// a first-copy receiver becomes a transmitter.
template <typename RelayPredicate>
BroadcastStats run_lossy(const graph::Graph& g, NodeId source,
                         const LossModel& model, Rng& rng,
                         RelayPredicate relays) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  MANET_REQUIRE(model.loss >= 0.0 && model.loss < 1.0,
                "loss probability must be in [0, 1)");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> transmitted(g.order(), 0);
  std::deque<NodeId> queue{source};
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  transmitted[source] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    for (NodeId w : g.neighbors(v)) {
      if (rng.chance(model.loss)) continue;  // delivery failed
      const bool first_copy = !stats.received[w];
      if (first_copy)
        stats.first_copy_hops[w] = stats.first_copy_hops[v] + 1;
      stats.received[w] = 1;
      if (first_copy && !transmitted[w] && relays(v, w)) {
        transmitted[w] = 1;
        queue.push_back(w);
      }
    }
  }
  finalize(stats, "lossy");
  return stats;
}

}  // namespace

BroadcastStats flood_lossy(const graph::Graph& g, NodeId source,
                           const LossModel& model, Rng& rng) {
  return run_lossy(g, source, model, rng,
                   [](NodeId, NodeId) { return true; });
}

BroadcastStats si_cds_broadcast_lossy(const graph::Graph& g,
                                      const NodeSet& cds, NodeId source,
                                      const LossModel& model, Rng& rng) {
  return run_lossy(g, source, model, rng, [&](NodeId, NodeId w) {
    return contains_sorted(cds, w);
  });
}

BroadcastStats mpr_broadcast_lossy(const graph::Graph& g,
                                   const std::vector<NodeSet>& mpr,
                                   NodeId source, const LossModel& model,
                                   Rng& rng) {
  MANET_REQUIRE(mpr.size() == g.order(), "mpr table does not match graph");
  return run_lossy(g, source, model, rng, [&](NodeId sender, NodeId w) {
    return contains_sorted(mpr[sender], w);
  });
}

}  // namespace manet::broadcast
