// Blind flooding — the redundancy baseline behind the broadcast storm
// problem (Ni et al., the paper's motivation): every node retransmits the
// packet exactly once.
#pragma once

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Simulates blind flooding from `source`.
BroadcastStats flood(const graph::Graph& g, NodeId source);

}  // namespace manet::broadcast
