// Multipoint relaying (Qayyum, Viennot & Laouiti) — the MPR flooding
// baseline from the paper's §2.
//
// Every node precomputes an MPR set: a subset of its neighbors covering
// its whole (open) 2-hop neighborhood, chosen with the standard
// heuristic — first the neighbors that are the sole reachers of some
// 2-hop node, then greedy max-cover. During a broadcast, a node
// retransmits iff it has not transmitted yet and it is an MPR of a
// neighbor it received a copy from.
#pragma once

#include <string>
#include <vector>

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// MPR sets for every node (mpr[v] is sorted-unique, a subset of N(v)).
std::vector<NodeSet> compute_mpr_sets(const graph::Graph& g);

/// Checks the MPR property: mpr[v] ∪ N[v] reaches all of N²(v).
/// Empty string when valid.
std::string validate_mpr_sets(const graph::Graph& g,
                              const std::vector<NodeSet>& mpr);

/// Simulates an MPR flood from `source` using precomputed sets.
BroadcastStats mpr_broadcast(const graph::Graph& g,
                             const std::vector<NodeSet>& mpr, NodeId source);

/// Convenience overload computing the sets internally.
BroadcastStats mpr_broadcast(const graph::Graph& g, NodeId source);

}  // namespace manet::broadcast
