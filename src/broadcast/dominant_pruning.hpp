// Dominant pruning (Lim & Kim) and partial dominant pruning (Lou & Wu) —
// the classical source-dependent CDS baselines from the paper's §2.
//
// Both piggyback a forward list on the packet. A listed node v, on its
// first copy (received from u), greedily selects a forward list from its
// neighbors B(v) = N(v) − N[u] to cover the uncovered 2-hop set:
//   DP:  U = N(N(v)) − N[u] − N[v]
//   PDP: U = N(N(v)) − N[u] − N[v] − N(N(u) ∩ N(v))
// PDP's extra exclusion is sound because any node adjacent to a common
// neighbor of u and v lies in N²(u), i.e. inside the region u's own
// selection is responsible for covering.
#pragma once

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Which pruning rule drives the 2-hop target computation.
enum class PruningRule : std::uint8_t {
  kDominant,         ///< DP (Lim & Kim)
  kPartialDominant,  ///< PDP (Lou & Wu)
};

/// Simulates one DP/PDP broadcast from `source`.
BroadcastStats dominant_pruning_broadcast(const graph::Graph& g,
                                          NodeId source, PruningRule rule);

}  // namespace manet::broadcast
