#include "broadcast/dominant_pruning.hpp"

#include <deque>

#include "common/assert.hpp"

namespace manet::broadcast {
namespace {

/// Closed neighborhood N[v] as a sorted set.
NodeSet closed_neighborhood(const graph::Graph& g, NodeId v) {
  const auto nb = g.neighbors(v);
  NodeSet out(nb.begin(), nb.end());
  insert_sorted(out, v);
  return out;
}

/// Greedy max-cover: pick nodes from `candidates` until `targets` is
/// covered or no candidate helps; returns the forward list.
NodeSet greedy_cover(const graph::Graph& g, const NodeSet& candidates,
                     NodeSet targets) {
  NodeSet forward;
  while (!targets.empty()) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId w : candidates) {
      if (contains_sorted(forward, w)) continue;
      NodeSet nw = closed_neighborhood(g, w);
      const std::size_t gain = intersection_size(nw, targets);
      if (gain > best_gain) {  // ties: first (smallest id) wins
        best_gain = gain;
        best = w;
      }
    }
    if (best == kInvalidNode) break;  // leftovers are upstream's duty
    insert_sorted(forward, best);
    targets = set_difference(targets, closed_neighborhood(g, best));
  }
  return forward;
}

struct Packet {
  NodeId sender;
  NodeSet forward_list;
};

}  // namespace

BroadcastStats dominant_pruning_broadcast(const graph::Graph& g,
                                          NodeId source, PruningRule rule) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> acted(g.order(), 0);  // processed its first copy
  std::deque<Packet> queue;

  auto select_and_send = [&](NodeId v, NodeId upstream) {
    // Upstream's closed neighborhood: empty exclusion for the source.
    NodeSet n_u;
    if (upstream != kInvalidNode) n_u = closed_neighborhood(g, upstream);
    const NodeSet n_v = closed_neighborhood(g, v);

    // Two-hop targets.
    NodeSet targets;
    for (NodeId x : g.neighbors(v))
      for (NodeId y : g.neighbors(x)) insert_sorted(targets, y);
    targets = set_difference(targets, n_u);
    targets = set_difference(targets, n_v);
    if (rule == PruningRule::kPartialDominant && upstream != kInvalidNode) {
      // N(N(u) ∩ N(v)): neighbors of the common neighbors.
      const NodeSet common = set_intersection(
          NodeSet(g.neighbors(upstream).begin(), g.neighbors(upstream).end()),
          NodeSet(g.neighbors(v).begin(), g.neighbors(v).end()));
      NodeSet extra;
      for (NodeId w : common)
        for (NodeId y : g.neighbors(w)) insert_sorted(extra, y);
      targets = set_difference(targets, extra);
    }

    // Candidate relays: v's neighbors outside N[u].
    NodeSet candidates(g.neighbors(v).begin(), g.neighbors(v).end());
    candidates = set_difference(candidates, n_u);

    Packet p;
    p.sender = v;
    p.forward_list = greedy_cover(g, candidates, std::move(targets));
    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    queue.push_back(std::move(p));
  };

  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  acted[source] = 1;
  select_and_send(source, kInvalidNode);

  while (!queue.empty()) {
    const Packet p = std::move(queue.front());
    queue.pop_front();
    for (NodeId w : g.neighbors(p.sender)) {
      if (!stats.received[w])
        stats.first_copy_hops[w] = stats.first_copy_hops[p.sender] + 1;
      stats.received[w] = 1;
      // A named node relays once, on the first packet that names it —
      // even if an unnamed copy arrived earlier (otherwise the selector's
      // coverage obligation would silently break).
      if (!acted[w] && contains_sorted(p.forward_list, w)) {
        acted[w] = 1;
        select_and_send(w, p.sender);
      }
    }
  }
  finalize(stats, "dominant_pruning");
  return stats;
}

}  // namespace manet::broadcast
