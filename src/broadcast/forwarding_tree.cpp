#include "broadcast/forwarding_tree.hpp"

#include <deque>
#include <sstream>

#include "common/assert.hpp"
#include "core/coverage.hpp"

namespace manet::broadcast {

ForwardingTree build_forwarding_tree(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     const core::NeighborTables& tables,
                                     NodeId source) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  ForwardingTree tree;
  tree.parent.assign(g.order(), kInvalidNode);
  tree.root_head = c.head_of[source];

  auto join = [&](NodeId v, NodeId parent) {
    if (contains_sorted(tree.members, v)) return false;
    insert_sorted(tree.members, v);
    tree.parent[v] = parent;
    return true;
  };

  join(tree.root_head, kInvalidNode);
  std::deque<NodeId> frontier{tree.root_head};
  std::vector<char> head_joined(g.order(), 0);
  head_joined[tree.root_head] = 1;

  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const auto cov = core::build_coverage(g, c, tables, u);
    // 2-hop neighbors first (head, gateway, head): attach each unjoined
    // head w through the smallest connecting neighbor of u.
    for (NodeId w : cov.two_hop) {
      if (head_joined[w]) continue;
      NodeId connector = kInvalidNode;
      for (NodeId v : g.neighbors(u)) {
        if (g.has_edge(v, w)) {
          connector = v;  // ascending order -> smallest id
          break;
        }
      }
      MANET_ASSERT(connector != kInvalidNode, "2-hop head needs a witness");
      join(connector, u);
      join(w, connector);
      head_joined[w] = 1;
      frontier.push_back(w);
    }
    // 3-hop neighbors via a gateway pair.
    for (NodeId w : cov.three_hop) {
      if (head_joined[w]) continue;
      NodeId first = kInvalidNode, second = kInvalidNode;
      for (NodeId v : g.neighbors(u)) {
        for (const auto& e : tables.ch_hop2[v]) {
          if (e.head != w) continue;
          if (first == kInvalidNode || v < first ||
              (v == first && e.via < second)) {
            first = v;
            second = e.via;
          }
        }
      }
      MANET_ASSERT(first != kInvalidNode, "3-hop head needs a witness pair");
      join(first, u);
      // The second-hop gateway hangs off the first; if either gateway
      // already joined through another branch it keeps its old parent —
      // the physical edges still exist, so w's attachment stays valid.
      join(second, first);
      join(w, second);
      head_joined[w] = 1;
      frontier.push_back(w);
    }
  }
  return tree;
}

std::string validate_forwarding_tree(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     const ForwardingTree& tree) {
  std::ostringstream err;
  // Every cluster joined.
  for (NodeId h : c.heads) {
    if (!tree.contains(h)) {
      err << "cluster of head " << h << " never joined the tree";
      return err.str();
    }
  }
  // Parent edges are physical links; following parents reaches the root
  // without cycles.
  for (NodeId v : tree.members) {
    if (v == tree.root_head) continue;
    const NodeId p = tree.parent[v];
    if (p == kInvalidNode || !tree.contains(p)) {
      err << "member " << v << " has no tree parent";
      return err.str();
    }
    if (!g.has_edge(v, p)) {
      err << "tree edge " << p << "-" << v << " is not a physical link";
      return err.str();
    }
    std::size_t hops = 0;
    for (NodeId cur = v; cur != tree.root_head; cur = tree.parent[cur]) {
      if (cur == kInvalidNode) {
        err << "broken parent chain above member " << v;
        return err.str();
      }
      if (++hops > tree.members.size()) {
        err << "cycle above member " << v;
        return err.str();
      }
    }
  }
  return {};
}

BroadcastStats forwarding_tree_broadcast(const graph::Graph& g,
                                         const ForwardingTree& tree,
                                         NodeId source) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> transmitted(g.order(), 0);
  std::deque<NodeId> queue{source};
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  transmitted[source] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    for (NodeId w : g.neighbors(v)) {
      const bool first_copy = !stats.received[w];
      if (first_copy)
        stats.first_copy_hops[w] = stats.first_copy_hops[v] + 1;
      stats.received[w] = 1;
      if (first_copy && tree.contains(w) && !transmitted[w]) {
        transmitted[w] = 1;
        queue.push_back(w);
      }
    }
  }
  finalize(stats, "forwarding_tree");
  return stats;
}

}  // namespace manet::broadcast
