// Broadcasting over a source-independent CDS (paper §3, "Broadcasting in
// a Cluster-Based SI-CDS Backbone"):
//   1. the source sends to all its neighbors;
//   2. a backbone node relays the first copy it receives;
//   3. everyone else stays silent.
// Works with any CDS — the static backbone, MO_CDS, or an exact MCDS.
#pragma once

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Simulates a broadcast from `source` where exactly the nodes of `cds`
/// (sorted-unique) relay. The source transmits regardless of membership.
BroadcastStats si_cds_broadcast(const graph::Graph& g, const NodeSet& cds,
                                NodeId source);

}  // namespace manet::broadcast
