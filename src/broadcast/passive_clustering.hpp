// Passive clustering (Kwon & Gerla) — cluster formation *during* data
// propagation, from the paper's §2:
//
//   "A clusterhead candidate applies the 'first declaration wins' rule to
//    become a clusterhead when it successfully transmits a packet. Then,
//    its neighbor nodes can learn the presence of this clusterhead and
//    change their states to become gateways if they have more than one
//    adjacent clusterhead or ordinary (non-clusterhead) nodes otherwise."
//
// The structure is built across a *sequence* of broadcasts: nodes start
// as candidates and forward every first copy; a node that transmits
// without having overheard any neighboring clusterhead declares itself
// one; neighbors of two or more clusterheads become gateways, neighbors
// of exactly one become ordinary. Ordinary nodes stop forwarding later
// packets — that is where the savings (and, as the paper notes, the
// "poor delivery rate") come from. No setup phase, no neighborhood
// knowledge, no maintenance messages.
#pragma once

#include <vector>

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Node states of the passive-clustering state machine.
enum class PassiveState : std::uint8_t {
  kCandidate,    ///< never constrained; forwards first copies
  kClusterhead,  ///< declared by first-transmission-wins
  kGateway,      ///< adjacent to 2+ clusterheads
  kOrdinary,     ///< adjacent to exactly 1 clusterhead; stays silent
};

/// Holds the emergent cluster state across consecutive broadcasts.
///
/// The session is keyed to a node population, not to one topology: each
/// broadcast runs on the snapshot passed in, so a stale structure can be
/// exercised against a moved network — which is where the protocol's
/// documented delivery weakness ("suffers poor delivery rate") actually
/// bites; on a static ideal channel the first flood leaves a structure
/// adequate for the topology it formed on.
class PassiveClusteringSession {
 public:
  explicit PassiveClusteringSession(std::size_t order);

  /// Runs one broadcast from `source` over `g` (order must match),
  /// updating the cluster structure as packets propagate.
  BroadcastStats broadcast(const graph::Graph& g, NodeId source);

  const std::vector<PassiveState>& states() const { return states_; }
  std::size_t clusterhead_count() const;
  std::size_t gateway_count() const;

 private:
  void refresh_state(NodeId v);

  std::vector<PassiveState> states_;
  std::vector<NodeSet> heard_heads_;
};

}  // namespace manet::broadcast
