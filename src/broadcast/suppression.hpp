// The two generic redundancy-suppression techniques the paper sketches in
// §3 around Figure 5, as drop-in flooding variants:
//
//  * Backoff self-pruning — a node holds its retransmission for a random
//    delay; if meanwhile the copies it overhears already cover all its
//    neighbors, it resigns. (Figure 5: w hears v's copy and stays quiet,
//    saving one transmission.)
//  * Neighbor piggybacking — each transmission carries the sender's
//    neighbor list; a receiver whose whole neighborhood is already
//    covered by received copies never schedules a transmission at all.
//    (Figure 5: both v and w stay quiet, saving two transmissions.)
//
// Both are modeled on the synchronous-slot channel: transmissions
// scheduled in slot t are heard at slot t+1; the random backoff draws a
// slot offset, so overhearing genuinely races with the backoff as in the
// paper's discussion.
#pragma once

#include "broadcast/stats.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Suppression-flood parameters.
struct SuppressionOptions {
  /// Maximum random backoff, in slots (drawn uniformly in [1, max]).
  std::uint32_t max_backoff_slots = 4;
  /// Piggyback the sender's neighbor list (the second technique). When
  /// false, a receiver only learns coverage it can infer from the
  /// sender's identity (backoff self-pruning alone).
  bool piggyback_neighbors = false;
};

/// Flood from `source` where every node applies the suppression rule
/// before relaying. `rng` drives the backoff draws.
BroadcastStats suppression_flood(const graph::Graph& g, NodeId source,
                                 const SuppressionOptions& options, Rng& rng);

}  // namespace manet::broadcast
