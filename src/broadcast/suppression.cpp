#include "broadcast/suppression.hpp"

#include <map>

#include "common/assert.hpp"

namespace manet::broadcast {

BroadcastStats suppression_flood(const graph::Graph& g, NodeId source,
                                 const SuppressionOptions& options,
                                 Rng& rng) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  MANET_REQUIRE(options.max_backoff_slots >= 1,
                "backoff needs at least one slot");
  const std::size_t n = g.order();

  BroadcastStats stats;
  stats.received.assign(n, 0);
  stats.first_copy_hops.assign(n, kUnreachableHops);
  // covered[v]: v is known (to itself) to have received the packet —
  // either directly, or inferred from a piggybacked neighbor list. Each
  // node tracks which of *its neighbors* are covered.
  std::vector<NodeSet> neighbors_covered(n);
  std::vector<char> scheduled(n, 0);
  std::vector<char> transmitted(n, 0);
  // slot -> transmitting nodes.
  std::map<std::uint32_t, NodeSet> agenda;

  auto all_neighbors_covered = [&](NodeId v) {
    return neighbors_covered[v].size() == g.degree(v);
  };

  auto hear = [&](NodeId v, NodeId sender, std::uint32_t slot) {
    const bool first_copy = !stats.received[v];
    if (first_copy)
      stats.first_copy_hops[v] = stats.first_copy_hops[sender] + 1;
    stats.received[v] = 1;
    if (g.has_edge(v, sender))
      insert_sorted(neighbors_covered[v], sender);
    if (options.piggyback_neighbors) {
      // The sender's neighbor list rides on the packet: everything
      // adjacent to the sender now provably holds a copy.
      for (NodeId w : g.neighbors(sender))
        if (g.has_edge(v, w)) insert_sorted(neighbors_covered[v], w);
    }
    if (first_copy && !scheduled[v]) {
      scheduled[v] = 1;
      const auto delay =
          static_cast<std::uint32_t>(rng.between(
              1, static_cast<std::int64_t>(options.max_backoff_slots)));
      insert_sorted(agenda[slot + delay], v);
    }
  };

  // The source transmits at slot 0 unconditionally.
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  scheduled[source] = 1;
  insert_sorted(agenda[0], source);

  while (!agenda.empty()) {
    const auto [slot, senders] = *agenda.begin();
    agenda.erase(agenda.begin());
    // Same-slot transmissions are simultaneous: resignation decisions see
    // only what was heard in *earlier* slots, then all of this slot's
    // transmissions land together.
    NodeSet firing;
    for (NodeId v : senders) {
      if (transmitted[v]) continue;
      // The resignation check of the paper: if every neighbor provably
      // received the packet while we were backing off, stay quiet.
      if (v != source && all_neighbors_covered(v)) continue;
      firing.push_back(v);
    }
    for (NodeId v : firing) {
      transmitted[v] = 1;
      insert_sorted(stats.forward_nodes, v);
      ++stats.transmissions;
    }
    for (NodeId v : firing)
      for (NodeId w : g.neighbors(v)) hear(w, v, slot);
  }
  finalize(stats, "suppression");
  return stats;
}

}  // namespace manet::broadcast
