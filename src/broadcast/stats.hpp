// Common result type for every broadcast protocol in the zoo.
//
// All protocols report the same metrics the paper (and its related work)
// evaluates on: the forward-node set, delivery, and the transmission
// count. Keeping one struct makes the comparison benches trivially
// uniform.
#pragma once

#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// Outcome of one simulated broadcast.
struct BroadcastStats {
  NodeSet forward_nodes;        ///< nodes that transmitted at least once
  std::size_t transmissions = 0;  ///< total transmissions (>= forward set)
  std::vector<char> received;   ///< per-node delivery flags
  bool delivered_all = false;
  /// Relay-hop distance from the source at which each node got its first
  /// copy (0 for the source, kUnreachableHops if never reached).
  std::vector<std::uint32_t> first_copy_hops;

  std::size_t forward_count() const { return forward_nodes.size(); }
  double delivery_ratio() const;
  /// Largest first-copy hop count among reached nodes (the broadcast's
  /// latency in relay hops); 0 when the stats carry no hop data.
  std::uint32_t latency_hops() const;
};

/// Sentinel in first_copy_hops for nodes the broadcast never reached.
inline constexpr std::uint32_t kUnreachableHops = ~std::uint32_t{0};

/// Fills `delivered_all` / returns delivery ratio helpers shared by the
/// protocol implementations.
void finalize(BroadcastStats& stats);

/// finalize() plus ambient instrumentation: records the run into the
/// process-wide obs registry under `broadcast.<protocol>.*` counters and
/// the shared forward-set/delivery/latency histograms. A no-op when the
/// observability layer is compiled out.
void finalize(BroadcastStats& stats, std::string_view protocol);

/// Records an already-finalized run into the global registry (what the
/// two-argument finalize() does after the bookkeeping). Exposed for
/// callers that aggregate stats themselves.
void record_run(std::string_view protocol, const BroadcastStats& stats);

}  // namespace manet::broadcast
