#include "broadcast/mpr.hpp"

#include <deque>
#include <sstream>

#include "common/assert.hpp"

namespace manet::broadcast {

std::vector<NodeSet> compute_mpr_sets(const graph::Graph& g) {
  const std::size_t n = g.order();
  std::vector<NodeSet> mpr(n);
  for (NodeId v = 0; v < n; ++v) {
    // Open 2-hop neighborhood: reachable via a neighbor, not in N[v].
    NodeSet two_hop;
    for (NodeId w : g.neighbors(v))
      for (NodeId x : g.neighbors(w))
        if (x != v && !g.has_edge(v, x)) insert_sorted(two_hop, x);

    NodeSet uncovered = two_hop;
    auto cover_with = [&](NodeId w) {
      insert_sorted(mpr[v], w);
      for (NodeId x : g.neighbors(w)) erase_sorted(uncovered, x);
    };

    // Step 1: neighbors that are the only path to some 2-hop node.
    for (NodeId x : two_hop) {
      NodeId sole = kInvalidNode;
      int reachers = 0;
      for (NodeId w : g.neighbors(v)) {
        if (g.has_edge(w, x)) {
          ++reachers;
          sole = w;
          if (reachers > 1) break;
        }
      }
      if (reachers == 1 && !contains_sorted(mpr[v], sole)) cover_with(sole);
    }

    // Step 2: greedy max-cover on the rest.
    while (!uncovered.empty()) {
      NodeId best = kInvalidNode;
      std::size_t best_gain = 0;
      for (NodeId w : g.neighbors(v)) {
        if (contains_sorted(mpr[v], w)) continue;
        std::size_t gain = 0;
        for (NodeId x : g.neighbors(w))
          if (contains_sorted(uncovered, x)) ++gain;
        if (gain > best_gain) {
          best_gain = gain;
          best = w;
        }
      }
      MANET_ASSERT(best != kInvalidNode,
                   "every 2-hop node is reachable via some neighbor");
      cover_with(best);
    }
  }
  return mpr;
}

std::string validate_mpr_sets(const graph::Graph& g,
                              const std::vector<NodeSet>& mpr) {
  std::ostringstream err;
  if (mpr.size() != g.order()) {
    err << "mpr table size mismatch";
    return err.str();
  }
  for (NodeId v = 0; v < g.order(); ++v) {
    for (NodeId w : mpr[v]) {
      if (!g.has_edge(v, w)) {
        err << "mpr[" << v << "] contains non-neighbor " << w;
        return err.str();
      }
    }
    for (NodeId w : g.neighbors(v)) {
      for (NodeId x : g.neighbors(w)) {
        if (x == v || g.has_edge(v, x)) continue;
        bool covered = false;
        for (NodeId m : mpr[v])
          if (g.has_edge(m, x)) covered = true;
        if (!covered) {
          err << "2-hop node " << x << " of " << v << " uncovered";
          return err.str();
        }
      }
    }
  }
  return {};
}

BroadcastStats mpr_broadcast(const graph::Graph& g,
                             const std::vector<NodeSet>& mpr,
                             NodeId source) {
  MANET_REQUIRE(source < g.order(), "source out of range");
  MANET_REQUIRE(mpr.size() == g.order(), "mpr table does not match graph");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> transmitted(g.order(), 0);
  std::deque<NodeId> queue{source};
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  transmitted[source] = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    for (NodeId w : g.neighbors(v)) {
      if (!stats.received[w])
        stats.first_copy_hops[w] = stats.first_copy_hops[v] + 1;
      stats.received[w] = 1;
      // w relays once, when a copy arrives from a node that selected it.
      if (!transmitted[w] && contains_sorted(mpr[v], w)) {
        transmitted[w] = 1;
        queue.push_back(w);
      }
    }
  }
  finalize(stats, "mpr");
  return stats;
}

BroadcastStats mpr_broadcast(const graph::Graph& g, NodeId source) {
  return mpr_broadcast(g, compute_mpr_sets(g), source);
}

}  // namespace manet::broadcast
