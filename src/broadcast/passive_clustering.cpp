#include "broadcast/passive_clustering.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace manet::broadcast {

PassiveClusteringSession::PassiveClusteringSession(std::size_t order)
    : states_(order, PassiveState::kCandidate), heard_heads_(order) {}

std::size_t PassiveClusteringSession::clusterhead_count() const {
  return static_cast<std::size_t>(std::count(
      states_.begin(), states_.end(), PassiveState::kClusterhead));
}

std::size_t PassiveClusteringSession::gateway_count() const {
  return static_cast<std::size_t>(
      std::count(states_.begin(), states_.end(), PassiveState::kGateway));
}

void PassiveClusteringSession::refresh_state(NodeId v) {
  if (states_[v] == PassiveState::kClusterhead) return;
  if (heard_heads_[v].size() >= 2)
    states_[v] = PassiveState::kGateway;
  else if (heard_heads_[v].size() == 1)
    states_[v] = PassiveState::kOrdinary;
}

BroadcastStats PassiveClusteringSession::broadcast(const graph::Graph& g,
                                                   NodeId source) {
  MANET_REQUIRE(g.order() == states_.size(),
                "snapshot does not match the session's node population");
  MANET_REQUIRE(source < g.order(), "source out of range");
  BroadcastStats stats;
  stats.received.assign(g.order(), 0);
  stats.first_copy_hops.assign(g.order(), kUnreachableHops);
  std::vector<char> scheduled(g.order(), 0);
  std::deque<NodeId> queue{source};
  stats.received[source] = 1;
  stats.first_copy_hops[source] = 0;
  scheduled[source] = 1;

  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    // First declaration wins: a successful transmission with no
    // clusterhead overheard turns a candidate into a clusterhead.
    if (states_[v] == PassiveState::kCandidate && heard_heads_[v].empty())
      states_[v] = PassiveState::kClusterhead;

    insert_sorted(stats.forward_nodes, v);
    ++stats.transmissions;
    for (NodeId w : g.neighbors(v)) {
      const bool first_copy = !stats.received[w];
      if (first_copy)
        stats.first_copy_hops[w] = stats.first_copy_hops[v] + 1;
      stats.received[w] = 1;
      // Relay decision is made at receipt, against the state the node
      // held *before* this packet's own clusterhead claim lands —
      // ordinary nodes resign their relay role, everyone else commits.
      // State transitions triggered by this packet constrain only later
      // packets, matching the no-setup-phase behavior of the protocol
      // (the very first flood therefore propagates like blind flooding
      // while the structure forms).
      if (first_copy && !scheduled[w] &&
          states_[w] != PassiveState::kOrdinary) {
        scheduled[w] = 1;
        queue.push_back(w);
      }
      if (states_[v] == PassiveState::kClusterhead) {
        insert_sorted(heard_heads_[w], v);
        refresh_state(w);
      }
    }
  }
  finalize(stats, "passive_clustering");
  return stats;
}

}  // namespace manet::broadcast
