// Cluster-based forwarding tree (Pagani & Rossi) from the paper's §2:
//
//   "The forwarding tree is rooted at the clusterhead of source and
//    follows the order of clusterhead, gateway, then clusterhead again to
//    build the tree. … The forwarding tree, thus, can be built level by
//    level until all the clusters join in the tree."
//
// We build the tree over the cluster graph: BFS from the source's
// clusterhead; each newly reached clusterhead is attached through the
// connecting gateway (or gateway pair, for a 3-hop neighbor) with the
// smallest ids. Broadcasting along the tree makes exactly the tree nodes
// (plus a non-clusterhead source) forward. The paper's §2 criticism —
// "such a forwarding tree is hard to maintain in MANETs" — is quantified
// by the mobility bench; here we provide the structure and its broadcast.
#pragma once

#include <string>
#include <vector>

#include "broadcast/stats.hpp"
#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"
#include "graph/graph.hpp"

namespace manet::broadcast {

/// A cluster-based forwarding tree for one root cluster.
struct ForwardingTree {
  NodeId root_head = kInvalidNode;
  /// parent[v] = upstream tree node (kInvalidNode for the root and
  /// non-members).
  std::vector<NodeId> parent;
  /// All tree members (heads + connecting gateways), sorted.
  NodeSet members;

  bool contains(NodeId v) const { return contains_sorted(members, v); }
};

/// Builds the tree rooted at `source`'s clusterhead. Requires a connected
/// graph (every cluster joins the tree).
ForwardingTree build_forwarding_tree(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     const core::NeighborTables& tables,
                                     NodeId source);

/// Checks tree invariants: parent edges exist, members span all clusters,
/// the tree is acyclic and connected. Empty string when valid.
std::string validate_forwarding_tree(const graph::Graph& g,
                                     const cluster::Clustering& c,
                                     const ForwardingTree& tree);

/// Broadcast along the tree: the source sends to its head, every tree
/// member forwards once.
BroadcastStats forwarding_tree_broadcast(const graph::Graph& g,
                                         const ForwardingTree& tree,
                                         NodeId source);

}  // namespace manet::broadcast
