#include "obs/journal.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace manet::obs {

Journal::Journal(std::size_t capacity) : capacity_(capacity) {
  MANET_REQUIRE(capacity_ > 0, "journal needs a positive capacity");
#if MANET_OBS_ENABLED
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
#endif
}

void Journal::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::optional<JournalEvent> Journal::find_trace(
    std::uint64_t trace_id) const {
  std::optional<JournalEvent> hit;
  if (trace_id == 0) return hit;
  for_each([&](const JournalEvent& e) {
    if (e.trace_id == trace_id) hit = e;
  });
  return hit;
}

std::vector<JournalEvent> Journal::causal_chain(
    std::uint64_t trace_id) const {
  std::vector<JournalEvent> chain;
  std::uint64_t cursor = trace_id;
  // Parent ids strictly precede their children (assigned by a monotonic
  // send counter), so the walk terminates; the size bound is defensive.
  while (cursor != 0 && chain.size() <= size()) {
    const auto e = find_trace(cursor);
    if (!e) break;  // ancestor overwritten by ring wrap
    chain.push_back(*e);
    cursor = e->parent_id;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::optional<JournalEvent> Journal::last_event_of(
    std::uint32_t node) const {
  std::optional<JournalEvent> hit;
  for_each([&](const JournalEvent& e) {
    if (e.node == node) hit = e;
  });
  return hit;
}

void Journal::write_jsonl(std::ostream& out) const {
  for_each([&](const JournalEvent& e) {
    out << "{\"tick\":" << e.tick << ",\"round\":" << e.round
        << ",\"node\":" << e.node << ",\"type\":\"" << e.type
        << "\",\"trace\":" << e.trace_id << ",\"parent\":" << e.parent_id
        << ",\"depth\":" << e.depth << ",\"a\":" << e.a << ",\"b\":" << e.b
        << "}\n";
  });
}

void Journal::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path);
  MANET_REQUIRE(out.good(), "cannot open journal output file: " + path);
  write_jsonl(out);
}

std::string Journal::format_event(const JournalEvent& e) {
  std::ostringstream os;
  os << "[tick " << e.tick << " round " << e.round << "] node " << e.node
     << ' ' << e.type << " trace=" << e.trace_id
     << " parent=" << e.parent_id << " depth=" << e.depth << " a=" << e.a
     << " b=" << e.b;
  return os.str();
}

}  // namespace manet::obs
