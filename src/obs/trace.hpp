// Flight recorder: phase spans and instant events in a fixed-size ring
// buffer, exportable as Chrome-trace / Perfetto JSON or as a plain-text
// tail dump for crash reports.
//
// The recorder keeps the *last* `capacity` events — a long churn soak
// overwrites its own history and the tail always holds the ticks that
// led up to an oracle mismatch or exception. Timestamps come from a
// steady clock relative to the recorder's construction (or are supplied
// explicitly, e.g. "one simulator round = 1 ms" for deterministic
// protocol traces). Wall-clock values live only here, never in the
// metrics registry, so metric snapshots stay bitwise-deterministic.
//
// Event names and categories are stored as borrowed `const char*` — pass
// string literals (or strings that outlive the recorder) containing only
// JSON-safe characters.
//
// Not thread-safe: one recorder per instrumented single-threaded engine.
// Compiled out entirely with -DMANET_OBS=OFF.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef MANET_OBS_ENABLED
#define MANET_OBS_ENABLED 1
#endif

namespace manet::obs {

class Journal;

/// One recorded event. `phase` follows the Chrome trace-event format:
/// 'X' = complete span (ts + dur), 'i' = instant, 's'/'t'/'f' = flow
/// start/step/finish (rendered as arrows between the flow's events).
struct TraceEvent {
  const char* cat = "";
  const char* name = "";
  char phase = 'i';
  std::uint32_t tid = 0;       ///< Chrome "thread" — used as a track id
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;    ///< spans only
  std::uint64_t tick = 0;      ///< engine tick / simulator round
  const char* arg_name = nullptr;  ///< optional extra argument
  std::uint64_t arg = 0;
  std::uint64_t flow_id = 0;   ///< flow phases only ('s'/'t'/'f')
};

/// Fixed-capacity event ring ("flight recorder").
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Nanoseconds since this recorder was constructed.
  std::uint64_t now_ns() const;

  void instant(const char* cat, const char* name, std::uint64_t tick,
               std::uint32_t tid = 0, const char* arg_name = nullptr,
               std::uint64_t arg = 0);

  /// Instant event at an explicit timestamp (deterministic traces).
  void instant_at(std::uint64_t ts_ns, const char* cat, const char* name,
                  std::uint64_t tick, std::uint32_t tid = 0,
                  const char* arg_name = nullptr, std::uint64_t arg = 0);

  /// Complete span [ts_ns, ts_ns + dur_ns).
  void complete(const char* cat, const char* name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t tick,
                std::uint32_t tid = 0, const char* arg_name = nullptr,
                std::uint64_t arg = 0);

  /// Flow events: all events of one flow must share (cat, name, id) —
  /// Chrome binds them into a chain of arrows across tracks. Begin once
  /// per flow; steps/ends whose begin has been evicted from the ring are
  /// dropped at export time (no dangling arrows).
  void flow_begin_at(std::uint64_t ts_ns, const char* cat, const char* name,
                     std::uint64_t flow_id, std::uint64_t tick,
                     std::uint32_t tid = 0);
  void flow_step_at(std::uint64_t ts_ns, const char* cat, const char* name,
                    std::uint64_t flow_id, std::uint64_t tick,
                    std::uint32_t tid = 0);
  void flow_end_at(std::uint64_t ts_ns, const char* cat, const char* name,
                   std::uint64_t flow_id, std::uint64_t tick,
                   std::uint32_t tid = 0);

  /// Events currently held (<= capacity).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (size() plus overwritten ones).
  std::uint64_t total_recorded() const { return total_; }

  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}) — open in
  /// chrome://tracing or https://ui.perfetto.dev.
  ///
  /// When a `journal` is supplied, its protocol events are synthesized
  /// into the export alongside the ring's own events: one instant per
  /// transmission on the sender's track (ts = round x kRoundNs) plus the
  /// causal flow pair — an 's' opening the message's own flow and, for
  /// caused messages whose parent is still in the journal window, an 'f'
  /// closing the parent's flow (the arrow from parent to child).
  /// Synthesis keeps the simulator's per-send hot path down to a single
  /// journal write; the renderable events only exist at export time.
  void write_chrome_trace(std::ostream& out,
                          const Journal* journal = nullptr) const;
  void write_chrome_trace_file(const std::string& path,
                               const Journal* journal = nullptr) const;

  /// Last `max_events` events as readable text (crash / mismatch dumps).
  void dump_tail(std::ostream& out, std::size_t max_events) const;

 private:
  void push(const TraceEvent& e);
  /// Invokes `fn(event)` oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const;

  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII phase span: records a complete event covering its lifetime into
/// `rec` (nullptr = disabled). The optional argument value can be filled
/// in mid-span once the phase knows it (e.g. rows recomputed).
class Span {
 public:
#if MANET_OBS_ENABLED
  Span(TraceRecorder* rec, const char* cat, const char* name,
       std::uint64_t tick, const char* arg_name = nullptr)
      : rec_(rec), cat_(cat), name_(name), arg_name_(arg_name), tick_(tick) {
    if (rec_) start_ns_ = rec_->now_ns();
  }
  ~Span() {
    if (rec_)
      rec_->complete(cat_, name_, start_ns_, rec_->now_ns() - start_ns_,
                     tick_, 0, arg_name_, arg_);
  }
  void set_arg(std::uint64_t v) { arg_ = v; }

 private:
  TraceRecorder* rec_;
  const char* cat_;
  const char* name_;
  const char* arg_name_;
  std::uint64_t tick_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
#else
  Span(TraceRecorder*, const char*, const char*, std::uint64_t,
       const char* = nullptr) {}
  void set_arg(std::uint64_t) {}
#endif

 public:
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

}  // namespace manet::obs
