// Bounded structured event journal: the queryable sibling of the trace
// ring. Where the TraceRecorder stores renderable Chrome events, the
// Journal keeps *protocol* events — (tick, round, node, message type,
// causal trace/parent ids, payload summary) — so divergence forensics
// and the trace_inspect CLI can walk a repair wave backward through its
// parent links instead of eyeballing a raw event tail.
//
// Fixed capacity, overwrites oldest (flight-recorder semantics): after a
// long soak the journal holds the ticks leading up to the failure, which
// is exactly the slice forensics needs. Every stored field is an integer
// derived from deterministic protocol quantities (never wall-clock), so
// two runs of the same seed produce byte-identical journals.
//
// `type` is a borrowed const char* — pass string literals (the message
// type names) that outlive the journal.
//
// Not thread-safe: one journal per instrumented sequential engine.
// Compiled out entirely with -DMANET_OBS=OFF.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#ifndef MANET_OBS_ENABLED
#define MANET_OBS_ENABLED 1
#endif

namespace manet::obs {

/// One simulated round maps to 1 ms of trace time — the convention the
/// simulator's timestamps and the export-time synthesis of journal
/// events into Chrome trace events both follow, so protocol exchanges
/// line up round-by-round in Perfetto.
inline constexpr std::uint64_t kRoundNs = 1'000'000;

/// One journaled protocol event (a message transmission).
struct JournalEvent {
  std::uint64_t tick = 0;       ///< engine tick (set_tick epoch)
  std::uint32_t round = 0;      ///< simulator round of the send
  std::uint32_t node = 0;       ///< sending node
  const char* type = "";        ///< message type name (borrowed literal)
  std::uint64_t trace_id = 0;   ///< causal id of this message
  std::uint64_t parent_id = 0;  ///< causal id of the triggering message
  std::uint32_t depth = 0;      ///< causal wave depth (0 = wave root)
  std::uint64_t a = 0;          ///< type-specific payload summary
  std::uint64_t b = 0;          ///< second payload summary
};

/// Fixed-capacity ring of protocol events with causal-chain queries.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Journal(std::size_t capacity = kDefaultCapacity);

  /// Engine-tick epoch stamped on subsequent record() calls.
  void set_tick(std::uint64_t tick) {
#if MANET_OBS_ENABLED
    tick_ = tick;
#else
    (void)tick;
#endif
  }
  std::uint64_t current_tick() const { return tick_; }

  /// Inline: this is the only per-transmission work on the simulator's
  /// observed hot path, so it must compile down to a handful of stores.
  void record(std::uint32_t round, std::uint32_t node, const char* type,
              std::uint64_t trace_id, std::uint64_t parent_id,
              std::uint32_t depth, std::uint64_t a, std::uint64_t b) {
#if MANET_OBS_ENABLED
    const JournalEvent e{tick_, round, node, type, trace_id, parent_id,
                         depth,  a,     b};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
#if defined(__GNUC__)
      // A full ring dwarfs the cache, so each slot's first store takes
      // a read-for-ownership miss all the way to DRAM; prefetching a
      // few slots ahead overlaps that miss with protocol work instead
      // of stalling the send.
      constexpr std::size_t kAhead = 8;
      const std::size_t pf = next_ + kAhead < capacity_
                                 ? next_ + kAhead
                                 : next_ + kAhead - capacity_;
      __builtin_prefetch(ring_.data() + pf, 1);
#endif
    }
    if (++next_ == capacity_) next_ = 0;
    ++total_;
#else
    (void)round;
    (void)node;
    (void)type;
    (void)trace_id;
    (void)parent_id;
    (void)depth;
    (void)a;
    (void)b;
#endif
  }

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (size() plus overwritten ones).
  std::uint64_t total_recorded() const { return total_; }
  void clear();

  /// Invokes `fn(event)` oldest-first over the retained window.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (ring_.size() < capacity_) {
      for (const auto& e : ring_) fn(e);
      return;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i)
      fn(ring_[(next_ + i) % capacity_]);
  }

  /// The retained event with this causal id (ids are unique per run).
  std::optional<JournalEvent> find_trace(std::uint64_t trace_id) const;

  /// The causal slice of a message: the event itself plus every retained
  /// ancestor, oldest first. Empty when the id is not in the window; the
  /// chain ends early where an ancestor has been overwritten.
  std::vector<JournalEvent> causal_chain(std::uint64_t trace_id) const;

  /// The newest retained event sent by `node` (forensics entry point).
  std::optional<JournalEvent> last_event_of(std::uint32_t node) const;

  /// One compact JSON object per line (the trace_inspect CLI's input
  /// format): {"tick":..,"round":..,"node":..,"type":"..","trace":..,
  /// "parent":..,"depth":..,"a":..,"b":..}.
  void write_jsonl(std::ostream& out) const;
  void write_jsonl_file(const std::string& path) const;

  /// Human-readable one-line rendering (forensic dumps, timelines).
  static std::string format_event(const JournalEvent& e);

 private:
  std::vector<JournalEvent> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace manet::obs
