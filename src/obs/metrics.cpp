#include "obs/metrics.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace manet::obs {
namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_uint_list(std::string& out,
                      const std::vector<std::uint64_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

}  // namespace

MetricsSnapshot MetricsSnapshot::deterministic() const {
  const auto is_scheduling = [](std::string_view name) {
    return name.find(".lane.") != std::string_view::npos ||
           name.find(".pool.") != std::string_view::npos;
  };
  MetricsSnapshot out;
  for (const auto& c : counters)
    if (!is_scheduling(c.name)) out.counters.push_back(c);
  for (const auto& g : gauges)
    if (!is_scheduling(g.name)) out.gauges.push_back(g);
  for (const auto& h : histograms)
    if (!is_scheduling(h.name)) out.histograms.push_back(h);
  return out;
}

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return fallback;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, counters[i].name);
    out += ':';
    out += std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, gauges[i].name);
    out += ':';
    out += std::to_string(gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i) out += ',';
    append_json_string(out, h.name);
    out += ":{\"edges\":";
    append_uint_list(out, h.edges);
    out += ",\"buckets\":";
    append_uint_list(out, h.buckets);
    out += ",\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

void MetricsSnapshot::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  MANET_REQUIRE(out.good(), "cannot open metrics output file: " + path);
  out << to_json() << '\n';
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& c : counters)
    os << "counter   " << c.name << " = " << c.value << '\n';
  for (const auto& g : gauges)
    os << "gauge     " << g.name << " = " << g.value << '\n';
  for (const auto& h : histograms) {
    os << "histogram " << h.name << ": count=" << h.count << " sum=" << h.sum
       << " buckets=[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      os << (i ? "," : "") << h.buckets[i];
    os << "]\n";
  }
  return os.str();
}

Counter Registry::counter(std::string_view name) {
#if MANET_OBS_ENABLED
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = counters_.try_emplace(std::string(name));
  (void)inserted;
  return Counter(&it->second);
#else
  (void)name;
  return Counter();
#endif
}

Gauge Registry::gauge(std::string_view name) {
#if MANET_OBS_ENABLED
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = gauges_.try_emplace(std::string(name));
  (void)inserted;
  return Gauge(&it->second);
#else
  (void)name;
  return Gauge();
#endif
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<std::uint64_t> edges) {
#if MANET_OBS_ENABLED
  MANET_REQUIRE(!edges.empty(), "histogram needs at least one bucket edge");
  MANET_REQUIRE(std::is_sorted(edges.begin(), edges.end()) &&
                    std::adjacent_find(edges.begin(), edges.end()) ==
                        edges.end(),
                "histogram edges must be strictly increasing");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = histograms_.try_emplace(std::string(name));
  if (inserted) {
    it->second.edges = std::move(edges);
    it->second.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(
            it->second.edges.size() + 1);
    for (std::size_t i = 0; i <= it->second.edges.size(); ++i)
      it->second.buckets[i].store(0, std::memory_order_relaxed);
  }
  return Histogram(&it->second);
#else
  (void)name;
  (void)edges;
  return Histogram();
#endif
}

void Registry::reset() {
#if MANET_OBS_ENABLED
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_)
    cell.store(0, std::memory_order_relaxed);
  for (auto& [name, cell] : gauges_)
    cell.store(0, std::memory_order_relaxed);
  for (auto& [name, cells] : histograms_) {
    for (std::size_t i = 0; i <= cells.edges.size(); ++i)
      cells.buckets[i].store(0, std::memory_order_relaxed);
    cells.count.store(0, std::memory_order_relaxed);
    cells.sum.store(0, std::memory_order_relaxed);
  }
#endif
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
#if MANET_OBS_ENABLED
  const std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_)
    snap.counters.push_back({name, cell.load(std::memory_order_relaxed)});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_)
    snap.gauges.push_back({name, cell.load(std::memory_order_relaxed)});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cells] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.edges = cells.edges;
    h.buckets.resize(cells.edges.size() + 1);
    for (std::size_t i = 0; i <= cells.edges.size(); ++i)
      h.buckets[i] = cells.buckets[i].load(std::memory_order_relaxed);
    h.count = cells.count.load(std::memory_order_relaxed);
    h.sum = cells.sum.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(h));
  }
#endif
  return snap;
}

Registry& global_registry() {
  static Registry registry;
  return registry;
}

}  // namespace manet::obs
