// One observability session = one metrics registry + one flight
// recorder. Engines take a `Session*` (nullptr = not observed) so a
// bench or experiment can scope metrics to a single run, snapshot them
// into its JSON record, and export the trace on demand.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace manet::obs {

/// Bundles the registry and the trace ring handed to instrumented
/// engines. Non-copyable (registries hand out stable pointers).
struct Session {
  Registry registry;
  TraceRecorder trace;

  Session() = default;
  explicit Session(std::size_t trace_capacity) : trace(trace_capacity) {}
};

}  // namespace manet::obs
