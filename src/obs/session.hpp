// One observability session = one metrics registry + one flight
// recorder + one protocol-event journal. Engines take a `Session*`
// (nullptr = not observed) so a bench or experiment can scope metrics to
// a single run, snapshot them into its JSON record, and export the trace
// and journal on demand.
#pragma once

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace manet::obs {

/// Bundles the registry, the trace ring and the journal handed to
/// instrumented engines. Non-copyable (registries hand out stable
/// pointers).
struct Session {
  Registry registry;
  TraceRecorder trace;
  Journal journal;

  Session() = default;
  explicit Session(std::size_t trace_capacity)
      : trace(trace_capacity), journal(trace_capacity) {}
};

}  // namespace manet::obs
