// Deterministic low-overhead metrics: named counters, gauges and
// fixed-bucket histograms behind pointer-sized handles.
//
// Design rules, in force everywhere a metric is recorded:
//
//  * The hot path is a relaxed atomic add through a cached handle — no
//    locks, no lookups, no allocation. Registration (the name lookup)
//    happens once, outside the measured region.
//  * Every stored value is an *integer* derived from deterministic
//    quantities (counts, sizes, ids). Never record wall-clock time into
//    the registry: timing belongs in the trace (obs/trace.hpp), metric
//    snapshots must be bitwise identical across reruns and thread
//    counts. Integer atomic adds commute, so concurrent recording (e.g.
//    under stats::ReplicationPolicy::threads) cannot perturb a
//    snapshot.
//  * Compiled out entirely with -DMANET_OBS=OFF: handles become inert,
//    record calls compile to nothing, registries stay empty.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef MANET_OBS_ENABLED
#define MANET_OBS_ENABLED 1
#endif

namespace manet::obs {

/// True when the observability layer is compiled in (MANET_OBS=ON).
inline constexpr bool kEnabled = MANET_OBS_ENABLED != 0;

/// Monotonic event count. Handle into a Registry cell; copyable, inert
/// when default-constructed or compiled out.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept {
#if MANET_OBS_ENABLED
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

 private:
  friend class Registry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Last-write-wins scalar (e.g. "quiescence round"). Set it from one
/// thread only — unlike counters, concurrent sets race by design.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept {
#if MANET_OBS_ENABLED
    if (cell_) cell_->store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
  std::atomic<std::int64_t>* cell_ = nullptr;
};

/// Backing storage of one histogram: `edges` (strictly increasing upper
/// bounds) split the value axis into edges.size()+1 cells —
/// bucket 0 = underflow (v < edges[0]), bucket i = [edges[i-1],
/// edges[i]), last bucket = overflow (v >= edges.back()).
struct HistogramCells {
  std::vector<std::uint64_t> edges;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

/// Fixed-bucket distribution of deterministic integer values.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const noexcept {
#if MANET_OBS_ENABLED
    if (!cells_) return;
    const auto& e = cells_->edges;
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(e.begin(), e.end(), value) - e.begin());
    cells_->buckets[idx].fetch_add(1, std::memory_order_relaxed);
    cells_->count.fetch_add(1, std::memory_order_relaxed);
    cells_->sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  /// Records `count` identical samples in O(1) — the flush half of the
  /// accumulate-locally-flush-per-tick pattern hot loops use to keep
  /// per-event instrumentation off their critical path.
  void record_many(std::uint64_t value, std::uint64_t count) const noexcept {
#if MANET_OBS_ENABLED
    if (!cells_ || count == 0) return;
    const auto& e = cells_->edges;
    const auto idx = static_cast<std::size_t>(
        std::upper_bound(e.begin(), e.end(), value) - e.begin());
    cells_->buckets[idx].fetch_add(count, std::memory_order_relaxed);
    cells_->count.fetch_add(count, std::memory_order_relaxed);
    cells_->sum.fetch_add(value * count, std::memory_order_relaxed);
#else
    (void)value;
    (void)count;
#endif
  }

 private:
  friend class Registry;
  explicit Histogram(HistogramCells* cells) : cells_(cells) {}
  HistogramCells* cells_ = nullptr;
};

/// Point-in-time copy of every registered metric, sorted by name.
/// Byte-identical serialization for byte-identical values — the unit of
/// the determinism contract.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterValue&) const = default;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    bool operator==(const GaugeValue&) const = default;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> edges;
    std::vector<std::uint64_t> buckets;  ///< underflow .. overflow
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    bool operator==(const HistogramValue&) const = default;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool operator==(const MetricsSnapshot&) const = default;

  /// Counter value by exact name; `fallback` when absent.
  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;

  /// Copy with the scheduling/wall-clock metrics removed: any metric
  /// whose name contains ".lane." or ".pool." records which thread did
  /// what or how long it took, which legitimately varies across thread
  /// counts and reruns. Everything else is covered by the determinism
  /// contract — compare `deterministic()` snapshots, not full ones,
  /// when asserting cross-thread-count equality.
  MetricsSnapshot deterministic() const;

  /// Compact single-line JSON (fixed key order, integers only) — embeds
  /// verbatim as the `metrics` block of bench records.
  std::string to_json() const;

  /// to_json() straight to a file (bench metric artifacts).
  void write_json_file(const std::string& path) const;

  /// Human-readable multi-line dump (flight-recorder stderr reports).
  std::string to_text() const;
};

/// Named metric store. Registration is mutex-protected and returns
/// stable handles (the cells live in node-based maps); recording through
/// a handle never touches the registry again. First registration wins:
/// re-registering a histogram name returns the existing cells.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `edges` must be non-empty and strictly increasing.
  Histogram histogram(std::string_view name,
                      std::vector<std::uint64_t> edges);

  /// Zeroes every value; registrations (and handles) stay valid.
  void reset();

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> counters_;
  std::map<std::string, std::atomic<std::int64_t>, std::less<>> gauges_;
  std::map<std::string, HistogramCells, std::less<>> histograms_;
};

/// Process-wide registry for ambient instrumentation (the broadcast
/// protocol zoo records here). Prefer an explicit per-run Registry /
/// Session when results must be isolated, and reset() this one before
/// measuring against it.
Registry& global_registry();

}  // namespace manet::obs
