#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "common/assert.hpp"
#include "obs/journal.hpp"

namespace manet::obs {

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  MANET_REQUIRE(capacity_ > 0, "trace recorder needs a positive capacity");
#if MANET_OBS_ENABLED
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
#endif
}

std::uint64_t TraceRecorder::now_ns() const {
#if MANET_OBS_ENABLED
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
#else
  return 0;
#endif
}

void TraceRecorder::push(const TraceEvent& e) {
#if MANET_OBS_ENABLED
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
  }
  if (++next_ == capacity_) next_ = 0;
  ++total_;
#else
  (void)e;
#endif
}

void TraceRecorder::instant(const char* cat, const char* name,
                            std::uint64_t tick, std::uint32_t tid,
                            const char* arg_name, std::uint64_t arg) {
  instant_at(now_ns(), cat, name, tick, tid, arg_name, arg);
}

void TraceRecorder::instant_at(std::uint64_t ts_ns, const char* cat,
                               const char* name, std::uint64_t tick,
                               std::uint32_t tid, const char* arg_name,
                               std::uint64_t arg) {
  push({cat, name, 'i', tid, ts_ns, 0, tick, arg_name, arg});
}

void TraceRecorder::complete(const char* cat, const char* name,
                             std::uint64_t ts_ns, std::uint64_t dur_ns,
                             std::uint64_t tick, std::uint32_t tid,
                             const char* arg_name, std::uint64_t arg) {
  push({cat, name, 'X', tid, ts_ns, dur_ns, tick, arg_name, arg});
}

void TraceRecorder::flow_begin_at(std::uint64_t ts_ns, const char* cat,
                                  const char* name, std::uint64_t flow_id,
                                  std::uint64_t tick, std::uint32_t tid) {
  push({cat, name, 's', tid, ts_ns, 0, tick, nullptr, 0, flow_id});
}

void TraceRecorder::flow_step_at(std::uint64_t ts_ns, const char* cat,
                                 const char* name, std::uint64_t flow_id,
                                 std::uint64_t tick, std::uint32_t tid) {
  push({cat, name, 't', tid, ts_ns, 0, tick, nullptr, 0, flow_id});
}

void TraceRecorder::flow_end_at(std::uint64_t ts_ns, const char* cat,
                                const char* name, std::uint64_t flow_id,
                                std::uint64_t tick, std::uint32_t tid) {
  push({cat, name, 'f', tid, ts_ns, 0, tick, nullptr, 0, flow_id});
}

std::size_t TraceRecorder::size() const { return ring_.size(); }

void TraceRecorder::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

template <typename Fn>
void TraceRecorder::for_each(Fn&& fn) const {
  if (ring_.size() < capacity_) {
    for (const auto& e : ring_) fn(e);
    return;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i)
    fn(ring_[(next_ + i) % capacity_]);
}

void TraceRecorder::write_chrome_trace(std::ostream& out,
                                       const Journal* journal) const {
  // Ring-wrap orphan repair: a flow step/end whose begin was overwritten
  // would render as a dangling arrow from nowhere, so collect the flow
  // ids that still have their 's' in the retained window and drop the
  // rest at export (the ring itself keeps everything it was given).
  std::unordered_set<std::uint64_t> live_flows;
  for_each([&](const TraceEvent& e) {
    if (e.phase == 's') live_flows.insert(e.flow_id);
  });
  // Same repair for synthesized flows: a journal event's 'f' (the arrow
  // from its parent) is only emitted when the parent's own event — and
  // thus its 's' — survives in the journal window.
  std::unordered_set<std::uint64_t> journal_ids;
  if (journal != nullptr)
    journal->for_each(
        [&](const JournalEvent& je) { journal_ids.insert(je.trace_id); });

  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  const auto emit = [&](const TraceEvent& e) {
    const bool flow = e.phase == 's' || e.phase == 't' || e.phase == 'f';
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
        << "\",\"ph\":\"" << e.phase << "\",\"pid\":0,\"tid\":" << e.tid;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1000.0);
    out << ",\"ts\":" << buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      out << ",\"dur\":" << buf;
    }
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (flow) {
      out << ",\"id\":" << e.flow_id;
      if (e.phase == 'f') out << ",\"bp\":\"e\"";
    }
    out << ",\"args\":{\"tick\":" << e.tick;
    if (e.arg_name)
      out << ",\"" << e.arg_name << "\":" << e.arg;
    out << "}}";
  };

  if (journal != nullptr)
    journal->for_each([&](const JournalEvent& je) {
      const std::uint64_t ts = std::uint64_t{je.round} * kRoundNs;
      emit({"net", je.type, 'i', je.node, ts, 0, je.round, "from", je.node});
      emit({"proto", "wave", 's', je.node, ts, 0, je.round, nullptr, 0,
            je.trace_id});
      if (je.parent_id != 0 && journal_ids.contains(je.parent_id))
        emit({"proto", "wave", 'f', je.node, ts, 0, je.round, nullptr, 0,
              je.parent_id});
    });

  for_each([&](const TraceEvent& e) {
    const bool flow = e.phase == 's' || e.phase == 't' || e.phase == 'f';
    if (flow && e.phase != 's' && !live_flows.contains(e.flow_id))
      return;  // orphaned by ring wrap
    emit(e);
  });
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceRecorder::write_chrome_trace_file(const std::string& path,
                                            const Journal* journal) const {
  std::ofstream out(path);
  MANET_REQUIRE(out.good(), "cannot open trace output file: " + path);
  write_chrome_trace(out, journal);
}

void TraceRecorder::dump_tail(std::ostream& out,
                              std::size_t max_events) const {
  const std::size_t held = ring_.size();
  const std::size_t shown = std::min(held, max_events);
  out << "trace tail: last " << shown << " of " << total_
      << " recorded events\n";
  std::size_t index = 0;
  char buf[64];
  for_each([&](const TraceEvent& e) {
    ++index;
    if (held - index >= shown) return;  // skip events before the tail
    out << "  [tick " << e.tick << "] " << e.cat << '/' << e.name;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.1f",
                    static_cast<double>(e.dur_ns) / 1000.0);
      out << ' ' << buf << "us";
    }
    if (e.phase == 's' || e.phase == 't' || e.phase == 'f')
      out << " flow=" << e.flow_id;
    if (e.arg_name) out << ' ' << e.arg_name << '=' << e.arg;
    if (e.tid != 0) out << " (tid " << e.tid << ')';
    out << '\n';
  });
}

}  // namespace manet::obs
