// Content-interned, refcounted payload rows for the maintenance
// protocol's per-node message caches.
//
// Every node caches its neighbors' last CH_HOP1/CH_HOP2 payloads and the
// selection sets of nearby gateway origins. Those payloads are broadcast
// — one sender's row lands identically in every neighbor's cache, and
// one origin's selection set lands identically in every selected node —
// so storing them per cache multiplies the row bytes by the average
// degree. The store deduplicates by content: a row is held once, callers
// hold 32-bit refs, and reference counts recycle slots when the last
// cache drops a row. At n=100k this is the difference between ~4.2 KB
// and ~1.5 KB of peak RSS per node.
//
// Concurrency contract (region-sharded delivery): intern/retain/release
// serialize on one mutex; content reads (hop1()/hop2()) are lock-free.
// A reader only ever dereferences refs it legitimately holds, which were
// interned under the mutex and published to the reader through the
// engine's region barriers (WorkerPool join), so reads race with nothing
// — rows live in fixed-capacity chunk slabs whose slots never move.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/ids.hpp"
#include "core/neighbor_tables.hpp"

namespace manet::proto {

/// Handle of one interned row. Ref 0 is the canonical empty row of
/// either kind: always valid, never released, the default of a cache
/// slot with no payload.
using RowRef = std::uint32_t;
inline constexpr RowRef kEmptyRow = 0;

namespace detail {

/// One refcounted intern table over rows of type Row. Slots live in
/// fixed-size chunks behind a bounded chunk directory, so a slot's
/// address never changes and lock-free readers are safe (see the
/// concurrency contract above).
template <typename Row>
class InternTable {
 public:
  InternTable() {
    table_.assign(64, 0);
    // Slot 0 = the pinned empty row.
    const auto [chunk, off] = locate(0);
    ensure_chunk(chunk);
    count_ = 1;
    refs_.push_back(1);  // pinned forever
    hash_of_.push_back(0);
  }

  /// Interns `row` (copying on first sight) and takes one reference.
  RowRef intern(const Row& row) {
    if (row.empty()) return kEmptyRow;
    const std::uint64_t h = hash(row);
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t mask = table_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      const std::uint32_t slot = table_[i];
      if (slot == 0) break;
      const RowRef r = slot - 1;
      if (hash_of_[r] == h && *row_ptr(r) == row) {
        ++refs_[r];
        return r;
      }
    }
    // New content: claim a slot, copy the row, link it into the table.
    RowRef r;
    if (!free_.empty()) {
      r = free_.back();
      free_.pop_back();
      *row_ptr(r) = row;
      refs_[r] = 1;
      hash_of_[r] = h;
    } else {
      r = static_cast<RowRef>(count_);
      const auto [chunk, off] = locate(count_);
      ensure_chunk(chunk);
      ++count_;
      chunks_[chunk][off] = row;
      refs_.push_back(1);
      hash_of_.push_back(h);
    }
    if ((live_ + 1) * 2 > table_.size()) grow_table();
    mask = table_.size() - 1;
    std::size_t i = h & mask;
    while (table_[i] != 0) i = (i + 1) & mask;
    table_[i] = r + 1;
    ++live_;
    return r;
  }

  /// Takes one more reference on an already-held row.
  void retain(RowRef r) {
    if (r == kEmptyRow) return;
    std::lock_guard<std::mutex> lock(mu_);
    MANET_ASSERT(refs_[r] > 0, "retain of a dead row");
    ++refs_[r];
  }

  /// Drops one reference; the slot recycles at zero.
  void release(RowRef r) {
    if (r == kEmptyRow) return;
    std::lock_guard<std::mutex> lock(mu_);
    MANET_ASSERT(refs_[r] > 0, "release of a dead row");
    if (--refs_[r] > 0) return;
    unlink(r);
    row_ptr(r)->clear();
    free_.push_back(r);
    --live_;
  }

  /// The row behind `r`. Lock-free (see the concurrency contract).
  const Row& get(RowRef r) const {
    if (r == kEmptyRow) return empty_;
    return *row_ptr(r);
  }

  /// Rows currently alive (the dedup numerator; empty row excluded).
  std::size_t live() const { return live_; }
  /// Slots ever allocated (the slab high-water mark).
  std::size_t slots() const { return count_; }
  /// Chunks allocated in the slab — the actual slab footprint, in units
  /// of kChunkSize rows. Chunks are claimed densely and never returned,
  /// so a flat chunk count under sustained churn is the free list doing
  /// its job: released slots are recycled before the slab grows.
  std::size_t chunks() const { return (count_ + kChunkSize - 1) >> kChunkBits; }

 private:
  static constexpr std::size_t kChunkBits = 10;  // 1024 rows per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 1 << 14;  // 16M rows

  static std::pair<std::size_t, std::size_t> locate(std::size_t r) {
    return {r >> kChunkBits, r & (kChunkSize - 1)};
  }

  Row* row_ptr(RowRef r) const {
    const auto [chunk, off] = locate(r);
    return &chunks_[chunk][off];
  }

  void ensure_chunk(std::size_t chunk) {
    MANET_REQUIRE(chunk < kMaxChunks, "row store slab exhausted");
    if (chunks_[chunk] == nullptr)
      chunks_[chunk] = std::make_unique<Row[]>(kChunkSize);
  }

  static std::uint64_t hash(const Row& row) {
    // FNV-1a over the elements' bytes (rows are flat POD sequences).
    std::uint64_t h = 1469598103934665603ull;
    const auto* bytes = reinterpret_cast<const unsigned char*>(row.data());
    const std::size_t len = row.size() * sizeof(row[0]);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  void unlink(RowRef r) {
    const std::size_t mask = table_.size() - 1;
    std::size_t i = hash_of_[r] & mask;
    while (table_[i] != r + 1) i = (i + 1) & mask;
    // Backward-shift deletion keeps probe chains intact.
    std::size_t hole = i;
    for (std::size_t j = (i + 1) & mask; table_[j] != 0; j = (j + 1) & mask) {
      const std::size_t home = hash_of_[table_[j] - 1] & mask;
      const bool reachable = hole <= j ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
      if (reachable) {
        table_[hole] = table_[j];
        hole = j;
      }
    }
    table_[hole] = 0;
  }

  void grow_table() {
    std::vector<std::uint32_t> fresh(table_.size() * 2, 0);
    const std::size_t mask = fresh.size() - 1;
    for (const std::uint32_t slot : table_) {
      if (slot == 0) continue;
      std::size_t i = hash_of_[slot - 1] & mask;
      while (fresh[i] != 0) i = (i + 1) & mask;
      fresh[i] = slot;
    }
    table_ = std::move(fresh);
  }

  mutable std::mutex mu_;
  std::unique_ptr<Row[]> chunks_[kMaxChunks];
  std::size_t count_ = 0;  ///< slots ever allocated
  std::size_t live_ = 0;   ///< rows currently referenced
  std::vector<std::uint32_t> refs_;
  std::vector<std::uint64_t> hash_of_;
  std::vector<RowRef> free_;
  std::vector<std::uint32_t> table_;  ///< open addressing, slot+1, 0=empty
  Row empty_;
};

}  // namespace detail

/// The engine-wide shared store: CH_HOP1-shaped rows (sorted NodeSets —
/// also gateway-selection payloads) and CH_HOP2-shaped rows.
class RowStore {
 public:
  RowRef intern_hop1(const NodeSet& row) { return hop1_.intern(row); }
  RowRef intern_hop2(const std::vector<core::Hop2Entry>& row) {
    return hop2_.intern(row);
  }
  void retain_hop1(RowRef r) { hop1_.retain(r); }
  void retain_hop2(RowRef r) { hop2_.retain(r); }
  void release_hop1(RowRef r) { hop1_.release(r); }
  void release_hop2(RowRef r) { hop2_.release(r); }
  const NodeSet& hop1(RowRef r) const { return hop1_.get(r); }
  const std::vector<core::Hop2Entry>& hop2(RowRef r) const {
    return hop2_.get(r);
  }

  std::size_t live_hop1() const { return hop1_.live(); }
  std::size_t live_hop2() const { return hop2_.live(); }
  std::size_t slots_hop1() const { return hop1_.slots(); }
  std::size_t slots_hop2() const { return hop2_.slots(); }
  std::size_t chunks_hop1() const { return hop1_.chunks(); }
  std::size_t chunks_hop2() const { return hop2_.chunks(); }

 private:
  detail::InternTable<NodeSet> hop1_;
  detail::InternTable<std::vector<core::Hop2Entry>> hop2_;
};

}  // namespace manet::proto
