#include "proto/engine.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::proto {

/// Simulator adapter over the DeltaTracker's maintained adjacency
/// overlay: commits between run() calls are immediately visible to
/// delivery.
class MaintenanceEngine::AdjacencyTopology final : public net::Topology {
 public:
  explicit AdjacencyTopology(const graph::DynamicAdjacency& adj)
      : adj_(adj) {}
  std::size_t order() const override { return adj_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return adj_.neighbors(v);
  }

 private:
  const graph::DynamicAdjacency& adj_;
};

MaintenanceEngine::MaintenanceEngine(std::vector<geom::Point> positions,
                                     double range, double width,
                                     double height, EngineOptions options)
    : options_(options),
      tracker_(std::move(positions), range, width, height, options.grid,
               options.streaming_build) {
  const std::size_t n = tracker_.size();

  // Bootstrap: the converged construction-phase backbone over the
  // initial topology (exactly what the incremental engine starts from,
  // so tick-0 hashes already agree).
  {
    const graph::Graph g = tracker_.adjacency().freeze();
    core::StaticBackbone seed = core::build_static_backbone(g, options_.mode);
    clustering_ = std::move(seed.clustering);
    tables_ = std::move(seed.tables);
    coverage_ = std::move(seed.coverage);
    selection_ = std::move(seed.selection);
    gateways_ = std::move(seed.gateways);
  }
  selection_refs_.assign(n, 0);
  for (const NodeId h : clustering_.heads)
    for (const NodeId w : selection_[h].gateways) ++selection_refs_[w];

  topo_ = std::make_unique<AdjacencyTopology>(tracker_.adjacency());
  sim_ = std::make_unique<net::Simulator>(
      *topo_,
      [this, n](NodeId v) {
        return std::make_unique<MaintenanceNode>(v, options_.mode, n,
                                                 &ledger_, &scratch_);
      },
      net::Simulator::Dispatch::kEventDriven);

  // Seed every node's protocol state from the converged backbone: its
  // affiliation, its neighbors' affiliations and cached rows, its own
  // rows, and (heads) coverage + selection.
  for (NodeId v = 0; v < n; ++v) {
    MaintenanceNode& nd = node_mut(v);
    nd.seed_clustering(clustering_.head_of[v], clustering_.roles[v]);
    for (const NodeId w : tracker_.adjacency().neighbors(v)) {
      NeighborCache cache;
      cache.id = w;
      cache.head_of = clustering_.head_of[w];
      cache.hop1 = tables_.ch_hop1[w];
      cache.hop2 = tables_.ch_hop2[w];
      nd.seed_neighbor(cache);
    }
    nd.seed_rows(tables_.ch_hop1[v], tables_.ch_hop2[v]);
    if (clustering_.is_head(v))
      nd.seed_head_rows(coverage_[v], selection_[v]);
  }
  // Gateway-selection soft state: exactly the selected nodes hold an
  // entry for the selecting origin (seq 0 = the bootstrap flood).
  for (const NodeId h : clustering_.heads)
    for (const NodeId w : selection_[h].gateways)
      node_mut(w).seed_origin(h, true, selection_[h].gateways);

  if (options_.obs != nullptr) set_obs(options_.obs);
}

const MaintenanceNode& MaintenanceEngine::node(NodeId v) const {
  return static_cast<const MaintenanceNode&>(sim_->process(v));
}

MaintenanceNode& MaintenanceEngine::node_mut(NodeId v) {
  return static_cast<MaintenanceNode&>(sim_->process(v));
}

void MaintenanceEngine::set_obs(obs::Session* session) {
  obs_ = session;
  sim_->set_obs(session);
  ticks_counter_ = obs::Counter();
  rounds_counter_ = obs::Counter();
  link_changes_counter_ = obs::Counter();
  head_changes_counter_ = obs::Counter();
  rows_changed_counter_ = obs::Counter();
  reselects_counter_ = obs::Counter();
  rounds_hist_ = obs::Histogram();
  msgs_hist_ = obs::Histogram();
  if (session == nullptr) return;
  auto& r = session->registry;
  ticks_counter_ = r.counter("proto.ticks");
  rounds_counter_ = r.counter("proto.rounds");
  link_changes_counter_ = r.counter("proto.link_changes");
  head_changes_counter_ = r.counter("proto.head_changes");
  rows_changed_counter_ = r.counter("proto.rows_changed");
  reselects_counter_ = r.counter("proto.heads_reselected");
  rounds_hist_ = r.histogram("proto.rounds_per_tick",
                             {1, 2, 4, 6, 8, 12, 16, 32, 64});
  msgs_hist_ = r.histogram("proto.msgs_per_tick",
                           {8, 64, 512, 4096, 32768, 262144});
}

MaintTickStats MaintenanceEngine::tick() {
  MaintTickStats stats;
  const net::MessageCounts counts_before = sim_->counts();
  const net::DeliveryStats delivery_before = sim_->delivery_stats();
  const std::uint64_t t0 = obs_ != nullptr ? obs_->trace.now_ns() : 0;

  const incr::EdgeDelta delta = tracker_.commit();
  stats.link_changes = delta.added.size() + delta.removed.size();

  sim_->trigger_timers();
  stats.rounds = sim_->run(options_.max_rounds_per_tick);

  // The oracle's expected state must be derived from the *previous*
  // clustering (LCC repairs a structure, it does not rebuild one), so
  // compute it before the drain overwrites the mirror.
  std::optional<graph::Graph> oracle_graph;
  core::StaticBackbone expected;
  if (options_.oracle_check) {
    oracle_graph.emplace(tracker_.adjacency().freeze());
    const cluster::Clustering repaired =
        cluster::lcc_update(*oracle_graph, clustering_);
    expected =
        core::build_static_backbone(*oracle_graph, repaired, options_.mode);
  }

  drain_ledger(stats);

  const net::MessageCounts counts_after = sim_->counts();
  stats.messages = counts_after - counts_before;
  const net::DeliveryStats delivery_after = sim_->delivery_stats();
  stats.delivery.deliveries =
      delivery_after.deliveries - delivery_before.deliveries;
  stats.delivery.inbox_resets =
      delivery_after.inbox_resets - delivery_before.inbox_resets;
  stats.delivery.dispatches =
      delivery_after.dispatches - delivery_before.dispatches;

  if (options_.oracle_check) {
    std::string diff = diff_against(expected);
    if (diff.empty()) diff = check_gateway_flags(*oracle_graph);
    if (!diff.empty()) {
      std::ostringstream os;
      os << "maintenance protocol diverged from the oracle at tick "
         << ticks_ + 1 << ": " << diff;
      throw std::logic_error(os.str());
    }
  }

  ++ticks_;
  if (obs_ != nullptr) {
    ticks_counter_.add();
    rounds_counter_.add(stats.rounds);
    link_changes_counter_.add(stats.link_changes);
    head_changes_counter_.add(stats.head_changes);
    rows_changed_counter_.add(stats.rows_changed);
    reselects_counter_.add(stats.heads_refreshed);
    rounds_hist_.record(stats.rounds);
    msgs_hist_.record(stats.messages.maintenance_total());
    obs_->trace.complete("proto", "tick", t0, obs_->trace.now_ns() - t0,
                         ticks_, 0, "rounds", stats.rounds);
  }
  return stats;
}

void MaintenanceEngine::drain_ledger(MaintTickStats& stats) {
  const auto dedup = [](std::vector<NodeId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };

  dedup(ledger_.cluster_changed);
  for (const NodeId v : ledger_.cluster_changed) {
    const MaintenanceNode& nd = node(v);
    if (clustering_.head_of[v] != nd.head()) {
      ++stats.head_changes;
      const bool was_head = clustering_.head_of[v] == v;
      const bool now_head = nd.is_head();
      if (was_head != now_head) {
        if (now_head)
          insert_sorted(clustering_.heads, v);
        else
          erase_sorted(clustering_.heads, v);
      }
      clustering_.head_of[v] = nd.head();
    }
    if (clustering_.roles[v] != nd.role()) {
      ++stats.role_changes;
      clustering_.roles[v] = nd.role();
    }
  }
  ledger_.cluster_changed.clear();

  dedup(ledger_.rows_changed);
  for (const NodeId v : ledger_.rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.rows_changed;
    tables_.ch_hop1[v] = nd.hop1_row();
    tables_.ch_hop2[v] = nd.hop2_row();
  }
  ledger_.rows_changed.clear();

  dedup(ledger_.head_rows_changed);
  for (const NodeId v : ledger_.head_rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.heads_refreshed;
    coverage_[v] = nd.coverage();
    const NodeSet& fresh = nd.selection().gateways;
    const NodeSet& stale = selection_[v].gateways;
    if (fresh != stale) {
      for (const NodeId w : stale)
        if (!contains_sorted(fresh, w) && --selection_refs_[w] == 0)
          erase_sorted(gateways_, w);
      for (const NodeId w : fresh)
        if (!contains_sorted(stale, w) && selection_refs_[w]++ == 0)
          insert_sorted(gateways_, w);
    }
    selection_[v] = nd.selection();
  }
  ledger_.head_rows_changed.clear();
}

std::uint64_t MaintenanceEngine::state_hash() const {
  return core::backbone_state_hash(clustering_, tables_, coverage_,
                                   selection_, gateways_, cds());
}

std::string MaintenanceEngine::diff_against(
    const core::StaticBackbone& oracle) const {
  std::ostringstream os;
  if (clustering_.heads != oracle.clustering.heads) {
    os << "clusterhead sets differ (" << clustering_.heads.size()
       << " maintained vs " << oracle.clustering.heads.size() << " oracle)";
    return os.str();
  }
  const std::size_t n = clustering_.head_of.size();
  for (NodeId v = 0; v < n; ++v) {
    if (clustering_.head_of[v] != oracle.clustering.head_of[v]) {
      os << "head_of[" << v << "]: " << clustering_.head_of[v] << " vs "
         << oracle.clustering.head_of[v];
      return os.str();
    }
    if (clustering_.roles[v] != oracle.clustering.roles[v]) {
      os << "role[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tables_.ch_hop1[v] != oracle.tables.ch_hop1[v]) {
      os << "ch_hop1[" << v << "] differs";
      return os.str();
    }
    if (!(tables_.ch_hop2[v] == oracle.tables.ch_hop2[v])) {
      os << "ch_hop2[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!(coverage_[v] == oracle.coverage[v])) {
      os << "coverage[" << v << "] differs";
      return os.str();
    }
    if (selection_[v].gateways != oracle.selection[v].gateways) {
      os << "selection[" << v << "] differs";
      return os.str();
    }
  }
  if (gateways_ != oracle.gateways) {
    os << "gateway unions differ";
    return os.str();
  }
  if (cds() != oracle.cds) {
    os << "CDS differs";
    return os.str();
  }
  return "";
}

std::string MaintenanceEngine::check_gateway_flags(
    const graph::Graph& g) const {
  std::ostringstream os;
  for (NodeId v = 0; v < g.order(); ++v) {
    const MaintenanceNode& nd = node(v);
    const bool truth = selection_refs_[v] > 0;
    const bool flag = nd.gateway_flag();
    if (truth && !flag) {
      os << "node " << v << " is selected but its gateway flag is clear";
      return os.str();
    }
    if (flag && !truth) {
      if (options_.mode == core::CoverageMode::kThreeHop) {
        os << "node " << v
           << " holds a stale gateway flag (3-hop GC should be exact)";
        return os.str();
      }
      // 2.5-hop mode keeps entries without reachability GC; a stale set
      // flag is tolerable only when every set entry's origin can no
      // longer reach the node (outside its 2-hop ball).
      for (const auto& e : nd.origins()) {
        if (!e.selected) continue;
        // A dead origin (resigned since) can sit at any distance: its
        // retraction flood covered the ball it had *then*, not the ball
        // this node wandered into afterwards. Only a live head keeps
        // its 2-hop ball current.
        if (clustering_.head_of[e.origin] != e.origin) continue;
        bool in_ball = g.has_edge(v, e.origin);
        if (!in_ball) {
          for (const NodeId w : g.neighbors(v)) {
            if (g.has_edge(w, e.origin)) {
              in_ball = true;
              break;
            }
          }
        }
        if (in_ball) {
          os << "node " << v << " holds a stale gateway flag from origin "
             << e.origin << " inside its 2-hop ball";
          return os.str();
        }
      }
    }
  }
  return "";
}

}  // namespace manet::proto
