#include "proto/engine.hpp"

#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::proto {

/// Simulator adapter over the DeltaTracker's maintained adjacency
/// overlay: commits between run() calls are immediately visible to
/// delivery.
class MaintenanceEngine::AdjacencyTopology final : public net::Topology {
 public:
  explicit AdjacencyTopology(const graph::DynamicAdjacency& adj)
      : adj_(adj) {}
  std::size_t order() const override { return adj_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return adj_.neighbors(v);
  }

 private:
  const graph::DynamicAdjacency& adj_;
};

MaintenanceEngine::MaintenanceEngine(std::vector<geom::Point> positions,
                                     double range, double width,
                                     double height, EngineOptions options)
    : options_(options),
      tracker_(std::move(positions), range, width, height, options.grid,
               options.streaming_build) {
  const std::size_t n = tracker_.size();

  // Bootstrap: the converged construction-phase backbone over the
  // initial topology (exactly what the incremental engine starts from,
  // so tick-0 hashes already agree).
  {
    const graph::Graph g = tracker_.adjacency().freeze();
    core::StaticBackbone seed = core::build_static_backbone(g, options_.mode);
    clustering_ = std::move(seed.clustering);
    tables_ = std::move(seed.tables);
    coverage_ = std::move(seed.coverage);
    selection_ = std::move(seed.selection);
    gateways_ = std::move(seed.gateways);
  }
  selection_refs_.assign(n, 0);
  for (const NodeId h : clustering_.heads)
    for (const NodeId w : selection_[h].gateways) ++selection_refs_[w];

  topo_ = std::make_unique<AdjacencyTopology>(tracker_.adjacency());
  sim_ = std::make_unique<net::Simulator>(
      *topo_,
      [this, n](NodeId v) {
        return std::make_unique<MaintenanceNode>(v, options_.mode, n,
                                                 &ledger_, &scratch_);
      },
      net::Simulator::Dispatch::kEventDriven);

  // Seed every node's protocol state from the converged backbone: its
  // affiliation, its neighbors' affiliations and cached rows, its own
  // rows, and (heads) coverage + selection.
  for (NodeId v = 0; v < n; ++v) {
    MaintenanceNode& nd = node_mut(v);
    nd.seed_clustering(clustering_.head_of[v], clustering_.roles[v]);
    for (const NodeId w : tracker_.adjacency().neighbors(v)) {
      NeighborCache cache;
      cache.id = w;
      cache.head_of = clustering_.head_of[w];
      cache.hop1 = tables_.ch_hop1[w];
      cache.hop2 = tables_.ch_hop2[w];
      nd.seed_neighbor(cache);
    }
    nd.seed_rows(tables_.ch_hop1[v], tables_.ch_hop2[v]);
    if (clustering_.is_head(v))
      nd.seed_head_rows(coverage_[v], selection_[v]);
  }
  // Gateway-selection soft state: exactly the selected nodes hold an
  // entry for the selecting origin (seq 0 = the bootstrap flood).
  for (const NodeId h : clustering_.heads)
    for (const NodeId w : selection_[h].gateways)
      node_mut(w).seed_origin(h, true, selection_[h].gateways);

  if (options_.inject_stale_gateway_fault)
    for (NodeId v = 0; v < n; ++v) node_mut(v).inject_stale_gateway_fault();

  if (options_.obs != nullptr) set_obs(options_.obs);
}

const MaintenanceNode& MaintenanceEngine::node(NodeId v) const {
  return static_cast<const MaintenanceNode&>(sim_->process(v));
}

MaintenanceNode& MaintenanceEngine::node_mut(NodeId v) {
  return static_cast<MaintenanceNode&>(sim_->process(v));
}

void MaintenanceEngine::set_obs(obs::Session* session) {
  obs_ = session;
  sim_->set_obs(session);
  ticks_counter_ = obs::Counter();
  rounds_counter_ = obs::Counter();
  link_changes_counter_ = obs::Counter();
  head_changes_counter_ = obs::Counter();
  rows_changed_counter_ = obs::Counter();
  reselects_counter_ = obs::Counter();
  rounds_hist_ = obs::Histogram();
  msgs_hist_ = obs::Histogram();
  conv_expired_counter_ = obs::Counter();
  conv_stale_max_gauge_ = obs::Gauge();
  conv_stale_hist_ = obs::Histogram();
  conv_wave_depth_hist_ = obs::Histogram();
  conv_quiescence_hist_ = obs::Histogram();
  if (session == nullptr) return;
  auto& r = session->registry;
  ticks_counter_ = r.counter("proto.ticks");
  rounds_counter_ = r.counter("proto.rounds");
  link_changes_counter_ = r.counter("proto.link_changes");
  head_changes_counter_ = r.counter("proto.head_changes");
  rows_changed_counter_ = r.counter("proto.rows_changed");
  reselects_counter_ = r.counter("proto.heads_reselected");
  rounds_hist_ = r.histogram("proto.rounds_per_tick",
                             {1, 2, 4, 6, 8, 12, 16, 32, 64});
  msgs_hist_ = r.histogram("proto.msgs_per_tick",
                           {8, 64, 512, 4096, 32768, 262144});
  // Convergence families: every value is an integer quantity of the
  // sequentially-dispatched protocol, so the deterministic() snapshot
  // diffs byte-for-byte across runs and pipeline thread counts.
  conv_expired_counter_ = r.counter("proto.conv.expired_links");
  conv_stale_max_gauge_ = r.gauge("proto.conv.stale_age_max");
  conv_stale_hist_ = r.histogram("proto.conv.stale_age",
                                 {1, 2, 3, 4, 6, 8, 12, 16});
  conv_wave_depth_hist_ = r.histogram("proto.conv.wave_depth",
                                      {1, 2, 3, 4, 6, 8, 12, 16});
  conv_quiescence_hist_ = r.histogram("proto.conv.quiescence_ticks",
                                      {1, 2, 4, 8, 16, 32, 64});
}

MaintTickStats MaintenanceEngine::tick() {
  MaintTickStats stats;
  const net::MessageCounts counts_before = sim_->counts();
  const net::DeliveryStats delivery_before = sim_->delivery_stats();
  const std::uint64_t t0 = obs_ != nullptr ? obs_->trace.now_ns() : 0;
  if (obs_ != nullptr) obs_->journal.set_tick(ticks_ + 1);

  const incr::EdgeDelta delta = tracker_.commit();
  stats.link_changes = delta.added.size() + delta.removed.size();

  sim_->trigger_timers();
  stats.rounds = sim_->run(options_.max_rounds_per_tick);

  // The oracle's expected state must be derived from the *previous*
  // clustering (LCC repairs a structure, it does not rebuild one), so
  // compute it before the drain overwrites the mirror.
  std::optional<graph::Graph> oracle_graph;
  core::StaticBackbone expected;
  if (options_.oracle_check) {
    oracle_graph.emplace(tracker_.adjacency().freeze());
    const cluster::Clustering repaired =
        cluster::lcc_update(*oracle_graph, clustering_);
    expected =
        core::build_static_backbone(*oracle_graph, repaired, options_.mode);
  }

  drain_ledger(stats);

  const net::MessageCounts counts_after = sim_->counts();
  stats.messages = counts_after - counts_before;
  const net::DeliveryStats delivery_after = sim_->delivery_stats();
  stats.delivery.deliveries =
      delivery_after.deliveries - delivery_before.deliveries;
  stats.delivery.inbox_resets =
      delivery_after.inbox_resets - delivery_before.inbox_resets;
  stats.delivery.dispatches =
      delivery_after.dispatches - delivery_before.dispatches;

  if (options_.oracle_check) {
    NodeId divergent = kInvalidNode;
    NodeId origin = kInvalidNode;
    std::string diff = diff_against(expected, &divergent);
    if (diff.empty())
      diff = check_gateway_flags(*oracle_graph, &divergent, &origin);
    if (!diff.empty()) {
      std::ostringstream os;
      os << "maintenance protocol diverged from the oracle at tick "
         << ticks_ + 1 << ": " << diff;
      const std::string report = forensic_report(divergent, origin);
      if (!report.empty()) {
        os << "\n" << report;
        std::cerr << os.str() << std::endl;
      }
      throw std::logic_error(os.str());
    }
  }

  ++ticks_;
  // Quiescence runs: the length of every maximal streak of "active"
  // ticks (any link/cluster/table churn), recorded when a quiet tick
  // ends the streak. Purely tick-sequence derived, so deterministic.
  const bool active = stats.link_changes > 0 || stats.head_changes > 0 ||
                      stats.role_changes > 0 || stats.rows_changed > 0 ||
                      stats.heads_refreshed > 0;
  if (obs_ != nullptr) {
    ticks_counter_.add();
    rounds_counter_.add(stats.rounds);
    link_changes_counter_.add(stats.link_changes);
    head_changes_counter_.add(stats.head_changes);
    rows_changed_counter_.add(stats.rows_changed);
    reselects_counter_.add(stats.heads_refreshed);
    rounds_hist_.record(stats.rounds);
    msgs_hist_.record(stats.messages.maintenance_total());
    conv_expired_counter_.add(stats.expired_links);
    // Wave depth rides the causal envelope: the simulator accumulates
    // caused-send counts by hop distance off the wire; draining them
    // here is one bulk record per occupied depth instead of a histogram
    // update per message.
    const auto& depths = sim_->wave_depth_counts();
    for (std::size_t d = 0; d < depths.size(); ++d)
      if (depths[d] != 0) conv_wave_depth_hist_.record_many(d, depths[d]);
    sim_->reset_wave_depth_counts();
    for (const std::uint32_t age : stats.stale_ages) {
      conv_stale_hist_.record(age);
      if (age > stale_age_max_) stale_age_max_ = age;
    }
    conv_stale_max_gauge_.set(static_cast<std::int64_t>(stale_age_max_));
    if (!active && active_run_ > 0)
      conv_quiescence_hist_.record(active_run_);
    obs_->trace.complete("proto", "tick", t0, obs_->trace.now_ns() - t0,
                         ticks_, 0, "rounds", stats.rounds);
  }
  active_run_ = active ? active_run_ + 1 : 0;
  return stats;
}

void MaintenanceEngine::drain_ledger(MaintTickStats& stats) {
  stats.expired_links = ledger_.expired_links;
  ledger_.expired_links = 0;
  stats.stale_ages = std::move(ledger_.stale_ages);
  ledger_.stale_ages.clear();

  const auto dedup = [](std::vector<NodeId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };

  dedup(ledger_.cluster_changed);
  for (const NodeId v : ledger_.cluster_changed) {
    const MaintenanceNode& nd = node(v);
    if (clustering_.head_of[v] != nd.head()) {
      ++stats.head_changes;
      const bool was_head = clustering_.head_of[v] == v;
      const bool now_head = nd.is_head();
      if (was_head != now_head) {
        if (now_head)
          insert_sorted(clustering_.heads, v);
        else
          erase_sorted(clustering_.heads, v);
      }
      clustering_.head_of[v] = nd.head();
    }
    if (clustering_.roles[v] != nd.role()) {
      ++stats.role_changes;
      clustering_.roles[v] = nd.role();
    }
  }
  ledger_.cluster_changed.clear();

  dedup(ledger_.rows_changed);
  for (const NodeId v : ledger_.rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.rows_changed;
    tables_.ch_hop1[v] = nd.hop1_row();
    tables_.ch_hop2[v] = nd.hop2_row();
  }
  ledger_.rows_changed.clear();

  dedup(ledger_.head_rows_changed);
  for (const NodeId v : ledger_.head_rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.heads_refreshed;
    coverage_[v] = nd.coverage();
    const NodeSet& fresh = nd.selection().gateways;
    const NodeSet& stale = selection_[v].gateways;
    if (fresh != stale) {
      for (const NodeId w : stale)
        if (!contains_sorted(fresh, w) && --selection_refs_[w] == 0)
          erase_sorted(gateways_, w);
      for (const NodeId w : fresh)
        if (!contains_sorted(stale, w) && selection_refs_[w]++ == 0)
          insert_sorted(gateways_, w);
    }
    selection_[v] = nd.selection();
  }
  ledger_.head_rows_changed.clear();
}

std::uint64_t MaintenanceEngine::state_hash() const {
  return core::backbone_state_hash(clustering_, tables_, coverage_,
                                   selection_, gateways_, cds());
}

std::string MaintenanceEngine::diff_against(
    const core::StaticBackbone& oracle) const {
  NodeId ignored = kInvalidNode;
  return diff_against(oracle, &ignored);
}

std::string MaintenanceEngine::diff_against(const core::StaticBackbone& oracle,
                                            NodeId* divergent) const {
  *divergent = kInvalidNode;
  std::ostringstream os;
  if (clustering_.heads != oracle.clustering.heads) {
    // Witness: the first id on exactly one side of the symmetric diff.
    for (const NodeId h : clustering_.heads)
      if (!contains_sorted(oracle.clustering.heads, h)) {
        *divergent = h;
        break;
      }
    if (*divergent == kInvalidNode)
      for (const NodeId h : oracle.clustering.heads)
        if (!contains_sorted(clustering_.heads, h)) {
          *divergent = h;
          break;
        }
    os << "clusterhead sets differ (" << clustering_.heads.size()
       << " maintained vs " << oracle.clustering.heads.size() << " oracle)";
    return os.str();
  }
  const std::size_t n = clustering_.head_of.size();
  for (NodeId v = 0; v < n; ++v) {
    if (clustering_.head_of[v] != oracle.clustering.head_of[v]) {
      *divergent = v;
      os << "head_of[" << v << "]: " << clustering_.head_of[v] << " vs "
         << oracle.clustering.head_of[v];
      return os.str();
    }
    if (clustering_.roles[v] != oracle.clustering.roles[v]) {
      *divergent = v;
      os << "role[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (tables_.ch_hop1[v] != oracle.tables.ch_hop1[v]) {
      *divergent = v;
      os << "ch_hop1[" << v << "] differs";
      return os.str();
    }
    if (!(tables_.ch_hop2[v] == oracle.tables.ch_hop2[v])) {
      *divergent = v;
      os << "ch_hop2[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!(coverage_[v] == oracle.coverage[v])) {
      *divergent = v;
      os << "coverage[" << v << "] differs";
      return os.str();
    }
    if (selection_[v].gateways != oracle.selection[v].gateways) {
      *divergent = v;
      os << "selection[" << v << "] differs";
      return os.str();
    }
  }
  if (gateways_ != oracle.gateways) {
    os << "gateway unions differ";
    return os.str();
  }
  if (cds() != oracle.cds) {
    os << "CDS differs";
    return os.str();
  }
  return "";
}

std::string MaintenanceEngine::check_gateway_flags(
    const graph::Graph& g) const {
  NodeId ignored_node = kInvalidNode;
  NodeId ignored_origin = kInvalidNode;
  return check_gateway_flags(g, &ignored_node, &ignored_origin);
}

std::string MaintenanceEngine::check_gateway_flags(const graph::Graph& g,
                                                   NodeId* divergent,
                                                   NodeId* origin) const {
  *divergent = kInvalidNode;
  *origin = kInvalidNode;
  std::ostringstream os;
  const auto first_selected_origin = [](const MaintenanceNode& nd) {
    for (const auto& e : nd.origins())
      if (e.selected) return e.origin;
    return kInvalidNode;
  };
  for (NodeId v = 0; v < g.order(); ++v) {
    const MaintenanceNode& nd = node(v);
    const bool truth = selection_refs_[v] > 0;
    const bool flag = nd.gateway_flag();
    if (truth && !flag) {
      *divergent = v;
      for (const NodeId h : clustering_.heads)
        if (contains_sorted(selection_[h].gateways, v)) {
          *origin = h;
          break;
        }
      os << "node " << v << " is selected but its gateway flag is clear";
      return os.str();
    }
    if (flag && !truth) {
      if (options_.mode == core::CoverageMode::kThreeHop) {
        *divergent = v;
        *origin = first_selected_origin(nd);
        os << "node " << v
           << " holds a stale gateway flag (3-hop GC should be exact)";
        return os.str();
      }
      // 2.5-hop mode keeps entries without reachability GC; a stale set
      // flag is tolerable only when every set entry's origin can no
      // longer reach the node (outside its 2-hop ball).
      for (const auto& e : nd.origins()) {
        if (!e.selected) continue;
        // A dead origin (resigned since) can sit at a distance: its
        // retraction flood covered the ball it had *then*, not the ball
        // this node wandered into afterwards. But direct contact is
        // conclusive — either the node was inside the retraction flood,
        // or the ex-head's non-head beacon cleared the entry at link
        // formation (add_link). A flag surviving adjacency is the
        // historical stale-gateway bug.
        if (clustering_.head_of[e.origin] != e.origin) {
          if (g.has_edge(v, e.origin)) {
            *divergent = v;
            *origin = e.origin;
            os << "node " << v
               << " holds a stale gateway flag from resigned ex-head "
               << e.origin << " despite hearing its non-head beacon";
            return os.str();
          }
          continue;
        }
        bool in_ball = g.has_edge(v, e.origin);
        if (!in_ball) {
          for (const NodeId w : g.neighbors(v)) {
            if (g.has_edge(w, e.origin)) {
              in_ball = true;
              break;
            }
          }
        }
        if (in_ball) {
          *divergent = v;
          *origin = e.origin;
          os << "node " << v << " holds a stale gateway flag from origin "
             << e.origin << " inside its 2-hop ball";
          return os.str();
        }
      }
    }
  }
  return "";
}

std::string MaintenanceEngine::forensic_report(NodeId divergent,
                                               NodeId origin) const {
  if (obs_ == nullptr || divergent == kInvalidNode) return "";
  const obs::Journal& journal = obs_->journal;
  if (journal.size() == 0) return "";
  std::ostringstream os;
  os << "forensics: causal slice from the event journal";

  // Recent sends of the nodes involved (the local history leading up to
  // the bad state), oldest first.
  constexpr std::size_t kKeep = 12;
  std::vector<obs::JournalEvent> recent;
  journal.for_each([&](const obs::JournalEvent& e) {
    if (e.node == divergent || (origin != kInvalidNode && e.node == origin))
      recent.push_back(e);
  });
  const std::size_t skip = recent.size() > kKeep ? recent.size() - kKeep : 0;
  os << "\n  recent sends of node " << divergent;
  if (origin != kInvalidNode) os << " and origin " << origin;
  os << ":";
  if (recent.empty()) os << " (none retained)";
  for (std::size_t i = skip; i < recent.size(); ++i)
    os << "\n    " << obs::Journal::format_event(recent[i]);

  // The causal chain behind each node's newest message: the parent-link
  // walk back to the wave root (e.g. the beacon that revealed the
  // head-head edge behind a bad repair).
  const auto dump_chain = [&](NodeId v, const char* label) {
    const auto last = journal.last_event_of(v);
    if (!last) return;
    os << "\n  causal chain of " << label << ' ' << v
       << "'s last send (trace " << last->trace_id << "):";
    for (const auto& e : journal.causal_chain(last->trace_id))
      os << "\n    " << obs::Journal::format_event(e);
  };
  dump_chain(divergent, "node");
  if (origin != kInvalidNode && origin != divergent)
    dump_chain(origin, "origin");
  return os.str();
}

}  // namespace manet::proto
