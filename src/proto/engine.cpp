#include "proto/engine.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/lcc.hpp"
#include "common/assert.hpp"
#include "obs/session.hpp"

namespace manet::proto {
namespace {

/// Paint growth for the message-driven engine's repair regions, tiered
/// by what a mover's own changed edges can set off (the spare outermost
/// painted ring in each bound keeps the paint boundary quiescent, which
/// is what lets a neighboring region synthesize those nodes' beacons
/// from the tick-start mirror).
///
/// Head tier — a changed edge touching a tick-start clusterhead (this
/// covers every head-link loss, since the lost head IS an endpoint):
/// head_of writes land within 1 hop of the edge, the CH_HOP1
/// re-broadcasts they trigger are sent from 2 hops (received at 3),
/// CH_HOP2 from 3 (received at 4), head reselection reads at 4, and
/// the TTL-2 gateway flood it triggers is received up to 6 hops out.
/// One unit-disk hop never crosses more than one cell boundary and the
/// edge endpoint sits within 1 cell of the mover, so receivers sit
/// within 7 cells of the mover's cell: growth 7 = reach 8.
constexpr std::size_t kShardGrowthHeadCells = 7;
/// Member tier — every changed edge connects two tick-start members:
/// no rule-1/rule-2 can fire and no hop-1 row changes (CH_HOP1 lists
/// adjacent *heads*), so only the endpoints' CH_HOP2 rows change.
/// Endpoints re-broadcast (received at 1 hop), heads within 1 hop
/// reselect, and their TTL-2 flood is received up to 3 hops from the
/// endpoint — 4 cells from the mover: growth 4 = reach 5.
constexpr std::size_t kShardGrowthMemberCells = 4;
/// Quiet tier — the mover kept every link: no wave at all. Its region
/// is inactive unless the paint overlaps an active mover's (in which
/// case they merge and the bigger paint contains the traffic); growth
/// 1 keeps the mover's whole neighborhood in its scope.
constexpr std::size_t kShardGrowthQuietCells = 1;

}  // namespace

/// Simulator adapter over the DeltaTracker's maintained adjacency
/// overlay: commits between run() calls are immediately visible to
/// delivery.
class MaintenanceEngine::AdjacencyTopology final : public net::Topology {
 public:
  explicit AdjacencyTopology(const graph::DynamicAdjacency& adj)
      : adj_(adj) {}
  std::size_t order() const override { return adj_.order(); }
  std::span<const NodeId> neighbors(NodeId v) const override {
    return adj_.neighbors(v);
  }

 private:
  const graph::DynamicAdjacency& adj_;
};

MaintenanceEngine::MaintenanceEngine(std::vector<geom::Point> positions,
                                     double range, double width,
                                     double height, EngineOptions options)
    : options_(options),
      tracker_(std::move(positions), range, width, height, options.grid,
               options.streaming_build) {
  const std::size_t n = tracker_.size();

  // Bootstrap: the converged construction-phase backbone over the
  // initial topology (exactly what the incremental engine starts from,
  // so tick-0 hashes already agree). `seed`'s dense storage dies as
  // soon as the mirror is interned, before the nodes are allocated.
  core::StaticBackbone seed;
  {
    const graph::Graph g = tracker_.adjacency().freeze();
    seed = core::build_static_backbone(g, options_.mode);
  }
  clustering_ = std::move(seed.clustering);
  gateways_ = std::move(seed.gateways);
  selection_refs_.assign(n, 0);
  for (const NodeId h : clustering_.heads)
    for (const NodeId w : seed.selection[h].gateways) ++selection_refs_[w];

  // The mirror: intern the seeded rows BEFORE the nodes exist, then
  // drop the seed's dense O(n) storage — node seeding reads the rows
  // back out of the store, and heads' coverage/selection move into a
  // heads-only side list. The bootstrap peak-RSS transient is the
  // store plus that compact list, not dense tables/coverage/selection
  // vectors coexisting with a million live nodes.
  mirror_hop1_.resize(n);
  mirror_hop2_.resize(n);
  head_slot_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    mirror_hop1_[v] = store_.intern_hop1(seed.tables.ch_hop1[v]);
    mirror_hop2_[v] = store_.intern_hop2(seed.tables.ch_hop2[v]);
    if (!seed.coverage[v].empty() || !seed.selection[v].gateways.empty()) {
      HeadMirror hm;
      hm.cov2 = store_.intern_hop1(seed.coverage[v].two_hop);
      hm.cov3 = store_.intern_hop1(seed.coverage[v].three_hop);
      hm.sel = store_.intern_hop1(seed.selection[v].gateways);
      head_slot_[v] = static_cast<std::uint32_t>(head_rows_.size()) + 1;
      head_rows_.push_back(hm);
    }
  }
  // Node seeding below reads everything back out of the store by ref
  // (the nodes no longer hold dense rows — their own rows, coverage and
  // selection are interned refs sharing the mirror's slabs), so the
  // whole dense seed dies here, before any node is allocated.
  seed = core::StaticBackbone{};

  topo_ = std::make_unique<AdjacencyTopology>(tracker_.adjacency());
  sim_ = std::make_unique<net::Simulator>(
      *topo_,
      [this, n](NodeId v) {
        return std::make_unique<MaintenanceNode>(v, options_.mode, n,
                                                 &ledger_, &scratch_, &store_);
      },
      net::Simulator::Dispatch::kEventDriven);

  // Seed every node's protocol state from the converged backbone: its
  // affiliation, its neighbors' affiliations and cached rows, its own
  // rows, and (heads) coverage + selection — all as retained refs into
  // the rows the mirror just interned, so the bootstrap never re-hashes
  // row content and node caches share slabs with the mirror from the
  // first byte.
  for (NodeId v = 0; v < n; ++v) {
    MaintenanceNode& nd = node_mut(v);
    nd.seed_clustering(clustering_.head_of[v], clustering_.roles[v]);
    const auto nb = tracker_.adjacency().neighbors(v);
    nd.reserve_neighbors(nb.size());
    for (const NodeId w : nb) nd.seed_neighbor(w, clustering_.head_of[w],
                                               mirror_hop1_[w],
                                               mirror_hop2_[w]);
    nd.seed_rows(mirror_hop1_[v], mirror_hop2_[v]);
    if (clustering_.is_head(v)) {
      const std::uint32_t s = head_slot_[v];
      const HeadMirror hm = s != 0 ? head_rows_[s - 1] : HeadMirror{};
      nd.seed_head_rows(hm.cov2, hm.cov3, hm.sel);
    }
  }
  // Gateway-selection soft state: exactly the selected nodes hold an
  // entry for the selecting origin (seq 0 = the bootstrap flood).
  for (const NodeId h : clustering_.heads) {
    const std::uint32_t s = head_slot_[h];
    const RowRef sel = s != 0 ? head_rows_[s - 1].sel : kEmptyRow;
    for (const NodeId w : store_.hop1(sel))
      node_mut(w).seed_origin(h, true, sel);
  }

  if (options_.inject_stale_gateway_fault)
    for (NodeId v = 0; v < n; ++v) node_mut(v).inject_stale_gateway_fault();

  if (options_.threads > 0) {
    deg_.assign(n, 0);
    deg_count_.assign(1, 0);
    for (NodeId v = 0; v < n; ++v) {
      const auto d = static_cast<std::uint32_t>(
          tracker_.adjacency().neighbors(v).size());
      deg_[v] = d;
      if (d >= deg_count_.size()) deg_count_.resize(d + 1, 0);
      ++deg_count_[d];
      if (d > 0) ++degpos_;
    }
    scope_tag_.assign(n, 0);
    if (options_.threads >= 2)
      pool_ = std::make_unique<incr::WorkerPool>(options_.threads);
    lane_scratch_.resize(pool_ != nullptr ? pool_->lanes() : 1);
  }

  if (options_.obs != nullptr) set_obs(options_.obs);
}

const MaintenanceNode& MaintenanceEngine::node(NodeId v) const {
  return static_cast<const MaintenanceNode&>(sim_->process(v));
}

MaintenanceNode& MaintenanceEngine::node_mut(NodeId v) {
  return static_cast<MaintenanceNode&>(sim_->process(v));
}

void MaintenanceEngine::set_obs(obs::Session* session) {
  obs_ = session;
  sim_->set_obs(session);
  if (pool_ != nullptr) pool_->set_obs(session);
  ticks_counter_ = obs::Counter();
  rounds_counter_ = obs::Counter();
  link_changes_counter_ = obs::Counter();
  head_changes_counter_ = obs::Counter();
  rows_changed_counter_ = obs::Counter();
  reselects_counter_ = obs::Counter();
  rounds_hist_ = obs::Histogram();
  msgs_hist_ = obs::Histogram();
  conv_expired_counter_ = obs::Counter();
  conv_stale_max_gauge_ = obs::Gauge();
  conv_stale_hist_ = obs::Histogram();
  conv_wave_depth_hist_ = obs::Histogram();
  conv_quiescence_hist_ = obs::Histogram();
  if (session == nullptr) return;
  auto& r = session->registry;
  ticks_counter_ = r.counter("proto.ticks");
  rounds_counter_ = r.counter("proto.rounds");
  link_changes_counter_ = r.counter("proto.link_changes");
  head_changes_counter_ = r.counter("proto.head_changes");
  rows_changed_counter_ = r.counter("proto.rows_changed");
  reselects_counter_ = r.counter("proto.heads_reselected");
  rounds_hist_ = r.histogram("proto.rounds_per_tick",
                             {1, 2, 4, 6, 8, 12, 16, 32, 64});
  msgs_hist_ = r.histogram("proto.msgs_per_tick",
                           {8, 64, 512, 4096, 32768, 262144});
  // Convergence families: every value is an integer quantity of the
  // sequentially-dispatched protocol, so the deterministic() snapshot
  // diffs byte-for-byte across runs and pipeline thread counts.
  conv_expired_counter_ = r.counter("proto.conv.expired_links");
  conv_stale_max_gauge_ = r.gauge("proto.conv.stale_age_max");
  conv_stale_hist_ = r.histogram("proto.conv.stale_age",
                                 {1, 2, 3, 4, 6, 8, 12, 16});
  conv_wave_depth_hist_ = r.histogram("proto.conv.wave_depth",
                                      {1, 2, 3, 4, 6, 8, 12, 16});
  conv_quiescence_hist_ = r.histogram("proto.conv.quiescence_ticks",
                                      {1, 2, 4, 8, 16, 32, 64});
}

MaintTickStats MaintenanceEngine::tick() {
  MaintTickStats stats;
  const net::MessageCounts counts_before = sim_->counts();
  const net::DeliveryStats delivery_before = sim_->delivery_stats();
  const std::uint64_t deliver_ns_before = sim_->deliver_ns();
  const std::uint64_t step_ns_before = sim_->step_ns();
  const std::uint64_t t0 = obs_ != nullptr ? obs_->trace.now_ns() : 0;
  if (obs_ != nullptr) obs_->journal.set_tick(ticks_ + 1);

  if (options_.threads == 0) {
    const incr::EdgeDelta delta = tracker_.commit();
    stats.link_changes = delta.added.size() + delta.removed.size();
    sim_->trigger_timers();
    stats.rounds = sim_->run(options_.max_rounds_per_tick);
  } else {
    stats.rounds = run_sharded_tick(stats);
  }

  // The oracle's expected state must be derived from the *previous*
  // clustering (LCC repairs a structure, it does not rebuild one), so
  // compute it before the drain overwrites the mirror.
  std::optional<graph::Graph> oracle_graph;
  core::StaticBackbone expected;
  if (options_.oracle_check) {
    oracle_graph.emplace(tracker_.adjacency().freeze());
    const cluster::Clustering repaired =
        cluster::lcc_update(*oracle_graph, clustering_);
    expected =
        core::build_static_backbone(*oracle_graph, repaired, options_.mode);
  }

  {
    const auto mirror_t0 = std::chrono::steady_clock::now();
    drain_ledger(stats);
    stats.mirror_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - mirror_t0)
                          .count();
  }
  stats.deliver_ms =
      static_cast<double>(sim_->deliver_ns() - deliver_ns_before) / 1e6;
  stats.node_step_ms =
      static_cast<double>(sim_->step_ns() - step_ns_before) / 1e6;

  const net::MessageCounts counts_after = sim_->counts();
  stats.messages = counts_after - counts_before;
  const net::DeliveryStats delivery_after = sim_->delivery_stats();
  stats.delivery.deliveries =
      delivery_after.deliveries - delivery_before.deliveries;
  stats.delivery.inbox_resets =
      delivery_after.inbox_resets - delivery_before.inbox_resets;
  stats.delivery.dispatches =
      delivery_after.dispatches - delivery_before.dispatches;

  if (options_.oracle_check) {
    NodeId divergent = kInvalidNode;
    NodeId origin = kInvalidNode;
    std::string diff = diff_against(expected, &divergent);
    if (diff.empty())
      diff = check_gateway_flags(*oracle_graph, &divergent, &origin);
    if (!diff.empty()) {
      std::ostringstream os;
      os << "maintenance protocol diverged from the oracle at tick "
         << ticks_ + 1 << ": " << diff;
      const std::string report = forensic_report(divergent, origin);
      if (!report.empty()) {
        os << "\n" << report;
        std::cerr << os.str() << std::endl;
      }
      throw std::logic_error(os.str());
    }
  }

  ++ticks_;
  // Quiescence runs: the length of every maximal streak of "active"
  // ticks (any link/cluster/table churn), recorded when a quiet tick
  // ends the streak. Purely tick-sequence derived, so deterministic.
  const bool active = stats.link_changes > 0 || stats.head_changes > 0 ||
                      stats.role_changes > 0 || stats.rows_changed > 0 ||
                      stats.heads_refreshed > 0;
  if (obs_ != nullptr) {
    ticks_counter_.add();
    rounds_counter_.add(stats.rounds);
    link_changes_counter_.add(stats.link_changes);
    head_changes_counter_.add(stats.head_changes);
    rows_changed_counter_.add(stats.rows_changed);
    reselects_counter_.add(stats.heads_refreshed);
    rounds_hist_.record(stats.rounds);
    msgs_hist_.record(stats.messages.maintenance_total());
    conv_expired_counter_.add(stats.expired_links);
    // Wave depth rides the causal envelope: the simulator accumulates
    // caused-send counts by hop distance off the wire; draining them
    // here is one bulk record per occupied depth instead of a histogram
    // update per message.
    const auto& depths = sim_->wave_depth_counts();
    for (std::size_t d = 0; d < depths.size(); ++d)
      if (depths[d] != 0) conv_wave_depth_hist_.record_many(d, depths[d]);
    sim_->reset_wave_depth_counts();
    for (const std::uint32_t age : stats.stale_ages) {
      conv_stale_hist_.record(age);
      if (age > stale_age_max_) stale_age_max_ = age;
    }
    conv_stale_max_gauge_.set(static_cast<std::int64_t>(stale_age_max_));
    if (!active && active_run_ > 0)
      conv_quiescence_hist_.record(active_run_);
    obs_->trace.complete("proto", "tick", t0, obs_->trace.now_ns() - t0,
                         ticks_, 0, "rounds", stats.rounds);
  }
  active_run_ = active ? active_run_ + 1 : 0;
  return stats;
}

std::uint32_t MaintenanceEngine::run_sharded_tick(MaintTickStats& stats) {
  incr::CommitOptions copts;
  copts.regions = &regions_;
  copts.growth_cells = kShardGrowthHeadCells;
  copts.member_growth_cells = kShardGrowthMemberCells;
  copts.quiet_growth_cells = kShardGrowthQuietCells;
  // drain_ledger hasn't run yet, so head_of is the tick-start
  // clustering the growth tiers are derived against.
  copts.head_of = clustering_.head_of;
  copts.region_scopes = true;
  const incr::EdgeDelta delta = tracker_.commit(copts);
  stats.link_changes = delta.added.size() + delta.removed.size();
  update_degrees(delta);

  const std::uint64_t base = sim_->begin_sharded_tick();

  // Active regions = those with changed edges. A region whose movers
  // kept every link induces no protocol reaction beyond the beacons the
  // merge bulk-accounts, exactly like the untouched rest of the network.
  active_.clear();
  for (std::uint32_t r = 0; r < regions_.count; ++r)
    if (!regions_.deltas[r].added.empty() ||
        !regions_.deltas[r].removed.empty())
      active_.push_back(r);
  const auto A = static_cast<std::uint32_t>(active_.size());

  std::size_t scope_total = 0;
  std::size_t degpos_in_scope = 0;
  for (std::uint32_t a = 0; a < A; ++a) {
    const auto& scope = regions_.scopes[active_[a]];
    scope_total += scope.size();
    for (const NodeId v : scope) {
      scope_tag_[v] = a + 1;
      if (deg_[v] > 0) ++degpos_in_scope;
    }
  }

  if (region_runs_.size() < A) region_runs_.resize(A);
  while (region_ledgers_.size() < A) region_ledgers_.emplace_back();

  const auto run_one = [&](std::size_t a, std::size_t lane) {
    net::RegionRun& rr = region_runs_[a];
    rr.scope = regions_.scopes[active_[a]];
    rr.region = static_cast<std::uint32_t>(a);
    rr.region_count = A;
    Ledger* const ledger = &region_ledgers_[a];
    KernelScratch* const scratch = &lane_scratch_[lane];
    const std::uint32_t tag = static_cast<std::uint32_t>(a) + 1;
    const auto before = [this, ledger, scratch](NodeId v) {
      MaintenanceNode& nd = node_mut(v);
      nd.set_ledger(ledger);
      nd.set_scratch(scratch);
    };
    const auto after = [this, tag, base](NodeId v) {
      // The scope filter withholds the beacons of live neighbors
      // outside this region (unpainted, or across a region boundary).
      // Such links provably did not change and their senders' cluster
      // state is frozen this tick, so a known-neighbor beacon would be
      // a pure heard-refresh — synthesize it, with the trace id the
      // sequential beacon phase assigns (base + sender + 1).
      MaintenanceNode& nd = node_mut(v);
      for (const NodeId w : nd.neighbors())
        if (scope_tag_[w] != tag)
          nd.mark_neighbor_heard(w, net::Cause{base + w + 1, 0});
    };
    sim_->run_region(rr, scope_tag_.data(), before, after,
                     options_.max_rounds_per_tick);
  };
  if (pool_ != nullptr && A > 1) {
    pool_->run(A, run_one);
  } else {
    for (std::uint32_t a = 0; a < A; ++a) run_one(a, 0);
  }

  net::ShardedMergeInputs bulk;
  bulk.n_total = tracker_.size();
  bulk.scope_total = scope_total;
  bulk.edges2 = 2 * tracker_.adjacency().edge_count();
  bulk.degpos_total = degpos_;
  bulk.degpos_in_scope = degpos_in_scope;
  bulk.deg_count = deg_count_;
  const std::uint32_t rounds = sim_->finish_sharded_tick(
      std::span<net::RegionRun>(region_runs_.data(), A), bulk);

  for (std::uint32_t a = 0; a < A; ++a)
    for (const NodeId v : regions_.scopes[active_[a]]) scope_tag_[v] = 0;

  // Concatenate the region ledgers region-ascending into the engine
  // ledger. drain_ledger sorts and dedups the id lists anyway; the
  // fixed order keeps stale-age sequences (and therefore every stat
  // derived from them) independent of which lane ran which region.
  for (std::uint32_t a = 0; a < A; ++a) {
    Ledger& lr = region_ledgers_[a];
    ledger_.expired_links += lr.expired_links;
    lr.expired_links = 0;
    const auto take = [](std::vector<NodeId>& into, std::vector<NodeId>& from) {
      into.insert(into.end(), from.begin(), from.end());
      from.clear();
    };
    take(ledger_.cluster_changed, lr.cluster_changed);
    take(ledger_.rows_changed, lr.rows_changed);
    take(ledger_.head_rows_changed, lr.head_rows_changed);
    ledger_.stale_ages.insert(ledger_.stale_ages.end(),
                              lr.stale_ages.begin(), lr.stale_ages.end());
    lr.stale_ages.clear();
  }
  return rounds;
}

void MaintenanceEngine::update_degrees(const incr::EdgeDelta& delta) {
  const auto gain = [this](NodeId v) {
    const std::uint32_t d = deg_[v]++;
    --deg_count_[d];
    if (d + 1 >= deg_count_.size()) deg_count_.resize(d + 2, 0);
    ++deg_count_[d + 1];
    if (d == 0) ++degpos_;
  };
  const auto lose = [this](NodeId v) {
    const std::uint32_t d = deg_[v]--;
    --deg_count_[d];
    ++deg_count_[d - 1];
    if (d == 1) --degpos_;
  };
  for (const auto& [u, w] : delta.added) {
    gain(u);
    gain(w);
  }
  for (const auto& [u, w] : delta.removed) {
    lose(u);
    lose(w);
  }
}

void MaintenanceEngine::drain_ledger(MaintTickStats& stats) {
  stats.expired_links = ledger_.expired_links;
  ledger_.expired_links = 0;
  stats.stale_ages = std::move(ledger_.stale_ages);
  ledger_.stale_ages.clear();

  const auto dedup = [](std::vector<NodeId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };

  dedup(ledger_.cluster_changed);
  for (const NodeId v : ledger_.cluster_changed) {
    const MaintenanceNode& nd = node(v);
    if (clustering_.head_of[v] != nd.head()) {
      ++stats.head_changes;
      const bool was_head = clustering_.head_of[v] == v;
      const bool now_head = nd.is_head();
      if (was_head != now_head) {
        if (now_head)
          insert_sorted(clustering_.heads, v);
        else
          erase_sorted(clustering_.heads, v);
      }
      clustering_.head_of[v] = nd.head();
    }
    if (clustering_.roles[v] != nd.role()) {
      ++stats.role_changes;
      clustering_.roles[v] = nd.role();
    }
  }
  ledger_.cluster_changed.clear();

  dedup(ledger_.rows_changed);
  for (const NodeId v : ledger_.rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.rows_changed;
    // The node's own rows are interned in the same store — the mirror
    // just retains the node's ref (ref equality is content equality, so
    // an unchanged ref means nothing to do).
    const RowRef h1 = nd.hop1_ref();
    if (h1 != mirror_hop1_[v]) {
      store_.retain_hop1(h1);
      store_.release_hop1(mirror_hop1_[v]);
      mirror_hop1_[v] = h1;
    }
    const RowRef h2 = nd.hop2_ref();
    if (h2 != mirror_hop2_[v]) {
      store_.retain_hop2(h2);
      store_.release_hop2(mirror_hop2_[v]);
      mirror_hop2_[v] = h2;
    }
  }
  ledger_.rows_changed.clear();

  dedup(ledger_.head_rows_changed);
  for (const NodeId v : ledger_.head_rows_changed) {
    const MaintenanceNode& nd = node(v);
    ++stats.heads_refreshed;
    const HeadRows refs = nd.head_refs();
    const NodeSet& fresh = store_.hop1(refs.sel);
    const NodeSet& stale = mirror_selection(v);
    if (fresh != stale) {
      for (const NodeId w : stale)
        if (!contains_sorted(fresh, w) && --selection_refs_[w] == 0)
          erase_sorted(gateways_, w);
      for (const NodeId w : fresh)
        if (!contains_sorted(stale, w) && selection_refs_[w]++ == 0)
          insert_sorted(gateways_, w);
    }
    // Retain the node's three head refs into the slot; allocate it on
    // first head refresh, recycle it when the node resigned (all rows
    // empty).
    const bool keep = !refs.empty();
    std::uint32_t slot = head_slot_[v];
    if (keep) {
      if (slot == 0) {
        if (!free_head_slots_.empty()) {
          slot = free_head_slots_.back() + 1;
          free_head_slots_.pop_back();
        } else {
          head_rows_.emplace_back();
          slot = static_cast<std::uint32_t>(head_rows_.size());
        }
        head_slot_[v] = slot;
      }
      HeadMirror& hm = head_rows_[slot - 1];
      const auto adopt = [this](RowRef& into, RowRef fresh_ref) {
        if (into == fresh_ref) return;
        store_.retain_hop1(fresh_ref);
        store_.release_hop1(into);
        into = fresh_ref;
      };
      adopt(hm.cov2, refs.cov2);
      adopt(hm.cov3, refs.cov3);
      adopt(hm.sel, refs.sel);
    } else if (slot != 0) {
      HeadMirror& hm = head_rows_[slot - 1];
      store_.release_hop1(hm.cov2);
      store_.release_hop1(hm.cov3);
      store_.release_hop1(hm.sel);
      hm = HeadMirror{};
      free_head_slots_.push_back(slot - 1);
      head_slot_[v] = 0;
    }
  }
  ledger_.head_rows_changed.clear();
}

std::uint64_t MaintenanceEngine::state_hash() const {
  // Same fold as core::backbone_state_hash — field order and length
  // prefixes are the contract — but read through the interned mirror
  // instead of materializing dense tables/coverage/selection vectors.
  const std::size_t n = clustering_.head_of.size();
  std::uint64_t h = 14695981039346656037ULL;
  h = core::state_hash_nodes(h, clustering_.heads);
  h = core::state_hash_mix(h, clustering_.head_of.size());
  for (const NodeId v : clustering_.head_of) h = core::state_hash_mix(h, v);
  for (const auto role : clustering_.roles)
    h = core::state_hash_mix(h, static_cast<std::uint64_t>(role));
  for (NodeId v = 0; v < n; ++v)
    h = core::state_hash_nodes(h, mirror_hop1(v));
  for (NodeId v = 0; v < n; ++v) {
    const auto& row = mirror_hop2(v);
    h = core::state_hash_mix(h, row.size());
    for (const auto& e : row)
      h = core::state_hash_mix(h, (std::uint64_t{e.head} << 32) | e.via);
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t s = head_slot_[v];
    const HeadMirror hm = s != 0 ? head_rows_[s - 1] : HeadMirror{};
    h = core::state_hash_nodes(h, store_.hop1(hm.cov2));
    h = core::state_hash_nodes(h, store_.hop1(hm.cov3));
  }
  for (NodeId v = 0; v < n; ++v)
    h = core::state_hash_nodes(h, mirror_selection(v));
  h = core::state_hash_nodes(h, gateways_);
  h = core::state_hash_nodes(h, cds());
  return h;
}

std::string MaintenanceEngine::diff_against(
    const core::StaticBackbone& oracle) const {
  NodeId ignored = kInvalidNode;
  return diff_against(oracle, &ignored);
}

std::string MaintenanceEngine::diff_against(const core::StaticBackbone& oracle,
                                            NodeId* divergent) const {
  *divergent = kInvalidNode;
  std::ostringstream os;
  if (clustering_.heads != oracle.clustering.heads) {
    // Witness: the first id on exactly one side of the symmetric diff.
    for (const NodeId h : clustering_.heads)
      if (!contains_sorted(oracle.clustering.heads, h)) {
        *divergent = h;
        break;
      }
    if (*divergent == kInvalidNode)
      for (const NodeId h : oracle.clustering.heads)
        if (!contains_sorted(clustering_.heads, h)) {
          *divergent = h;
          break;
        }
    os << "clusterhead sets differ (" << clustering_.heads.size()
       << " maintained vs " << oracle.clustering.heads.size() << " oracle)";
    return os.str();
  }
  const std::size_t n = clustering_.head_of.size();
  for (NodeId v = 0; v < n; ++v) {
    if (clustering_.head_of[v] != oracle.clustering.head_of[v]) {
      *divergent = v;
      os << "head_of[" << v << "]: " << clustering_.head_of[v] << " vs "
         << oracle.clustering.head_of[v];
      return os.str();
    }
    if (clustering_.roles[v] != oracle.clustering.roles[v]) {
      *divergent = v;
      os << "role[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (mirror_hop1(v) != oracle.tables.ch_hop1[v]) {
      *divergent = v;
      os << "ch_hop1[" << v << "] differs";
      return os.str();
    }
    if (!(mirror_hop2(v) == oracle.tables.ch_hop2[v])) {
      *divergent = v;
      os << "ch_hop2[" << v << "] differs";
      return os.str();
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t s = head_slot_[v];
    const HeadMirror hm = s != 0 ? head_rows_[s - 1] : HeadMirror{};
    if (store_.hop1(hm.cov2) != oracle.coverage[v].two_hop ||
        store_.hop1(hm.cov3) != oracle.coverage[v].three_hop) {
      *divergent = v;
      os << "coverage[" << v << "] differs";
      return os.str();
    }
    if (mirror_selection(v) != oracle.selection[v].gateways) {
      *divergent = v;
      os << "selection[" << v << "] differs";
      return os.str();
    }
  }
  if (gateways_ != oracle.gateways) {
    os << "gateway unions differ";
    return os.str();
  }
  if (cds() != oracle.cds) {
    os << "CDS differs";
    return os.str();
  }
  return "";
}

std::string MaintenanceEngine::check_gateway_flags(
    const graph::Graph& g) const {
  NodeId ignored_node = kInvalidNode;
  NodeId ignored_origin = kInvalidNode;
  return check_gateway_flags(g, &ignored_node, &ignored_origin);
}

std::string MaintenanceEngine::check_gateway_flags(const graph::Graph& g,
                                                   NodeId* divergent,
                                                   NodeId* origin) const {
  *divergent = kInvalidNode;
  *origin = kInvalidNode;
  std::ostringstream os;
  const auto first_selected_origin = [](const MaintenanceNode& nd) {
    for (const auto& e : nd.origins())
      if (e.selected) return e.origin;
    return kInvalidNode;
  };
  for (NodeId v = 0; v < g.order(); ++v) {
    const MaintenanceNode& nd = node(v);
    const bool truth = selection_refs_[v] > 0;
    const bool flag = nd.gateway_flag();
    if (truth && !flag) {
      *divergent = v;
      for (const NodeId h : clustering_.heads)
        if (contains_sorted(mirror_selection(h), v)) {
          *origin = h;
          break;
        }
      os << "node " << v << " is selected but its gateway flag is clear";
      return os.str();
    }
    if (flag && !truth) {
      if (options_.mode == core::CoverageMode::kThreeHop) {
        *divergent = v;
        *origin = first_selected_origin(nd);
        os << "node " << v
           << " holds a stale gateway flag (3-hop GC should be exact)";
        return os.str();
      }
      // 2.5-hop mode keeps entries without reachability GC; a stale set
      // flag is tolerable only when every set entry's origin can no
      // longer reach the node (outside its 2-hop ball).
      for (const auto& e : nd.origins()) {
        if (!e.selected) continue;
        // A dead origin (resigned since) can sit at a distance: its
        // retraction flood covered the ball it had *then*, not the ball
        // this node wandered into afterwards. But direct contact is
        // conclusive — either the node was inside the retraction flood,
        // or the ex-head's non-head beacon cleared the entry at link
        // formation (add_link). A flag surviving adjacency is the
        // historical stale-gateway bug.
        if (clustering_.head_of[e.origin] != e.origin) {
          if (g.has_edge(v, e.origin)) {
            *divergent = v;
            *origin = e.origin;
            os << "node " << v
               << " holds a stale gateway flag from resigned ex-head "
               << e.origin << " despite hearing its non-head beacon";
            return os.str();
          }
          continue;
        }
        bool in_ball = g.has_edge(v, e.origin);
        if (!in_ball) {
          for (const NodeId w : g.neighbors(v)) {
            if (g.has_edge(w, e.origin)) {
              in_ball = true;
              break;
            }
          }
        }
        if (in_ball) {
          *divergent = v;
          *origin = e.origin;
          os << "node " << v << " holds a stale gateway flag from origin "
             << e.origin << " inside its 2-hop ball";
          return os.str();
        }
      }
    }
  }
  return "";
}

std::string MaintenanceEngine::forensic_report(NodeId divergent,
                                               NodeId origin) const {
  if (obs_ == nullptr || divergent == kInvalidNode) return "";
  const obs::Journal& journal = obs_->journal;
  if (journal.size() == 0) return "";
  std::ostringstream os;
  os << "forensics: causal slice from the event journal";

  // Recent sends of the nodes involved (the local history leading up to
  // the bad state), oldest first.
  constexpr std::size_t kKeep = 12;
  std::vector<obs::JournalEvent> recent;
  journal.for_each([&](const obs::JournalEvent& e) {
    if (e.node == divergent || (origin != kInvalidNode && e.node == origin))
      recent.push_back(e);
  });
  const std::size_t skip = recent.size() > kKeep ? recent.size() - kKeep : 0;
  os << "\n  recent sends of node " << divergent;
  if (origin != kInvalidNode) os << " and origin " << origin;
  os << ":";
  if (recent.empty()) os << " (none retained)";
  for (std::size_t i = skip; i < recent.size(); ++i)
    os << "\n    " << obs::Journal::format_event(recent[i]);

  // The causal chain behind each node's newest message: the parent-link
  // walk back to the wave root (e.g. the beacon that revealed the
  // head-head edge behind a bad repair).
  const auto dump_chain = [&](NodeId v, const char* label) {
    const auto last = journal.last_event_of(v);
    if (!last) return;
    os << "\n  causal chain of " << label << ' ' << v
       << "'s last send (trace " << last->trace_id << "):";
    for (const auto& e : journal.causal_chain(last->trace_id))
      os << "\n    " << obs::Journal::format_event(e);
  };
  dump_chain(divergent, "node");
  if (origin != kInvalidNode && origin != divergent)
    dump_chain(origin, "origin");
  return os.str();
}

}  // namespace manet::proto
