// The maintenance-phase protocol engine: MaintenanceNode state machines
// over the event-driven round simulator, fed per-tick link deltas by the
// same DeltaTracker geometry the incremental engine uses.
//
// One tick = commit the staged moves (adjacency overlay updates in
// place; the simulator reads it through a Topology adapter), fire every
// node's HELLO timer, run the simulator to quiescence, then drain the
// nodes' change ledger into a hashable mirror (clustering, tables,
// coverage, selections, gateway union) in O(changes). The mirror exists
// so state_hash() and the oracle diff never rescan all n nodes — the
// protocol's own messages already told us exactly what moved.
//
// Oracle mode rebuilds the expected state from scratch every tick
// (lcc_update over the previous clustering + build_static_backbone) and
// requires bitwise equality — the proof that HELLO-paced, message-driven
// repair lands on the same structure as the snapshot-driven src/incr
// engine, and therefore hashes identically to it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/state_hash.hpp"
#include "core/static_backbone.hpp"
#include "core/table_kernels.hpp"
#include "geom/point.hpp"
#include "geom/spatial_grid.hpp"
#include "incr/delta_tracker.hpp"
#include "incr/worker_pool.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"
#include "proto/node.hpp"

namespace manet::obs {
struct Session;
}

namespace manet::proto {

/// Engine configuration.
struct EngineOptions {
  core::CoverageMode mode = core::CoverageMode::kTwoPointFiveHop;
  /// After every tick, rebuild the expected state from scratch and
  /// require bitwise equality plus gateway-flag consistency. Slow — for
  /// tests and the equivalence soak only.
  bool oracle_check = false;
  /// Cell storage of the DeltaTracker grid (identical state either way).
  geom::GridIndex grid = geom::GridIndex::kAuto;
  /// Build the initial unit-disk CSR with the streaming counting sweep.
  bool streaming_build = false;
  /// Observability session (`proto.*` metrics, per-tick trace spans,
  /// plus the simulator's `net.*` instrumentation). Must outlive the
  /// engine. nullptr = unobserved.
  obs::Session* obs = nullptr;
  /// Simulator livelock guard, per tick.
  std::uint32_t max_rounds_per_tick = 100000;
  /// Region-sharded tick execution. 0 = the classic sequential
  /// simulator loop over all n nodes. >= 1 runs each tick's active
  /// repair regions as independent scoped simulations (1 = inline on
  /// the caller; k >= 2 = an incr::WorkerPool with k lanes), with the
  /// quiescent remainder of the network accounted analytically — a
  /// tick costs O(active work), not O(n). The maintained state, its
  /// hash, and every deterministic metric are bitwise-identical across
  /// all thread counts and to the sequential loop.
  std::size_t threads = 0;
  /// Test-only: re-enable the historical stale-gateway soft-state bug on
  /// every node (MaintenanceNode::inject_stale_gateway_fault) so the
  /// divergence-forensics path can be exercised against a real fault.
  bool inject_stale_gateway_fault = false;
};

/// What one maintenance tick cost on the wire and churned in the state.
struct MaintTickStats {
  std::uint32_t rounds = 0;          ///< simulator rounds to quiescence
  std::size_t link_changes = 0;      ///< edges appearing or disappearing
  std::size_t head_changes = 0;      ///< nodes whose clusterhead changed
  std::size_t role_changes = 0;      ///< nodes whose cluster role changed
  std::size_t rows_changed = 0;      ///< nodes with a changed table row
  std::size_t heads_refreshed = 0;   ///< heads with new coverage/selection
  std::size_t expired_links = 0;     ///< neighbor-cache expiries (churn)
  /// Tick-relative decision round of every finalized repair this tick
  /// (rule-1 resignations and rule-2 re-affiliations) — how long each
  /// repaired node's state stayed stale.
  std::vector<std::uint32_t> stale_ages;
  net::MessageCounts messages;       ///< transmissions this tick, by type
  net::DeliveryStats delivery;       ///< delivery-layer cost this tick
  // Per-phase wall-time breakdown of the tick (bench reporting only —
  // never part of any deterministic observable). Under concurrent
  // region execution deliver/node_step sum across lanes (CPU time).
  double deliver_ms = 0.0;    ///< delivery passes (inbox arena fills)
  double node_step_ms = 0.0;  ///< node code: on_timer + on_round
  double mirror_ms = 0.0;     ///< ledger drain into the hashable mirror
};

/// The message-driven maintained backbone of a mobile unit-disk network.
class MaintenanceEngine {
 public:
  MaintenanceEngine(std::vector<geom::Point> positions, double range,
                    double width, double height, EngineOptions options);

  std::size_t size() const { return tracker_.size(); }
  core::CoverageMode mode() const { return options_.mode; }

  /// Stages a position update (applied at the next tick()).
  void stage_move(NodeId v, geom::Point p) { tracker_.stage_move(v, p); }

  /// One mobility tick: commit moves, beacon, run the protocol to
  /// quiescence, refresh the mirror. Throws std::logic_error on an
  /// oracle mismatch (oracle_check mode).
  MaintTickStats tick();

  // ---- Maintained state (the hashable mirror) ----
  const cluster::Clustering& clustering() const { return clustering_; }
  /// Mirror CH_HOP1/CH_HOP2 row of `v` (interned; content-shared with
  /// the nodes' caches).
  const NodeSet& mirror_hop1(NodeId v) const {
    return store_.hop1(mirror_hop1_[v]);
  }
  const std::vector<core::Hop2Entry>& mirror_hop2(NodeId v) const {
    return store_.hop2(mirror_hop2_[v]);
  }
  /// Mirror selection set of head `v` (empty for non-heads).
  const NodeSet& mirror_selection(NodeId v) const {
    const std::uint32_t s = head_slot_[v];
    return store_.hop1(s != 0 ? head_rows_[s - 1].sel : kEmptyRow);
  }
  /// Union of all selected gateways (maintained by reference counts).
  const NodeSet& gateways() const { return gateways_; }
  /// The SI-CDS: clusterheads ∪ gateways.
  NodeSet cds() const { return set_union(clustering_.heads, gateways_); }

  /// FNV-1a digest of the maintained state — bitwise-identical to
  /// exp::run_churn's digest of the incremental engine over the same
  /// move sequence (core::backbone_state_hash contract).
  std::uint64_t state_hash() const;

  const incr::DeltaTracker& tracker() const { return tracker_; }
  /// The engine-wide interned row store (leak/recycling diagnostics:
  /// live row counts must track the structure, not the churn history).
  const RowStore& store() const { return store_; }
  const net::Simulator& simulator() const { return *sim_; }
  /// Scope-filtered deliveries in sharded rounds >= 2 so far — any
  /// nonzero value is a repair wave escaping its painted region (the
  /// partition-separation property test asserts 0).
  std::size_t cross_scope_late() const { return sim_->cross_scope_late(); }
  const MaintenanceNode& node(NodeId v) const;
  std::uint64_t ticks() const { return ticks_; }

  /// Field-by-field comparison of the mirror against a from-scratch
  /// rebuild; empty string on bitwise equality. The overload reports the
  /// first divergent node (kInvalidNode for whole-set diffs with no
  /// single witness) so forensics can walk its causal history.
  std::string diff_against(const core::StaticBackbone& oracle) const;
  std::string diff_against(const core::StaticBackbone& oracle,
                           NodeId* divergent) const;

  /// Gateway-flag soft-state consistency: a selected node's flag must be
  /// set; an unselected node's flag must be clear in 3-hop mode (exact
  /// GC), and in 2.5-hop mode any stale set flag must come only from
  /// origins that cannot refresh the node — a live head outside the
  /// node's current 2-hop ball, or an ex-head whose retraction flood
  /// fired out of the node's earshot. Empty string when consistent. `g`
  /// is the current topology (god's-eye ball check).
  std::string check_gateway_flags(const graph::Graph& g) const;
  /// Overload reporting the inconsistent node and the selecting origin
  /// whose soft state went stale (kInvalidNode when not applicable).
  std::string check_gateway_flags(const graph::Graph& g, NodeId* divergent,
                                  NodeId* origin) const;

  void set_obs(obs::Session* session);

 private:
  class AdjacencyTopology;

  MaintenanceNode& node_mut(NodeId v);
  void drain_ledger(MaintTickStats& stats);
  /// The sharded tick body: region-scoped commit, concurrent region
  /// runs, deterministic merge. Fills stats.link_changes and returns
  /// the tick's round count.
  std::uint32_t run_sharded_tick(MaintTickStats& stats);
  /// O(1)-per-changed-edge maintenance of deg_/deg_count_/degpos_.
  void update_degrees(const incr::EdgeDelta& delta);
  /// Divergence forensics: the causal slice of the journal around the
  /// divergent node (and the origin whose state it mirrors wrongly) —
  /// recent events of both plus the parent-link chain of their newest
  /// messages. Empty without an attached session.
  std::string forensic_report(NodeId divergent, NodeId origin) const;

  EngineOptions options_;
  incr::DeltaTracker tracker_;
  Ledger ledger_;
  KernelScratch scratch_;  ///< shared by all nodes (sequential sim)
  RowStore store_;  ///< interned payload rows (must outlive the nodes)
  std::unique_ptr<net::Topology> topo_;
  std::unique_ptr<net::Simulator> sim_;

  // The hashable mirror. Same VALUES as incr::IncrementalBackbone's
  // accessors (state_hash() replicates core::backbone_state_hash
  // byte-for-byte), but interned storage: per-node table rows are
  // RowStore refs content-shared with the node caches (a mirror row
  // costs 8 bytes, not a second copy), and the head-only coverage/
  // selection rows live in slot-compacted entries of three refs each —
  // at n = 10^6 this keeps the whole mirror near 20 B/node where the
  // dense vectors cost ~390 (see DESIGN §9/S33).
  cluster::Clustering clustering_;
  std::vector<RowRef> mirror_hop1_;  ///< per-node CH_HOP1 row
  std::vector<RowRef> mirror_hop2_;  ///< per-node CH_HOP2 row
  /// One head's mirror rows: coverage halves + selection gateways (the
  /// only selection field any observable reads).
  struct HeadMirror {
    RowRef cov2 = kEmptyRow;  ///< Coverage::two_hop
    RowRef cov3 = kEmptyRow;  ///< Coverage::three_hop
    RowRef sel = kEmptyRow;   ///< GatewaySelection::gateways
  };
  std::vector<std::uint32_t> head_slot_;  ///< slot + 1, 0 = no head rows
  std::vector<HeadMirror> head_rows_;
  std::vector<std::uint32_t> free_head_slots_;
  /// selection_refs_[v] = number of heads whose selection contains v.
  std::vector<std::uint32_t> selection_refs_;
  NodeSet gateways_;  ///< {v : selection_refs_[v] > 0}

  // ---- Region-sharded execution (EngineOptions::threads > 0) ----
  std::vector<std::uint32_t> deg_;     ///< current degree per node
  std::vector<std::size_t> deg_count_; ///< deg_count_[d] = #nodes at d
  std::size_t degpos_ = 0;             ///< nodes with degree > 0
  incr::RegionPartition regions_;
  std::vector<std::uint32_t> scope_tag_;  ///< active region + 1, else 0
  std::vector<std::uint32_t> active_;     ///< active region indices
  std::vector<net::RegionRun> region_runs_;
  /// Per-active-region change ledgers (deque: growth never moves the
  /// entries nodes hold pointers to). Drained region-ascending into
  /// ledger_ at merge, so the mirror refresh is order-deterministic.
  std::deque<Ledger> region_ledgers_;
  std::vector<KernelScratch> lane_scratch_;  ///< one per lane
  std::unique_ptr<incr::WorkerPool> pool_;  ///< threads >= 2 only

  std::uint64_t ticks_ = 0;
  obs::Session* obs_ = nullptr;
  obs::Counter ticks_counter_, rounds_counter_, link_changes_counter_,
      head_changes_counter_, rows_changed_counter_, reselects_counter_;
  obs::Histogram rounds_hist_, msgs_hist_;
  // Convergence observability (proto.conv.* families — all integer
  // quantities of the deterministic protocol, so snapshots diff
  // byte-for-byte across runs and thread counts).
  obs::Counter conv_expired_counter_;
  obs::Gauge conv_stale_max_gauge_;
  obs::Histogram conv_stale_hist_, conv_wave_depth_hist_,
      conv_quiescence_hist_;
  std::uint64_t stale_age_max_ = 0;  ///< run max fed to the gauge
  std::uint32_t active_run_ = 0;     ///< consecutive non-quiet ticks so far
};

}  // namespace manet::proto
