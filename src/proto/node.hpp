// One node of the message-driven maintenance protocol (the paper's
// maintenance phase, run as a persistent per-node state machine on the
// round simulator).
//
// Each mobility tick the engine fires every node's on_timer: the node
// broadcasts a MAINT_HELLO beacon carrying its cluster status and
// neighbor list. From the beacons delivered one round later (tick round
// tr1) a node learns its exact current neighborhood — a cached neighbor
// whose beacon is missing has moved out of range (the medium is
// lossless, so one missed HELLO is conclusive), and a beacon from an
// unknown sender is a new link. Everything after that is the localized
// LCC repair and the incremental table/selection refresh, driven purely
// by received messages plus the round clock:
//
//  * Rule 1 (adjacent heads). Previous heads were pairwise non-adjacent,
//    so every head-head link visible at tr1 appeared this tick; its
//    endpoints are exactly lcc_update's affected heads, each of which
//    announces R1_STATUS at tr1 — FINAL(survived) when it has no
//    smaller-id head neighbor, else PENDING. Pending heads resolve in
//    ascending-id waves: a head resigns iff some smaller adjacent head
//    announced FINAL(survived). Silence is information: a head that
//    announced nothing by tr2 was unaffected and survives.
//  * Rule 2 (re-affiliation). A member turns dirty when its head's link
//    is gone (announces R2_STATUS PENDING at tr1) or its head announced
//    R1 PENDING/resigned (announces PENDING at tr2). All pendings are
//    therefore delivered by tr3, which makes the set of dirty smaller
//    neighbors conclusively known from tr3 on. A dirty node decides once
//    its old head's fate is final, every adjacent previous head is
//    resolved, and every dirty smaller neighbor announced its R2 FINAL —
//    replicating lcc_update's ascending scan exactly: declarations by
//    smaller nodes are visible, declarations by larger nodes are not
//    (and a resigned head never re-declares: its blocker is an adjacent
//    surviving head it can join instead).
//  * Refresh. After the adjacent repair state settles (>= tr3, all
//    adjacent pendings final), nodes recompute their CH_HOP1/CH_HOP2
//    rows with the shared core kernels over their message caches and
//    re-broadcast rows that changed (plus everything a newly formed
//    link's peer is missing); heads re-run coverage + gateway selection
//    when their inputs change and flood GATEWAY updates stamped with a
//    per-origin sequence number. Every recomputation is reactive, so by
//    quiescence each cache equals the batch value — which is what makes
//    the engine's state hash bitwise-equal to src/incr every tick.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/lowest_id.hpp"
#include "common/ids.hpp"
#include "core/coverage.hpp"
#include "core/gateway_selection.hpp"
#include "core/neighbor_tables.hpp"
#include "core/table_kernels.hpp"
#include "net/simulator.hpp"
#include "proto/row_store.hpp"

namespace manet::proto {

/// Change notifications the nodes push to the engine (so the engine can
/// refresh its hashable mirror in O(changes) instead of rescanning all n
/// nodes every tick). Ids may repeat; the engine dedups.
struct Ledger {
  std::vector<NodeId> cluster_changed;  ///< head_of and/or role changed
  std::vector<NodeId> rows_changed;     ///< CH_HOP1/CH_HOP2 row changed
  std::vector<NodeId> head_rows_changed;  ///< coverage/selection changed
  /// Convergence observability: one entry per finalized repair decision
  /// that changed cluster state (rule-1 resignation or rule-2
  /// re-affiliation/declaration), valued at the tick-relative round of
  /// the decision — how long the node's state stayed stale this tick.
  std::vector<std::uint32_t> stale_ages;
  /// Neighbor-cache entries expired this tick (missed beacons).
  std::size_t expired_links = 0;
};

/// A node's view of one current neighbor, fed by that neighbor's
/// messages (MAINT_HELLO, repair announcements, row re-broadcasts).
/// Row payloads are interned refs into the engine's shared RowStore —
/// a sender's row is broadcast identically to every neighbor, so per-
/// cache copies would multiply the row bytes by the average degree.
/// Refcounts are managed at the explicit mutation sites (add/remove/
/// overwrite) — caches are never copied around.
struct NeighborCache {
  // Causal ancestry of this tick's messages from the neighbor, kept so
  // repair announcements triggered by them can declare their parent
  // (net::Mailbox::send_caused) and waves chain in the trace/journal.
  // Stored as flat id + depth fields (not net::Cause) so the two u64s
  // lead the struct and the entry packs to 40 bytes — this cache is
  // n * degree entries, the protocol's largest per-node array. Beacons
  // carry no depth field: a MAINT_HELLO is always a wave root (sent
  // uncaused by on_timer), so its depth is 0 by construction.
  std::uint64_t beacon_cause_id = 0;  ///< this tick's MAINT_HELLO
  std::uint64_t r1_cause_id = 0;      ///< latest R1_STATUS

  NodeId id = kInvalidNode;
  NodeId head_of = kInvalidNode;  ///< the neighbor's clusterhead
  RowRef hop1 = kEmptyRow;        ///< its last CH_HOP1 payload (interned)
  RowRef hop2 = kEmptyRow;        ///< its last CH_HOP2 payload (interned)
  std::uint32_t r1_cause_depth = 0;
  bool heard = false;             ///< beacon received this tick

  // Per-tick repair bookkeeping (reset by the tick beacon).
  bool was_head = false;   ///< head status carried by this tick's beacon
  std::uint8_t r1 = 0;     ///< kNone/kPending/kSurvived/kResigned
  std::uint8_t r2 = 0;     ///< kNone/kPending/kFinal

  net::Cause beacon_cause() const {
    return net::Cause{beacon_cause_id, 0};
  }
  void set_beacon_cause(net::Cause c) { beacon_cause_id = c.id; }
  net::Cause r1_cause() const { return net::Cause{r1_cause_id, r1_cause_depth}; }
  void set_r1_cause(net::Cause c) {
    r1_cause_id = c.id;
    r1_cause_depth = c.depth;
  }

  bool is_head() const { return head_of == id; }
};

/// Cached gateway-selection status from one clusterhead origin (soft
/// state behind the node's backbone-membership flag). The payload is an
/// interned ref: one origin's selection set lands identically in every
/// selected node's cache.
struct OriginCache {
  NodeId origin = kInvalidNode;
  std::uint32_t seq = 0;        ///< freshest selection version seen
  std::uint32_t forwarded = 0;  ///< highest seq this node forwarded
  bool selected = false;        ///< this node is in origin's selection
  RowRef payload = kEmptyRow;   ///< full selected set, interned (for
                                ///< re-sends on link formation)
};

/// Head-only working state: coverage halves, selection gateways, and
/// what was last flooded — four interned refs, 16 bytes inline on every
/// node. PR 9 hoisted the dense structs (~150 bytes of vectors) behind
/// a heads-only pointer; interning collapses them further, drops the
/// per-head allocation, and shares slabs with the engine mirror (whose
/// rows are the same content). The greedy's SelectionStep trace is no
/// longer retained between reselects — no observable reads it (mirror,
/// oracle diff and floods consume only coverage halves + the gateway
/// set), and ref equality is content equality, so change detection
/// stays exact. All refs released on resignation (the selection
/// sequence number survives in the node so re-declared selections stay
/// monotonically versioned for receivers).
struct HeadRows {
  RowRef cov2 = kEmptyRow;          ///< Coverage::two_hop (interned)
  RowRef cov3 = kEmptyRow;          ///< Coverage::three_hop (interned)
  RowRef sel = kEmptyRow;           ///< selection gateway set (interned)
  RowRef last_flooded = kEmptyRow;  ///< selection last flooded

  /// No head state at all (ref 0 is the canonical empty row, so a head
  /// with genuinely empty coverage and selection also reads as empty —
  /// exactly the condition under which the mirror recycles its slot).
  bool empty() const {
    return cov2 == kEmptyRow && cov3 == kEmptyRow && sel == kEmptyRow;
  }
};

/// Per-lane kernel scratch: the coverage + selection bitsets a head
/// reuses across recomputations, bundled so the node spends one pointer
/// on both. One instance serves every node dispatched on a lane (the
/// simulator runs a lane's nodes sequentially).
struct KernelScratch {
  core::CoverageScratch cov;
  core::SelectionScratch sel;
};

/// The maintenance-phase state machine of one node.
class MaintenanceNode final : public net::NodeProcess {
 public:
  /// `universe` sizes the coverage bitsets (total node count); `scratch`
  /// is shared across all nodes dispatched on one lane (the simulator
  /// dispatches a lane's nodes sequentially, so one scratch serves every
  /// head on it); `store` interns all cached payload rows and is shared
  /// engine-wide.
  MaintenanceNode(NodeId id, core::CoverageMode mode, std::size_t universe,
                  Ledger* ledger, KernelScratch* scratch, RowStore* store);

  // ---- Bootstrap (engine-seeded; nodes join a converged backbone) ----
  // Row-shaped state arrives as refs into the shared store (the engine
  // already interned the converged rows for its mirror); each call
  // retains what it keeps, so the bootstrap never re-hashes content.
  void seed_clustering(NodeId head, cluster::Role role);
  /// Reserve the neighbor arrays exactly before seeding: one-at-a-time
  /// inserts double capacity, and at mean degree ~6 the overshoot is
  /// ~2 cache entries per node — tens of MB of pure waste at 10M.
  void reserve_neighbors(std::size_t count);
  void seed_neighbor(NodeId id, NodeId head_of, RowRef hop1, RowRef hop2);
  void seed_rows(RowRef hop1, RowRef hop2);
  void seed_head_rows(RowRef cov2, RowRef cov3, RowRef sel);
  void seed_origin(NodeId origin, bool selected, RowRef payload);

  // ---- Region-sharded dispatch hooks (engine-managed) ----
  /// Redirect change notifications to a per-region ledger for the
  /// duration of one tick's region execution.
  void set_ledger(Ledger* ledger) { ledger_ = ledger; }
  /// Redirect kernel scratch to the executing lane's instance.
  void set_scratch(KernelScratch* scratch) { scratch_ = scratch; }
  /// Engine fast path for quiescent senders: replicate the only effect a
  /// skipped neighbor's beacon has on this node — the heard mark and its
  /// causal id — without delivering a message. Asserts the cached head
  /// state matches what the beacon would have carried (identity tick).
  void mark_neighbor_heard(NodeId w, net::Cause cause);

  // ---- NodeProcess interface ----
  void start(net::Mailbox& /*out*/) override {}
  void on_timer(std::uint32_t round, net::Mailbox& out) override;
  void on_round(std::uint32_t round, net::Inbox inbox,
                net::Mailbox& out) override;
  bool awake() const override { return awake_; }
  bool done() const override { return !awake_; }

  // ---- State accessors (engine mirror refresh + tests) ----
  NodeId head() const { return head_; }
  bool is_head() const { return head_ == id_; }
  cluster::Role role() const { return role_; }
  const NodeSet& neighbors() const { return neighbor_ids_; }
  const NodeSet& hop1_row() const { return store_->hop1(my_hop1_); }
  const std::vector<core::Hop2Entry>& hop2_row() const {
    return store_->hop2(my_hop2_);
  }
  /// Interned refs of the node's own rows (the engine mirror retains
  /// these directly instead of re-interning content).
  RowRef hop1_ref() const { return my_hop1_; }
  RowRef hop2_ref() const { return my_hop2_; }
  /// The head-only interned refs (all kEmptyRow on non-heads).
  HeadRows head_refs() const { return head_rows_; }
  const NodeSet& coverage_two_hop() const {
    return store_->hop1(head_rows_.cov2);
  }
  const NodeSet& coverage_three_hop() const {
    return store_->hop1(head_rows_.cov3);
  }
  const NodeSet& selection_gateways() const {
    return store_->hop1(head_rows_.sel);
  }
  /// Soft-state backbone-membership flag: selected by any cached origin.
  bool gateway_flag() const;
  const std::vector<OriginCache>& origins() const {
    static const std::vector<OriginCache> kEmpty;
    return origins_ != nullptr ? *origins_ : kEmpty;
  }

  /// Test hook: re-enables the PR 7 stale-gateway soft-state bug (a
  /// cached `selected` flag from an ex-head is NOT cleared on hearing
  /// the ex-head's non-head beacon at link formation). Exists solely so
  /// divergence forensics can be exercised against a real, historical
  /// fault; never set outside tests.
  void inject_stale_gateway_fault() { fault_stale_gateway_ = true; }

  // ---- Cache lookups for the kernel view adapters ----
  /// head_of of `x` as cached from its messages (self included).
  NodeId cached_head_of(NodeId x) const;
  /// Last CH_HOP1 payload cached from neighbor `w` (empty if none).
  const NodeSet& cached_hop1(NodeId w) const;
  /// Last CH_HOP2 payload cached from neighbor `w` (empty if none).
  const std::vector<core::Hop2Entry>& cached_hop2(NodeId w) const;

 private:
  // Repair-state constants for NeighborCache::r1/r2 and self.
  enum : std::uint8_t { kNone = 0, kPending = 1, kSurvived = 2,
                        kResigned = 3, kFinal = 2 };

  NeighborCache* find_neighbor(NodeId w);
  const NeighborCache* find_neighbor(NodeId w) const;
  /// The origin-cache vector, materialized on first use. Most nodes
  /// most of the time cache nothing (only nodes near a selecting head
  /// hold entries), so the empty state costs one pointer, not a vector
  /// header.
  std::vector<OriginCache>& origins_mut() {
    if (origins_ == nullptr)
      origins_ = std::make_unique<std::vector<OriginCache>>();
    return *origins_;
  }
  /// Releases every cached origin payload and drops the vector.
  void clear_origins();

  void ingest(const net::Message& m, net::Mailbox& out);
  void process_tick_start(net::Mailbox& out);
  void add_link(NodeId w, NodeId head_of_w, net::Cause cause);
  void remove_link(NodeId w);

  /// Progress evaluation run after every ingest: R1 wave step, R2
  /// dirtiness + decision, settlement (rows, role, origin GC, link-
  /// formation re-sends), head reselection.
  void evaluate(std::uint32_t tr, net::Mailbox& out);
  void try_resolve_r1(std::uint32_t tr, net::Mailbox& out);
  void become_dirty(net::Mailbox& out, net::Cause cause);
  void try_decide_r2(std::uint32_t tr, net::Mailbox& out);
  /// True when every adjacent repair obligation is final: R1 states
  /// conclusive (needs tr >= 2 for silence), R2 pendings resolved, own
  /// decision made, and the dirty set complete (tr >= 3).
  bool repair_settled(std::uint32_t tr) const;
  void settle_rows(net::Mailbox& out);
  void recompute_role();
  void flood_selection(net::Mailbox& out);
  void maybe_reselect(net::Mailbox& out);
  void gc_origins();

  /// Final head status of neighbor `w` as seen by lcc_update's scan of
  /// this node (declarations by larger ids invisible).
  bool head_at_scan(const NeighborCache& w) const;

  // Members are packed by alignment class (pointers, u32s, then the
  // flag bytes) — the node is an n-sized array, so padding is RSS.
  NodeId id_;
  NodeId head_ = kInvalidNode;  ///< persistent: current affiliation
  Ledger* ledger_;
  KernelScratch* scratch_;
  RowStore* store_;
  std::uint32_t universe_;  ///< coverage bitset size (total node count)

  // ---- Persistent protocol state ----
  std::uint32_t selection_seq_ = 0;  ///< own GATEWAY version counter
  NodeSet neighbor_ids_;                  ///< sorted current neighbors
  std::vector<NeighborCache> neighbors_;  ///< parallel to neighbor_ids_
  RowRef my_hop1_ = kEmptyRow;  ///< own CH_HOP1 row (interned)
  RowRef my_hop2_ = kEmptyRow;  ///< own CH_HOP2 row (interned)
  HeadRows head_rows_;          ///< head-only refs (see HeadRows)
  /// Gateway-origin soft state, sorted by origin id; nullptr when empty.
  std::unique_ptr<std::vector<OriginCache>> origins_;

  // ---- Per-tick state ----
  std::uint32_t tick_base_ = 0;  ///< round of the tick's on_timer
  NodeId old_head_ = kInvalidNode;  ///< affiliation at tick start

  // ---- Causal attribution (observability) ----
  /// The message currently being ingested (or the last one this
  /// evaluate() pass): fallback parent for sends without a more precise
  /// trigger (row refreshes, selection floods). Reset by on_timer so
  /// beacons stay wave roots.
  net::Cause last_input_cause_;
  /// Parent of this node's own R2 wave (the message that made it dirty);
  /// all R2_STATUS sends chain from it.
  net::Cause my_r2_cause_;

  core::CoverageMode mode_;
  cluster::Role role_ = cluster::Role::kOrdinary;
  std::uint8_t my_r1_ = kNone;   ///< own rule-1 state (previous heads)
  std::uint8_t my_r2_ = kNone;   ///< own rule-2 state
  bool awake_ = false;
  bool tick_open_ = false;       ///< tr1 processing still due
  bool was_head_ = false;        ///< head status at tick start
  bool topo_changed_ = false;
  bool links_formed_ = false;    ///< any new neighbor this tick
  bool rows_dirty_ = false;      ///< own row inputs changed
  bool role_dirty_ = false;
  bool head_inputs_dirty_ = false;  ///< coverage/selection inputs changed
  bool inputs_this_round_ = false;  ///< defers reselection one quiet round
  bool settled_ = false;         ///< repair settled, refresh phase active
  bool head_changed_ = false;    ///< own R2 decision changed affiliation
  bool force_flood_ = false;     ///< flood selection even if unchanged
  bool link_resends_done_ = false;  ///< origin re-sends sent this tick
  bool rows_forced_ = false;     ///< full row re-send to new links done

  bool fault_stale_gateway_ = false;  ///< see inject_stale_gateway_fault
};

}  // namespace manet::proto
