#include "proto/node.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "common/assert.hpp"
#include "core/table_kernels.hpp"

namespace manet::proto {
namespace {

// ---- View adapters: the shared core kernels over the message caches ----
//
// The kernels only ever query the owning node itself (its row, its
// coverage) plus its cached neighbors, so a node's local knowledge is
// exactly the adjacency/clustering slice they need.

/// Adjacency restricted to the node's own neighborhood.
struct SelfAdj {
  const MaintenanceNode& node;
  NodeId self;

  std::span<const NodeId> neighbors(NodeId v) const {
    MANET_ASSERT(v == self, "kernel asked for a non-local adjacency row");
    return {node.neighbors().data(), node.neighbors().size()};
  }
  bool has_edge(NodeId u, NodeId w) const {
    MANET_ASSERT(u == self, "kernel asked for a non-local edge");
    return contains_sorted(node.neighbors(), w);
  }
};

/// head_of[] lookups out of the neighbor caches (plus the node itself).
struct HeadOfProxy {
  const MaintenanceNode* node;
  NodeId operator[](NodeId x) const { return node->cached_head_of(x); }
};

struct ClustView {
  HeadOfProxy head_of;
  bool is_head(NodeId v) const { return head_of[v] == v; }
};

/// hop1[x] / ch_hop1[x] lookups out of the neighbor caches.
struct Hop1Proxy {
  const MaintenanceNode* node;
  const NodeSet& operator[](NodeId x) const { return node->cached_hop1(x); }
};

struct Hop2Proxy {
  const MaintenanceNode* node;
  const std::vector<core::Hop2Entry>& operator[](NodeId x) const {
    return node->cached_hop2(x);
  }
};

struct TablesView {
  Hop1Proxy ch_hop1;
  Hop2Proxy ch_hop2;
};

/// The gateway-selection greedy's view of the cached CH_HOP1/CH_HOP2
/// payloads (same shape net::protocol uses for construction).
class CacheSelectionView final : public core::LocalSelectionView {
 public:
  explicit CacheSelectionView(const MaintenanceNode& node) : node_(node) {}
  const NodeSet& neighbors() const override { return node_.neighbors(); }
  const NodeSet& hop1(NodeId v) const override {
    return node_.cached_hop1(v);
  }
  const std::vector<core::Hop2Entry>& hop2(NodeId v) const override {
    return node_.cached_hop2(v);
  }

 private:
  const MaintenanceNode& node_;
};

}  // namespace

MaintenanceNode::MaintenanceNode(NodeId id, core::CoverageMode mode,
                                 std::size_t universe, Ledger* ledger,
                                 KernelScratch* scratch, RowStore* store)
    : id_(id), head_(id), ledger_(ledger), scratch_(scratch), store_(store),
      universe_(static_cast<std::uint32_t>(universe)), mode_(mode) {
  MANET_REQUIRE(ledger != nullptr, "ledger required");
  MANET_REQUIRE(scratch != nullptr, "kernel scratch required");
  MANET_REQUIRE(store != nullptr, "row store required");
}

// ---- Bootstrap ----------------------------------------------------------

void MaintenanceNode::seed_clustering(NodeId head, cluster::Role role) {
  head_ = head;
  role_ = role;
}

void MaintenanceNode::reserve_neighbors(std::size_t count) {
  neighbor_ids_.reserve(count);
  neighbors_.reserve(count);
}

void MaintenanceNode::seed_neighbor(NodeId id, NodeId head_of, RowRef hop1,
                                    RowRef hop2) {
  const auto it =
      std::lower_bound(neighbor_ids_.begin(), neighbor_ids_.end(), id);
  MANET_REQUIRE(it == neighbor_ids_.end() || *it != id,
                "duplicate seeded neighbor");
  const auto idx = it - neighbor_ids_.begin();
  neighbor_ids_.insert(it, id);
  NeighborCache cache;
  cache.id = id;
  cache.head_of = head_of;
  store_->retain_hop1(hop1);
  store_->retain_hop2(hop2);
  cache.hop1 = hop1;
  cache.hop2 = hop2;
  neighbors_.insert(neighbors_.begin() + idx, std::move(cache));
}

void MaintenanceNode::seed_rows(RowRef hop1, RowRef hop2) {
  store_->retain_hop1(hop1);
  store_->retain_hop2(hop2);
  my_hop1_ = hop1;
  my_hop2_ = hop2;
}

void MaintenanceNode::seed_head_rows(RowRef cov2, RowRef cov3, RowRef sel) {
  store_->retain_hop1(cov2);
  store_->retain_hop1(cov3);
  store_->retain_hop1(sel);
  store_->retain_hop1(sel);  // once for sel, once for last_flooded
  head_rows_.cov2 = cov2;
  head_rows_.cov3 = cov3;
  head_rows_.sel = sel;
  head_rows_.last_flooded = sel;
}

void MaintenanceNode::seed_origin(NodeId origin, bool selected,
                                  RowRef payload) {
  OriginCache e;
  e.origin = origin;
  e.selected = selected;
  store_->retain_hop1(payload);
  e.payload = payload;
  auto& origins = origins_mut();
  const auto it = std::lower_bound(
      origins.begin(), origins.end(), origin,
      [](const OriginCache& a, NodeId b) { return a.origin < b; });
  MANET_REQUIRE(it == origins.end() || it->origin != origin,
                "duplicate seeded origin");
  origins.insert(it, std::move(e));
}

// ---- Accessors ----------------------------------------------------------

bool MaintenanceNode::gateway_flag() const {
  if (origins_ == nullptr) return false;
  for (const auto& e : *origins_)
    if (e.selected) return true;
  return false;
}

void MaintenanceNode::clear_origins() {
  if (origins_ == nullptr) return;
  for (const auto& e : *origins_) store_->release_hop1(e.payload);
  origins_.reset();
}

NodeId MaintenanceNode::cached_head_of(NodeId x) const {
  if (x == id_) return head_;
  const NeighborCache* nb = find_neighbor(x);
  return nb != nullptr ? nb->head_of : kInvalidNode;
}

const NodeSet& MaintenanceNode::cached_hop1(NodeId w) const {
  const NeighborCache* nb = find_neighbor(w);
  return store_->hop1(nb != nullptr ? nb->hop1 : kEmptyRow);
}

const std::vector<core::Hop2Entry>& MaintenanceNode::cached_hop2(
    NodeId w) const {
  const NeighborCache* nb = find_neighbor(w);
  return store_->hop2(nb != nullptr ? nb->hop2 : kEmptyRow);
}

NeighborCache* MaintenanceNode::find_neighbor(NodeId w) {
  const auto it =
      std::lower_bound(neighbor_ids_.begin(), neighbor_ids_.end(), w);
  if (it == neighbor_ids_.end() || *it != w) return nullptr;
  return &neighbors_[static_cast<std::size_t>(it - neighbor_ids_.begin())];
}

const NeighborCache* MaintenanceNode::find_neighbor(NodeId w) const {
  return const_cast<MaintenanceNode*>(this)->find_neighbor(w);
}

void MaintenanceNode::mark_neighbor_heard(NodeId w, net::Cause cause) {
  NeighborCache* nb = find_neighbor(w);
  MANET_ASSERT(nb != nullptr, "heard mark for an unknown neighbor");
  if (nb == nullptr) return;
  nb->heard = true;
  nb->set_beacon_cause(cause);
}

// ---- Tick pacing --------------------------------------------------------

void MaintenanceNode::on_timer(std::uint32_t round, net::Mailbox& out) {
  MANET_ASSERT(!awake_, "previous tick did not quiesce");
  tick_base_ = round;
  tick_open_ = true;
  my_r1_ = kNone;
  my_r2_ = kNone;
  was_head_ = is_head();
  old_head_ = head_;
  topo_changed_ = false;
  links_formed_ = false;
  rows_dirty_ = false;
  role_dirty_ = false;
  head_inputs_dirty_ = false;
  inputs_this_round_ = false;
  settled_ = false;
  head_changed_ = false;
  force_flood_ = false;
  link_resends_done_ = false;
  rows_forced_ = false;
  last_input_cause_ = net::Cause{};
  my_r2_cause_ = net::Cause{};
  for (auto& nb : neighbors_) {
    nb.heard = false;
    nb.was_head = nb.is_head();
    nb.r1 = kNone;
    nb.r2 = kNone;
  }
  out.send(net::MaintHelloMsg{is_head(), head_});
  // Stay dispatched through tr1 so the beacon round gets processed even
  // when every link survived; an isolated node has nothing to expire.
  awake_ = !neighbor_ids_.empty();
}

void MaintenanceNode::on_round(std::uint32_t round, net::Inbox inbox,
                               net::Mailbox& out) {
  const std::uint32_t tr = round - tick_base_;
  inputs_this_round_ = false;
  for (const net::Message* m : inbox) ingest(*m, out);
  if (tick_open_) {
    if (tr < 1) return;  // defensive; beacons deliver at tr1
    process_tick_start(out);
    tick_open_ = false;
  }
  evaluate(tr, out);
}

// ---- Message ingestion --------------------------------------------------

void MaintenanceNode::ingest(const net::Message& m, net::Mailbox& out) {
  const net::Cause cause{m.trace_id, m.depth};
  last_input_cause_ = cause;

  if (const auto* hello = std::get_if<net::MaintHelloMsg>(&m.body)) {
    NeighborCache* nb = find_neighbor(m.from);
    if (nb == nullptr) {
      add_link(m.from, hello->is_head ? m.from : hello->head, cause);
    } else {
      nb->heard = true;
      nb->set_beacon_cause(cause);
      MANET_ASSERT(nb->head_of == hello->head,
                   "cached affiliation diverged from beacon");
    }
    return;
  }

  if (const auto* gw = std::get_if<net::GatewayMsg>(&m.body)) {
    if (gw->origin == id_) return;  // own flood echoed back by a forwarder
    bool created = false;
    OriginCache* e;
    {
      auto& origins = origins_mut();
      const auto it = std::lower_bound(
          origins.begin(), origins.end(), gw->origin,
          [](const OriginCache& a, NodeId b) { return a.origin < b; });
      if (it != origins.end() && it->origin == gw->origin) {
        e = &*it;
      } else {
        created = true;
        OriginCache fresh;
        fresh.origin = gw->origin;
        e = &*origins.insert(it, std::move(fresh));
      }
    }
    if (created || gw->seq > e->seq) {
      e->seq = gw->seq;
      e->selected = contains_sorted(gw->selected, id_);
      store_->release_hop1(e->payload);
      e->payload = store_->intern_hop1(gw->selected);
    }
    if (gw->ttl > 1 && gw->seq > e->forwarded) {
      // Everyone forwards once per (origin, seq): second-hop members must
      // hear selection updates (including the one clearing their flag)
      // even when no selected node sits between them and the origin.
      e->forwarded = gw->seq;
      out.send_caused(net::GatewayMsg{gw->origin, gw->selected,
                                      static_cast<std::uint8_t>(gw->ttl - 1),
                                      gw->seq},
                      cause);
    }
    return;
  }

  NeighborCache* nb = find_neighbor(m.from);
  MANET_ASSERT(nb != nullptr, "repair message from a non-neighbor");
  if (nb == nullptr) return;

  if (const auto* r1 = std::get_if<net::R1StatusMsg>(&m.body)) {
    nb->r1 = r1->final_ ? (r1->survived ? kSurvived : kResigned) : kPending;
    nb->set_r1_cause(cause);
    // A resignation changes my CH_HOP1 inputs (one fewer adjacent head).
    if (r1->final_ && !r1->survived) rows_dirty_ = true;
    return;
  }

  if (const auto* r2 = std::get_if<net::R2StatusMsg>(&m.body)) {
    if (!r2->final_) {
      nb->r2 = kPending;
      return;
    }
    nb->r2 = kFinal;
    MANET_ASSERT(!(r2->declared && nb->was_head && nb->r1 == kResigned),
                 "resigned head re-declared");
    if (nb->head_of != r2->head) {
      nb->head_of = r2->head;
      role_dirty_ = true;
      rows_dirty_ = true;
    }
    if (r2->declared) {
      // New heads send no CH_HOP1/CH_HOP2; drop the rows they sent as a
      // member (exactly what the batch tables do for heads).
      store_->release_hop1(nb->hop1);
      store_->release_hop2(nb->hop2);
      nb->hop1 = kEmptyRow;
      nb->hop2 = kEmptyRow;
      rows_dirty_ = true;
      head_inputs_dirty_ = true;
      inputs_this_round_ = true;
    }
    return;
  }

  if (const auto* h1 = std::get_if<net::ChHop1Msg>(&m.body)) {
    store_->release_hop1(nb->hop1);
    nb->hop1 = store_->intern_hop1(h1->heads);
    rows_dirty_ = true;       // my CH_HOP2 inputs (3-hop mode)
    head_inputs_dirty_ = true;  // my coverage inputs (if head)
    inputs_this_round_ = true;
    return;
  }

  if (const auto* h2 = std::get_if<net::ChHop2Msg>(&m.body)) {
    store_->release_hop2(nb->hop2);
    nb->hop2 = store_->intern_hop2(h2->entries);
    head_inputs_dirty_ = true;
    inputs_this_round_ = true;
    return;
  }

  MANET_ASSERT(false, "construction-phase message during maintenance");
}

void MaintenanceNode::add_link(NodeId w, NodeId head_of_w, net::Cause cause) {
  const auto it =
      std::lower_bound(neighbor_ids_.begin(), neighbor_ids_.end(), w);
  const auto idx = it - neighbor_ids_.begin();
  neighbor_ids_.insert(it, w);
  NeighborCache cache;
  cache.id = w;
  cache.head_of = head_of_w;
  cache.heard = true;
  cache.was_head = head_of_w == w;
  cache.set_beacon_cause(cause);
  neighbors_.insert(neighbors_.begin() + idx, std::move(cache));
  // A beacon from a non-head is conclusive about its selection: any
  // cached selected bit from w's past head tenure is dead (the
  // retraction flood happened out of this node's earshot). The seq
  // stays, so a fresher flood from a re-declared w still applies.
  // (fault_stale_gateway_ skips the fix — the PR 7 bug, kept reachable
  // for the divergence-forensics test only.)
  if (head_of_w != w && origins_ != nullptr && !fault_stale_gateway_) {
    const auto oit = std::lower_bound(
        origins_->begin(), origins_->end(), w,
        [](const OriginCache& e, NodeId o) { return e.origin < o; });
    if (oit != origins_->end() && oit->origin == w && oit->selected) {
      oit->selected = false;
      store_->release_hop1(oit->payload);
      oit->payload = kEmptyRow;
    }
  }
  links_formed_ = true;
  topo_changed_ = true;
  rows_dirty_ = true;
  role_dirty_ = true;
  head_inputs_dirty_ = true;
  inputs_this_round_ = true;
}

void MaintenanceNode::remove_link(NodeId w) {
  const auto it =
      std::lower_bound(neighbor_ids_.begin(), neighbor_ids_.end(), w);
  MANET_ASSERT(it != neighbor_ids_.end() && *it == w,
               "expiring an unknown link");
  const auto idx =
      static_cast<std::size_t>(it - neighbor_ids_.begin());
  neighbor_ids_.erase(it);
  store_->release_hop1(neighbors_[idx].hop1);
  store_->release_hop2(neighbors_[idx].hop2);
  neighbors_.erase(neighbors_.begin() +
                   static_cast<std::ptrdiff_t>(idx));
  topo_changed_ = true;
  rows_dirty_ = true;
  role_dirty_ = true;
  head_inputs_dirty_ = true;
}

void MaintenanceNode::process_tick_start(net::Mailbox& out) {
  // Expire every cached neighbor whose beacon is missing (lossless
  // medium: one missed HELLO is conclusive).
  NodeSet expired;
  for (const auto& nb : neighbors_)
    if (!nb.heard) expired.push_back(nb.id);
  for (NodeId w : expired) remove_link(w);
  ledger_->expired_links += expired.size();

  if (was_head_) {
    // Rule 1: previous heads were pairwise non-adjacent, so any
    // previous-head neighbor means a head-head edge appeared this tick.
    // The announcement's causal parent is the beacon that revealed the
    // edge (the smallest previous-head neighbor's MAINT_HELLO), so a
    // repair wave chains back to the beacon that started it.
    bool affected = false;
    bool smaller = false;
    net::Cause trigger;
    for (const auto& nb : neighbors_) {
      if (!nb.was_head) continue;
      if (!affected) trigger = nb.beacon_cause();
      affected = true;
      if (nb.id < id_) smaller = true;
    }
    if (affected) {
      if (smaller) {
        my_r1_ = kPending;
        out.send_caused(net::R1StatusMsg{false, false}, trigger);
      } else {
        my_r1_ = kSurvived;
        out.send_caused(net::R1StatusMsg{true, true}, trigger);
      }
    }
  } else if (old_head_ == kInvalidNode ||
             !contains_sorted(neighbor_ids_, old_head_)) {
    // Rule 2: the link to my head is gone — re-affiliation required.
    // Triggered by a *missing* beacon, so the wave starts a fresh root.
    become_dirty(out, net::Cause{});
  }
}

// ---- Repair -------------------------------------------------------------

void MaintenanceNode::evaluate(std::uint32_t tr, net::Mailbox& out) {
  if (my_r1_ == kPending) try_resolve_r1(tr, out);

  // Conditional rule-2 dirtiness: my head announced that its own survival
  // is pending (or it already resigned), so my affiliation may break.
  // The head's R1 announcement is the causal parent of my R2 wave.
  if (!was_head_ && my_r2_ == kNone && old_head_ != kInvalidNode) {
    const NeighborCache* oh = find_neighbor(old_head_);
    if (oh != nullptr && (oh->r1 == kPending || oh->r1 == kResigned))
      become_dirty(out, oh->r1_cause());
  }

  if (my_r2_ == kPending) try_decide_r2(tr, out);

  if (repair_settled(tr) && (!settled_ || rows_dirty_ || role_dirty_)) {
    settled_ = true;
    settle_rows(out);
  }
  if (settled_) maybe_reselect(out);
  // Settled non-heads consume row updates reactively within the dispatch
  // that delivered them; only heads hold the flag for deferred reselects.
  if (settled_ && !is_head()) head_inputs_dirty_ = false;

  awake_ = tick_open_ || my_r1_ == kPending || my_r2_ == kPending ||
           (!settled_ &&
            (topo_changed_ || rows_dirty_ || role_dirty_ ||
             head_inputs_dirty_ || my_r1_ != kNone || my_r2_ != kNone)) ||
           (settled_ && is_head() && (head_inputs_dirty_ || force_flood_));
}

void MaintenanceNode::try_resolve_r1(std::uint32_t tr, net::Mailbox& out) {
  // Every smaller previous-head neighbor of an affected head is itself
  // affected (the head-head edge implicates both endpoints) and announced
  // at its tr1, so kNone here means its announcement is still in flight.
  bool all_final = true;
  for (const auto& nb : neighbors_) {
    if (nb.id >= id_) break;
    if (!nb.was_head) continue;
    if (nb.r1 == kSurvived) {
      // The smaller head's FINAL(survived) announcement caused this
      // resignation — chain the wave through it.
      my_r1_ = kResigned;
      ledger_->stale_ages.push_back(tr);
      out.send_caused(net::R1StatusMsg{true, false}, nb.r1_cause());
      // Step down as a selector: retract the flooded selection so the
      // selected nodes drop this origin's flag, then drop the head-only
      // rows entirely (selection_seq_ stays — a re-declared selection
      // must outversion this retraction).
      if (head_rows_.last_flooded != kEmptyRow) {
        ++selection_seq_;
        out.send_caused(net::GatewayMsg{id_, NodeSet{}, 2, selection_seq_},
                        nb.r1_cause());
      }
      if (!head_rows_.empty()) ledger_->head_rows_changed.push_back(id_);
      store_->release_hop1(head_rows_.cov2);
      store_->release_hop1(head_rows_.cov3);
      store_->release_hop1(head_rows_.sel);
      store_->release_hop1(head_rows_.last_flooded);
      head_rows_ = HeadRows{};
      become_dirty(out, nb.r1_cause());
      return;
    }
    if (nb.r1 != kResigned) all_final = false;  // kNone or kPending
  }
  if (all_final) {
    my_r1_ = kSurvived;
    out.send_caused(net::R1StatusMsg{true, true}, last_input_cause_);
  }
}

void MaintenanceNode::become_dirty(net::Mailbox& out, net::Cause cause) {
  if (my_r2_ != kNone) return;
  my_r2_ = kPending;
  my_r2_cause_ = cause;
  out.send_caused(net::R2StatusMsg{false, kInvalidNode, false}, cause);
}

void MaintenanceNode::try_decide_r2(std::uint32_t tr, net::Mailbox& out) {
  // First: is keeping the old head still an option?
  bool old_ok = false;
  if (old_head_ != kInvalidNode && old_head_ != id_) {
    const NeighborCache* oh = find_neighbor(old_head_);
    if (oh != nullptr) {
      if (oh->r1 == kPending) return;  // its fate is undecided — wait
      if (oh->r1 == kSurvived) {
        old_ok = true;
      } else if (oh->r1 == kNone) {
        // Silence: an affected head always announces at its tr1, so a
        // quiet previous-head neighbor survived. Conclusive from tr2.
        if (tr < 2) return;
        old_ok = true;
      }
      // kResigned: old head is gone for good (and never re-declares).
    }
  }
  if (old_ok) {
    my_r2_ = kFinal;
    out.send_caused(net::R2StatusMsg{true, head_, false}, my_r2_cause_);
    return;
  }

  // Join-or-declare replicates lcc_update's ascending scan, so it needs
  // the dirty-smaller-neighbor set to be conclusively known (every R2
  // PENDING is delivered by tr3) and every visible head status final.
  if (tr < 3 && !neighbor_ids_.empty()) return;
  for (const auto& nb : neighbors_) {
    if (nb.was_head && nb.r1 == kPending) return;
    if (nb.id < id_ && nb.r2 == kPending) return;
  }

  NodeId chosen = kInvalidNode;
  for (const auto& nb : neighbors_) {  // ascending: smallest head wins
    if (head_at_scan(nb)) {
      chosen = nb.id;
      break;
    }
  }
  if (chosen != kInvalidNode) {
    head_ = chosen;
    out.send_caused(net::R2StatusMsg{true, chosen, false}, my_r2_cause_);
  } else {
    MANET_ASSERT(my_r1_ != kResigned,
                 "a resigned head must find its blocker to join");
    head_ = id_;
    force_flood_ = true;
    head_inputs_dirty_ = true;
    clear_origins();  // selections never contain heads
    out.send_caused(net::R2StatusMsg{true, id_, true}, my_r2_cause_);
  }
  my_r2_ = kFinal;
  ledger_->stale_ages.push_back(tr);
  head_changed_ = true;
  role_dirty_ = true;
  rows_dirty_ = true;
}

bool MaintenanceNode::head_at_scan(const NeighborCache& w) const {
  if (w.id < id_) {
    if (w.r2 == kFinal) return w.head_of == w.id;
    if (w.was_head) return w.r1 != kResigned;
    return false;  // not dirty by tr3 => kept its non-head status
  }
  // Larger ids: lcc's scan reaches them after me, so only their post-
  // rule-1 head status counts — fresh declarations are invisible.
  return w.was_head && w.r1 != kResigned;
}

bool MaintenanceNode::repair_settled(std::uint32_t tr) const {
  if (tr < 3 && !neighbor_ids_.empty()) return false;
  if (my_r1_ == kPending || my_r2_ == kPending) return false;
  if (my_r1_ == kResigned && my_r2_ != kFinal) return false;
  for (const auto& nb : neighbors_) {
    if (nb.r1 == kPending || nb.r2 == kPending) return false;
    // A resigned head's new affiliation feeds my role (and my CH_HOP2 in
    // 2.5-hop mode) — wait for its R2 FINAL.
    if (nb.was_head && nb.r1 == kResigned && nb.r2 != kFinal) return false;
  }
  return true;
}

// ---- Refresh ------------------------------------------------------------

void MaintenanceNode::recompute_role() {
  cluster::Role role = cluster::Role::kClusterhead;
  if (!is_head()) {
    role = cluster::Role::kOrdinary;
    for (const auto& nb : neighbors_) {
      if (nb.head_of != head_) {
        role = cluster::Role::kGateway;
        break;
      }
    }
  }
  if (role != role_ || head_changed_) ledger_->cluster_changed.push_back(id_);
  role_ = role;
}

void MaintenanceNode::settle_rows(net::Mailbox& out) {
  if (role_dirty_) {
    recompute_role();
    role_dirty_ = false;
  }

  if (is_head()) {
    if (my_hop1_ != kEmptyRow || my_hop2_ != kEmptyRow) {
      store_->release_hop1(my_hop1_);
      store_->release_hop2(my_hop2_);
      my_hop1_ = kEmptyRow;
      my_hop2_ = kEmptyRow;
      ledger_->rows_changed.push_back(id_);
    }
  } else {
    const SelfAdj adj{*this, id_};
    const ClustView clust{HeadOfProxy{this}};
    NodeSet h1 = core::hop1_row(adj, clust, id_);
    std::vector<core::Hop2Entry> h2 =
        core::hop2_row(adj, clust, mode_, Hop1Proxy{this}, id_);
    // Intern-then-compare: ref equality is content equality, so an
    // unchanged row re-finds its slot (+1/-1 on the same refcount) and
    // the change test is two integer compares, not a row diff.
    const RowRef r1 = store_->intern_hop1(h1);
    const RowRef r2 = store_->intern_hop2(h2);
    const bool h1_changed = r1 != my_hop1_;
    const bool h2_changed = r2 != my_hop2_;
    if (h1_changed || h2_changed) ledger_->rows_changed.push_back(id_);
    // New links get a full row re-send once per tick; afterwards only
    // changed rows go out (re-broadcasting unchanged rows between two
    // nodes that both formed links would ping-pong forever).
    const bool force = links_formed_ && !rows_forced_;
    if (force) rows_forced_ = true;
    if (h1_changed || force)
      out.send_caused(net::ChHop1Msg{std::move(h1)}, last_input_cause_);
    if (h2_changed || force)
      out.send_caused(net::ChHop2Msg{std::move(h2)}, last_input_cause_);
    store_->release_hop1(my_hop1_);
    store_->release_hop2(my_hop2_);
    my_hop1_ = r1;
    my_hop2_ = r2;
  }

  // Link-formation re-announcements, once per tick: a new neighbor (and
  // the fresh ball members behind it) needs the current selection of
  // every origin it just came in range of. Heads refresh their own ball
  // with a forced flood; members re-send their cached entries for the
  // origins they are adjacent to (every 2-hop path from an origin to a
  // new ball member crosses one of the two rules).
  if (links_formed_ && !link_resends_done_) {
    link_resends_done_ = true;
    if (is_head()) {
      force_flood_ = true;
      head_inputs_dirty_ = true;
    } else if (origins_ != nullptr) {
      const NodeSet& h1 = store_->hop1(my_hop1_);
      for (const auto& e : *origins_)
        if (contains_sorted(h1, e.origin))
          out.send_caused(
              net::GatewayMsg{e.origin, store_->hop1(e.payload), 1, e.seq},
              last_input_cause_);
    }
  }

  gc_origins();
  rows_dirty_ = false;
}

void MaintenanceNode::maybe_reselect(net::Mailbox& out) {
  if (!is_head()) return;
  if (!head_inputs_dirty_ && !force_flood_) return;
  // More row updates may be converging toward this ball; recompute on the
  // first quiet round instead of once per arrival (awake_ keeps us
  // dispatched until then).
  if (inputs_this_round_) return;

  const SelfAdj adj{*this, id_};
  const TablesView tables{Hop1Proxy{this}, Hop2Proxy{this}};
  core::Coverage cov =
      core::coverage_row(adj, tables, id_, universe_, scratch_->cov);
  const CacheSelectionView view(*this);
  core::GatewaySelection sel =
      core::select_gateways_local(view, cov, scratch_->sel);
  const RowRef c2 = store_->intern_hop1(cov.two_hop);
  const RowRef c3 = store_->intern_hop1(cov.three_hop);
  const RowRef sl = store_->intern_hop1(sel.gateways);
  if (c2 != head_rows_.cov2 || c3 != head_rows_.cov3 ||
      sl != head_rows_.sel)
    ledger_->head_rows_changed.push_back(id_);
  store_->release_hop1(head_rows_.cov2);
  store_->release_hop1(head_rows_.cov3);
  store_->release_hop1(head_rows_.sel);
  head_rows_.cov2 = c2;
  head_rows_.cov3 = c3;
  head_rows_.sel = sl;
  if (head_rows_.sel != head_rows_.last_flooded || force_flood_)
    flood_selection(out);
  head_inputs_dirty_ = false;
  force_flood_ = false;
}

void MaintenanceNode::flood_selection(net::Mailbox& out) {
  ++selection_seq_;
  out.send_caused(
      net::GatewayMsg{id_, store_->hop1(head_rows_.sel), 2, selection_seq_},
      last_input_cause_);
  store_->retain_hop1(head_rows_.sel);
  store_->release_hop1(head_rows_.last_flooded);
  head_rows_.last_flooded = head_rows_.sel;
}

void MaintenanceNode::gc_origins() {
  if (is_head()) {
    clear_origins();
    return;
  }
  // Reachability GC is only sound with 3-hop tables, where my 2-hop ball
  // membership w.r.t. an origin is exactly "origin in my CH_HOP1 or among
  // my CH_HOP2 heads". With 2.5-hop tables a selecting head two hops away
  // can be invisible (its member's own head differs), so entries must be
  // kept — worst case a stale flag on a node the origin can no longer
  // reach, which the oracle's consistency check accounts for.
  if (mode_ != core::CoverageMode::kThreeHop || origins_ == nullptr) return;
  const NodeSet& h1 = store_->hop1(my_hop1_);
  const auto& h2 = store_->hop2(my_hop2_);
  std::erase_if(*origins_, [&](const OriginCache& e) {
    if (contains_sorted(h1, e.origin)) return false;
    for (const auto& entry : h2)
      if (entry.head == e.origin) return false;
    store_->release_hop1(e.payload);
    return true;
  });
  if (origins_->empty()) origins_.reset();
}

}  // namespace manet::proto
