#include "graph/dynamic_adjacency.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::graph {

DynamicAdjacency::DynamicAdjacency(std::size_t order) : adjacency_(order) {}

DynamicAdjacency::DynamicAdjacency(const Graph& g) : adjacency_(g.order()) {
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto nb = g.neighbors(v);
    adjacency_[v].assign(nb.begin(), nb.end());
  }
  edges_ = g.edge_count();
}

std::span<const NodeId> DynamicAdjacency::neighbors(NodeId v) const {
  MANET_REQUIRE(v < adjacency_.size(), "node id out of range");
  return adjacency_[v];
}

bool DynamicAdjacency::has_edge(NodeId u, NodeId v) const {
  MANET_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
                "node id out of range");
  const auto& nb = adjacency_[u];
  return std::binary_search(nb.begin(), nb.end(), v);
}

bool DynamicAdjacency::add_edge(NodeId u, NodeId v) {
  MANET_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
                "node id out of range");
  MANET_REQUIRE(u != v, "self-loops are not allowed");
  auto& nu = adjacency_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edges_;
  return true;
}

bool DynamicAdjacency::remove_edge(NodeId u, NodeId v) {
  MANET_REQUIRE(u < adjacency_.size() && v < adjacency_.size(),
                "node id out of range");
  auto& nu = adjacency_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --edges_;
  return true;
}

Graph DynamicAdjacency::freeze() const {
  GraphBuilder builder(order());
  builder.reserve(edges_);
  for (NodeId v = 0; v < adjacency_.size(); ++v)
    for (NodeId w : adjacency_[v])
      if (v < w) builder.edge(v, w);
  return builder.build_and_clear();
}

}  // namespace manet::graph
