#include "graph/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::graph {

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<NodeId> adjacency) {
  MANET_REQUIRE(!offsets.empty() && offsets.front() == 0 &&
                    offsets.back() == adjacency.size(),
                "malformed CSR offsets");
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  MANET_REQUIRE(v < order(), "vertex id out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

double Graph::average_degree() const {
  if (order() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) /
         static_cast<double>(order());
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < order(); ++v) best = std::max(best, degree(v));
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < order(); ++u)
    for (NodeId v : neighbors(u))
      if (u < v) out.emplace_back(u, v);
  return out;
}

GraphBuilder::GraphBuilder(std::size_t order) : order_(order) {}

GraphBuilder& GraphBuilder::edge(NodeId u, NodeId v) {
  MANET_REQUIRE(u < order_ && v < order_, "edge endpoint out of range");
  MANET_REQUIRE(u != v, "self-loops are not allowed");
  edges_.emplace_back(u, v);
  return *this;
}

GraphBuilder& GraphBuilder::edges(
    std::span<const std::pair<NodeId, NodeId>> list) {
  for (const auto& [u, v] : list) edge(u, v);
  return *this;
}

GraphBuilder& GraphBuilder::reserve(std::size_t count) {
  edges_.reserve(count);
  return *this;
}

Graph GraphBuilder::freeze(std::size_t order,
                           std::vector<std::pair<NodeId, NodeId>>& norm) {
  // Two-pass radix scatter instead of a global edge sort. Pass 1 groups
  // directed edges by destination; pass 2 walks destinations in
  // ascending order and stable-scatters each source's row, so every row
  // comes out sorted without a single comparison sort. O(n + m) total vs
  // O(m log m) for the global sort — the dominant cost of topology
  // construction once the pair scan is grid-accelerated.
  Graph g;
  g.offsets_.assign(order + 1, 0);
  for (auto [u, v] : norm) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= order; ++i) g.offsets_[i] += g.offsets_[i - 1];
  // The graph is symmetric, so per-destination counts equal per-source
  // counts and both passes share offsets_.
  g.adjacency_.resize(norm.size() * 2);
  std::vector<NodeId> by_dest(norm.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : norm) {
    by_dest[cursor[v]++] = u;
    by_dest[cursor[u]++] = v;
  }
  std::copy(g.offsets_.begin(), g.offsets_.end() - 1, cursor.begin());
  for (NodeId w = 0; w < order; ++w)
    for (std::size_t k = g.offsets_[w]; k < g.offsets_[w + 1]; ++k)
      g.adjacency_[cursor[by_dest[k]]++] = w;

  // Deduplicate in place: a duplicate input edge occurs in both endpoint
  // rows, so compacting sorted rows removes it symmetrically and keeps
  // adjacency_.size() == 2 * edge_count().
  std::size_t write = 0;
  std::size_t row_start = 0;
  for (NodeId v = 0; v < order; ++v) {
    const std::size_t begin = g.offsets_[v];
    const std::size_t end = g.offsets_[v + 1];
    g.offsets_[v] = row_start;
    NodeId last = kInvalidNode;
    for (std::size_t k = begin; k < end; ++k) {
      if (g.adjacency_[k] == last) continue;
      last = g.adjacency_[k];
      g.adjacency_[write++] = last;
    }
    row_start = write;
  }
  g.offsets_[order] = write;
  g.adjacency_.resize(write);
  return g;
}

Graph GraphBuilder::build() const {
  // Normalize to (min, max) in a copy; the builder stays reusable.
  std::vector<std::pair<NodeId, NodeId>> norm;
  norm.reserve(edges_.size());
  for (auto [u, v] : edges_)
    norm.emplace_back(std::min(u, v), std::max(u, v));
  return freeze(order_, norm);
}

Graph GraphBuilder::build_and_clear() {
  // Normalize in place and consume the retained list — no copy.
  for (auto& [u, v] : edges_)
    if (u > v) std::swap(u, v);
  std::vector<std::pair<NodeId, NodeId>> norm = std::move(edges_);
  edges_.clear();
  return freeze(order_, norm);
}

Graph make_graph(std::size_t order,
                 std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  GraphBuilder b(order);
  for (auto [u, v] : edges) b.edge(u, v);
  return b.build();
}

Graph make_path(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.edge(i, i + 1);
  return b.build();
}

Graph make_cycle(std::size_t n) {
  MANET_REQUIRE(n >= 3, "a cycle needs at least 3 vertices");
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.edge(i, i + 1);
  b.edge(static_cast<NodeId>(n - 1), 0);
  return b.build();
}

Graph make_complete(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.edge(i, j);
  return b.build();
}

Graph make_star(std::size_t n) {
  MANET_REQUIRE(n >= 1, "a star needs at least 1 vertex");
  GraphBuilder b(n);
  for (NodeId i = 1; i < n; ++i) b.edge(0, i);
  return b.build();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](std::size_t i, std::size_t j) {
    return static_cast<NodeId>(i * cols + j);
  };
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) {
      if (i + 1 < rows) b.edge(id(i, j), id(i + 1, j));
      if (j + 1 < cols) b.edge(id(i, j), id(i, j + 1));
    }
  return b.build();
}

}  // namespace manet::graph
