// Topology serialization: a line-oriented edge-list format for round
// trips, and Graphviz DOT export (with optional role coloring) for
// inspection. Positions use a parallel "x y" format so generated
// unit-disk layouts survive alongside their graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::graph {

/// Writes "order\n" followed by one "u v" line per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the write_edge_list format. Throws std::invalid_argument on
/// malformed input (bad counts, out-of-range endpoints, self-loops).
Graph read_edge_list(std::istream& in);

/// DOT-export styling: nodes listed in `highlight` render filled (used
/// for backbones/CDSs); `label` names the graph.
struct DotOptions {
  std::string label = "manet";
  NodeSet highlight;  ///< sorted-unique; e.g. a CDS
};

/// Graphviz DOT text for the topology.
std::string to_dot(const Graph& g, const DotOptions& options = {});

}  // namespace manet::graph
