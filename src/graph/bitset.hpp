// Dense node-id bitset — the hot-path complement to the sorted NodeSet.
//
// NodeSet (a sorted-unique vector) is the canonical set representation in
// public interfaces, but building one with insert_sorted in a loop is
// O(k^2). The kernels that assemble large sets (coverage construction,
// gateway selection, greedy set cover) instead collect membership in a
// NodeBitset — O(1) insert/test, word-parallel union/intersection — and
// materialize a sorted NodeSet exactly once at the end.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace manet::graph {

/// Dynamic fixed-width bitset over node ids [0, universe). The width is
/// set at construction (or by the widest id passed to set(), which grows
/// the word array on demand), so callers that know n should pass it up
/// front to avoid reallocation.
class NodeBitset {
 public:
  NodeBitset() = default;

  /// Bitset able to hold ids [0, universe) without growing.
  explicit NodeBitset(std::size_t universe)
      : words_((universe + kWordBits - 1) / kWordBits, 0) {}

  /// Number of ids the current storage can hold without growing.
  std::size_t capacity() const { return words_.size() * kWordBits; }

  /// Inserts `v`, growing storage if needed. Returns true if newly set.
  bool set(NodeId v) {
    const std::size_t word = v / kWordBits;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t mask = std::uint64_t{1} << (v % kWordBits);
    const bool fresh = (words_[word] & mask) == 0;
    words_[word] |= mask;
    return fresh;
  }

  /// Removes `v` (no-op when absent). Returns true if it was present.
  bool reset(NodeId v) {
    const std::size_t word = v / kWordBits;
    if (word >= words_.size()) return false;
    const std::uint64_t mask = std::uint64_t{1} << (v % kWordBits);
    const bool present = (words_[word] & mask) != 0;
    words_[word] &= ~mask;
    return present;
  }

  /// True if `v` is in the set.
  bool test(NodeId v) const {
    const std::size_t word = v / kWordBits;
    return word < words_.size() &&
           (words_[word] >> (v % kWordBits)) & std::uint64_t{1};
  }

  /// Clears all bits, keeping capacity.
  void clear() { words_.assign(words_.size(), 0); }

  /// Word-parallel union: *this |= other.
  NodeBitset& operator|=(const NodeBitset& other);

  /// Word-parallel intersection: *this &= other.
  NodeBitset& operator&=(const NodeBitset& other);

  /// Word-parallel difference: *this &= ~other.
  NodeBitset& subtract(const NodeBitset& other);

  /// Number of set bits.
  std::size_t count() const;

  /// True if no bit is set.
  bool none() const;
  bool any() const { return !none(); }

  /// |*this & other| without materializing the intersection.
  std::size_t intersection_count(const NodeBitset& other) const;

  /// Calls `fn(NodeId)` for every set bit in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(static_cast<NodeId>(w * kWordBits + static_cast<std::size_t>(bit)));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

  /// Materializes the sorted-unique NodeSet in one pass.
  NodeSet to_node_set() const;

  /// Builds a bitset over [0, universe) from a sorted-unique NodeSet.
  static NodeBitset from_node_set(std::size_t universe, const NodeSet& s);

  friend bool operator==(const NodeBitset& a, const NodeBitset& b);

 private:
  static constexpr std::size_t kWordBits = 64;
  std::vector<std::uint64_t> words_;
};

}  // namespace manet::graph
