#include "graph/bitset.hpp"

#include <algorithm>

namespace manet::graph {

NodeBitset& NodeBitset::operator|=(const NodeBitset& other) {
  if (other.words_.size() > words_.size())
    words_.resize(other.words_.size(), 0);
  for (std::size_t w = 0; w < other.words_.size(); ++w)
    words_[w] |= other.words_[w];
  return *this;
}

NodeBitset& NodeBitset::operator&=(const NodeBitset& other) {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) words_[w] &= other.words_[w];
  std::fill(words_.begin() + static_cast<std::ptrdiff_t>(common),
            words_.end(), 0);
  return *this;
}

NodeBitset& NodeBitset::subtract(const NodeBitset& other) {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t w = 0; w < common; ++w) words_[w] &= ~other.words_[w];
  return *this;
}

std::size_t NodeBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool NodeBitset::none() const {
  for (std::uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

std::size_t NodeBitset::intersection_count(const NodeBitset& other) const {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  std::size_t total = 0;
  for (std::size_t w = 0; w < common; ++w)
    total += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  return total;
}

NodeSet NodeBitset::to_node_set() const {
  NodeSet out;
  out.reserve(count());
  for_each([&out](NodeId v) { out.push_back(v); });
  return out;
}

NodeBitset NodeBitset::from_node_set(std::size_t universe, const NodeSet& s) {
  NodeBitset bs(universe);
  for (NodeId v : s) bs.set(v);
  return bs;
}

bool operator==(const NodeBitset& a, const NodeBitset& b) {
  const std::size_t common = std::min(a.words_.size(), b.words_.size());
  for (std::size_t w = 0; w < common; ++w)
    if (a.words_[w] != b.words_[w]) return false;
  for (std::size_t w = common; w < a.words_.size(); ++w)
    if (a.words_[w] != 0) return false;
  for (std::size_t w = common; w < b.words_.size(); ++w)
    if (b.words_[w] != 0) return false;
  return true;
}

}  // namespace manet::graph
