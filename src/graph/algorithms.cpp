#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "common/assert.hpp"

namespace manet::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  return bfs_distances_bounded(g, source, kUnreachable);
}

std::vector<std::uint32_t> bfs_distances_bounded(const Graph& g,
                                                 NodeId source,
                                                 std::uint32_t max_hops) {
  MANET_REQUIRE(source < g.order(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.order(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= max_hops) continue;
    for (NodeId w : g.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

NodeSet k_hop_neighbors(const Graph& g, NodeId v, std::uint32_t k) {
  const auto dist = bfs_distances_bounded(g, v, k);
  NodeSet out;
  for (NodeId u = 0; u < g.order(); ++u)
    if (dist[u] != kUnreachable) out.push_back(u);
  return out;  // ids ascend, so already sorted-unique
}

bool is_connected(const Graph& g) {
  if (g.order() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::pair<std::vector<std::uint32_t>, std::uint32_t> components(
    const Graph& g) {
  std::vector<std::uint32_t> label(g.order(), kUnreachable);
  std::uint32_t count = 0;
  std::deque<NodeId> frontier;
  for (NodeId s = 0; s < g.order(); ++s) {
    if (label[s] != kUnreachable) continue;
    label[s] = count;
    frontier.push_back(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (NodeId w : g.neighbors(u)) {
        if (label[w] == kUnreachable) {
          label[w] = count;
          frontier.push_back(w);
        }
      }
    }
    ++count;
  }
  return {std::move(label), count};
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId v = 0; v < g.order(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (std::uint32_t d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

bool is_dominating_set(const Graph& g, const NodeSet& set) {
  std::vector<char> dominated(g.order(), 0);
  for (NodeId v : set) {
    MANET_REQUIRE(v < g.order(), "set member out of range");
    dominated[v] = 1;
    for (NodeId w : g.neighbors(v)) dominated[w] = 1;
  }
  return std::all_of(dominated.begin(), dominated.end(),
                     [](char c) { return c != 0; });
}

bool is_independent_set(const Graph& g, const NodeSet& set) {
  for (NodeId v : set)
    for (NodeId w : g.neighbors(v))
      if (contains_sorted(set, w)) return false;
  return true;
}

bool is_maximal_independent_set(const Graph& g, const NodeSet& set) {
  if (!is_independent_set(g, set)) return false;
  // Maximal independent <=> independent and dominating.
  return is_dominating_set(g, set);
}

bool induces_connected_subgraph(const Graph& g, const NodeSet& set) {
  if (set.size() <= 1) return true;
  std::vector<char> in_set(g.order(), 0);
  for (NodeId v : set) {
    MANET_REQUIRE(v < g.order(), "set member out of range");
    in_set[v] = 1;
  }
  std::vector<char> seen(g.order(), 0);
  std::deque<NodeId> frontier{set.front()};
  seen[set.front()] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId w : g.neighbors(u)) {
      if (in_set[w] && !seen[w]) {
        seen[w] = 1;
        ++reached;
        frontier.push_back(w);
      }
    }
  }
  return reached == set.size();
}

bool is_connected_dominating_set(const Graph& g, const NodeSet& set) {
  if (g.order() == 0) return true;
  if (set.empty()) return false;
  return is_dominating_set(g, set) && induces_connected_subgraph(g, set);
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId from, NodeId to) {
  MANET_REQUIRE(from < g.order() && to < g.order(),
                "path endpoint out of range");
  std::vector<NodeId> parent(g.order(), kInvalidNode);
  std::vector<char> seen(g.order(), 0);
  std::deque<NodeId> frontier{from};
  seen[from] = 1;
  while (!frontier.empty() && !seen[to]) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId w : g.neighbors(u)) {
      if (!seen[w]) {
        seen[w] = 1;
        parent[w] = u;
        frontier.push_back(w);
      }
    }
  }
  if (!seen[to]) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != kInvalidNode; v = parent[v]) path.push_back(v);
  if (path.back() != from) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace manet::graph
