// Undirected graph with compressed sparse row adjacency.
//
// This is the network topology model used everywhere: vertices are mobile
// hosts, edges are bidirectional wireless links. Adjacency lists are kept
// sorted, so neighbor queries are cache-friendly spans and membership tests
// are binary searches.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace manet::graph {

/// Immutable undirected simple graph in CSR form. Build with GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Adopts pre-built CSR arrays: `offsets` has order+1 entries and
  /// `adjacency[offsets[v]..offsets[v+1])` is the sorted neighbor list of
  /// v, with every edge present in both directions. This is the zero-copy
  /// entry point for streaming constructions (unit_disk_graph_streaming)
  /// that count degrees and fill rows in place instead of accumulating an
  /// intermediate edge list.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<NodeId> adjacency);

  /// Number of vertices.
  std::size_t order() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of undirected edges.
  std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// Sorted neighbors of `v`.
  std::span<const NodeId> neighbors(NodeId v) const;

  /// Degree of `v`.
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// True if the undirected edge {u, v} exists. O(log degree).
  bool has_edge(NodeId u, NodeId v) const;

  /// Average vertex degree (0 for the empty graph).
  double average_degree() const;

  /// Maximum vertex degree.
  std::size_t max_degree() const;

  /// All undirected edges as (u, v) with u < v, lexicographically sorted.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size order()+1
  std::vector<NodeId> adjacency_;     // concatenated sorted neighbor lists
};

/// Accumulates edges, then freezes them into a Graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `order` vertices (ids [0, order)).
  explicit GraphBuilder(std::size_t order);

  /// Adds the undirected edge {u, v}. Self-loops are rejected; duplicate
  /// edges are deduplicated at build().
  GraphBuilder& edge(NodeId u, NodeId v);

  /// Adds edges from a list of (u, v) pairs.
  GraphBuilder& edges(std::span<const std::pair<NodeId, NodeId>> list);

  /// Pre-allocates room for `count` edges (hot-path hint; optional).
  GraphBuilder& reserve(std::size_t count);

  /// Builds the immutable CSR graph. The builder can be reused afterwards
  /// (it retains its edge list), at the cost of sorting/deduplicating a
  /// copy of that list on every call.
  Graph build() const;

  /// Builds the CSR graph by consuming the retained edge list (sorts it
  /// in place, no copy) and leaves the builder empty for reuse. This is
  /// the fast path for build-once callers like unit_disk_graph.
  Graph build_and_clear();

  std::size_t order() const { return order_; }

 private:
  /// Freezes a normalized (min, max) edge list into CSR form; sorts and
  /// deduplicates `norm` in place.
  static Graph freeze(std::size_t order,
                      std::vector<std::pair<NodeId, NodeId>>& norm);

  std::size_t order_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Convenience: builds a graph on `order` vertices from an edge list.
Graph make_graph(std::size_t order,
                 std::initializer_list<std::pair<NodeId, NodeId>> edges);

/// A path graph 0-1-2-...-(n-1).
Graph make_path(std::size_t n);

/// A cycle graph on n >= 3 vertices.
Graph make_cycle(std::size_t n);

/// The complete graph on n vertices.
Graph make_complete(std::size_t n);

/// A star with center 0 and n-1 leaves.
Graph make_star(std::size_t n);

/// An r-by-c grid graph (4-neighborhood), vertex (i,j) = i*c + j.
Graph make_grid(std::size_t rows, std::size_t cols);

}  // namespace manet::graph
