#include "graph/digraph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace manet::graph {

void Digraph::add_arc(NodeId u, NodeId v) {
  MANET_REQUIRE(u < order() && v < order(), "arc endpoint out of range");
  MANET_REQUIRE(u != v, "self-loops are not allowed");
  insert_sorted(out_[u], v);
}

bool Digraph::has_arc(NodeId u, NodeId v) const {
  MANET_REQUIRE(u < order() && v < order(), "arc endpoint out of range");
  return contains_sorted(out_[u], v);
}

std::span<const NodeId> Digraph::successors(NodeId v) const {
  MANET_REQUIRE(v < order(), "vertex id out of range");
  return out_[v];
}

std::size_t Digraph::arc_count() const {
  std::size_t total = 0;
  for (const auto& row : out_) total += row.size();
  return total;
}

std::vector<std::pair<NodeId, NodeId>> Digraph::arcs() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(arc_count());
  for (NodeId u = 0; u < order(); ++u)
    for (NodeId v : out_[u]) out.emplace_back(u, v);
  return out;
}

std::pair<std::vector<std::uint32_t>, std::uint32_t>
strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.order();
  constexpr std::uint32_t kUnset = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnset);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint32_t> scc(n, kUnset);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  std::uint32_t scc_count = 0;

  // Iterative Tarjan: each frame tracks (vertex, next successor position).
  struct Frame {
    NodeId v;
    std::size_t next_child;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      auto& frame = call_stack.back();
      const auto succ = g.successors(frame.v);
      if (frame.next_child < succ.size()) {
        const NodeId w = succ[frame.next_child++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], index[w]);
        }
      } else {
        const NodeId v = frame.v;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc[w] = scc_count;
          } while (w != v);
          ++scc_count;
        }
      }
    }
  }
  return {std::move(scc), scc_count};
}

bool is_strongly_connected(const Digraph& g) {
  if (g.order() <= 1) return true;
  return strongly_connected_components(g).second == 1;
}

}  // namespace manet::graph
