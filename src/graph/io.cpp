#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace manet::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.order() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::size_t order = 0;
  if (!(in >> order))
    throw std::invalid_argument("edge list: missing order header");
  GraphBuilder builder(order);
  NodeId u, v;
  while (in >> u >> v) builder.edge(u, v);  // builder validates endpoints
  if (!in.eof() && in.fail())
    throw std::invalid_argument("edge list: malformed edge line");
  return builder.build();
}

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream os;
  os << "graph \"" << options.label << "\" {\n";
  os << "  node [shape=circle];\n";
  for (NodeId v = 0; v < g.order(); ++v) {
    os << "  n" << v;
    if (contains_sorted(options.highlight, v))
      os << " [style=filled, fillcolor=black, fontcolor=white]";
    os << ";\n";
  }
  for (const auto& [u, v] : g.edges())
    os << "  n" << u << " -- n" << v << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace manet::graph
