// Small directed graph used for the *cluster graph* G' of the paper:
// vertices are clusterheads, and a directed edge (v, w) exists when w is in
// v's coverage set. Theorem 1 rests on G' being strongly connected, so the
// module ships a Tarjan SCC implementation and a strong-connectivity check.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace manet::graph {

/// Mutable directed simple graph (adjacency lists kept sorted-unique).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t order) : out_(order) {}

  std::size_t order() const { return out_.size(); }

  /// Adds arc u -> v (idempotent). Self-loops are rejected.
  void add_arc(NodeId u, NodeId v);

  /// True if arc u -> v exists.
  bool has_arc(NodeId u, NodeId v) const;

  /// Sorted successors of `v`.
  std::span<const NodeId> successors(NodeId v) const;

  /// Total number of arcs.
  std::size_t arc_count() const;

  /// All arcs as (u, v), lexicographically sorted.
  std::vector<std::pair<NodeId, NodeId>> arcs() const;

 private:
  std::vector<NodeSet> out_;
};

/// Strongly connected component label per vertex (reverse topological
/// order labels) and the component count, via Tarjan's algorithm
/// (iterative, so deep graphs don't overflow the stack).
std::pair<std::vector<std::uint32_t>, std::uint32_t> strongly_connected_components(
    const Digraph& g);

/// True if the digraph is strongly connected (empty/singleton are).
bool is_strongly_connected(const Digraph& g);

}  // namespace manet::graph
