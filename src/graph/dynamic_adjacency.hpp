// Mutable adjacency overlay for delta-driven topology maintenance.
//
// graph::Graph is an immutable CSR snapshot — ideal for the batch
// pipeline, hostile to a stream of single-edge updates. DynamicAdjacency
// keeps one sorted neighbor vector per vertex with O(degree)
// insert/erase, and offers the same query surface as Graph (sorted
// spans, binary-search membership), so the table/coverage kernels in
// core/table_kernels.hpp run unchanged against either representation.
// freeze() produces the equivalent CSR Graph for interop with the batch
// algorithms and for the incremental engine's oracle cross-check.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::graph {

/// Mutable undirected simple graph on a fixed vertex population.
class DynamicAdjacency {
 public:
  DynamicAdjacency() = default;

  /// Empty graph on `order` vertices (ids [0, order)).
  explicit DynamicAdjacency(std::size_t order);

  /// Copies the adjacency of an immutable snapshot.
  explicit DynamicAdjacency(const Graph& g);

  /// Number of vertices.
  std::size_t order() const { return adjacency_.size(); }

  /// Number of undirected edges.
  std::size_t edge_count() const { return edges_; }

  /// Sorted neighbors of `v`.
  std::span<const NodeId> neighbors(NodeId v) const;

  /// Degree of `v`.
  std::size_t degree(NodeId v) const { return neighbors(v).size(); }

  /// True if the undirected edge {u, v} exists. O(log degree).
  bool has_edge(NodeId u, NodeId v) const;

  /// Inserts the undirected edge {u, v}; rejects self-loops. Returns
  /// true if the edge was absent (false on duplicates).
  bool add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v}. Returns true if it existed.
  bool remove_edge(NodeId u, NodeId v);

  /// Immutable CSR snapshot of the current adjacency.
  Graph freeze() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;  // sorted per vertex
  std::size_t edges_ = 0;
};

}  // namespace manet::graph
