// Graph algorithms used by the clustering and backbone layers:
// breadth-first distances, k-hop neighborhoods, connectivity, and the
// set-theoretic predicates (dominating set, independent set, CDS) that the
// paper's theorems are stated in.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "graph/graph.hpp"

namespace manet::graph {

/// Distance value for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// BFS hop distances from `source` to every vertex.
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// BFS distances from `source`, stopping at `max_hops` (vertices farther
/// away report kUnreachable). O(edges within the ball).
std::vector<std::uint32_t> bfs_distances_bounded(const Graph& g,
                                                 NodeId source,
                                                 std::uint32_t max_hops);

/// The k-hop neighbor set N^k(v) *including v itself* (paper notation).
NodeSet k_hop_neighbors(const Graph& g, NodeId v, std::uint32_t k);

/// True if the graph is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Connected component label per vertex (labels are 0..count-1) and the
/// number of components.
std::pair<std::vector<std::uint32_t>, std::uint32_t> components(
    const Graph& g);

/// Graph diameter via repeated BFS; kUnreachable if disconnected.
std::uint32_t diameter(const Graph& g);

/// True if `set` (sorted-unique) is a dominating set of g: every vertex is
/// in the set or adjacent to a member.
bool is_dominating_set(const Graph& g, const NodeSet& set);

/// True if `set` (sorted-unique) is pairwise non-adjacent.
bool is_independent_set(const Graph& g, const NodeSet& set);

/// True if no vertex outside `set` could be added while keeping it
/// independent (i.e. `set` is a maximal independent set; requires
/// is_independent_set).
bool is_maximal_independent_set(const Graph& g, const NodeSet& set);

/// True if the subgraph induced by `set` (sorted-unique) is connected.
/// The empty set and singletons count as connected.
bool induces_connected_subgraph(const Graph& g, const NodeSet& set);

/// True if `set` is a connected dominating set of g.
bool is_connected_dominating_set(const Graph& g, const NodeSet& set);

/// One shortest path from `from` to `to` (inclusive); empty if unreachable.
std::vector<NodeId> shortest_path(const Graph& g, NodeId from, NodeId to);

}  // namespace manet::graph
