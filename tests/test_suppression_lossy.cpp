// Tests for the §3 suppression techniques (backoff self-pruning and
// neighbor piggybacking) and the lossy-channel broadcast layer.
#include <gtest/gtest.h>

#include "broadcast/flooding.hpp"
#include "broadcast/lossy.hpp"
#include "broadcast/mpr.hpp"
#include "broadcast/si_cds.hpp"
#include "broadcast/suppression.hpp"
#include "common/rng.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "paper_fixtures.hpp"
#include "stats/running.hpp"

namespace manet::broadcast {
namespace {

TEST(SuppressionTest, Figure5TriangleBackoffSavesATransmission) {
  // Paper's Figure 5: with random backoff, at most one redundant
  // transmission may be saved — over many rng draws, some runs use 2
  // forwards (w resigns) and none use more than 3.
  const auto g = testing::paper_figure5_triangle();
  Rng rng(5);
  bool saw_saving = false;
  for (int i = 0; i < 50; ++i) {
    const auto s = suppression_flood(g, 0, SuppressionOptions{}, rng);
    EXPECT_TRUE(s.delivered_all);
    EXPECT_GE(s.forward_count(), 1u);
    EXPECT_LE(s.forward_count(), 3u);
    if (s.forward_count() < 3) saw_saving = true;
  }
  EXPECT_TRUE(saw_saving);
}

TEST(SuppressionTest, Figure5TrianglePiggybackSavesBoth) {
  // Second technique: u piggybacks {v, w}; both resign — exactly the
  // "two redundant transmissions are saved" case of the paper.
  const auto g = testing::paper_figure5_triangle();
  SuppressionOptions opts;
  opts.piggyback_neighbors = true;
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const auto s = suppression_flood(g, 0, opts, rng);
    EXPECT_TRUE(s.delivered_all);
    EXPECT_EQ(s.forward_count(), 1u);
  }
}

TEST(SuppressionTest, PathCannotSuppressAnything) {
  // On a path every interior node is the sole bridge; nobody can resign.
  const auto g = graph::make_path(6);
  Rng rng(7);
  const auto s = suppression_flood(g, 0, SuppressionOptions{}, rng);
  EXPECT_TRUE(s.delivered_all);
  EXPECT_EQ(s.forward_count(), 5u);
}

TEST(SuppressionTest, AlwaysDeliversAndNeverExceedsFlooding) {
  Rng topo_rng(8);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(10.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    for (bool piggyback : {false, true}) {
      SuppressionOptions opts;
      opts.piggyback_neighbors = piggyback;
      const auto s = suppression_flood(net->graph, 0, opts, rng);
      EXPECT_TRUE(s.delivered_all);
      EXPECT_LE(s.forward_count(), net->graph.order());
    }
  }
}

TEST(SuppressionTest, PiggybackSuppressesAtLeastAsMuchOnAverage) {
  Rng topo_rng(10);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(14.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  Rng rng(11);
  stats::RunningStats backoff_only, with_piggyback;
  for (int i = 0; i < 40; ++i) {
    SuppressionOptions opts;
    backoff_only.add(static_cast<double>(
        suppression_flood(net->graph, 0, opts, rng).forward_count()));
    opts.piggyback_neighbors = true;
    with_piggyback.add(static_cast<double>(
        suppression_flood(net->graph, 0, opts, rng).forward_count()));
  }
  EXPECT_LE(with_piggyback.mean(), backoff_only.mean());
  // Both techniques beat blind flooding on a dense network.
  EXPECT_LT(backoff_only.mean(), 60.0);
}

TEST(SuppressionTest, RejectsBadArguments) {
  const auto g = graph::make_path(3);
  Rng rng(1);
  EXPECT_THROW(suppression_flood(g, 5, SuppressionOptions{}, rng),
               std::invalid_argument);
  SuppressionOptions zero;
  zero.max_backoff_slots = 0;
  EXPECT_THROW(suppression_flood(g, 0, zero, rng), std::invalid_argument);
}

TEST(LossyTest, ZeroLossMatchesIdealChannel) {
  const auto g = testing::paper_figure3_network();
  Rng rng(12);
  const auto lossy = flood_lossy(g, 0, LossModel{0.0}, rng);
  const auto ideal = flood(g, 0);
  EXPECT_EQ(lossy.forward_nodes, ideal.forward_nodes);
  EXPECT_TRUE(lossy.delivered_all);
}

TEST(LossyTest, HighLossDegradesDelivery) {
  Rng topo_rng(13);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(6.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  Rng rng(14);
  stats::RunningStats delivery;
  for (int i = 0; i < 30; ++i)
    delivery.add(
        flood_lossy(net->graph, 0, LossModel{0.6}, rng).delivery_ratio());
  EXPECT_LT(delivery.mean(), 0.999);
}

TEST(LossyTest, FloodingIsMoreRobustThanBackbone) {
  // The redundancy/robustness trade-off: under loss, flooding's extra
  // transmissions buy delivery that the pruned backbone gives up.
  Rng topo_rng(15);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 80;
  cfg.range = geom::range_for_average_degree(10.0, 80, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  const auto bb = core::build_static_backbone(
      net->graph, core::CoverageMode::kTwoPointFiveHop);
  Rng rng(16);
  const LossModel model{0.3};
  stats::RunningStats flood_dr, cds_dr;
  for (int i = 0; i < 40; ++i) {
    flood_dr.add(flood_lossy(net->graph, 0, model, rng).delivery_ratio());
    cds_dr.add(si_cds_broadcast_lossy(net->graph, bb.cds, 0, model, rng)
                   .delivery_ratio());
  }
  EXPECT_GT(flood_dr.mean(), cds_dr.mean());
}

TEST(LossyTest, MprLossyRunsAndDegrades) {
  Rng topo_rng(17);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(10.0, 60, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, topo_rng);
  ASSERT_TRUE(net.has_value());
  const auto mpr = compute_mpr_sets(net->graph);
  Rng rng(18);
  const auto clean = mpr_broadcast_lossy(net->graph, mpr, 0,
                                         LossModel{0.0}, rng);
  EXPECT_TRUE(clean.delivered_all);
  stats::RunningStats dr;
  for (int i = 0; i < 20; ++i)
    dr.add(mpr_broadcast_lossy(net->graph, mpr, 0, LossModel{0.5}, rng)
               .delivery_ratio());
  EXPECT_LT(dr.mean(), 1.0);
}

TEST(LossyTest, RejectsBadLoss) {
  const auto g = graph::make_path(3);
  Rng rng(1);
  EXPECT_THROW(flood_lossy(g, 0, LossModel{1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(flood_lossy(g, 0, LossModel{-0.1}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace manet::broadcast
