// Tests for the ablation runners (the library behind the ablation
// benches).
#include "exp/ablations.hpp"

#include <gtest/gtest.h>

namespace manet::exp {
namespace {

TEST(PruningAblationTest, RowsCoverTheGridAndDeliver) {
  const auto rows = run_pruning_ablation({20, 40}, {6.0, 18.0}, 6, 321);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.all_delivered) << "n=" << r.nodes << " d=" << r.degree;
    // Pruning only removes forwards; the full algorithm is the smallest.
    EXPECT_LE(r.forward_both, r.forward_none + 1e-9);
    EXPECT_LE(r.forward_piggyback, r.forward_none + 1e-9);
    EXPECT_GT(r.forward_both, 0.0);
  }
}

TEST(PruningAblationTest, PiggybackDoesTheHeavyLifting) {
  // The ablation's headline finding at density 18: the piggyback rule
  // accounts for nearly all of the savings.
  const auto rows = run_pruning_ablation({60}, {18.0}, 10, 322);
  ASSERT_EQ(rows.size(), 1u);
  const auto& r = rows[0];
  const double total_saving = r.forward_none - r.forward_both;
  const double piggy_saving = r.forward_none - r.forward_piggyback;
  ASSERT_GT(total_saving, 0.0);
  EXPECT_GE(piggy_saving, 0.8 * total_saving);
}

TEST(PruningAblationTest, Deterministic) {
  const auto a = run_pruning_ablation({30}, {6.0}, 5, 99);
  const auto b = run_pruning_ablation({30}, {6.0}, 5, 99);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].forward_both, b[0].forward_both);
}

TEST(PruningAblationTest, RejectsZeroReplications) {
  EXPECT_THROW(run_pruning_ablation({20}, {6.0}, 0, 1),
               std::invalid_argument);
}

TEST(MsgComplexityTest, PerNodeStaysFlat) {
  const auto rows = run_msg_complexity({20, 60, 100}, {6.0}, 5, 323);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.hello, static_cast<double>(r.nodes));  // one HELLO each
    EXPECT_EQ(r.roles, static_cast<double>(r.nodes));  // one role each
    EXPECT_GT(r.data, 0.0);
  }
  // O(n): per-node total does not grow with n (allow small noise).
  EXPECT_LE(rows[2].per_node, rows[0].per_node * 1.15);
}

TEST(MsgComplexityTest, DataPhaseIsAlsoLinear) {
  const auto rows = run_msg_complexity({20, 100}, {18.0}, 5, 324);
  ASSERT_EQ(rows.size(), 2u);
  // SD broadcast data messages scale sub-linearly with n (bounded by the
  // forward-node set, which is well below n at this density).
  EXPECT_LT(rows[1].data, static_cast<double>(rows[1].nodes));
}

}  // namespace
}  // namespace manet::exp
