// Tests for the random-direction mobility model.
#include "mobility/random_direction.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stats/running.hpp"

namespace manet::mobility {
namespace {

std::vector<geom::Point> grid_layout(std::size_t n) {
  std::vector<geom::Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({5.0 + static_cast<double>(i % 10) * 10.0,
                   5.0 + static_cast<double>(i / 10) * 10.0});
  return pts;
}

TEST(RandomDirectionTest, StaysInsideArea) {
  RandomDirectionModel model(grid_layout(40), RandomDirectionConfig{},
                             Rng(1));
  for (int step = 0; step < 300; ++step) {
    model.step(0.7);
    for (const auto& p : model.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 100.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 100.0);
    }
  }
}

TEST(RandomDirectionTest, NodesMove) {
  const auto initial = grid_layout(20);
  RandomDirectionModel model(initial, RandomDirectionConfig{}, Rng(2));
  model.step(5.0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < initial.size(); ++i)
    if (!(model.positions()[i] == initial[i])) ++moved;
  EXPECT_GT(moved, 15u);
}

TEST(RandomDirectionTest, SpeedBoundObserved) {
  RandomDirectionConfig cfg;
  cfg.min_speed = 1.0;
  cfg.max_speed = 3.0;
  cfg.pause_time = 0.0;
  RandomDirectionModel model(grid_layout(20), cfg, Rng(3));
  auto prev = model.positions();
  for (int step = 0; step < 40; ++step) {
    model.step(0.25);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      // Wall reflections only fold the path, never lengthen it.
      EXPECT_LE(geom::distance(prev[i], model.positions()[i]),
                cfg.max_speed * 0.25 + 1e-9);
    }
    prev = model.positions();
  }
}

TEST(RandomDirectionTest, DensityStaysRoughlyUniform) {
  // The billiard model's selling point: after long mixing, nodes do not
  // pile up in the middle. Compare center vs border occupancy.
  RandomDirectionConfig cfg;
  cfg.pause_time = 0.0;
  RandomDirectionModel model(grid_layout(100), cfg, Rng(4));
  std::size_t center = 0, total = 0;
  for (int step = 0; step < 400; ++step) {
    model.step(1.0);
    if (step < 100) continue;  // mixing time
    for (const auto& p : model.positions()) {
      ++total;
      // The middle 50% x 50% of the area holds 25% of it.
      if (p.x > 25 && p.x < 75 && p.y > 25 && p.y < 75) ++center;
    }
  }
  const double frac =
      static_cast<double>(center) / static_cast<double>(total);
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.40);
}

TEST(RandomDirectionTest, SnapshotMatchesPositions) {
  RandomDirectionModel model(grid_layout(30), RandomDirectionConfig{},
                             Rng(5));
  model.step(1.0);
  const auto g = model.snapshot(15.0);
  EXPECT_EQ(g.order(), 30u);
}

TEST(RandomDirectionTest, RejectsBadConfig) {
  RandomDirectionConfig bad;
  bad.min_speed = 0.0;
  EXPECT_THROW(RandomDirectionModel(grid_layout(3), bad, Rng(1)),
               std::invalid_argument);
  RandomDirectionConfig zero_leg;
  zero_leg.max_leg_time = 0.0;
  EXPECT_THROW(RandomDirectionModel(grid_layout(3), zero_leg, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(RandomDirectionModel({}, RandomDirectionConfig{}, Rng(1)),
               std::invalid_argument);
  RandomDirectionModel ok(grid_layout(3), RandomDirectionConfig{}, Rng(1));
  EXPECT_THROW(ok.step(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace manet::mobility
