// The message-driven maintenance engine (src/proto): bootstrap fidelity,
// crafted repair scenarios checked against the from-scratch oracle, and
// the equivalence soaks — every tick of a mobility run must land the
// protocol on the bitwise state the snapshot-driven incremental engine
// maintains (both mobility models, both coverage modes).
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/state_hash.hpp"
#include "exp/churn.hpp"
#include "exp/mobility_mix.hpp"
#include "exp/msg_churn.hpp"
#include "geom/point.hpp"
#include "geom/unit_disk.hpp"
#include "incr/pipeline.hpp"
#include "obs/journal.hpp"
#include "obs/session.hpp"
#include "proto/engine.hpp"

namespace manet {
namespace {

std::uint64_t hash_backbone(const incr::IncrementalBackbone& b) {
  return core::backbone_state_hash(b.clustering(), b.tables(), b.coverage(),
                                   b.selection(), b.gateways(), b.cds());
}

proto::EngineOptions oracle_options(core::CoverageMode mode) {
  proto::EngineOptions o;
  o.mode = mode;
  o.oracle_check = true;
  return o;
}

TEST(ProtoEngine, BootstrapMatchesIncrementalEngine) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {2, 0}, {10, 0},
                                  {11, 0}, {12, 0}, {11, 1}};
  for (const core::CoverageMode mode :
       {core::CoverageMode::kTwoPointFiveHop, core::CoverageMode::kThreeHop}) {
    proto::MaintenanceEngine engine(pts, 1.5, 20, 5, oracle_options(mode));
    incr::PipelineOptions popts;
    popts.mode = mode;
    incr::IncrementalPipeline pipeline(pts, 1.5, 20, 5, popts);
    EXPECT_EQ(engine.state_hash(), hash_backbone(pipeline.backbone()));
  }
}

// A tick with no staged moves: every node beacons, nobody repairs, the
// state is untouched and the wire carries exactly the n HELLOs.
TEST(ProtoEngine, QuietTickCostsOnlyHellos) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 10, 5, oracle_options(core::CoverageMode::kTwoPointFiveHop));
  const std::uint64_t before = engine.state_hash();
  const proto::MaintTickStats stats = engine.tick();
  EXPECT_EQ(engine.state_hash(), before);
  EXPECT_EQ(stats.messages.maint_hello, pts.size());
  EXPECT_EQ(stats.messages.maintenance_total(), pts.size());
  EXPECT_EQ(stats.link_changes, 0u);
  EXPECT_EQ(stats.head_changes, 0u);
}

// Crafted rule-1 merge: two separated clusters {0,1} and {2,3}; node 2
// (a head) moves next to head 0. The new head-head edge forces 2 to
// resign and join 0; node 3, stranded, must declare itself. The engine's
// oracle mode asserts the full repaired structure each tick.
TEST(ProtoEngine, HeadMergeResignsLargerHead) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 20, 5, oracle_options(core::CoverageMode::kTwoPointFiveHop));
  ASSERT_TRUE(engine.node(0).is_head());
  ASSERT_TRUE(engine.node(2).is_head());

  engine.stage_move(2, {1.4, 0});
  const proto::MaintTickStats stats = engine.tick();
  EXPECT_TRUE(engine.node(0).is_head());
  EXPECT_FALSE(engine.node(2).is_head());
  EXPECT_EQ(engine.node(2).head(), 0u);
  EXPECT_TRUE(engine.node(3).is_head());  // stranded, self-declared
  EXPECT_GE(stats.head_changes, 2u);

  // Move 2 back: the split must re-form both clusters, oracle-checked.
  engine.stage_move(2, {10, 0});
  engine.tick();
  EXPECT_TRUE(engine.node(2).is_head() || engine.node(2).head() == 3u ||
              engine.node(3).is_head());
  EXPECT_EQ(engine.node(0).head(), 0u);
  EXPECT_EQ(engine.node(1).head(), 0u);
}

// Sustained head churn must recycle RowStore slots through the free
// list: thousands of toggle ticks intern and release hop1/hop2/selection
// rows every tick, and neither the live-row counts nor the slab (slot
// high-water, chunk count) may grow past what the warmup already
// reached — a leaked reference or a dead free list would show up as
// monotone growth here long before it shows up as RSS at scale.
TEST(ProtoEngine, RowStoreRecyclesSlotsUnderSustainedHeadChurn) {
  Rng rng(4242);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 200;
  cfg.range =
      geom::range_for_average_degree(8.0, cfg.nodes, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng, 100);
  ASSERT_TRUE(net.has_value());
  proto::MaintenanceEngine engine(net->positions, cfg.range, cfg.width,
                                  cfg.height, proto::EngineOptions{});

  // Every 20th node toggles between home and a displaced position each
  // tick — far enough (1.2 r) to retire links and flip head duty in its
  // neighborhood, driving the full intern/release cycle.
  std::vector<NodeId> movers;
  for (NodeId v = 0; v < cfg.nodes; v += 20) movers.push_back(v);
  const auto displaced = [&](NodeId v) {
    geom::Point p = net->positions[v];
    p.x += p.x < cfg.width / 2 ? 1.2 * cfg.range : -1.2 * cfg.range;
    return p;
  };
  const auto toggle_tick = [&](bool away) {
    for (const NodeId v : movers)
      engine.stage_move(v, away ? displaced(v) : net->positions[v]);
    engine.tick();
  };

  // Warmup: let the slab reach its churn working set (ends with movers
  // home, so later phase-aligned readings compare like with like).
  for (int t = 0; t < 100; ++t) toggle_tick(t % 2 == 0);
  const proto::RowStore& store = engine.store();
  const std::size_t live1 = store.live_hop1(), live2 = store.live_hop2();
  const std::size_t slots1 = store.slots_hop1(), slots2 = store.slots_hop2();
  const std::size_t chunks1 = store.chunks_hop1();
  const std::size_t chunks2 = store.chunks_hop2();
  const std::uint64_t hash = engine.state_hash();
  ASSERT_GT(slots1, live1);  // churn actually released rows

  for (int t = 0; t < 2000; ++t) toggle_tick(t % 2 == 0);

  // The protocol settles into the period-2 orbit of its drive, so the
  // phase-aligned live counts return exactly to the warmup baseline —
  // and the slab never grew: every row interned during the soak reused
  // a slot the free list recycled.
  EXPECT_EQ(engine.state_hash(), hash);
  EXPECT_EQ(store.live_hop1(), live1);
  EXPECT_EQ(store.live_hop2(), live2);
  EXPECT_EQ(store.slots_hop1(), slots1);
  EXPECT_EQ(store.slots_hop2(), slots2);
  EXPECT_EQ(store.chunks_hop1(), chunks1);
  EXPECT_EQ(store.chunks_hop2(), chunks2);
}

// A member drifting between clusters re-affiliates without disturbing
// either head (rule 2 keep/join path).
TEST(ProtoEngine, MemberHandoffBetweenClusters) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {4, 0}, {5, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 20, 5, oracle_options(core::CoverageMode::kThreeHop));
  ASSERT_EQ(engine.node(1).head(), 0u);

  engine.stage_move(1, {3.2, 0});  // out of 0's range, into 2's
  engine.tick();
  EXPECT_EQ(engine.node(1).head(), 2u);
  EXPECT_TRUE(engine.node(0).is_head());  // lone head keeps its cluster
  EXPECT_TRUE(engine.node(2).is_head());
}

exp::MsgChurnConfig make_soak(exp::ChurnConfig::Model model,
                              core::CoverageMode mode, std::uint64_t seed) {
  exp::MsgChurnConfig config;
  config.base.nodes = 60;
  config.base.degree = 6.0;
  config.base.ticks = 200;
  config.base.move_fraction = 0.05;
  config.base.model = model;
  config.base.mode = mode;
  config.base.seed = seed;
  config.base.connect_attempts = 5;
  config.crosscheck = true;
  config.oracle_check = true;
  return config;
}

// The acceptance soaks: >= 200 ticks of churn, both the engine-internal
// from-scratch oracle diff and the per-tick hash crosscheck against the
// incremental pipeline enabled. Four combinations.
TEST(ProtoEquivalence, WaypointTwoPointFiveHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kWaypoint,
      core::CoverageMode::kTwoPointFiveHop, 11));
  EXPECT_EQ(r.ticks, 200u);
  EXPECT_DOUBLE_EQ(r.hello_rate, 1.0);
}

TEST(ProtoEquivalence, WaypointThreeHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kWaypoint, core::CoverageMode::kThreeHop, 12));
  EXPECT_EQ(r.ticks, 200u);
}

TEST(ProtoEquivalence, DirectionTwoPointFiveHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kRandomDirection,
      core::CoverageMode::kTwoPointFiveHop, 13));
  EXPECT_EQ(r.ticks, 200u);
}

TEST(ProtoEquivalence, DirectionThreeHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kRandomDirection,
      core::CoverageMode::kThreeHop, 14));
  EXPECT_EQ(r.ticks, 200u);
}

// A correlated shock — 40% of all nodes move in one tick — must still
// reconverge to the oracle state within the tick.
TEST(ProtoEquivalence, MoveBurstReconverges) {
  exp::MsgChurnConfig config = make_soak(
      exp::ChurnConfig::Model::kWaypoint,
      core::CoverageMode::kTwoPointFiveHop, 21);
  config.base.ticks = 60;
  config.burst_fraction = 0.4;
  const exp::MsgChurnResult r = exp::run_msg_churn(config);
  EXPECT_GT(r.burst_rounds, 0u);
  EXPECT_LE(r.burst_rounds, r.max_rounds);
}

// The two harnesses replay the same trajectory (shared MobilityMix rng
// streams), so the protocol run's final digest must equal the
// incremental run's — without any lockstep help.
TEST(ProtoEquivalence, MatchesRunChurnFinalHash) {
  exp::ChurnConfig base;
  base.nodes = 80;
  base.degree = 6.0;
  base.ticks = 120;
  base.move_fraction = 0.04;
  base.seed = 31;
  base.connect_attempts = 5;
  base.rebuild_baseline = false;

  exp::MsgChurnConfig mcfg;
  mcfg.base = base;
  mcfg.crosscheck = false;
  mcfg.oracle_check = false;
  const exp::MsgChurnResult protocol = exp::run_msg_churn(mcfg);
  const exp::ChurnResult incremental = exp::run_churn(base);
  EXPECT_EQ(protocol.state_hash, incremental.state_hash);
}

// ---- Causal tracing and convergence observability ----

// The crafted head-merge repair with the flight recorder attached: the
// repair wave must land in the event journal as a single connected
// causal chain, rooted at a beacon and spanning at least three node
// tracks — the shape the Perfetto flow arrows render.
TEST(ProtoConvergence, WaveChainSpansThreeNodeTracks) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  proto::EngineOptions opts =
      oracle_options(core::CoverageMode::kTwoPointFiveHop);
  obs::Session session;
  opts.obs = &session;
  proto::MaintenanceEngine engine(pts, 1.5, 20, 5, opts);
  engine.stage_move(2, {1.4, 0});
  engine.tick();

  // The deepest wave of the repair tick.
  std::optional<obs::JournalEvent> deepest;
  session.journal.for_each([&](const obs::JournalEvent& e) {
    if (!deepest || e.depth > deepest->depth) deepest = e;
  });
  ASSERT_TRUE(deepest.has_value());
  EXPECT_GE(deepest->depth, 3u);

  const std::vector<obs::JournalEvent> chain =
      session.journal.causal_chain(deepest->trace_id);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain.front().parent_id, 0u);  // rooted, not truncated
  EXPECT_EQ(std::string(chain.front().type), "MAINT_HELLO");
  std::set<std::uint32_t> tracks;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    tracks.insert(chain[i].node);
    if (i > 0) {
      EXPECT_EQ(chain[i].parent_id, chain[i - 1].trace_id);
    }
  }
  EXPECT_GE(tracks.size(), 3u);

  // The rule-1 sub-chain: node 2's final resigned R1_STATUS must be
  // caused by head 0's surviving announcement, itself caused by a
  // beacon that revealed the head-head edge.
  std::optional<obs::JournalEvent> resigned;
  session.journal.for_each([&](const obs::JournalEvent& e) {
    if (e.node == 2 && std::string(e.type) == "R1_STATUS" && e.a == 1 &&
        e.b == 0)
      resigned = e;
  });
  ASSERT_TRUE(resigned.has_value());
  const std::vector<obs::JournalEvent> r1_chain =
      session.journal.causal_chain(resigned->trace_id);
  ASSERT_EQ(r1_chain.size(), 3u);
  EXPECT_EQ(std::string(r1_chain[0].type), "MAINT_HELLO");
  EXPECT_EQ(std::string(r1_chain[1].type), "R1_STATUS");
  EXPECT_EQ(r1_chain[1].node, 0u);  // the surviving smaller head
  EXPECT_EQ(r1_chain[1].b, 1u);     // survived
  EXPECT_EQ(r1_chain[0].parent_id, 0u);

  // The convergence families landed in the deterministic snapshot: the
  // resignation and the re-affiliation each pushed a stale-age sample,
  // and the wave observer saw caused messages.
  const std::string json =
      session.registry.snapshot().deterministic().to_json();
  EXPECT_NE(json.find("proto.conv.stale_age"), std::string::npos);
  EXPECT_NE(json.find("proto.conv.wave_depth"), std::string::npos);
  EXPECT_NE(json.find("proto.conv.quiescence_ticks"), std::string::npos);
  EXPECT_NE(json.find("proto.conv.expired_links"), std::string::npos);
}

// proto.conv.* metrics are integer-deterministic: a crosschecked churn
// run must produce a byte-identical deterministic snapshot whatever the
// witness pipeline's thread count.
TEST(ProtoConvergence, ConvMetricsBitwiseEqualAcrossThreads) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  std::string expected;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    exp::MsgChurnConfig config =
        make_soak(exp::ChurnConfig::Model::kWaypoint,
                  core::CoverageMode::kTwoPointFiveHop, 11);
    config.base.ticks = 60;
    config.base.threads = threads;
    config.oracle_check = false;  // crosscheck is the threaded harness
    obs::Session session;
    config.base.obs = &session;
    exp::run_msg_churn(config);
    const std::string json =
        session.registry.snapshot().deterministic().to_json();
    EXPECT_NE(json.find("proto.conv.stale_age"), std::string::npos);
    EXPECT_NE(json.find("proto.conv.quiescence_ticks"), std::string::npos);
    if (expected.empty())
      expected = json;
    else
      EXPECT_EQ(json, expected) << "snapshot diverged at threads=" << threads;
  }
}

// ---- Region-sharded execution ----

exp::ChurnConfig sharded_base(exp::ChurnConfig::Model model,
                              std::uint64_t seed) {
  exp::ChurnConfig base;
  base.nodes = 80;
  base.degree = 6.0;
  base.ticks = 120;
  base.move_fraction = 0.04;
  base.model = model;
  base.mode = core::CoverageMode::kTwoPointFiveHop;
  base.seed = seed;
  base.connect_attempts = 5;
  return base;
}

// Lockstep hash soak: the sharded engine (at several thread counts) must
// hold the sequential engine's exact state hash after every tick, under
// both mobility models. The sequential engine is itself crosschecked
// against the incremental pipeline elsewhere, so this transitively pins
// the sharded state to the whole equivalence tower.
TEST(ProtoSharded, LockstepMatchesSequentialEngine) {
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    const exp::ChurnConfig base = sharded_base(model, 41);
    exp::MobilityMix seq_mix(base);
    proto::EngineOptions seq_opts;
    seq_opts.mode = base.mode;
    proto::MaintenanceEngine sequential(seq_mix.positions(), seq_mix.range(),
                                        base.width, base.height, seq_opts);

    std::vector<std::unique_ptr<exp::MobilityMix>> mixes;
    std::vector<std::unique_ptr<proto::MaintenanceEngine>> engines;
    const std::size_t thread_counts[] = {1, 2, 8};
    for (const std::size_t threads : thread_counts) {
      mixes.push_back(std::make_unique<exp::MobilityMix>(base));
      proto::EngineOptions opts;
      opts.mode = base.mode;
      opts.threads = threads;
      engines.push_back(std::make_unique<proto::MaintenanceEngine>(
          mixes.back()->positions(), mixes.back()->range(), base.width,
          base.height, opts));
    }

    for (std::size_t tick = 0; tick < base.ticks; ++tick) {
      const std::span<const NodeId> moved =
          seq_mix.advance(seq_mix.movers_per_tick());
      for (const NodeId v : moved)
        sequential.stage_move(v, seq_mix.positions()[v]);
      sequential.tick();
      const std::uint64_t expect = sequential.state_hash();
      for (std::size_t i = 0; i < engines.size(); ++i) {
        const std::span<const NodeId> m =
            mixes[i]->advance(mixes[i]->movers_per_tick());
        for (const NodeId v : m)
          engines[i]->stage_move(v, mixes[i]->positions()[v]);
        engines[i]->tick();
        ASSERT_EQ(engines[i]->state_hash(), expect)
            << "threads=" << thread_counts[i] << " diverged at tick "
            << tick + 1 << " (model "
            << (model == exp::ChurnConfig::Model::kWaypoint ? "waypoint"
                                                            : "direction")
            << ")";
        ASSERT_EQ(engines[i]->cross_scope_late(), 0u);
      }
    }
  }
}

// The sharded engine under its own oracle: every tick's repaired state
// field-by-field equal to the from-scratch rebuild, plus the lockstep
// crosscheck against the incremental pipeline — run_msg_churn with
// engine_threads set. Both coverage modes.
TEST(ProtoSharded, OracleSoakBothModes) {
  for (const core::CoverageMode mode :
       {core::CoverageMode::kTwoPointFiveHop, core::CoverageMode::kThreeHop}) {
    exp::MsgChurnConfig config =
        make_soak(exp::ChurnConfig::Model::kWaypoint, mode, 11);
    config.base.ticks = 100;
    config.engine_threads = 2;
    const exp::MsgChurnResult r = exp::run_msg_churn(config);
    EXPECT_EQ(r.ticks, 100u);
    EXPECT_DOUBLE_EQ(r.hello_rate, 1.0);
  }
}

// Deterministic metrics — the net.* delivery layer and the proto.conv.*
// convergence families — must be byte-identical whether the protocol
// runs sequentially or sharded at any thread count, under both mobility
// models. This is the strongest observable-equivalence claim: the bulk
// accounting of everything the scopes skip has to be exact, not close.
TEST(ProtoSharded, MetricsBitwiseEqualAcrossThreads) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  for (const auto model : {exp::ChurnConfig::Model::kWaypoint,
                           exp::ChurnConfig::Model::kRandomDirection}) {
    std::string expected;
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                      std::size_t{2}, std::size_t{8}}) {
      exp::MsgChurnConfig config;
      config.base = sharded_base(model, 17);
      config.base.ticks = 80;
      config.crosscheck = false;
      config.oracle_check = false;
      config.engine_threads = threads;
      obs::Session session;
      config.base.obs = &session;
      exp::run_msg_churn(config);
      const std::string json =
          session.registry.snapshot().deterministic().to_json();
      EXPECT_NE(json.find("net.msg.maint_hello"), std::string::npos);
      EXPECT_NE(json.find("proto.conv.wave_depth"), std::string::npos);
      if (expected.empty())
        expected = json;
      else
        EXPECT_EQ(json, expected)
            << "deterministic snapshot diverged at engine_threads=" << threads;
    }
  }
}

// Partition separation, message level: within a tick, no message may
// cross a repair-region boundary after round 1 (round-1 boundary beacons
// are the expected, bulk-accounted exception). The engine counts every
// scope-filtered late delivery; a soak with heavy churn must end at
// exactly zero — the painted growth of 7 cells strictly contains the
// deepest repair wave the protocol can launch.
TEST(ProtoSharded, NoCrossRegionMessageWithinTick) {
  exp::ChurnConfig base = sharded_base(exp::ChurnConfig::Model::kWaypoint, 23);
  base.nodes = 150;
  base.ticks = 150;
  base.move_fraction = 0.08;  // many concurrent regions per tick
  exp::MobilityMix mix(base);
  proto::EngineOptions opts;
  opts.mode = core::CoverageMode::kTwoPointFiveHop;
  opts.threads = 2;
  proto::MaintenanceEngine engine(mix.positions(), mix.range(), base.width,
                                  base.height, opts);
  for (std::size_t tick = 0; tick < base.ticks; ++tick) {
    const std::span<const NodeId> moved = mix.advance(mix.movers_per_tick());
    for (const NodeId v : moved) engine.stage_move(v, mix.positions()[v]);
    engine.tick();
    ASSERT_EQ(engine.cross_scope_late(), 0u)
        << "a repair wave escaped its painted region at tick " << tick + 1;
  }
}

// Divergence forensics end to end: re-introduce the historical
// stale-gateway bug (a cached selected flag surviving the ex-head's
// non-head beacon at link formation), soak until the oracle trips, and
// require the exception to carry the causal slice — the ex-head's
// recent beacon chain — from the event journal.
TEST(ProtoForensics, StaleGatewayFaultDumpsCausalSlice) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  exp::MsgChurnConfig config =
      make_soak(exp::ChurnConfig::Model::kWaypoint,
                core::CoverageMode::kTwoPointFiveHop, 5);
  config.base.ticks = 100;  // seed 5 diverges at tick 96
  config.crosscheck = false;
  config.oracle_check = true;
  config.inject_stale_gateway_fault = true;
  obs::Session session;
  config.base.obs = &session;
  try {
    exp::run_msg_churn(config);
    FAIL() << "injected stale-gateway fault escaped the oracle";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stale gateway flag from resigned ex-head"),
              std::string::npos);
    EXPECT_NE(what.find("forensics: causal slice"), std::string::npos);
    // The slice names the ex-head (origin 55 for this seed) and shows
    // its beacon chain — MAINT_HELLO roots in the recent-sends dump.
    EXPECT_NE(what.find("and origin 55"), std::string::npos);
    EXPECT_NE(what.find("node 55 MAINT_HELLO"), std::string::npos);
    EXPECT_NE(what.find("causal chain of origin 55"), std::string::npos);
  }
}

}  // namespace
}  // namespace manet
