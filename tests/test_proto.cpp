// The message-driven maintenance engine (src/proto): bootstrap fidelity,
// crafted repair scenarios checked against the from-scratch oracle, and
// the equivalence soaks — every tick of a mobility run must land the
// protocol on the bitwise state the snapshot-driven incremental engine
// maintains (both mobility models, both coverage modes).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/state_hash.hpp"
#include "exp/churn.hpp"
#include "exp/msg_churn.hpp"
#include "geom/point.hpp"
#include "incr/pipeline.hpp"
#include "proto/engine.hpp"

namespace manet {
namespace {

std::uint64_t hash_backbone(const incr::IncrementalBackbone& b) {
  return core::backbone_state_hash(b.clustering(), b.tables(), b.coverage(),
                                   b.selection(), b.gateways(), b.cds());
}

proto::EngineOptions oracle_options(core::CoverageMode mode) {
  proto::EngineOptions o;
  o.mode = mode;
  o.oracle_check = true;
  return o;
}

TEST(ProtoEngine, BootstrapMatchesIncrementalEngine) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {2, 0}, {10, 0},
                                  {11, 0}, {12, 0}, {11, 1}};
  for (const core::CoverageMode mode :
       {core::CoverageMode::kTwoPointFiveHop, core::CoverageMode::kThreeHop}) {
    proto::MaintenanceEngine engine(pts, 1.5, 20, 5, oracle_options(mode));
    incr::PipelineOptions popts;
    popts.mode = mode;
    incr::IncrementalPipeline pipeline(pts, 1.5, 20, 5, popts);
    EXPECT_EQ(engine.state_hash(), hash_backbone(pipeline.backbone()));
  }
}

// A tick with no staged moves: every node beacons, nobody repairs, the
// state is untouched and the wire carries exactly the n HELLOs.
TEST(ProtoEngine, QuietTickCostsOnlyHellos) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 10, 5, oracle_options(core::CoverageMode::kTwoPointFiveHop));
  const std::uint64_t before = engine.state_hash();
  const proto::MaintTickStats stats = engine.tick();
  EXPECT_EQ(engine.state_hash(), before);
  EXPECT_EQ(stats.messages.maint_hello, pts.size());
  EXPECT_EQ(stats.messages.maintenance_total(), pts.size());
  EXPECT_EQ(stats.link_changes, 0u);
  EXPECT_EQ(stats.head_changes, 0u);
}

// Crafted rule-1 merge: two separated clusters {0,1} and {2,3}; node 2
// (a head) moves next to head 0. The new head-head edge forces 2 to
// resign and join 0; node 3, stranded, must declare itself. The engine's
// oracle mode asserts the full repaired structure each tick.
TEST(ProtoEngine, HeadMergeResignsLargerHead) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {10, 0}, {11, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 20, 5, oracle_options(core::CoverageMode::kTwoPointFiveHop));
  ASSERT_TRUE(engine.node(0).is_head());
  ASSERT_TRUE(engine.node(2).is_head());

  engine.stage_move(2, {1.4, 0});
  const proto::MaintTickStats stats = engine.tick();
  EXPECT_TRUE(engine.node(0).is_head());
  EXPECT_FALSE(engine.node(2).is_head());
  EXPECT_EQ(engine.node(2).head(), 0u);
  EXPECT_TRUE(engine.node(3).is_head());  // stranded, self-declared
  EXPECT_GE(stats.head_changes, 2u);

  // Move 2 back: the split must re-form both clusters, oracle-checked.
  engine.stage_move(2, {10, 0});
  engine.tick();
  EXPECT_TRUE(engine.node(2).is_head() || engine.node(2).head() == 3u ||
              engine.node(3).is_head());
  EXPECT_EQ(engine.node(0).head(), 0u);
  EXPECT_EQ(engine.node(1).head(), 0u);
}

// A member drifting between clusters re-affiliates without disturbing
// either head (rule 2 keep/join path).
TEST(ProtoEngine, MemberHandoffBetweenClusters) {
  std::vector<geom::Point> pts = {{0, 0}, {1, 0}, {4, 0}, {5, 0}};
  proto::MaintenanceEngine engine(
      pts, 1.5, 20, 5, oracle_options(core::CoverageMode::kThreeHop));
  ASSERT_EQ(engine.node(1).head(), 0u);

  engine.stage_move(1, {3.2, 0});  // out of 0's range, into 2's
  engine.tick();
  EXPECT_EQ(engine.node(1).head(), 2u);
  EXPECT_TRUE(engine.node(0).is_head());  // lone head keeps its cluster
  EXPECT_TRUE(engine.node(2).is_head());
}

exp::MsgChurnConfig make_soak(exp::ChurnConfig::Model model,
                              core::CoverageMode mode, std::uint64_t seed) {
  exp::MsgChurnConfig config;
  config.base.nodes = 60;
  config.base.degree = 6.0;
  config.base.ticks = 200;
  config.base.move_fraction = 0.05;
  config.base.model = model;
  config.base.mode = mode;
  config.base.seed = seed;
  config.base.connect_attempts = 5;
  config.crosscheck = true;
  config.oracle_check = true;
  return config;
}

// The acceptance soaks: >= 200 ticks of churn, both the engine-internal
// from-scratch oracle diff and the per-tick hash crosscheck against the
// incremental pipeline enabled. Four combinations.
TEST(ProtoEquivalence, WaypointTwoPointFiveHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kWaypoint,
      core::CoverageMode::kTwoPointFiveHop, 11));
  EXPECT_EQ(r.ticks, 200u);
  EXPECT_DOUBLE_EQ(r.hello_rate, 1.0);
}

TEST(ProtoEquivalence, WaypointThreeHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kWaypoint, core::CoverageMode::kThreeHop, 12));
  EXPECT_EQ(r.ticks, 200u);
}

TEST(ProtoEquivalence, DirectionTwoPointFiveHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kRandomDirection,
      core::CoverageMode::kTwoPointFiveHop, 13));
  EXPECT_EQ(r.ticks, 200u);
}

TEST(ProtoEquivalence, DirectionThreeHop) {
  const exp::MsgChurnResult r = exp::run_msg_churn(make_soak(
      exp::ChurnConfig::Model::kRandomDirection,
      core::CoverageMode::kThreeHop, 14));
  EXPECT_EQ(r.ticks, 200u);
}

// A correlated shock — 40% of all nodes move in one tick — must still
// reconverge to the oracle state within the tick.
TEST(ProtoEquivalence, MoveBurstReconverges) {
  exp::MsgChurnConfig config = make_soak(
      exp::ChurnConfig::Model::kWaypoint,
      core::CoverageMode::kTwoPointFiveHop, 21);
  config.base.ticks = 60;
  config.burst_fraction = 0.4;
  const exp::MsgChurnResult r = exp::run_msg_churn(config);
  EXPECT_GT(r.burst_rounds, 0u);
  EXPECT_LE(r.burst_rounds, r.max_rounds);
}

// The two harnesses replay the same trajectory (shared MobilityMix rng
// streams), so the protocol run's final digest must equal the
// incremental run's — without any lockstep help.
TEST(ProtoEquivalence, MatchesRunChurnFinalHash) {
  exp::ChurnConfig base;
  base.nodes = 80;
  base.degree = 6.0;
  base.ticks = 120;
  base.move_fraction = 0.04;
  base.seed = 31;
  base.connect_attempts = 5;
  base.rebuild_baseline = false;

  exp::MsgChurnConfig mcfg;
  mcfg.base = base;
  mcfg.crosscheck = false;
  mcfg.oracle_check = false;
  const exp::MsgChurnResult protocol = exp::run_msg_churn(mcfg);
  const exp::ChurnResult incremental = exp::run_churn(base);
  EXPECT_EQ(protocol.state_hash, incremental.state_hash);
}

}  // namespace
}  // namespace manet
