// Unit tests for NodeBitset — the dense-set kernel behind coverage
// construction, gateway selection and the greedy set cover.
#include "graph/bitset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace manet::graph {
namespace {

TEST(NodeBitsetTest, SetTestResetBasics) {
  NodeBitset bs(100);
  EXPECT_TRUE(bs.none());
  EXPECT_TRUE(bs.set(5));
  EXPECT_FALSE(bs.set(5));  // already present
  EXPECT_TRUE(bs.set(63));
  EXPECT_TRUE(bs.set(64));  // word boundary
  EXPECT_TRUE(bs.test(5));
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_FALSE(bs.test(6));
  EXPECT_EQ(bs.count(), 3u);
  EXPECT_TRUE(bs.any());
  EXPECT_TRUE(bs.reset(63));
  EXPECT_FALSE(bs.reset(63));  // already absent
  EXPECT_FALSE(bs.test(63));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(NodeBitsetTest, GrowsOnDemand) {
  NodeBitset bs;  // zero capacity
  EXPECT_FALSE(bs.test(1000));
  EXPECT_TRUE(bs.set(1000));
  EXPECT_TRUE(bs.test(1000));
  EXPECT_GE(bs.capacity(), 1001u);
  EXPECT_FALSE(bs.test(999));
  EXPECT_FALSE(bs.reset(100000));  // out of capacity: no-op
}

TEST(NodeBitsetTest, MaterializesSortedUnique) {
  NodeBitset bs(200);
  for (NodeId v : {130u, 2u, 64u, 2u, 199u, 0u}) bs.set(v);
  EXPECT_EQ(bs.to_node_set(), (NodeSet{0, 2, 64, 130, 199}));
}

TEST(NodeBitsetTest, ForEachVisitsAscending) {
  NodeBitset bs(300);
  const NodeSet expected{1, 63, 64, 65, 128, 256};
  for (NodeId v : expected) bs.set(v);
  NodeSet seen;
  bs.for_each([&](NodeId v) { seen.push_back(v); });
  EXPECT_EQ(seen, expected);
}

TEST(NodeBitsetTest, SetAlgebra) {
  NodeBitset a = NodeBitset::from_node_set(200, {1, 5, 70, 130});
  const NodeBitset b = NodeBitset::from_node_set(200, {5, 70, 131});
  EXPECT_EQ(a.intersection_count(b), 2u);

  NodeBitset u = a;
  u |= b;
  EXPECT_EQ(u.to_node_set(), (NodeSet{1, 5, 70, 130, 131}));

  NodeBitset i = a;
  i &= b;
  EXPECT_EQ(i.to_node_set(), (NodeSet{5, 70}));

  NodeBitset d = a;
  d.subtract(b);
  EXPECT_EQ(d.to_node_set(), (NodeSet{1, 130}));
}

TEST(NodeBitsetTest, EqualityIgnoresCapacity) {
  NodeBitset small = NodeBitset::from_node_set(10, {1, 3});
  NodeBitset large = NodeBitset::from_node_set(1000, {1, 3});
  EXPECT_EQ(small, large);
  large.set(999);
  EXPECT_FALSE(small == large);
}

TEST(NodeBitsetTest, MixedWidthAlgebraMatchesReference) {
  // Randomized ops against std::set ground truth, with operand widths
  // straddling word boundaries in both directions.
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<NodeId> ra, rb;
    NodeBitset a, b;
    for (int k = 0; k < 60; ++k) {
      const auto va = static_cast<NodeId>(rng.below(trial % 2 ? 500 : 90));
      const auto vb = static_cast<NodeId>(rng.below(trial % 2 ? 90 : 500));
      ra.insert(va);
      a.set(va);
      rb.insert(vb);
      b.set(vb);
    }
    std::set<NodeId> rint;
    for (NodeId v : ra)
      if (rb.count(v)) rint.insert(v);
    EXPECT_EQ(a.intersection_count(b), rint.size());
    EXPECT_EQ(a.count(), ra.size());

    NodeBitset u = a;
    u |= b;
    std::set<NodeId> runion = ra;
    runion.insert(rb.begin(), rb.end());
    EXPECT_EQ(u.to_node_set(), NodeSet(runion.begin(), runion.end()));

    NodeBitset i = a;
    i &= b;
    EXPECT_EQ(i.to_node_set(), NodeSet(rint.begin(), rint.end()));
  }
}

}  // namespace
}  // namespace manet::graph
