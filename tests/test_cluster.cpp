// Unit + property tests for lowest-ID clustering.
#include "cluster/lowest_id.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "paper_fixtures.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace manet::cluster {
namespace {

using graph::Graph;
using graph::make_graph;

TEST(LowestIdTest, SingletonIsItsOwnHead) {
  const auto c = lowest_id_clustering(graph::GraphBuilder(1).build());
  EXPECT_EQ(c.heads, (NodeSet{0}));
  EXPECT_TRUE(c.is_head(0));
  EXPECT_EQ(c.roles[0], Role::kClusterhead);
}

TEST(LowestIdTest, EdgeMakesOneCluster) {
  const auto c = lowest_id_clustering(make_graph(2, {{0, 1}}));
  EXPECT_EQ(c.heads, (NodeSet{0}));
  EXPECT_EQ(c.head_of[1], 0u);
  EXPECT_EQ(c.roles[1], Role::kOrdinary);
}

TEST(LowestIdTest, PathAlternatesHeads) {
  // Path 0-1-2-3-4: head 0 covers 1; 2 is smallest remaining -> head;
  // 3 joins 2; 4 has no head neighbor -> head.
  const auto c = lowest_id_clustering(graph::make_path(5));
  EXPECT_EQ(c.heads, (NodeSet{0, 2, 4}));
  EXPECT_EQ(c.head_of[1], 0u);
  EXPECT_EQ(c.head_of[3], 2u);
}

TEST(LowestIdTest, MonotoneChainWorstCase) {
  // The paper's worst case: a chain with monotone IDs clusters greedily
  // from the low end.
  const auto c = lowest_id_clustering(graph::make_path(9));
  EXPECT_EQ(c.heads, (NodeSet{0, 2, 4, 6, 8}));
}

TEST(LowestIdTest, JoinsSmallestHeadNeighbor) {
  // Node 3 is adjacent to heads 0 and 1 (0 and 1 not adjacent).
  const auto g = make_graph(4, {{0, 3}, {1, 3}, {1, 2}});
  const auto c = lowest_id_clustering(g);
  EXPECT_EQ(c.heads, (NodeSet{0, 1}));
  EXPECT_EQ(c.head_of[3], 0u);
  EXPECT_EQ(c.head_of[2], 1u);
}

TEST(LowestIdTest, LargerIdDeclaresWhenLocallySmallest) {
  // Star center 2 with leaves 3,4: node 2 is locally smallest.
  const auto g = make_graph(5, {{2, 3}, {2, 4}, {0, 1}});
  const auto c = lowest_id_clustering(g);
  EXPECT_EQ(c.heads, (NodeSet{0, 2}));
}

TEST(LowestIdTest, GatewayRolesOnTwoClusters) {
  // 0-1-2: 0 head, 1 joins 0; 2 heads its own cluster. Then 1 borders
  // cluster 2 and 2's cluster borders 1 -> 1 is a gateway.
  const auto c = lowest_id_clustering(graph::make_path(3));
  EXPECT_EQ(c.heads, (NodeSet{0, 2}));
  EXPECT_EQ(c.roles[1], Role::kGateway);
}

TEST(LowestIdTest, MembersOf) {
  const auto c = lowest_id_clustering(graph::make_star(4));
  EXPECT_EQ(c.members_of(0), (NodeSet{0, 1, 2, 3}));
  EXPECT_THROW(c.members_of(1), std::invalid_argument);
  EXPECT_EQ(c.cluster_count(), 1u);
}

TEST(LowestIdTest, CompleteGraphHasOneHead) {
  const auto c = lowest_id_clustering(graph::make_complete(7));
  EXPECT_EQ(c.heads, (NodeSet{0}));
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(c.head_of[v], 0u);
}

TEST(LowestIdTest, DisconnectedGraphClusteredPerComponent) {
  const auto g = make_graph(4, {{0, 1}, {2, 3}});
  const auto c = lowest_id_clustering(g);
  EXPECT_EQ(c.heads, (NodeSet{0, 2}));
}

TEST(LowestIdTest, PaperFigure3Network) {
  // The 10-node example of Figure 3 (ids shifted down by one: paper node
  // k = our node k-1). Edges read off the figure; heads must be paper
  // nodes 1,2,3,4 = ours 0,1,2,3 and memberships match the text:
  // "nodes 5, 6 and 7 join in cluster C1, node 8 joins in C2, nodes 9 and
  // 10 join in C3".
  const auto g = make_graph(10, {
      {0, 4}, {0, 5}, {0, 6},          // head 1's members 5,6,7
      {1, 5}, {1, 7},                  // head 2: 6 and 8 adjacent
      {2, 6}, {2, 7}, {2, 8}, {2, 9},  // head 3: 7,8,9,10 adjacent
      {3, 8}, {3, 9},                  // head 4: 9,10 adjacent
      {4, 8},                          // 5-9 link (gives CH_HOP2 entries)
  });
  const auto c = lowest_id_clustering(g);
  EXPECT_EQ(c.heads, (NodeSet{0, 1, 2, 3}));
  EXPECT_EQ(c.head_of[4], 0u);
  EXPECT_EQ(c.head_of[5], 0u);
  EXPECT_EQ(c.head_of[6], 0u);
  EXPECT_EQ(c.head_of[7], 1u);
  EXPECT_EQ(c.head_of[8], 2u);
  EXPECT_EQ(c.head_of[9], 2u);
  EXPECT_TRUE(validate_clustering(g, c).empty());
}

TEST(LowestIdTest, ValidateDetectsCorruption) {
  const auto g = graph::make_path(5);
  auto c = lowest_id_clustering(g);
  EXPECT_TRUE(validate_clustering(g, c).empty());
  auto broken = c;
  broken.head_of[1] = 4;  // not adjacent and not a head of 1's neighborhood
  EXPECT_FALSE(validate_clustering(g, broken).empty());
  auto wrong_role = c;
  wrong_role.roles[1] = Role::kClusterhead;
  EXPECT_FALSE(validate_clustering(g, wrong_role).empty());
}

// ---- Property sweep: invariants over random unit-disk graphs ----------

struct SweepParam {
  std::size_t nodes;
  double degree;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << testing::param_tag(p.nodes, p.degree, p.seed);
  }
};

class ClusteringSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusteringSweep, InvariantsHold) {
  const auto [n, d, seed] = GetParam();
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = n;
  cfg.range = geom::range_for_average_degree(d, n, cfg.width, cfg.height);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto c = lowest_id_clustering(net->graph);

  EXPECT_TRUE(validate_clustering(net->graph, c).empty())
      << validate_clustering(net->graph, c);
  EXPECT_TRUE(graph::is_maximal_independent_set(net->graph, c.heads));
  // Node 0 is always a clusterhead under the lowest-ID rule.
  EXPECT_TRUE(c.is_head(0));
  // Clusters partition the vertex set.
  std::size_t members = 0;
  for (NodeId h : c.heads) members += c.members_of(h).size();
  EXPECT_EQ(members, net->graph.order());
}

INSTANTIATE_TEST_SUITE_P(
    RandomUnitDisk, ClusteringSweep,
    ::testing::Values(
        SweepParam{20, 6, 1}, SweepParam{20, 6, 2}, SweepParam{20, 18, 3},
        SweepParam{40, 6, 4}, SweepParam{40, 18, 5}, SweepParam{60, 6, 6},
        SweepParam{60, 18, 7}, SweepParam{80, 6, 8}, SweepParam{80, 18, 9},
        SweepParam{100, 6, 10}, SweepParam{100, 18, 11},
        SweepParam{100, 12, 12}, SweepParam{50, 10, 13},
        SweepParam{30, 8, 14}, SweepParam{70, 14, 15}));

}  // namespace
}  // namespace manet::cluster
