// Tests for the observability layer (src/obs): registry determinism —
// snapshots must be byte-identical across reruns and replication thread
// counts — histogram edge cases, the flight-recorder ring, Chrome-trace
// export, and the instrumentation threaded through the simulator and
// the churn experiment.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/churn.hpp"
#include "geom/unit_disk.hpp"
#include "graph/graph.hpp"
#include "incr/pipeline.hpp"
#include "net/protocol.hpp"
#include "net/simulator.hpp"
#include "obs/session.hpp"
#include "paper_fixtures.hpp"
#include "stats/replicator.hpp"

namespace manet {
namespace {

TEST(ObsRegistryTest, CountersGaugesHistogramsRoundTrip) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry reg;
  obs::Counter c = reg.counter("ticks");
  obs::Gauge g = reg.gauge("round");
  obs::Histogram h = reg.histogram("rows", {10, 20, 40});
  c.add();
  c.add(4);
  g.set(-3);
  h.record(15);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "ticks");
  EXPECT_EQ(snap.counters[0].value, 5u);
  EXPECT_EQ(snap.counter_or("ticks"), 5u);
  EXPECT_EQ(snap.counter_or("absent", 42), 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -3);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 15u);

  reg.reset();
  const obs::MetricsSnapshot zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counter_or("ticks"), 0u);
  EXPECT_EQ(zeroed.histograms[0].count, 0u);
  c.add();  // handles survive reset()
  EXPECT_EQ(reg.snapshot().counter_or("ticks"), 1u);
}

TEST(ObsRegistryTest, HistogramEdgesMustBeStrictlyIncreasing) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry reg;
  EXPECT_THROW(reg.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dup", {1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("desc", {4, 2, 1}), std::invalid_argument);
}

TEST(ObsRegistryTest, HistogramUnderflowOverflowAndEmpty) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry reg;
  obs::Histogram h = reg.histogram("h", {10, 20, 40});

  // Untouched histogram: all zero, edges+1 buckets.
  obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms[0].buckets.size(), 4u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  EXPECT_EQ(snap.histograms[0].sum, 0u);

  h.record(0);    // underflow: < 10
  h.record(9);    // underflow
  h.record(10);   // [10, 20)
  h.record(39);   // [20, 40)
  h.record(40);   // overflow: >= last edge
  h.record(1000);  // overflow

  snap = reg.snapshot();
  EXPECT_EQ(snap.histograms[0].buckets,
            (std::vector<std::uint64_t>{2, 1, 1, 2}));
  EXPECT_EQ(snap.histograms[0].count, 6u);
  EXPECT_EQ(snap.histograms[0].sum, 0u + 9 + 10 + 39 + 40 + 1000);
}

TEST(ObsRegistryTest, SnapshotJsonIsDeterministic) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  const auto drive = [] {
    obs::Registry reg;
    // Register in scrambled order: snapshots sort by name.
    obs::Counter b = reg.counter("b.count");
    obs::Histogram h = reg.histogram("a.hist", {1, 2, 4});
    obs::Counter a = reg.counter("a.count");
    obs::Gauge g = reg.gauge("c.gauge");
    for (std::uint64_t i = 0; i < 100; ++i) {
      a.add(i);
      b.add();
      h.record(i % 6);
      g.set(static_cast<std::int64_t>(i));
    }
    return reg.snapshot();
  };
  const obs::MetricsSnapshot first = drive();
  const obs::MetricsSnapshot second = drive();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_EQ(first.counters[0].name, "a.count");  // sorted by name
  EXPECT_NE(first.to_json().find("\"a.hist\""), std::string::npos);
}

TEST(ObsRegistryTest, DeterministicDropsSchedulingPlaneMetrics) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Registry reg;
  reg.counter("incr.ticks").add(7);
  reg.counter("incr.lane.0.busy_us").add(12345);
  reg.counter("incr.lane.3.jobs").add(9);
  reg.gauge("incr.pool.queue_depth").set(2);
  reg.gauge("incr.pool.pipeline_depth").set(2);
  reg.gauge("incr.slot_compactions").set(4);
  reg.histogram("incr.region_size", {1, 2, 4}).record(3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsSnapshot det = snap.deterministic();
  // Wall-clock / lane-count dependent families are gone...
  EXPECT_EQ(det.counter_or("incr.lane.0.busy_us", 999), 999u);
  EXPECT_EQ(det.counter_or("incr.lane.3.jobs", 999), 999u);
  for (const auto& g : det.gauges) {
    EXPECT_EQ(g.name.find(".pool."), std::string::npos);
    EXPECT_EQ(g.name.find(".lane."), std::string::npos);
  }
  // ...and everything deterministic survives untouched.
  EXPECT_EQ(det.counter_or("incr.ticks"), 7u);
  ASSERT_EQ(det.gauges.size(), 1u);
  EXPECT_EQ(det.gauges[0].name, "incr.slot_compactions");
  EXPECT_EQ(det.gauges[0].value, 4);
  ASSERT_EQ(det.histograms.size(), 1u);
  EXPECT_EQ(det.histograms[0].count, 1u);
  // The full snapshot is untouched by the filtering copy.
  EXPECT_EQ(snap.counter_or("incr.lane.0.busy_us"), 12345u);
}

TEST(ObsRegistryTest, CompiledOutRegistryStaysEmpty) {
  if (obs::kEnabled) GTEST_SKIP() << "only meaningful with -DMANET_OBS=OFF";
  obs::Registry reg;
  obs::Counter c = reg.counter("ticks");
  obs::Histogram h = reg.histogram("h", {});  // edges not even validated
  c.add(7);
  h.record(3);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(ObsRegistryTest, ThreadedReplicateIsDeterministic) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  // The registry's atomic adds commute, so recording from
  // stats::replicate workers must yield the same snapshot for every
  // thread count. R is divisible by each tested thread count so the
  // parallel batches line up exactly with the stopping point.
  static constexpr std::size_t kReps = 24;
  const auto run_with_threads = [](std::size_t threads) {
    obs::Registry reg;
    obs::Counter c = reg.counter("work");
    obs::Histogram h = reg.histogram("dist", {4, 8, 16});
    stats::ReplicationPolicy policy;
    policy.min_replications = kReps;
    policy.max_replications = kReps;
    policy.threads = threads;
    const stats::ReplicationResult result = stats::replicate(
        policy, 1, [&](std::size_t rep, std::vector<double>& out) {
          c.add(static_cast<std::uint64_t>(rep) + 1);
          h.record(static_cast<std::uint64_t>(rep) % 20);
          out.push_back(static_cast<double>(rep));
        });
    EXPECT_EQ(result.replications, kReps);
    return reg.snapshot().to_json();
  };
  const std::string baseline = run_with_threads(1);
  for (const std::size_t threads : {2u, 3u, 4u})
    EXPECT_EQ(run_with_threads(threads), baseline)
        << "snapshot diverged at threads=" << threads;
}

TEST(ObsTraceTest, RingKeepsTheLastEvents) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::TraceRecorder rec(4);
  EXPECT_THROW(obs::TraceRecorder(0), std::invalid_argument);
  for (std::uint64_t tick = 0; tick < 10; ++tick)
    rec.instant_at(tick * 100, "t", "e", tick);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tick\":6"), std::string::npos);  // oldest kept
  EXPECT_NE(json.find("\"tick\":9"), std::string::npos);  // newest
  EXPECT_EQ(json.find("\"tick\":5"), std::string::npos);  // overwritten
  // Oldest-first order in the export.
  EXPECT_LT(json.find("\"tick\":6"), json.find("\"tick\":9"));

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(ObsTraceTest, ChromeExportCarriesSpansAndArgs) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::TraceRecorder rec(16);
  rec.complete("incr", "hop1_scan", 2000, 1500, 3, 0, "rows", 7);
  {
    obs::Span span(&rec, "incr", "tick", 4, "links");
    span.set_arg(12);
  }
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"hop1_scan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);   // us
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);  // us
  EXPECT_NE(json.find("\"rows\":7"), std::string::npos);
  EXPECT_NE(json.find("\"links\":12"), std::string::npos);

  std::ostringstream tail;
  rec.dump_tail(tail, 1);  // only the span from the RAII block
  EXPECT_NE(tail.str().find("last 1 of 2"), std::string::npos);
  EXPECT_NE(tail.str().find("incr/tick"), std::string::npos);
  EXPECT_EQ(tail.str().find("hop1_scan"), std::string::npos);
}

TEST(ObsTraceTest, FlowEventsExportWithSharedIdentity) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::TraceRecorder rec(16);
  rec.flow_begin_at(1000, "proto", "wave", 7, 1, 2);
  rec.flow_step_at(2000, "proto", "wave", 7, 1, 5);
  rec.flow_end_at(3000, "proto", "wave", 7, 1, 9);
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // All three carry the binding id; the 'f' carries the enclosing-slice
  // binding point Chrome needs to anchor the arrow head.
  std::size_t id_count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"id\":7", pos)) != std::string::npos; ++pos)
    ++id_count;
  EXPECT_EQ(id_count, 3u);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // The flow renders across the three node tracks (tid = node id).
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":9"), std::string::npos);
}

TEST(ObsTraceTest, RingWrapDropsOrphanedFlowEnds) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::TraceRecorder rec(4);  // tiny ring to force eviction
  rec.flow_begin_at(0, "proto", "wave", 1, 0, 0);
  // Four fillers evict the flow-begin of id 1.
  for (std::uint64_t i = 0; i < 4; ++i)
    rec.instant_at(100 + i, "net", "filler", 0, 0);
  rec.flow_end_at(500, "proto", "wave", 1, 0, 3);  // orphaned: 's' evicted
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string orphaned = os.str();
  // A 't'/'f' whose 's' fell off the ring would render as a dangling
  // arrow from nowhere — the export must drop it.
  EXPECT_EQ(orphaned.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_EQ(orphaned.find("\"id\":1"), std::string::npos);

  // A begin/end pair that BOTH survive the wrap still exports.
  rec.flow_begin_at(600, "proto", "wave", 2, 0, 0);
  rec.flow_end_at(700, "proto", "wave", 2, 0, 1);
  std::ostringstream os2;
  rec.write_chrome_trace(os2);
  const std::string live = os2.str();
  EXPECT_NE(live.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(live.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(live.find("\"id\":2"), std::string::npos);
}

TEST(ObsJournalTest, RingQueriesAndCausalChain) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Journal journal(8);
  EXPECT_THROW(obs::Journal(0), std::invalid_argument);
  journal.set_tick(1);
  journal.record(0, 10, "MAINT_HELLO", 1, 0, 0, 10, 1);
  journal.record(1, 11, "R1_STATUS", 2, 1, 1, 1, 1);
  journal.set_tick(2);
  journal.record(2, 12, "R2_STATUS", 3, 2, 2, 11, 3);
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.total_recorded(), 3u);

  const auto hello = journal.find_trace(1);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->tick, 1u);
  EXPECT_EQ(hello->node, 10u);
  EXPECT_FALSE(journal.find_trace(99).has_value());
  EXPECT_FALSE(journal.find_trace(0).has_value());

  // Chain of the deepest message walks back to the root, oldest first.
  const auto chain = journal.causal_chain(3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].trace_id, 1u);
  EXPECT_EQ(chain[1].trace_id, 2u);
  EXPECT_EQ(chain[2].trace_id, 3u);
  EXPECT_EQ(chain[2].tick, 2u);

  const auto last = journal.last_event_of(12);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->trace_id, 3u);
  EXPECT_FALSE(journal.last_event_of(77).has_value());

  // Ring wrap: enough new roots to evict the original chain; the walk
  // then truncates where the ancestor was overwritten.
  for (std::uint64_t i = 0; i < 8; ++i)
    journal.record(3, 20, "MAINT_HELLO", 100 + i, 0, 0, 0, 0);
  EXPECT_EQ(journal.size(), 8u);
  EXPECT_EQ(journal.total_recorded(), 11u);
  EXPECT_FALSE(journal.find_trace(1).has_value());
  EXPECT_TRUE(journal.causal_chain(3).empty());

  const std::string line = obs::Journal::format_event(*journal.find_trace(100));
  EXPECT_NE(line.find("node 20"), std::string::npos);
  EXPECT_NE(line.find("MAINT_HELLO"), std::string::npos);
  EXPECT_NE(line.find("trace=100"), std::string::npos);
}

TEST(ObsJournalTest, TinyRingWrapTruncatesChainAtEvictedAncestor) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  // Regression for the trace_inspect ancestor walk: a deep wave recorded
  // through a tiny ring loses its oldest ancestors, and the chain query
  // must terminate at the first evicted parent — returning the retained
  // suffix oldest-first with a nonzero leading parent_id (the truncation
  // marker the CLI reports on) instead of looping or dying.
  obs::Journal journal(4);
  for (std::uint64_t id = 1; id <= 6; ++id)
    journal.record(0, static_cast<std::uint32_t>(id), "GATEWAY", id, id - 1,
                   static_cast<std::uint32_t>(id - 1), 0, 0);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_recorded(), 6u);
  EXPECT_FALSE(journal.find_trace(2).has_value());

  const auto chain = journal.causal_chain(6);
  ASSERT_EQ(chain.size(), 4u);
  for (std::size_t i = 0; i < chain.size(); ++i)
    EXPECT_EQ(chain[i].trace_id, 3 + i);
  // The leading event's parent points at the evicted trace 2 — the walk
  // stopped there, it did not silently re-root the wave.
  EXPECT_EQ(chain.front().parent_id, 2u);

  // A walk from mid-window truncates the same way.
  const auto mid = journal.causal_chain(4);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid.front().trace_id, 3u);
  EXPECT_EQ(mid.front().parent_id, 2u);
}

TEST(ObsJournalTest, JsonlExportOneObjectPerLine) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  obs::Journal journal(8);
  journal.set_tick(3);
  journal.record(5, 1, "GATEWAY", 42, 41, 2, 9, 7);
  std::ostringstream os;
  journal.write_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_EQ(jsonl,
            "{\"tick\":3,\"round\":5,\"node\":1,\"type\":\"GATEWAY\","
            "\"trace\":42,\"parent\":41,\"depth\":2,\"a\":9,\"b\":7}\n");
}

TEST(ObsSimulatorTest, RegistryCountersMatchMessageCounts) {
  const auto g = testing::paper_figure3_network();
  obs::Session session;
  net::Simulator sim(g, [](NodeId v) {
    return std::make_unique<net::BackboneNode>(
        v, core::CoverageMode::kTwoPointFiveHop);
  });
  sim.set_obs(&session);
  const std::uint32_t rounds = sim.run();
  const net::MessageCounts& counts = sim.counts();
  EXPECT_GT(counts.total(), 0u);
  if (!obs::kEnabled) return;

  const obs::MetricsSnapshot snap = session.registry.snapshot();
  EXPECT_EQ(snap.counter_or("net.msg.hello"), counts.hello);
  EXPECT_EQ(snap.counter_or("net.msg.cluster_head"), counts.cluster_head);
  EXPECT_EQ(snap.counter_or("net.msg.non_cluster_head"),
            counts.non_cluster_head);
  EXPECT_EQ(snap.counter_or("net.msg.ch_hop1"), counts.ch_hop1);
  EXPECT_EQ(snap.counter_or("net.msg.ch_hop2"), counts.ch_hop2);
  EXPECT_EQ(snap.counter_or("net.msg.gateway"), counts.gateway);
  EXPECT_EQ(snap.counter_or("net.rounds"), rounds);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "net.quiescence_round");
  EXPECT_EQ(snap.gauges[0].value, static_cast<std::int64_t>(rounds));
  // The per-send hot path writes only the journal; the renderable
  // events are synthesized at export time. The merged export carries two
  // per transmission — the instant on the sender's track plus the causal
  // flow-begin (construction-phase sends are all wave roots, so no
  // flow-ends).
  EXPECT_EQ(session.journal.total_recorded(), counts.total());
  EXPECT_EQ(session.trace.total_recorded(), 0u);
  std::ostringstream os;
  session.trace.write_chrome_trace(os, &session.journal);
  const std::string json = os.str();
  std::size_t begins = 0, instants = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"s\"", pos)) != std::string::npos; ++pos)
    ++begins;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"i\"", pos)) != std::string::npos; ++pos)
    ++instants;
  EXPECT_EQ(begins, counts.total());
  EXPECT_EQ(instants, counts.total());
  EXPECT_EQ(json.find("\"ph\":\"f\""), std::string::npos);
}

/// Never quiesces: transmits a HELLO every round.
class ChattyNode final : public net::NodeProcess {
 public:
  void start(net::Mailbox& out) override { out.send(net::HelloMsg{}); }
  void on_round(std::uint32_t, net::Inbox, net::Mailbox& out) override {
    out.send(net::HelloMsg{});
  }
  bool done() const override { return false; }
};

TEST(ObsSimulatorTest, LivelockErrorReportsInFlightCounts) {
  const auto g = graph::make_graph(2, {{0, 1}});
  net::Simulator sim(g, [](NodeId) { return std::make_unique<ChattyNode>(); });
  try {
    sim.run(5);
    FAIL() << "expected the livelock guard to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_rounds=5"), std::string::npos) << what;
    EXPECT_NE(what.find("in-flight"), std::string::npos) << what;
    // Both nodes transmit every round: 2 in flight each reported round.
    EXPECT_NE(what.find("round 5=2"), std::string::npos) << what;
  }
}

TEST(ObsChurnTest, MetricsAreDeterministicAcrossReruns) {
  const auto run_once = [] {
    exp::ChurnConfig config;
    config.nodes = 60;
    config.degree = 6.0;
    config.ticks = 15;
    config.move_fraction = 0.05;
    config.seed = 7;
    config.rebuild_baseline = false;
    obs::Session session;
    config.obs = &session;
    exp::run_churn(config);
    return session.registry.snapshot();
  };
  const obs::MetricsSnapshot first = run_once();
  const obs::MetricsSnapshot second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.to_json(), second.to_json());
  if (obs::kEnabled) {
    EXPECT_EQ(first.counter_or("incr.ticks"), 15u);
  }
}

// bench/obs_overhead relies on toggling observation between ticks of a
// live pipeline: attaching must only change what gets recorded, never
// the maintained state, and counters must cover exactly the observed
// ticks.
TEST(ObsChurnTest, SetObsToggleObservesWithoutPerturbing) {
  geom::UnitDiskConfig net;
  net.nodes = 50;
  net.range = geom::range_for_average_degree(6.0, net.nodes, net.width,
                                             net.height);
  Rng rng(derive_seed(5, 0, 0));
  const auto network = geom::generate_unit_disk(net, rng);

  incr::IncrementalPipeline toggled(network.positions, net.range, net.width,
                                    net.height, incr::PipelineOptions{});
  incr::IncrementalPipeline untouched(network.positions, net.range,
                                      net.width, net.height,
                                      incr::PipelineOptions{});
  obs::Session session;
  Rng move_rng(derive_seed(5, 0, 1));
  for (std::uint64_t tick = 0; tick < 8; ++tick) {
    const auto v = static_cast<NodeId>(move_rng.index(net.nodes));
    const geom::Point p{move_rng.uniform(0.0, net.width),
                        move_rng.uniform(0.0, net.height)};
    toggled.stage_move(v, p);
    untouched.stage_move(v, p);
    toggled.set_obs(tick % 2 == 0 ? &session : nullptr);
    toggled.tick();
    untouched.tick();
  }
  toggled.set_obs(nullptr);
  EXPECT_EQ(toggled.freeze_graph().edges(), untouched.freeze_graph().edges());
  EXPECT_EQ(toggled.clustering().head_of, untouched.clustering().head_of);
  if (obs::kEnabled) {
    // Only the 4 observed ticks count.
    EXPECT_EQ(session.registry.snapshot().counter_or("incr.ticks"), 4u);
  }
}

TEST(ObsChurnTest, OracleRunRecordsPipelineMetrics) {
  exp::ChurnConfig config;
  config.nodes = 40;
  config.degree = 6.0;
  config.ticks = 10;
  config.move_fraction = 0.05;
  config.seed = 11;
  config.oracle_check = true;
  obs::Session session;
  config.obs = &session;
  const exp::ChurnResult result = exp::run_churn(config);
  EXPECT_EQ(result.ticks, 10u);
  if (!obs::kEnabled) return;
  const obs::MetricsSnapshot snap = session.registry.snapshot();
  EXPECT_EQ(snap.counter_or("incr.ticks"), 10u);
  // Every tick leaves a tick span plus phase spans in the recorder.
  EXPECT_GE(session.trace.total_recorded(), 10u);
}

}  // namespace
}  // namespace manet
