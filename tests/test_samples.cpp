// Unit tests for exact sample-set statistics.
#include "stats/samples.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace manet::stats {
namespace {

TEST(SampleSetTest, MeanMedianMinMax) {
  SampleSet s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  for (double v : {0.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.95), 7.0);
  EXPECT_DOUBLE_EQ(s.trimmed_mean(0.4), 7.0);
}

TEST(SampleSetTest, P95OnUniformSamples) {
  SampleSet s;
  Rng rng(55);
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform01());
  EXPECT_NEAR(s.quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(s.median(), 0.5, 0.02);
}

TEST(SampleSetTest, TrimmedMeanIgnoresOutliers) {
  SampleSet s;
  for (int i = 0; i < 98; ++i) s.add(10.0);
  s.add(-1000.0);
  s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.trimmed_mean(0.05), 10.0);
  EXPECT_NE(s.mean(), 10.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSetTest, RejectsBadArguments) {
  SampleSet empty;
  EXPECT_THROW(empty.mean(), std::invalid_argument);
  EXPECT_THROW(empty.quantile(0.5), std::invalid_argument);
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
  EXPECT_THROW(s.trimmed_mean(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace manet::stats
