// Randomized cross-checks for the graph substrate: the CSR representation
// and BFS are validated against independent brute-force reference
// implementations on random graphs.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"

namespace manet::graph {
namespace {

/// Random simple graph on n vertices with edge probability p.
Graph random_graph(std::size_t n, double p, Rng& rng) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.chance(p)) b.edge(i, j);
  return b.build();
}

TEST(GraphCrossCheck, CsrAgreesWithAdjacencyMatrix) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng.index(25);
    std::vector<std::vector<char>> matrix(n, std::vector<char>(n, 0));
    GraphBuilder b(n);
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = i + 1; j < n; ++j) {
        if (rng.chance(0.3)) {
          b.edge(i, j);
          matrix[i][j] = matrix[j][i] = 1;
        }
      }
    }
    const Graph g = b.build();
    std::size_t matrix_edges = 0;
    for (NodeId i = 0; i < n; ++i) {
      std::size_t row_degree = 0;
      for (NodeId j = 0; j < n; ++j) {
        ASSERT_EQ(g.has_edge(i, j), matrix[i][j] != 0)
            << "trial " << trial << " edge " << i << "-" << j;
        if (matrix[i][j]) {
          ++row_degree;
          if (i < j) ++matrix_edges;
        }
      }
      ASSERT_EQ(g.degree(i), row_degree);
    }
    ASSERT_EQ(g.edge_count(), matrix_edges);
  }
}

TEST(GraphCrossCheck, BfsAgreesWithFloydWarshall) {
  Rng rng(62);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + rng.index(16);
    const Graph g = random_graph(n, 0.25, rng);

    // Floyd–Warshall reference.
    constexpr std::uint32_t kInf = kUnreachable;
    std::vector<std::vector<std::uint32_t>> dist(
        n, std::vector<std::uint32_t>(n, kInf));
    for (NodeId i = 0; i < n; ++i) {
      dist[i][i] = 0;
      for (NodeId j : g.neighbors(i)) dist[i][j] = 1;
    }
    for (NodeId k = 0; k < n; ++k)
      for (NodeId i = 0; i < n; ++i)
        for (NodeId j = 0; j < n; ++j)
          if (dist[i][k] != kInf && dist[k][j] != kInf)
            dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);

    for (NodeId s = 0; s < n; ++s) {
      const auto bfs = bfs_distances(g, s);
      for (NodeId v = 0; v < n; ++v)
        ASSERT_EQ(bfs[v], dist[s][v])
            << "trial " << trial << " s=" << s << " v=" << v;
    }
    // Diameter and connectivity fall out of the same reference.
    std::uint32_t ref_diam = 0;
    bool ref_connected = true;
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = 0; j < n; ++j) {
        if (dist[i][j] == kInf)
          ref_connected = false;
        else
          ref_diam = std::max(ref_diam, dist[i][j]);
      }
    ASSERT_EQ(is_connected(g), ref_connected);
    if (ref_connected) {
      ASSERT_EQ(diameter(g), ref_diam);
    }
  }
}

TEST(GraphCrossCheck, ShortestPathLengthMatchesBfs) {
  Rng rng(63);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.index(14);
    const Graph g = random_graph(n, 0.3, rng);
    const auto d0 = bfs_distances(g, 0);
    for (NodeId v = 0; v < n; ++v) {
      const auto path = shortest_path(g, 0, v);
      if (d0[v] == kUnreachable) {
        ASSERT_TRUE(path.empty());
      } else {
        ASSERT_EQ(path.size(), d0[v] + 1);
      }
    }
  }
}

TEST(GraphCrossCheck, KHopMatchesBoundedBfs) {
  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.index(20);
    const Graph g = random_graph(n, 0.2, rng);
    const auto dist = bfs_distances(g, 0);
    for (std::uint32_t k = 0; k <= 3; ++k) {
      const auto ball = k_hop_neighbors(g, 0, k);
      for (NodeId v = 0; v < n; ++v) {
        const bool inside = dist[v] != kUnreachable && dist[v] <= k;
        ASSERT_EQ(contains_sorted(ball, v), inside)
            << "k=" << k << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace manet::graph
