// Tests for topology/layout serialization and the umbrella header.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "geom/layout_io.hpp"
#include "geom/unit_disk.hpp"
#include "graph/io.hpp"
#include "manet.hpp"  // umbrella header must compile standalone
#include "paper_fixtures.hpp"

namespace manet::graph {
namespace {

TEST(EdgeListIoTest, RoundTripsTheFigure3Network) {
  const auto g = testing::paper_figure3_network();
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const auto back = read_edge_list(buffer);
  EXPECT_EQ(back.order(), g.order());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(EdgeListIoTest, RoundTripsRandomTopologies) {
  Rng rng(31);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 60;
  cfg.range = geom::range_for_average_degree(8.0, 60, 100, 100);
  for (int i = 0; i < 5; ++i) {
    const auto net = geom::generate_unit_disk(cfg, rng);
    std::stringstream buffer;
    write_edge_list(buffer, net.graph);
    EXPECT_EQ(read_edge_list(buffer).edges(), net.graph.edges());
  }
}

TEST(EdgeListIoTest, EmptyGraphAndNoEdges) {
  std::stringstream buffer;
  write_edge_list(buffer, GraphBuilder(3).build());
  const auto g = read_edge_list(buffer);
  EXPECT_EQ(g.order(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(EdgeListIoTest, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(read_edge_list(empty), std::invalid_argument);
  std::stringstream out_of_range("3\n0 7\n");
  EXPECT_THROW(read_edge_list(out_of_range), std::invalid_argument);
  std::stringstream self_loop("3\n1 1\n");
  EXPECT_THROW(read_edge_list(self_loop), std::invalid_argument);
}

TEST(DotExportTest, ContainsNodesEdgesAndHighlights) {
  const auto g = make_graph(3, {{0, 1}, {1, 2}});
  DotOptions opts;
  opts.label = "demo";
  opts.highlight = {1};
  const auto dot = to_dot(g, opts);
  EXPECT_NE(dot.find("graph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2"), std::string::npos);
  EXPECT_NE(dot.find("n1 [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("n0 [style=filled"), std::string::npos);
}

}  // namespace
}  // namespace manet::graph

namespace manet::geom {
namespace {

TEST(LayoutIoTest, RoundTripsPositions) {
  const std::vector<Point> pts{{1.5, 2.25}, {0, 0}, {99.875, 42.0}};
  std::stringstream buffer;
  write_positions(buffer, pts);
  const auto back = read_positions(buffer);
  ASSERT_EQ(back.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].x, pts[i].x);
    EXPECT_DOUBLE_EQ(back[i].y, pts[i].y);
  }
}

TEST(LayoutIoTest, RejectsTruncatedInput) {
  std::stringstream truncated("3\n1.0 2.0\n");
  EXPECT_THROW(read_positions(truncated), std::invalid_argument);
  std::stringstream empty;
  EXPECT_THROW(read_positions(empty), std::invalid_argument);
}

}  // namespace
}  // namespace manet::geom
