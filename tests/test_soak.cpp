// Soak and regression suite: bulk randomized invariant checks across many
// seeds (cheap per-instance, broad coverage), pinned golden values that
// freeze the algorithms' exact behavior, and corner cases that don't fit
// the per-module suites.
#include <gtest/gtest.h>

#include "broadcast/si_cds.hpp"
#include "cluster/lcc.hpp"
#include "common/rng.hpp"
#include "core/cluster_graph.hpp"
#include "core/dynamic_broadcast.hpp"
#include "core/mo_cds.hpp"
#include "core/static_backbone.hpp"
#include "geom/unit_disk.hpp"
#include "graph/algorithms.hpp"
#include "net/protocol.hpp"
#include "paper_fixtures.hpp"

namespace manet {
namespace {

using core::CoverageMode;

/// One small topology per seed; the whole soak stays under a second.
geom::UnitDiskNetwork soak_network(std::uint64_t seed) {
  Rng rng(seed);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 24 + seed % 17;  // 24..40 nodes
  const double d = 5.0 + static_cast<double>(seed % 9);  // degree 5..13
  cfg.range = geom::range_for_average_degree(d, cfg.nodes, cfg.width,
                                             cfg.height);
  auto net = geom::generate_connected_unit_disk(cfg, rng);
  EXPECT_TRUE(net.has_value());
  return std::move(*net);
}

TEST(SoakTest, CoreInvariantsAcrossFiftySeeds) {
  for (std::uint64_t seed = 1000; seed < 1050; ++seed) {
    const auto net = soak_network(seed);
    const auto& g = net.graph;
    const auto c = cluster::lowest_id_clustering(g);
    ASSERT_EQ(cluster::validate_clustering(g, c), "") << "seed " << seed;

    for (const auto mode :
         {CoverageMode::kTwoPointFiveHop, CoverageMode::kThreeHop}) {
      const auto bb = core::build_static_backbone(g, c, mode);
      ASSERT_EQ(core::validate_static_backbone(g, bb), "")
          << "seed " << seed << " mode " << core::to_string(mode);
      const auto cg = core::build_cluster_graph(bb.clustering, bb.coverage);
      ASSERT_TRUE(graph::is_strongly_connected(cg.digraph))
          << "seed " << seed;

      const auto dyn = core::build_dynamic_backbone(g, c, mode);
      const auto source = static_cast<NodeId>(seed % g.order());
      const auto r = core::dynamic_broadcast(g, dyn, source);
      ASSERT_TRUE(r.delivered_all) << "seed " << seed;
      const auto si = broadcast::si_cds_broadcast(g, bb.cds, source);
      ASSERT_TRUE(si.delivered_all) << "seed " << seed;
    }
    const auto mo = core::build_mo_cds(g, c);
    ASSERT_EQ(core::validate_mo_cds(g, mo), "") << "seed " << seed;
  }
}

TEST(SoakTest, GoldenValuesPinnedForSeed2003) {
  // Exact regression values (any intentional algorithm change must update
  // these in the same commit — they freeze tie-breaks and orderings).
  Rng rng(2003);
  geom::UnitDiskConfig cfg;
  cfg.nodes = 50;
  cfg.range = geom::range_for_average_degree(8.0, 50, 100, 100);
  const auto net = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(net.has_value());
  const auto& g = net->graph;

  const auto c = cluster::lowest_id_clustering(g);
  const auto bb25 =
      core::build_static_backbone(g, c, CoverageMode::kTwoPointFiveHop);
  const auto bb3 = core::build_static_backbone(g, c, CoverageMode::kThreeHop);
  const auto mo = core::build_mo_cds(g, c);
  const auto dyn =
      core::build_dynamic_backbone(g, c, CoverageMode::kTwoPointFiveHop);
  const auto r = core::dynamic_broadcast(g, dyn, 0);

  // Structural counts (verified to be stable by the determinism suite).
  const std::size_t edges = g.edge_count();
  const std::size_t heads = c.heads.size();
  const std::size_t cds25 = bb25.cds.size();
  const std::size_t cds3 = bb3.cds.size();
  const std::size_t mocds = mo.cds.size();
  const std::size_t forwards = r.forward_count();

  // Relationships that must always hold on this fixed instance:
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_LE(cds25, mocds);
  EXPECT_LE(forwards, cds25 + 1);
  EXPECT_GE(heads, 2u);

  // Exact golden values for this seed (pin the current behavior).
  EXPECT_EQ(edges, 139u);
  EXPECT_EQ(heads, 10u);
  EXPECT_EQ(cds25, 27u);
  EXPECT_EQ(cds3, 27u);
  EXPECT_EQ(mocds, 28u);
  EXPECT_EQ(forwards, 26u);
}

TEST(SoakTest, DistributedProtocolOnDisconnectedGraph) {
  // Two components: the protocol must quiesce per component and the
  // structures must match the centralized pipeline on each.
  const auto g = graph::make_graph(
      8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
  const auto run = net::run_distributed_backbone(
      g, CoverageMode::kTwoPointFiveHop);
  const auto reference = cluster::lowest_id_clustering(g);
  EXPECT_EQ(run.clustering.heads, reference.heads);
  EXPECT_EQ(run.clustering.head_of, reference.head_of);
}

TEST(SoakTest, SimulatorObserverSeesEveryTransmission) {
  const auto g = testing::paper_figure3_network();
  net::Simulator sim(g, [](NodeId v) {
    return std::make_unique<net::BackboneNode>(
        v, CoverageMode::kTwoPointFiveHop);
  });
  std::size_t observed = 0;
  sim.set_observer(
      [&observed](std::uint32_t, const net::Message&) { ++observed; });
  sim.run();
  EXPECT_EQ(observed, sim.counts().total());
}

TEST(SoakTest, LccConvergesToValidStructureAfterHeavyChange) {
  // Apply LCC across a drastic topology swap (random graph A -> random
  // graph B with nothing in common) — the repaired structure must still
  // validate, even though almost everything churns.
  const auto a = soak_network(1111).graph;
  // A fresh random topology with the same node population.
  Rng rng(3333);
  geom::UnitDiskConfig cfg;
  cfg.nodes = a.order();
  cfg.range = geom::range_for_average_degree(8.0, a.order(), 100, 100);
  const auto b = geom::generate_connected_unit_disk(cfg, rng);
  ASSERT_TRUE(b.has_value());
  const auto before = cluster::lowest_id_clustering(a);
  const auto repaired = cluster::lcc_update(b->graph, before);
  EXPECT_EQ(cluster::validate_cluster_structure(b->graph, repaired), "");
}

}  // namespace
}  // namespace manet
